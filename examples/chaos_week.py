#!/usr/bin/env python
"""Scenario: a chaos week on Spider II.

Runs a seed-deterministic week-long fault campaign (§IV's failure
catalogue as a schedule) against the full Spider II model with the
telemetry spine enabled:

* a :class:`FaultPlan.random` campaign — disks, cables, controllers,
  routers, MDS storms, filling OSTs — over seven simulated days;
* every injection re-solves the flow network, building the
  bandwidth-degradation timeline;
* every fault feeds the health checker (correlated incidents) and the
  tracer (one span per fault lifetime, exported as a Chrome trace).

Run:  python examples/chaos_week.py
Then load chaos_week_trace.json in Perfetto to see the fault intervals
next to the RAID-rebuild and engine-process spans.
"""

from repro.analysis.reporting import render_kv, render_table
from repro.core.spider import build_spider2
from repro.faults import FaultCampaign, FaultPlan
from repro.obs import Telemetry, Tracer, use_telemetry, use_tracer
from repro.obs.report import render_layer_report
from repro.units import DAY, HOUR, fmt_bandwidth

SEED = 2010  # the year of the enclosure incident; any int works
WEEK = 7 * DAY


def main() -> None:
    spider = build_spider2()
    plan = FaultPlan.random(spider, duration=WEEK, n_faults=16, seed=SEED)

    print(f"== Planned campaign (seed {SEED}) ==\n")
    print(render_table(
        ["t (h)", "fault", "target", "duration (h)", "magnitude"],
        [(f"{f.time / HOUR:.1f}", f.fault.value, str(f.target),
          f"{f.duration / HOUR:.1f}", f"{f.magnitude:.2f}")
         for f in plan]))

    telemetry = Telemetry(enabled=True)
    tracer = Tracer(enabled=True)
    with use_telemetry(telemetry), use_tracer(tracer):
        campaign = FaultCampaign(spider, plan, duration=WEEK, threshold=0.5)
        result = campaign.run()

    print("\n== Bandwidth timeline ==\n")
    print(render_table(
        ["t (h)", "bandwidth", "event"],
        [(f"{t / HOUR:.1f}", fmt_bandwidth(bw), label)
         for t, bw, label in result.timeline]))

    print("\n== Campaign metrics ==\n")
    print(render_kv([
        ("faults injected / repaired",
         f"{result.n_injected} / {result.n_repaired}"),
        ("baseline bandwidth", fmt_bandwidth(result.baseline_bw)),
        ("worst bandwidth", fmt_bandwidth(result.worst_bw)),
        ("availability (bw-weighted)", f"{result.availability:.2%}"),
        ("time below 50% of baseline",
         f"{result.time_below_threshold / HOUR:.1f} h"),
    ]))

    if result.recovery_times:
        print("\n== Worst recovery time per fault class ==\n")
        print(render_table(
            ["fault class", "recovery"],
            [(cls, f"{seconds / HOUR:.2f} h")
             for cls, seconds in result.recovery_times]))

    print("\n== Health-checker incident triage ==\n")
    for incident in campaign.health.incidents():
        kinds = sorted({e.kind.value for e in incident.events})
        print(f"  [{incident.classification}] hosts={sorted(incident.hosts)} "
              f"events={kinds}")

    print("\n== Layer report over the whole week ==\n")
    print(render_layer_report(telemetry.snapshot()))

    tracer.write_chrome_trace("chaos_week_trace.json", telemetry)
    fault_spans = [s for s in tracer.spans if s.cat == "faults"]
    print(f"\nwrote chaos_week_trace.json "
          f"({len(tracer.spans)} spans, {len(fault_spans)} fault intervals)")


if __name__ == "__main__":
    main()
