#!/usr/bin/env python
"""Scenario: S3D shares the file system with a noisy neighbour; libPIO
steers its output around the congestion (§VI-A).

The data-centric design's cost is contention (Lesson 1); libPIO is the
paper's answer.  This script loads half of a namespace with background
writers, then runs an S3D output phase twice — once with Lustre's default
round-robin allocation, once with libPIO's utilization-aware placement —
and reports the delivered job bandwidth for each.

Run:  python examples/noisy_neighbor_libpio.py
"""

import math

from repro.analysis.reporting import render_kv
from repro.core.path import PathBuilder, Transfer
from repro.core.spider import build_spider2
from repro.tools.libpio import LibPio
from repro.units import GB, MiB, fmt_bandwidth
from repro.workloads.s3d import S3DApp


def main() -> None:
    print("Building Spider II...")
    spider = build_spider2()
    fs_name = "atlas2"
    fs = spider.filesystems[fs_name]

    # Background: unbounded writers hammering the first 6 SSUs of atlas2.
    busy_ssus = sorted({o.ssu_index for o in fs.osts})[:6]
    busy_osts = [o.index for o in fs.osts if o.ssu_index in busy_ssus]
    noise = [
        Transfer(f"noise{i}", spider.clients[4000 + i % 2000], (ost,),
                 demand=math.inf)
        for i, ost in enumerate(busy_osts * 2)
    ]
    print(f"Background: {len(noise)} streams over SSUs {busy_ssus}")

    app = S3DApp(n_ranks=1024, bytes_per_rank=256 * MiB, ranks_per_node=16)

    def run_output_phase(selector, label: str) -> float:
        transfers = app.output_transfers(
            spider.clients[:app.n_nodes * 2], selector, n_osts=len(fs.osts))
        # Map namespace-relative round-robin picks onto atlas2's range.
        base = fs.osts[0].index
        transfers = [
            Transfer(t.name, t.client,
                     tuple(base + (o % len(fs.osts)) for o in t.ost_indices)
                     if min(t.ost_indices) < base else t.ost_indices,
                     demand=t.demand)
            for t in transfers
        ]
        builder = PathBuilder(spider)
        result = builder.solve(noise + transfers)
        rates = builder.transfer_rates(result, noise + transfers)
        job = sum(v for k, v in rates.items() if k.startswith("s3d"))
        print(f"  {label:24s} {fmt_bandwidth(job)}")
        return job

    print("\n== S3D output phase, 1,024 ranks ==")
    default_bw = run_output_phase(S3DApp.round_robin_selector(), "default round robin")

    pio = LibPio(spider, fs_name)
    pio.observe_external_load({ost: 2.0 for ost in busy_osts})
    pio_bw = run_output_phase(pio.selector(), "libPIO placement")

    gain = pio_bw / default_bw - 1.0
    print()
    print(render_kv([
        ("default placement", fmt_bandwidth(default_bw)),
        ("libPIO placement", fmt_bandwidth(pio_bw)),
        ("improvement", f"{gain:+.0%}"),
        ("paper reference", "up to 24% for S3D in noisy production; "
                            ">70% for synthetic congested runs (§VI-A)"),
    ]))


if __name__ == "__main__":
    main()
