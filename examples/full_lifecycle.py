#!/usr/bin/env python
"""The whole Spider II lifecycle, §III → §VI, in one run.

1. **Procure** (§III): evaluate vendor responses against the RFP.
2. **Deploy & tune** (§V-A): build the system, run the culling campaign.
3. **Accept** (§III-B): acceptance suite against a delivered SSU.
4. **Go to production** (§V-C): IOR scaling study, hero run.
5. **Operate** (§IV, §VI): monitoring day, purge sweep, a failover.
6. **Upgrade** (§V-C): controller refresh, re-measure.

Run:  python examples/full_lifecycle.py   (takes ~half a minute)
"""

from repro.analysis.reporting import render_kv, render_series, render_table
from repro.core.spider import SPIDER2, SpiderSystem
from repro.hardware.ssu import SsuSpec
from repro.iobench.ior import IorRun
from repro.iobench.suite import AcceptanceSuite
from repro.lustre.recovery import simulate_recovery
from repro.monitoring.ddntool import DdnTool
from repro.monitoring.metricsdb import MetricsDb
from repro.ops.culling import CullingCampaign
from repro.ops.procurement import (
    ProcurementEvaluation,
    ResponseModel,
    Rfp,
    VendorProposal,
)
from repro.sim.engine import Engine
from repro.tools.purger import Purger
from repro.units import DAY, GB, MiB, fmt_bandwidth, fmt_size


def main() -> None:
    print("=" * 64)
    print("PHASE 1 — procurement (§III)")
    print("=" * 64)
    rfp = Rfp()
    proposals = [
        VendorProposal(vendor="block-model", model=ResponseModel.BLOCK_STORAGE,
                       ssu=SsuSpec(), n_ssus=36, price_per_ssu=0.75,
                       integration_cost=2.0, annual_service_cost=0.5,
                       delivery_months=10, past_performance=0.85),
        VendorProposal(vendor="appliance-model", model=ResponseModel.APPLIANCE,
                       ssu=SsuSpec(), n_ssus=36, price_per_ssu=1.0,
                       integration_cost=1.0, annual_service_cost=0.7,
                       delivery_months=12, past_performance=0.8),
    ]
    winner, _cards = ProcurementEvaluation(
        rfp, buyer_integration_expertise=0.85).select(proposals)
    print(f"winner: {winner.vendor} ({winner.compliant and 'compliant'})\n")

    print("=" * 64)
    print("PHASE 2 — deployment + slow-disk culling (§V-A)")
    print("=" * 64)
    system = SpiderSystem(SPIDER2, seed=2014)
    campaign = CullingCampaign(system)
    culling = campaign.run_full_campaign()
    print(f"culled {culling.replaced_at('block')} drives at block level, "
          f"{culling.replaced_at('fs')} at fs level "
          f"over {len(culling.rounds)} rounds\n")

    print("=" * 64)
    print("PHASE 3 — acceptance (§III-B)")
    print("=" * 64)
    suite_report = AcceptanceSuite(system).run_ssu(0)
    print(render_table(["metric", "value"], suite_report.rows()))
    print()

    print("=" * 64)
    print("PHASE 4 — production scaling study (§V-C)")
    print("=" * 64)
    points = []
    for n in (1008, 4032, 8064):
        r = IorRun(system, n_processes=n, ppn=16).run()
        points.append((n, r.aggregate_bw / GB))
    print(render_series("processes", "GB/s", points,
                        title="IOR client scaling (pre-upgrade namespace)"))
    hero = IorRun(system, n_processes=1008, ppn=1, placement="optimal").run()
    print(f"\nhero run: {fmt_bandwidth(hero.aggregate_bw)} "
          f"(paper: 320 GB/s)\n")

    print("=" * 64)
    print("PHASE 5 — operations (§IV, §VI)")
    print("=" * 64)
    engine = Engine()
    db = MetricsDb()
    DdnTool(system, db, poll_interval=300.0).attach(engine)
    engine.run(until=3600.0)
    print(f"DDN tool: {len(db.sources('ctrl.write_bytes'))} couplets polled")

    fs = system.filesystems["atlas1"]
    fs.mkdir("/proj", now=0.0)
    for i in range(120):
        fs.create_file(f"/proj/run{i:03d}.h5", now=float(i % 20) * DAY,
                       size=(i + 1) * 10**9)
    purge = Purger(fs).sweep(now=21.0 * DAY)
    print(f"purge: {purge.files_purged} files, "
          f"{fmt_size(purge.bytes_purged)} reclaimed")

    failover = simulate_recovery(imperative=True, hp_journaling=True, seed=2)
    print(f"OSS failover (imperative recovery + hp journaling): "
          f"{failover.blackout_seconds:.0f} s I/O blackout\n")

    print("=" * 64)
    print("PHASE 6 — the 2014 controller upgrade (§V-C)")
    print("=" * 64)
    system.upgrade_controllers()
    hero2 = IorRun(system, n_processes=1008, ppn=1, placement="optimal").run()
    print(render_kv([
        ("pre-upgrade hero", fmt_bandwidth(hero.aggregate_bw)),
        ("post-upgrade hero", fmt_bandwidth(hero2.aggregate_bw)),
        ("paper", "320 GB/s -> 510 GB/s"),
    ]))
    print("\nLifecycle complete.")


if __name__ == "__main__":
    main()
