#!/usr/bin/env python
"""Scenario: a day in the life of the Spider operations team.

Strings together the operational toolbox of §IV-VI on the event engine:

* the DDN tool polls controllers into the metrics DB;
* Nagios-style checks watch couplets and IB cables;
* a marginal cable degrades mid-day and gets diagnosed in place;
* the nightly LustreDU sweep answers project-usage queries;
* the weekly purge sweep trims scratch;
* the health checker correlates the day's events into incidents.

Run:  python examples/operations_day.py
"""

from repro.analysis.reporting import render_kv, render_table
from repro.core.spider import build_spider2
from repro.monitoring.checks import CheckScheduler, CheckState
from repro.monitoring.ddntool import DdnTool
from repro.monitoring.health import EventKind, HealthEvent, LustreHealthChecker
from repro.monitoring.ibmon import IbMonitor
from repro.monitoring.metricsdb import MetricsDb
from repro.sim.engine import Engine
from repro.tools.lustredu import LustreDu
from repro.tools.purger import Purger
from repro.units import DAY, GB, HOUR, fmt_size


def main() -> None:
    spider = build_spider2(build_clients=False)
    engine = Engine()
    db = MetricsDb()

    # Populate one namespace with user data spanning three weeks.
    fs = spider.filesystems["atlas1"]
    fs.mkdir("/proj/climate", now=0.0)
    fs.mkdir("/proj/fusion", now=0.0)
    for i in range(300):
        proj = "climate" if i % 3 else "fusion"
        fs.create_file(f"/proj/{proj}/run{i:04d}.h5",
                       now=float(i % 21) * DAY, size=(i + 1) * 10**9,
                       project=proj, owner=f"user{i % 7}")

    # Monitoring plumbing.
    ddn = DdnTool(spider, db, poll_interval=5 * 60.0)
    ddn.attach(engine)
    sched = CheckScheduler(engine)
    ibmon = IbMonitor(spider.fabric, db, symbol_error_rate_threshold=0.5)
    watched_host = spider.osses[10].name
    # Watch a rack's worth of cables explicitly (all 728 would work too,
    # at proportionally more simulated-check volume).
    ibmon.register_checks(sched, interval=10 * 60.0,
                          hosts=[o.name for o in spider.osses[:16]])
    health = LustreHealthChecker()

    # Mid-morning: a cable goes marginal; errors start accruing.
    def cable_flaps() -> None:
        spider.fabric.degrade_cable(watched_host, 0.6, symbol_errors=4000)
        health.ingest(HealthEvent(engine.now, EventKind.CABLE_ERRORS,
                                  watched_host))

    engine.call_at(10 * HOUR, cable_flaps)
    engine.call_at(10 * HOUR + 90,
                   lambda: health.ingest(HealthEvent(
                       engine.now, EventKind.RPC_TIMEOUT, watched_host)))

    # Keep errors accruing so the rate-based check trips.
    engine.every(10 * 60.0,
                 lambda: (spider.fabric.cable_of(watched_host).degradation < 1.0
                          and spider.fabric.degrade_cable(
                              watched_host, 0.6, symbol_errors=4000)),
                 start=10 * HOUR + 600)

    # Run the live-monitoring day; the du/purge sweeps below use day-21
    # timestamps directly (their inputs are namespace mtimes, not events).
    engine.run(until=1.0 * DAY)

    print("== Monitoring day summary ==\n")
    alerts = [(a.check, f"t={a.raised_at / HOUR:.1f}h", a.state.name)
              for a in sched.alerts]
    print(render_table(["check", "raised", "state"], alerts or
                       [("-", "-", "no alerts")]))

    diag = ibmon.diagnose_cable(watched_host)
    print("\n== In-place cable diagnosis (§IV-A) ==\n")
    print(render_kv([
        ("cable", watched_host),
        ("bandwidth vs peers", f"{diag['ratio']:.0%}"),
        ("degraded?", diag["degraded"]),
        ("symbol errors", int(diag["symbol_errors"])),
    ]))

    print("\n== Health-checker incident classification ==\n")
    for incident in health.incidents():
        print(f"  [{incident.classification}] hosts={sorted(incident.hosts)} "
              f"events={[e.kind.value for e in incident.events]}")

    print("\n== Nightly LustreDU sweep ==\n")
    du = LustreDu(fs)
    snap = du.sweep(now=21.0 * DAY)
    print(render_kv([
        ("files", snap.n_files),
        ("climate usage", fmt_size(du.query(project="climate"))),
        ("fusion usage", fmt_size(du.query(project="fusion"))),
        ("sweep MDS cost", f"{snap.sweep_mds_seconds * 1e3:.1f} ms"),
    ]))

    print("\n== Weekly purge sweep (14-day policy) ==\n")
    report = Purger(fs).sweep(now=21.0 * DAY)
    print(render_kv([
        ("files examined", report.files_examined),
        ("files purged", report.files_purged),
        ("bytes reclaimed", fmt_size(report.bytes_purged)),
        ("fill before/after", f"{report.fill_before:.2%} -> "
                              f"{report.fill_after:.2%}"),
    ]))


if __name__ == "__main__":
    main()
