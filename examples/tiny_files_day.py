#!/usr/bin/env python
"""Scenario: a metadata-heavy day on scratch, replayed against two tiers.

§IV-C's lesson is that one MDS cannot carry a center's metadata traffic;
the operational answer was multiple namespaces and nightly server-side
sweeps.  This example replays the same day — an untar storm of tiny
files, AI-training shard re-reads, six-hourly purge/audit sweeps, plus
an MDS-overload storm and an OST fill — against:

* the **per-file baseline**: every tiny file is a real inode on one MDS;
* the **aggregated tier**: tiny files become needles packed into
  OST-striped segments (Haystack-style), the residual namespace is
  DNE-sharded over 4 MDTs, and cold segments migrate to an f4-style
  erasure-coded warm tier.

Both arms share one seed, so every divergence in MDS busy time is the
tier design, not the workload.

Run:  python examples/tiny_files_day.py
"""

from repro.analysis.reporting import render_kv, render_table
from repro.metatier import MetaStudySpec, run_meta_study, tradeoff_rows
from repro.units import MiB


def main() -> None:
    # 20k files keeps this a smoke-speed example; `spider-repro meta`
    # runs the 10^6-file acceptance scale.
    spec = MetaStudySpec(n_files=20_000, seed=7, n_shards=4,
                         segment_bytes=16 * MiB, with_faults=True)
    result = run_meta_study(spec)

    print(render_table(
        ["metric", "per-file (1 MDS)", f"aggregated ({spec.n_shards} MDT)"],
        result.rows(),
        title=f"Small-file metadata tier, {spec.n_files:,} files"))
    print()
    print(render_kv(result.baseline.rows(), title="Per-file baseline"))
    print()
    print(render_kv(result.aggregated.rows(),
                    title="Aggregated tier (needles + DNE shards)"))
    print()
    print(render_table(
        ["scheme", "raw capacity", "read bw", "rebuild"],
        tradeoff_rows(),
        title="Warm-tier encoding tradeoff (f4 vs RAID-6+replica)"))
    print()

    # The same logical work reached both arms — the only honest basis
    # for comparing their metadata bills.
    assert result.baseline.logical_ops == result.aggregated.logical_ops
    print(render_kv([
        ("logical metadata ops", f"{result.baseline.logical_ops:,}"),
        ("metadata throughput gain", f"{result.throughput_gain:,.1f}x"),
        ("MDS makespan removed", f"{result.mds_seconds_removed:,.1f} s"),
        ("segments packed", f"{result.aggregated.n_segments:,}"),
        ("cache hit rate",
         f"{result.aggregated.observed_cache_hit_rate:.1%}"),
    ], title="Headline"))


if __name__ == "__main__":
    main()
