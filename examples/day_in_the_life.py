#!/usr/bin/env python
"""Scenario: a day in the life of the data-centric center.

Spider's defining bet is that one file system serves every platform at
once — Titan's checkpointing simulations, the interactive analysis
clusters, and the data-transfer nodes.  This script runs that day twice
on the full Spider II model:

* a seed-deterministic population of jobs from all three platform
  classes arrives over six hours, arbitrated over the shared backbone
  by the facility scheduler — first with QoS caps disabled (the
  as-deployed system, where isolation was a lesson learned), then with
  the per-class demand caps enabled;
* a small random fault campaign runs *under load*, so the damage shows
  up where operators feel it: job slowdown and analytics latency, not
  just raw bandwidth;
* the closing comparison shows Lesson 1's tradeoff quantified — what
  the caps cost the checkpoint jobs, and what they buy the interactive
  analysts' p99 read latency.

Run:  python examples/day_in_the_life.py
"""

from repro.analysis.reporting import render_kv, render_table
from repro.core.spider import build_spider2
from repro.faults import FaultPlan
from repro.sched import FacilityScheduler, JobMix, QosPolicy, generate_jobs
from repro.units import HOUR, MS, fmt_duration

SEED = 2014
WINDOW = 6 * HOUR
N_FAULTS = 4


def run_day(policy: QosPolicy):
    # Fresh system per run: fault injectors mutate it in place.
    spider = build_spider2(seed=SEED, build_clients=False)
    backbone = spider.aggregate_bandwidth(fs_level=True)
    jobs = generate_jobs(JobMix(), duration=WINDOW, seed=SEED,
                         reference_bandwidth=backbone)
    plan = FaultPlan.random(spider, duration=WINDOW, n_faults=N_FAULTS,
                            seed=SEED)
    scheduler = FacilityScheduler(spider, jobs, policy=policy,
                                  fault_plan=plan, seed=SEED)
    return scheduler.run()


def report(result, title: str) -> None:
    print(f"\n== Per-class outcomes — {title} ==\n")
    print(render_table(
        ["class", "jobs", "done", "slowdown", "p95", "stretch",
         "bw sat", "fairness"],
        result.class_rows()))
    print()
    print(render_kv([
        ("submitted / finished / censored",
         f"{result.n_submitted} / {result.n_finished} / {result.n_censored}"),
        ("fault events under load", result.n_fault_events),
        ("makespan", fmt_duration(result.makespan)),
        ("overall fairness (Jain)", f"{result.overall_fairness:.3f}"),
    ]))


def main() -> None:
    print(f"== A day in the life (seed {SEED}, "
          f"{WINDOW / HOUR:.0f} h window, {N_FAULTS} faults) ==")

    without = run_day(QosPolicy.disabled())
    report(without, "QoS caps disabled (as-deployed)")

    with_caps = run_day(QosPolicy())
    report(with_caps, "QoS caps enabled (Lesson 1 knob)")

    lp_off, lp_on = without.latency, with_caps.latency
    print("\n== The Lesson 1 tradeoff, quantified ==\n")
    print(render_kv([
        ("analytics read p99, alone", f"{lp_off.alone_p99 / MS:.1f} ms"),
        ("shared, QoS off", f"{lp_off.shared_p99 / MS:.1f} ms"),
        ("shared, QoS on", f"{lp_on.shared_p99 / MS:.1f} ms"),
        ("p99 inflation, QoS off", f"{lp_off.p99_inflation:.1f}x"),
        ("p99 inflation, QoS on", f"{lp_on.p99_inflation:.1f}x"),
        ("simulation slowdown cost",
         f"{without.summary_of('simulation').mean_slowdown:.2f}x -> "
         f"{with_caps.summary_of('simulation').mean_slowdown:.2f}x"),
    ]))


if __name__ == "__main__":
    main()
