#!/usr/bin/env python
"""Scenario: a Titan-scale checkpoint campaign on the shared file system.

This is the workload the paper's §III-A design equation comes from: a
simulation owning most of Titan periodically checkpoints a fixed fraction
of its memory.  The script:

1. sizes the checkpoint against the design goal (75% of 600 TB in ~6 min);
2. generates the server-side burst trace and characterizes it (the §II
   workload-study statistics);
3. shows what the *mixed* workload looks like once analytics jobs share
   the file system — the paper's core argument for designing around the
   mix rather than per-machine peaks.

Run:  python examples/checkpoint_campaign.py
"""

from repro.analysis.reporting import render_kv, render_table
from repro.analysis.workload_stats import characterize
from repro.core.spider import build_spider2
from repro.sim.rng import RngStreams
from repro.units import GB, TB, fmt_bandwidth, fmt_duration
from repro.workloads.checkpoint import CheckpointApp, checkpoint_trace, time_to_checkpoint
from repro.workloads.mixed import spider_mixed_workload


def main() -> None:
    spider = build_spider2(build_clients=False)
    delivered = spider.aggregate_bandwidth(fs_level=False)

    print("== Checkpoint design point (§III-A) ==\n")
    titan_memory = 600 * TB
    goal_fraction = 0.75
    t = time_to_checkpoint(titan_memory, goal_fraction, delivered)
    print(render_kv([
        ("Titan memory", "600 TB"),
        ("checkpoint fraction", f"{goal_fraction:.0%}"),
        ("delivered block bandwidth", fmt_bandwidth(delivered)),
        ("time to checkpoint", fmt_duration(t)),
        ("design goal", "6 min (the paper rounds the implied 1.25 TB/s "
                        "requirement to 1 TB/s)"),
    ]))

    print("\n== One application's checkpoint bursts, as the servers see "
          "them ==\n")
    app = CheckpointApp(name="xgc", n_procs=8192, bytes_per_proc=2 * GB,
                        interval=3600.0, aggregate_bandwidth=200 * GB)
    rng = RngStreams(7)
    trace = checkpoint_trace(app, duration=4 * 3600.0, rng=rng.get("ckpt"))
    print(render_kv([
        ("ranks", app.n_procs),
        ("bytes per checkpoint", f"{app.checkpoint_bytes / TB:.1f} TB"),
        ("burst duration", fmt_duration(app.burst_duration)),
        ("requests in 4 h", len(trace)),
        ("write fraction", f"{trace.write_fraction_requests():.2f}"),
    ]))

    print("\n== The center-wide mix (checkpoints + analytics) ==\n")
    _workload, mixed = spider_mixed_workload(duration=4 * 3600.0, seed=11)
    report = characterize(mixed)
    print(render_table(["metric", "value"], report.rows(),
                       title="Spider I-style characterization (§II)"))
    print("\nNote the 60/40 write/read request mix and the bimodal sizes —"
          "\nthe statistics the paper says a data-centric design must be"
          "\nevaluated against (Lessons 1 & 2).")


if __name__ == "__main__":
    main()
