#!/usr/bin/env python
"""Quickstart: build Spider II, inspect it bottom-up, and run an IOR test.

This walks the three things a new user does first:

1. build the paper-calibrated Spider II system and print its inventory
   (the Figure 1 component census);
2. profile the I/O stack layer by layer (Lesson 12's methodology);
3. run a small IOR-style scaling probe against one namespace.

Run:  python examples/quickstart.py
"""

from repro.analysis.layers import profile_layers
from repro.analysis.reporting import render_kv, render_series, render_table
from repro.core.spider import build_spider2
from repro.iobench.ior import IorRun
from repro.units import GB, MiB, fmt_bandwidth, fmt_size


def main() -> None:
    print("== Building Spider II (36 SSUs, 20,160 disks, 2,016 OSTs) ==\n")
    spider = build_spider2()

    inv = spider.inventory()
    print(render_kv([
        ("SSUs", inv["ssus"]),
        ("disks", inv["disks"]),
        ("OSTs", inv["osts"]),
        ("OSS nodes", inv["osses"]),
        ("I/O routers", inv["routers"]),
        ("namespaces", inv["namespaces"]),
        ("Titan clients", inv["clients"]),
        ("capacity", fmt_size(inv["capacity_bytes"])),
        ("block-level aggregate", fmt_bandwidth(
            spider.aggregate_bandwidth(fs_level=False))),
    ], title="Inventory (Figure 1)"))

    print("\n== Bottom-up layer profile (Lesson 12) ==\n")
    profile = profile_layers(spider)
    print(render_table(
        ["layer", "aggregate ceiling", "loss vs layer below"],
        profile.loss_table(),
    ))

    print("\n== IOR write probe on one namespace (file-per-process, "
          "1 MiB transfers) ==\n")
    points = []
    for n_processes in (1008, 2016, 4032, 8064):
        result = IorRun(spider, n_processes=n_processes, ppn=16,
                        transfer_size=1 * MiB).run()
        points.append((n_processes, result.aggregate_bw / GB))
    print(render_series("processes", "GB/s", points,
                        title="client scaling (cf. Figure 4)"))

    print("\nDone.  See examples/checkpoint_campaign.py and "
          "examples/noisy_neighbor_libpio.py for domain scenarios.")


if __name__ == "__main__":
    main()
