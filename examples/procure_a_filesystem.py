#!/usr/bin/env python
"""Scenario: run the Spider II procurement end to end (§III).

Builds the RFP from the center's requirements, collects vendor proposals
(block-storage and appliance responses), benchmarks the winning SSU
configuration with the acceptance suite, and prints the weighted
evaluation — the Lesson 3/5 decision process.

Run:  python examples/procure_a_filesystem.py
"""

from repro.analysis.reporting import render_kv, render_table
from repro.core.center import HpcCenter
from repro.core.spider import SPIDER2, SpiderSystem
from repro.hardware.ssu import SsuSpec
from repro.hardware.controller import ControllerSpec
from repro.hardware.disk import DiskSpec
from repro.iobench.suite import AcceptanceSuite
from repro.ops.procurement import (
    ProcurementEvaluation,
    ResponseModel,
    Rfp,
    VendorProposal,
)
from repro.units import GB, MB, PB, TB, fmt_bandwidth, fmt_size


def main() -> None:
    center = HpcCenter()
    rfp = Rfp(
        sequential_floor=1000 * GB,
        random_floor=240 * GB,
        capacity_floor=center.capacity_target_bytes(),  # the 30x rule
    )
    print(render_kv([
        ("aggregate center memory", fmt_size(center.aggregate_memory_bytes)),
        ("capacity floor (30x)", fmt_size(rfp.capacity_floor)),
        ("sequential floor", fmt_bandwidth(rfp.sequential_floor)),
        ("random floor", fmt_bandwidth(rfp.random_floor)),
    ], title="RFP quantitative floors (§III-A)"))

    proposals = [
        VendorProposal(
            vendor="blockvendor", model=ResponseModel.BLOCK_STORAGE,
            ssu=SsuSpec(), n_ssus=36, price_per_ssu=0.75,
            integration_cost=2.0, annual_service_cost=0.5,
            delivery_months=10, past_performance=0.85,
        ),
        VendorProposal(
            vendor="applianceco", model=ResponseModel.APPLIANCE,
            ssu=SsuSpec(), n_ssus=36, price_per_ssu=1.0,
            integration_cost=1.0, annual_service_cost=0.7,
            delivery_months=12, past_performance=0.8,
        ),
        VendorProposal(
            vendor="bargainbin", model=ResponseModel.BLOCK_STORAGE,
            ssu=SsuSpec(disk=DiskSpec(seq_bw=90 * MB, name="slow-disk"),
                        controller=ControllerSpec(block_bw_cap=9 * GB,
                                                  fs_bw_cap=6 * GB,
                                                  upgraded_fs_bw_cap=7 * GB)),
            n_ssus=30, price_per_ssu=0.4,
            integration_cost=1.5, annual_service_cost=0.4,
            delivery_months=9, past_performance=0.5,
        ),
    ]

    print("\n== Proposal capabilities ==\n")
    rows = [
        (p.vendor, p.model.value, p.n_ssus,
         fmt_bandwidth(p.total_seq_bw), fmt_bandwidth(p.total_random_bw),
         fmt_size(p.total_capacity), f"{p.tco():.1f}")
        for p in proposals
    ]
    print(render_table(
        ["vendor", "model", "SSUs", "seq", "random", "capacity", "TCO"],
        rows))

    evaluation = ProcurementEvaluation(rfp, buyer_integration_expertise=0.85)
    winner, cards = evaluation.select(proposals)

    print("\n== Weighted evaluation (Lesson 5) ==\n")
    print(render_table(
        ["vendor", "compliant", *sorted(cards[0].scores), "total"],
        [c.row() for c in cards]))
    print(f"\nWinner: {winner.vendor} "
          f"(the block model — OLCF's expertise absorbs integration risk, "
          f"§III-C)")

    print("\n== Acceptance benchmarking of one delivered SSU (§III-B) ==\n")
    system = SpiderSystem(SPIDER2, seed=1, build_clients=False)
    report = AcceptanceSuite(system).run_ssu(0)
    print(render_table(["metric", "value"], report.rows()))
    per_ssu_floor_seq = rfp.sequential_floor / 36
    checks = AcceptanceSuite(system).check_sow_targets(
        report, seq_floor=per_ssu_floor_seq,
        random_floor=rfp.random_floor / 36)
    print(render_kv(sorted(checks.items()), title="\nSOW floor checks"))


if __name__ == "__main__":
    main()
