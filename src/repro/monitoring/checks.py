"""A Nagios-like check scheduler (§IV-A, Lesson 8).

"OLCF has developed mechanisms for providing better reporting about the
health of the file system through the OLCF's monitoring framework provided
by Nagios."

Checks are named callables returning a :class:`CheckState`; the scheduler
runs them periodically on the simulation engine, tracks state transitions,
and raises/clears alerts.  Flap damping is deliberate: an alert fires only
after ``confirm_after`` consecutive non-OK results, matching operational
practice (single bad polls of a 20,000-drive system are noise).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

from repro.sim.engine import Engine

__all__ = ["CheckState", "CheckResult", "Alert", "CheckScheduler"]


class CheckState(enum.IntEnum):
    """Nagios-style severity ladder; higher is worse."""

    OK = 0
    WARNING = 1
    CRITICAL = 2
    UNKNOWN = 3


@dataclass(frozen=True)
class CheckResult:
    """One execution of one check: its state at ``time``, with detail."""

    check: str
    time: float
    state: CheckState
    message: str = ""


@dataclass
class Alert:
    """A non-OK episode: raised when a check degrades, cleared on recovery."""

    check: str
    raised_at: float
    state: CheckState
    message: str
    cleared_at: float | None = None

    @property
    def active(self) -> bool:
        return self.cleared_at is None

    @property
    def duration(self) -> float | None:
        if self.cleared_at is None:
            return None
        return self.cleared_at - self.raised_at


@dataclass
class _CheckEntry:
    name: str
    fn: Callable[[], tuple[CheckState, str]]
    interval: float
    confirm_after: int
    consecutive_bad: int = 0
    last_state: CheckState = CheckState.OK
    active_alert: Alert | None = None


class CheckScheduler:
    """Periodic checks + alert lifecycle on a simulation engine."""

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self._checks: dict[str, _CheckEntry] = {}
        self.results: list[CheckResult] = []
        self.alerts: list[Alert] = []

    def register(
        self,
        name: str,
        fn: Callable[[], tuple[CheckState, str]],
        *,
        interval: float = 60.0,
        confirm_after: int = 2,
    ) -> None:
        """Add a check.  ``fn`` returns (state, message) when polled."""
        if name in self._checks:
            raise ValueError(f"duplicate check {name!r}")
        if interval <= 0 or confirm_after < 1:
            raise ValueError("interval must be positive, confirm_after >= 1")
        entry = _CheckEntry(name=name, fn=fn, interval=interval,
                            confirm_after=confirm_after)
        self._checks[name] = entry
        self.engine.every(interval, lambda e=entry: self._poll(e),
                          name=f"check:{name}")

    def _poll(self, entry: _CheckEntry) -> None:
        try:
            state, message = entry.fn()
        except Exception as exc:  # a crashing check is itself a finding
            state, message = CheckState.UNKNOWN, f"check error: {exc!r}"
        now = self.engine.now
        self.results.append(CheckResult(entry.name, now, state, message))
        entry.last_state = state
        if state is CheckState.OK:
            entry.consecutive_bad = 0
            if entry.active_alert is not None:
                entry.active_alert.cleared_at = now
                entry.active_alert = None
            return
        entry.consecutive_bad += 1
        if entry.consecutive_bad >= entry.confirm_after and entry.active_alert is None:
            alert = Alert(check=entry.name, raised_at=now, state=state,
                          message=message)
            entry.active_alert = alert
            self.alerts.append(alert)

    # -- queries ---------------------------------------------------------------

    def active_alerts(self) -> list[Alert]:
        return [a for a in self.alerts if a.active]

    def state_of(self, name: str) -> CheckState:
        return self._checks[name].last_state

    def detection_latency(self, check: str, fault_time: float) -> float | None:
        """Seconds from fault injection to the first alert on ``check``."""
        for alert in self.alerts:
            if alert.check == check and alert.raised_at >= fault_time:
                return alert.raised_at - fault_time
        return None
