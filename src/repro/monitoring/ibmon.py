"""InfiniBand fabric monitoring (§IV-A).

"To monitor the InfiniBand adapter and network, custom checks were written
around the standard OFED tools for HCA errors and network errors ...
Single cable failures can cause performance degradation in accessing the
file system.  OLCF has developed procedures for diagnosing a cable
in-place."

The monitor samples the fabric's per-cable error counters, alerts on
symbol-error *rate* (a flapping cable accrues errors while still passing
traffic — the insidious degradation case), and provides the in-place cable
diagnosis: compare a cable's delivered bandwidth against its healthy peers
on the same leaf.
"""

from __future__ import annotations


import numpy as np

from repro.network.infiniband import InfinibandFabric
from repro.monitoring.checks import CheckScheduler, CheckState
from repro.monitoring.metricsdb import MetricsDb

__all__ = ["IbMonitor"]


class IbMonitor:
    """Error-counter sampling + degraded-cable diagnosis."""

    def __init__(
        self,
        fabric: InfinibandFabric,
        db: MetricsDb,
        *,
        symbol_error_rate_threshold: float = 1.0,  # errors/s sustained
    ) -> None:
        self.fabric = fabric
        self.db = db
        self.threshold = symbol_error_rate_threshold
        self._last_sample: dict[str, tuple[float, int]] = {}

    def sample(self, now: float) -> None:
        """Record every cable's counters."""
        for host, (symbol_errors, link_downs) in self.fabric.error_counters().items():
            self.db.insert("ib.symbol_errors", host, now, symbol_errors)
            self.db.insert("ib.link_downs", host, now, link_downs)
            self._last_sample[host] = (now, symbol_errors)

    def error_rate(self, host: str, t0: float, t1: float) -> float:
        try:
            return self.db.rate("ib.symbol_errors", host, t0, t1)
        except KeyError:
            return 0.0

    def attach_sampler(self, engine, *, interval: float = 60.0) -> None:
        """One fabric-wide counter sweep per interval.  Checks registered
        with :meth:`register_checks` read the stored rates — sampling once
        per round instead of once per cable keeps a 700-cable fabric cheap
        to monitor."""
        engine.every(interval, lambda: self.sample(engine.now),
                     name="ibmon-sampler")

    def register_checks(self, scheduler: CheckScheduler, *,
                        interval: float = 60.0,
                        hosts: list[str] | None = None) -> None:
        """Per-cable checks flagging sustained symbol-error rates.

        Requires :meth:`attach_sampler` (or manual :meth:`sample` calls) to
        feed the metrics DB; the checks themselves only read rates.
        ``hosts`` restricts the check set (default: every cable).
        """
        self.attach_sampler(scheduler.engine, interval=interval)
        for host in (hosts if hosts is not None else self.fabric.error_counters()):
            def _check(h: str = host) -> tuple[CheckState, str]:
                now = scheduler.engine.now
                rate = self.error_rate(h, now - 5 * interval, now + 1e-9)
                if rate > 10 * self.threshold:
                    return CheckState.CRITICAL, f"{h}: {rate:.1f} sym-err/s"
                if rate > self.threshold:
                    return CheckState.WARNING, f"{h}: {rate:.1f} sym-err/s"
                return CheckState.OK, f"{h}: clean"
            scheduler.register(f"ib:{host}", _check, interval=interval)

    def diagnose_cable(self, host: str) -> dict[str, float | bool]:
        """In-place diagnosis: compare this cable's effective bandwidth to
        the healthy-peer median on the same leaf switch."""
        cable = self.fabric.cable_of(host)
        peers = [
            c for c in self.fabric.cables
            if c.leaf == cable.leaf and c.host != host and c.healthy
        ]
        port_bw = self.fabric.spec.port_bw
        peer_median = float(np.median([c.degradation for c in peers])) if peers else 1.0
        ratio = cable.degradation / peer_median if peer_median else 0.0
        return {
            "host_bw": cable.degradation * port_bw,
            "peer_median_bw": peer_median * port_bw,
            "ratio": ratio,
            "degraded": ratio < 0.9,
            "symbol_errors": float(cable.symbol_errors),
        }
