"""A small in-memory time-series store — the MySQL database behind the
real DDN tool (§IV-A): "This tool polls each controller for various pieces
of information (e.g. I/O request sizes, write and read bandwidths) at
regular rates and stores this information in a MySQL database.
Standardized queries and reports support the efforts of the system
administrators."

Series are keyed by (metric name, source); points append in time order.
The query surface covers what the reporting tools need: ranges, latest
values, rates from counters, and simple aggregation across sources.

Long-lived pollers (the monitoring overlay ticks every series for days of
simulated time) need the store bounded: construct with ``max_points`` to
cap every series.  When a series exceeds the cap, points older than the
protected tail are *compacted* — only window boundaries (first and last
point of each ``compaction_window``) and counter-reset neighbours
survive — and, if still over, the oldest points fall off ring-buffer
style.  Compaction preserves :meth:`MetricsDb.rate` exactly over any
range whose endpoints are window boundaries, because rates depend only on
the range's first/last points and the resets between them, all of which
compaction keeps.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass

import numpy as np

__all__ = ["MetricPoint", "MetricsDb"]


@dataclass(frozen=True)
class MetricPoint:
    """One sample of one series: ``value`` observed at sim-time ``time``."""

    time: float
    value: float


class _Series:
    __slots__ = ("times", "values")

    def __init__(self) -> None:
        self.times: list[float] = []
        self.values: list[float] = []

    def append(self, time: float, value: float) -> None:
        # Equal timestamps are legal: two pollers legitimately sample the
        # same simulated instant (e.g. both started on the engine at t=0
        # with the same interval).  Only true out-of-order inserts reject.
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"out-of-order insert at {time} (last {self.times[-1]})"
            )
        self.times.append(time)
        self.values.append(value)

    def compact(self, max_points: int, window: float | None) -> None:
        """Shrink to at most ``max_points`` points.

        The newest ``max_points // 2`` points are protected verbatim (the
        operator's recent view stays dense).  Older points survive only if
        they are a ``window`` boundary (last point of one window or first
        of the next), a counter-reset neighbour (either side of a negative
        delta), or the head/tail of the compacted region.  If the series
        is still over the cap afterwards, the oldest points drop.
        """
        n = len(self.times)
        if n <= max_points:
            return
        tail_start = n - max(1, max_points // 2)
        if window is not None and tail_start > 2:
            keep = {0, tail_start - 1}
            for i in range(1, tail_start):
                if self.values[i] < self.values[i - 1]:  # counter reset
                    keep.add(i - 1)
                    keep.add(i)
                if math.floor(self.times[i] / window) \
                        != math.floor(self.times[i - 1] / window):
                    keep.add(i - 1)  # last point of the old window
                    keep.add(i)      # first point of the new window
            kept = sorted(keep)
            self.times = [self.times[i] for i in kept] \
                + self.times[tail_start:]
            self.values = [self.values[i] for i in kept] \
                + self.values[tail_start:]
        excess = len(self.times) - max_points
        if excess > 0:
            del self.times[:excess]
            del self.values[:excess]


class MetricsDb:
    """The store: insert points, query ranges, compute counter rates.

    Args:
        max_points: optional per-series retention cap; exceeding it
            triggers compaction (see :meth:`_Series.compact`).  ``None``
            keeps everything — the pre-overlay behaviour.
        compaction_window: downsampling granularity in seconds for the
            compacted (old) region; ``None`` skips the boundary-preserving
            pass and caps ring-buffer style only.
    """

    def __init__(self, *, max_points: int | None = None,
                 compaction_window: float | None = None) -> None:
        if max_points is not None and max_points < 4:
            raise ValueError("max_points must be at least 4")
        if compaction_window is not None and compaction_window <= 0:
            raise ValueError("compaction_window must be positive")
        self.max_points = max_points
        self.compaction_window = compaction_window
        self._series: dict[tuple[str, str], _Series] = {}

    def insert(self, metric: str, source: str, time: float, value: float) -> None:
        key = (metric, source)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _Series()
        series.append(time, float(value))
        if self.max_points is not None and len(series.times) > self.max_points:
            series.compact(self.max_points, self.compaction_window)

    def sources(self, metric: str) -> list[str]:
        return sorted(s for m, s in self._series if m == metric)

    def metrics(self) -> list[str]:
        return sorted({m for m, _s in self._series})

    def _get(self, metric: str, source: str) -> _Series:
        key = (metric, source)
        if key not in self._series:
            raise KeyError(f"no series for {metric!r}/{source!r}")
        return self._series[key]

    def latest(self, metric: str, source: str) -> MetricPoint:
        s = self._get(metric, source)
        if not s.times:
            raise KeyError(f"empty series {metric!r}/{source!r}")
        return MetricPoint(s.times[-1], s.values[-1])

    def range(self, metric: str, source: str,
              t0: float = -np.inf, t1: float = np.inf) -> list[MetricPoint]:
        s = self._get(metric, source)
        lo = bisect.bisect_left(s.times, t0)
        hi = bisect.bisect_right(s.times, t1)
        return [MetricPoint(t, v) for t, v in zip(s.times[lo:hi], s.values[lo:hi])]

    def rate(self, metric: str, source: str,
             t0: float = -np.inf, t1: float = np.inf) -> float:
        """Mean rate of change over the window — turns monotonically
        increasing byte counters into bandwidths.

        Counter resets (a negative delta between consecutive points — a
        rebooted controller restarts its counters at zero) restart the
        measurement window at the reset point instead of producing a
        negative bandwidth.
        """
        points = self.range(metric, source, t0, t1)
        if len(points) < 2:
            return 0.0
        # Restart the window after the most recent counter reset.
        start = 0
        for i in range(1, len(points)):
            if points[i].value < points[i - 1].value:
                start = i
        dt = points[-1].time - points[start].time
        if dt <= 0:
            return 0.0
        return (points[-1].value - points[start].value) / dt

    def ingest_telemetry(self, telemetry, now: float) -> int:
        """Bridge one snapshot of an in-process telemetry registry
        (:class:`repro.obs.instruments.Telemetry`) into the store.

        Both sides key series by (metric, source), so counters and gauges
        land verbatim and histograms expand into ``.count``/``.mean``/
        ``.p50``/``.p99`` sub-series — the shape the DDN-tool-style pollers
        write.  Call it from a periodic engine process to sample in-process
        instruments alongside externally polled metrics.  Returns the
        number of points written.
        """
        return telemetry.publish(self, now)

    def aggregate_latest(self, metric: str) -> float:
        """Sum of latest values across all sources of ``metric``."""
        total = 0.0
        for source in self.sources(metric):
            total += self.latest(metric, source).value
        return total

    def top_sources(self, metric: str, n: int = 5) -> list[tuple[str, float]]:
        """Sources ranked by latest value — the 'who is hammering the
        controllers' operator query."""
        pairs = [(s, self.latest(metric, s).value) for s in self.sources(metric)]
        pairs.sort(key=lambda p: -p[1])
        return pairs[:n]
