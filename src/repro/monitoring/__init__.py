"""The operational monitoring stack of §IV-A (Lesson 8): a Nagios-like
check scheduler with alerting, the Lustre Health Checker (hardware vs
software event correlation), the DDN-tool controller poller with its
metrics database, and the InfiniBand error-counter monitor.
"""

from repro.monitoring.metricsdb import MetricsDb, MetricPoint
from repro.monitoring.checks import CheckScheduler, CheckResult, CheckState, Alert
from repro.monitoring.health import LustreHealthChecker, HealthEvent, EventKind
from repro.monitoring.ddntool import DdnTool
from repro.monitoring.ibmon import IbMonitor

__all__ = [
    "MetricsDb",
    "MetricPoint",
    "CheckScheduler",
    "CheckResult",
    "CheckState",
    "Alert",
    "LustreHealthChecker",
    "HealthEvent",
    "EventKind",
    "DdnTool",
    "IbMonitor",
]
