"""The Lustre Health Checker (§IV-A).

"OLCF developed a utility called Lustre Health Checker that provided
visibility into internal Lustre health events, giving system
administrators a coherent collection of associated errors from a Lustre
failure condition.  Additional utilities were extended to coalesce
physical hardware events on the Lustre servers ...  These two features
allowed system administrators to discriminate between hardware events and
Lustre software issues."

The checker consumes a stream of raw events (hardware: disk/cable/
controller/enclosure; software: Lustre RPC timeouts, evictions, journal
errors) and produces *incidents*: time-windowed groups of correlated
events classified as hardware-rooted, software-rooted, or mixed.  The
classification rule mirrors operational triage: a software symptom within
the correlation window of a hardware event on the same server chain is
attributed to the hardware root cause.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["EventKind", "HealthEvent", "Incident", "LustreHealthChecker"]


class EventKind(enum.Enum):
    """The health-event taxonomy of §IV: hardware faults vs. Lustre
    software symptoms, which drive different response playbooks."""

    # hardware
    DISK_FAILURE = "disk_failure"
    DISK_LATENCY = "disk_latency"
    CABLE_ERRORS = "cable_errors"
    CONTROLLER_FAILOVER = "controller_failover"
    ENCLOSURE_OFFLINE = "enclosure_offline"
    ROUTER_DOWN = "router_down"
    # software
    RPC_TIMEOUT = "rpc_timeout"
    CLIENT_EVICTION = "client_eviction"
    JOURNAL_ERROR = "journal_error"
    LBUG = "lbug"
    OST_FULL = "ost_full"

    @property
    def is_hardware(self) -> bool:
        return self in _HARDWARE


_HARDWARE = {
    EventKind.DISK_FAILURE,
    EventKind.DISK_LATENCY,
    EventKind.CABLE_ERRORS,
    EventKind.CONTROLLER_FAILOVER,
    EventKind.ENCLOSURE_OFFLINE,
    EventKind.ROUTER_DOWN,
}


@dataclass(frozen=True)
class HealthEvent:
    """One raw event from a server, controller, or fabric element."""

    time: float
    kind: EventKind
    host: str  # server/controller the event surfaced on
    detail: str = ""


@dataclass
class Incident:
    """A correlated group of events — what the admin actually triages."""

    events: list[HealthEvent] = field(default_factory=list)

    @property
    def start(self) -> float:
        return min(e.time for e in self.events)

    @property
    def end(self) -> float:
        return max(e.time for e in self.events)

    @property
    def hosts(self) -> set[str]:
        return {e.host for e in self.events}

    @property
    def classification(self) -> str:
        """'hardware', 'software', or 'hardware-rooted' (software symptoms
        correlated with a hardware event)."""
        hw = any(e.kind.is_hardware for e in self.events)
        sw = any(not e.kind.is_hardware for e in self.events)
        if hw and sw:
            return "hardware-rooted"
        return "hardware" if hw else "software"


class LustreHealthChecker:
    """Event ingestion + correlation into incidents."""

    def __init__(self, *, window: float = 120.0) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self.events: list[HealthEvent] = []

    def ingest(self, event: HealthEvent) -> None:
        if self.events and event.time < self.events[-1].time:
            raise ValueError("events must arrive in time order")
        self.events.append(event)

    def incidents(self) -> list[Incident]:
        """Group events into incidents: events join an incident when they
        fall within ``window`` seconds of its last event AND share a host
        chain (same host, or same host prefix before the first '.')."""
        incidents: list[Incident] = []
        for event in self.events:
            placed = False
            for incident in reversed(incidents):
                if event.time - incident.end > self.window:
                    continue
                chain = {h.split(".")[0] for h in incident.hosts}
                if event.host.split(".")[0] in chain:
                    incident.events.append(event)
                    placed = True
                    break
            if not placed:
                incidents.append(Incident(events=[event]))
        return incidents

    def classify_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {"hardware": 0, "software": 0, "hardware-rooted": 0}
        for incident in self.incidents():
            counts[incident.classification] += 1
        return counts
