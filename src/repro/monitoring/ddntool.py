"""DDN tool: the controller poller (§IV-A).

Polls every controller couplet of a Spider system at a fixed rate for its
I/O counters (read/write bytes and request counts, request-size histogram)
and stores them in the :class:`~repro.monitoring.metricsdb.MetricsDb` —
the same shape as the real tool's controller-API → MySQL pipeline.
"""

from __future__ import annotations


from repro.core.spider import SpiderSystem
from repro.monitoring.metricsdb import MetricsDb
from repro.sim.engine import Engine

__all__ = ["DdnTool"]


class DdnTool:
    """Periodic couplet polling into a metrics database."""

    def __init__(
        self,
        system: SpiderSystem,
        db: MetricsDb,
        *,
        poll_interval: float = 60.0,
    ) -> None:
        if poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        self.system = system
        self.db = db
        self.poll_interval = poll_interval
        self.polls = 0

    def poll_once(self, now: float) -> None:
        """One polling round over every couplet."""
        for ssu in self.system.ssus:
            name = ssu.couplet.name
            read_bytes = write_bytes = 0
            read_reqs = write_reqs = 0
            for ctrl in ssu.couplet.controllers:
                read_bytes += ctrl.counters.read_bytes
                write_bytes += ctrl.counters.write_bytes
                read_reqs += ctrl.counters.read_requests
                write_reqs += ctrl.counters.write_requests
            self.db.insert("ctrl.read_bytes", name, now, read_bytes)
            self.db.insert("ctrl.write_bytes", name, now, write_bytes)
            self.db.insert("ctrl.read_requests", name, now, read_reqs)
            self.db.insert("ctrl.write_requests", name, now, write_reqs)
            self.db.insert("ctrl.online", name, now,
                           1.0 if ssu.couplet.online else 0.0)
        self.polls += 1

    def attach(self, engine: Engine) -> None:
        """Run on the simulation engine at the polling rate."""
        engine.every(self.poll_interval, lambda: self.poll_once(engine.now),
                     name="ddntool")

    # -- reports ----------------------------------------------------------------

    def write_bandwidth(self, couplet: str, t0: float, t1: float) -> float:
        """Delivered write bandwidth of one couplet over a window (counter
        difference / time) — the standard admin report."""
        return self.db.rate("ctrl.write_bytes", couplet, t0, t1)

    def busiest_couplets(self, n: int = 5) -> list[tuple[str, float]]:
        return self.db.top_sources("ctrl.write_bytes", n)
