"""Workload generators calibrated to the paper's Spider I characterization
study (§II): 60% write / 40% read request mix, bimodal request sizes
(either under 16 KB or multiples of 1 MB), and Pareto-tailed inter-arrival
and idle times; plus the application-level generators (checkpoint/restart,
analytics, S3D) the center-wide mixed workload is composed from.
"""

from repro.workloads.model import RequestTrace, merge_traces
from repro.workloads.checkpoint import CheckpointApp, checkpoint_trace, restart_trace
from repro.workloads.analytics import AnalyticsApp, analytics_trace
from repro.workloads.mixed import MixedWorkload, spider_mixed_workload
from repro.workloads.s3d import S3DApp
from repro.workloads.replay import ReplayResult, replay_trace, replay_fifo

__all__ = [
    "RequestTrace",
    "merge_traces",
    "CheckpointApp",
    "checkpoint_trace",
    "restart_trace",
    "AnalyticsApp",
    "analytics_trace",
    "MixedWorkload",
    "spider_mixed_workload",
    "S3DApp",
    "ReplayResult",
    "replay_trace",
    "replay_fifo",
]
