"""Data-analytics / visualization workloads: the latency-bound, read-heavy
counterpart of the checkpoint stream (§II).

"the data analytics I/O workloads, such as visualization and analysis, are
latency constrained and read-heavy."

The generator emits reads with Pareto-tailed inter-arrivals (interactive
sessions go quiet, then burst) and the bimodal size mixture: small index /
attribute reads under 16 KB and bulk reads in 1 MiB multiples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.rng import bounded_pareto
from repro.units import MiB

__all__ = ["AnalyticsApp", "analytics_trace"]

from repro.workloads.model import RequestTrace


@dataclass(frozen=True)
class AnalyticsApp:
    """An interactive analysis/visualization session mix."""

    name: str = "analytics"
    request_rate: float = 400.0  # mean requests/second over the session
    small_fraction: float = 0.62  # fraction of requests under 16 KB
    read_fraction: float = 0.92  # analytics is read-heavy but not pure-read
    pareto_alpha: float = 1.4  # inter-arrival tail index (paper: long tail)
    max_large_read: int = 8 * MiB  # bulk reads: 1 MiB .. max_large_read, in MiB steps

    def __post_init__(self) -> None:
        if self.request_rate <= 0:
            raise ValueError("request_rate must be positive")
        for frac in (self.small_fraction, self.read_fraction):
            if not (0 <= frac <= 1):
                raise ValueError("fractions must be in [0, 1]")
        if self.pareto_alpha <= 1.0:
            raise ValueError("pareto_alpha must exceed 1 for a finite mean rate")
        if self.max_large_read < MiB:
            raise ValueError("max_large_read must be >= 1 MiB")


def analytics_trace(
    app: AnalyticsApp,
    duration: float,
    rng: np.random.Generator,
    *,
    start_offset: float = 0.0,
) -> RequestTrace:
    """Generate the session's server-side request trace.

    Inter-arrivals are bounded Pareto scaled so the *mean* arrival rate is
    ``app.request_rate``; the heavy tail produces the long idle periods the
    Spider I study observed.
    """
    if duration <= 0:
        return RequestTrace(np.empty(0), np.empty(0, dtype=np.int64),
                            np.empty(0, dtype=bool), label=app.name)
    n_expected = int(duration * app.request_rate * 1.3) + 16
    # Bounded Pareto on [L, H]: choose L so the mean matches 1/rate.
    alpha = app.pareto_alpha
    upper = 30.0  # cap idle gaps at 30 s
    target_mean = 1.0 / app.request_rate
    # mean of bounded Pareto ≈ alpha/(alpha-1) * L for L << H; solve for L.
    lower = target_mean * (alpha - 1) / alpha
    gaps = np.asarray(bounded_pareto(rng, alpha, lower, upper, size=n_expected))
    times = start_offset + np.cumsum(gaps)
    times = times[times < start_offset + duration]
    n = len(times)

    small = rng.random(n) < app.small_fraction
    sizes = np.empty(n, dtype=np.int64)
    # Small mode: 512 B .. 8 KiB (strictly under the paper's 16 KB line),
    # log-uniform-ish over powers of two.
    exponents = rng.integers(9, 14, size=int(small.sum()))  # 2^9 .. 2^13
    sizes[small] = (1 << exponents).astype(np.int64)
    # Large mode: exact MiB multiples.
    multiples = rng.integers(1, app.max_large_read // MiB + 1,
                             size=int((~small).sum()))
    sizes[~small] = multiples.astype(np.int64) * MiB

    is_write = rng.random(n) >= app.read_fraction
    return RequestTrace(times, sizes, is_write, label=app.name)
