"""S3D: the turbulent-combustion direct numerical solver of §VI-A.

S3D is the paper's libPIO integration case study: an I/O-intensive DNS code
that "periodically outputs the state of the simulation to the scratch file
system" in file-per-process POSIX mode; integrating libPIO took ~30 changed
lines and improved POSIX I/O bandwidth by up to 24% in a noisy production
environment.

The model captures what the placement experiment needs: a rank set spread
over Titan nodes, a periodic output phase of fixed bytes/rank, and a
pluggable OST-selection hook — the 30-line integration surface.  With the
default hook the ranks land on Lustre's round-robin allocation; with the
libPIO hook (:mod:`repro.tools.libpio`) they land on load-balanced targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence


from repro.lustre.client import Client
from repro.units import MiB

__all__ = ["S3DApp"]

OstSelector = Callable[[int, int], tuple[int, ...]]
"""(rank, n_osts_available) -> OST indices for that rank's output file."""


@dataclass
class S3DApp:
    """An S3D run: ranks, their clients, and the output phase shape."""

    n_ranks: int = 4096
    bytes_per_rank: int = 256 * MiB
    output_interval: float = 600.0  # seconds of solver between outputs
    ranks_per_node: int = 16
    name: str = "s3d"

    def __post_init__(self) -> None:
        if self.n_ranks <= 0 or self.bytes_per_rank <= 0:
            raise ValueError("rank geometry must be positive")
        if self.ranks_per_node <= 0:
            raise ValueError("ranks_per_node must be positive")

    @property
    def n_nodes(self) -> int:
        return -(-self.n_ranks // self.ranks_per_node)

    @property
    def output_bytes(self) -> int:
        return self.n_ranks * self.bytes_per_rank

    def assign_clients(self, clients: Sequence[Client]) -> list[Client]:
        """Map ranks to compute nodes (``ranks_per_node`` ranks share one).

        ``clients`` are the scheduler-provided nodes; the run needs
        ``n_nodes`` of them.
        """
        if len(clients) < self.n_nodes:
            raise ValueError(
                f"need {self.n_nodes} nodes, scheduler provided {len(clients)}"
            )
        return [clients[r // self.ranks_per_node] for r in range(self.n_ranks)]

    def output_transfers(
        self,
        clients: Sequence[Client],
        selector: OstSelector,
        n_osts: int,
        *,
        per_rank_demand: float | None = None,
    ):
        """Build the output phase's transfers (one per rank).

        ``selector`` is the 30-line integration point: the default Lustre
        behaviour passes a round-robin selector; libPIO passes its balanced
        placement.  Returns a list of :class:`repro.core.path.Transfer`.
        """
        from repro.core.path import Transfer  # late import; core depends on lustre

        rank_clients = self.assign_clients(clients)
        demand = per_rank_demand
        if demand is None:
            # Node bandwidth split across co-located ranks.
            demand = rank_clients[0].bw_cap / self.ranks_per_node
        transfers = []
        for rank in range(self.n_ranks):
            osts = selector(rank, n_osts)
            transfers.append(
                Transfer(
                    name=f"{self.name}.r{rank:05d}",
                    client=rank_clients[rank],
                    ost_indices=tuple(osts),
                    demand=demand,
                    write=True,
                )
            )
        return transfers

    @staticmethod
    def round_robin_selector(stripe_count: int = 1, offset: int = 0) -> OstSelector:
        """Lustre's default allocation: rank r -> OSTs [r, r+1, ...] mod n."""
        def _select(rank: int, n_osts: int) -> tuple[int, ...]:
            return tuple((offset + rank + i) % n_osts for i in range(stripe_count))
        return _select
