"""Request traces: the common currency of the workload layer.

A :class:`RequestTrace` is a struct-of-arrays record of I/O requests as the
*servers* see them — the same vantage point as the paper's Spider I study
[14] and the IOSI tool (§VI-B), both of which work from server-side logs.

Arrays (all equal length, sorted by time):

* ``times`` — arrival timestamps, seconds;
* ``sizes`` — request sizes, bytes;
* ``is_write`` — boolean;
* ``source`` — small-int id of the generating application/resource.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.units import KiB, MiB

__all__ = ["RequestTrace", "merge_traces", "SMALL_REQUEST_CEILING"]

#: the paper's "small" request threshold: under 16 KB
SMALL_REQUEST_CEILING = 16 * KiB


@dataclass
class RequestTrace:
    """A server-side I/O request log."""

    times: np.ndarray
    sizes: np.ndarray
    is_write: np.ndarray
    source: np.ndarray | None = None
    label: str = ""

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, dtype=float)
        self.sizes = np.asarray(self.sizes, dtype=np.int64)
        self.is_write = np.asarray(self.is_write, dtype=bool)
        n = len(self.times)
        if len(self.sizes) != n or len(self.is_write) != n:
            raise ValueError("trace arrays must have equal length")
        if self.source is None:
            self.source = np.zeros(n, dtype=np.int32)
        else:
            self.source = np.asarray(self.source, dtype=np.int32)
            if len(self.source) != n:
                raise ValueError("trace arrays must have equal length")
        if n and np.any(np.diff(self.times) < 0):
            order = np.argsort(self.times, kind="stable")
            self.times = self.times[order]
            self.sizes = self.sizes[order]
            self.is_write = self.is_write[order]
            self.source = self.source[order]
        if n and self.sizes.min() < 0:
            raise ValueError("request sizes must be non-negative")

    def __len__(self) -> int:
        return len(self.times)

    @property
    def duration(self) -> float:
        if len(self) == 0:
            return 0.0
        return float(self.times[-1] - self.times[0])

    @property
    def total_bytes(self) -> int:
        return int(self.sizes.sum())

    # -- the paper's headline statistics ------------------------------------------

    def write_fraction_requests(self) -> float:
        """Fraction of *requests* that are writes (paper: ≈0.60)."""
        if len(self) == 0:
            return 0.0
        return float(self.is_write.mean())

    def write_fraction_bytes(self) -> float:
        if self.total_bytes == 0:
            return 0.0
        return float(self.sizes[self.is_write].sum() / self.total_bytes)

    def small_fraction(self) -> float:
        """Fraction of requests under 16 KB."""
        if len(self) == 0:
            return 0.0
        return float((self.sizes < SMALL_REQUEST_CEILING).mean())

    def megabyte_multiple_fraction(self) -> float:
        """Fraction of requests that are exact multiples of 1 MiB."""
        if len(self) == 0:
            return 0.0
        return float(((self.sizes % MiB == 0) & (self.sizes > 0)).mean())

    def interarrival_times(self) -> np.ndarray:
        if len(self) < 2:
            return np.empty(0)
        return np.diff(self.times)

    def idle_times(self, busy_window: float = 0.01) -> np.ndarray:
        """Gaps longer than ``busy_window`` — the study's idle periods."""
        gaps = self.interarrival_times()
        return gaps[gaps > busy_window]

    # -- windowed views --------------------------------------------------------------

    def bandwidth_series(self, bin_seconds: float = 1.0,
                         writes_only: bool = False) -> tuple[np.ndarray, np.ndarray]:
        """(bin start times, bytes/s per bin) — the server throughput log
        IOSI consumes."""
        if bin_seconds <= 0:
            raise ValueError("bin_seconds must be positive")
        if len(self) == 0:
            return np.empty(0), np.empty(0)
        t0, t1 = self.times[0], self.times[-1]
        n_bins = max(1, int(np.ceil((t1 - t0) / bin_seconds)) + 1)
        edges = t0 + np.arange(n_bins + 1) * bin_seconds
        mask = self.is_write if writes_only else np.ones(len(self), dtype=bool)
        hist, _ = np.histogram(self.times[mask], bins=edges,
                               weights=self.sizes[mask].astype(float))
        return edges[:-1], hist / bin_seconds

    def slice(self, t_start: float, t_end: float) -> "RequestTrace":
        mask = (self.times >= t_start) & (self.times < t_end)
        return RequestTrace(
            self.times[mask], self.sizes[mask], self.is_write[mask],
            self.source[mask], label=self.label,
        )


def merge_traces(traces: list[RequestTrace], label: str = "mixed") -> RequestTrace:
    """Interleave several traces into one server-side view — the center-wide
    mixed workload the paper insists designs be evaluated against ("A shared
    scratch file system experiences these I/O workloads as a mix, not as
    independent streams", §II)."""
    traces = [t for t in traces if len(t)]
    if not traces:
        return RequestTrace(np.empty(0), np.empty(0, dtype=np.int64),
                            np.empty(0, dtype=bool), label=label)
    times = np.concatenate([t.times for t in traces])
    sizes = np.concatenate([t.sizes for t in traces])
    is_write = np.concatenate([t.is_write for t in traces])
    source = np.concatenate([
        np.full(len(t), i, dtype=np.int32) for i, t in enumerate(traces)
    ])
    order = np.argsort(times, kind="stable")
    return RequestTrace(times[order], sizes[order], is_write[order],
                        source[order], label=label)
