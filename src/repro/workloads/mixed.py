"""The center-wide mixed workload.

§II's central design point: the shared file system never sees the clean
per-machine streams — it sees their interleaving.  "Our analysis of the I/O
workloads on Spider I PFS demonstrated a mix of 60% write and 40% read I/O
requests", sizes bimodal (<16 KB or 1 MB multiples), Pareto-tailed
inter-arrival and idle times.

:class:`MixedWorkload` composes application streams into one server-side
trace; :func:`spider_mixed_workload` calibrates the composition so the
aggregate reproduces the published 60/40 mix — the calibration target of
experiment E3.
"""

from __future__ import annotations

from dataclasses import dataclass, field


from repro.sim.rng import RngStreams
from repro.units import GB, HOUR, MiB
from repro.workloads.analytics import AnalyticsApp, analytics_trace
from repro.workloads.checkpoint import CheckpointApp, checkpoint_trace
from repro.workloads.model import RequestTrace, merge_traces

__all__ = ["MixedWorkload", "spider_mixed_workload"]


@dataclass
class MixedWorkload:
    """A composition of checkpoint and analytics applications."""

    checkpoint_apps: list[CheckpointApp] = field(default_factory=list)
    analytics_apps: list[AnalyticsApp] = field(default_factory=list)
    label: str = "mixed"

    def generate(self, duration: float, rng: RngStreams) -> RequestTrace:
        """The merged server-side trace over ``duration`` seconds."""
        traces: list[RequestTrace] = []
        for i, app in enumerate(self.checkpoint_apps):
            gen = rng.get(f"ckpt:{app.name}:{i}")
            # Stagger checkpoint phases so bursts do not align artificially.
            offset = float(gen.random() * app.interval)
            traces.append(checkpoint_trace(app, duration, gen, start_offset=offset))
        for i, app in enumerate(self.analytics_apps):
            gen = rng.get(f"ana:{app.name}:{i}")
            traces.append(analytics_trace(app, duration, gen))
        return merge_traces(traces, label=self.label)


def spider_mixed_workload(
    duration: float = 4 * HOUR,
    *,
    seed: int = 14,
    target_write_fraction: float = 0.60,
) -> tuple[MixedWorkload, RequestTrace]:
    """The calibrated Spider I-like mix: returns (workload, trace).

    Two passes: generate the checkpoint side, count its requests, then size
    the analytics request rate so the aggregate request mix hits the target
    write fraction (checkpoints are ~pure writes; analytics carries a small
    write minority ``wa``), using  A = C·(1-w)/(w-wa).
    """
    if not (0 < target_write_fraction < 1):
        raise ValueError("target_write_fraction must be in (0, 1)")
    rng = RngStreams(seed)
    ckpt_apps = [
        CheckpointApp(name="gyro", n_procs=4096, bytes_per_proc=1 * GB,
                      interval=HOUR, aggregate_bandwidth=150 * GB),
        CheckpointApp(name="s3d", n_procs=8192, bytes_per_proc=512 * MiB,
                      interval=1800.0, aggregate_bandwidth=180 * GB),
        CheckpointApp(name="chimera", n_procs=2048, bytes_per_proc=2 * GB,
                      interval=5400.0, aggregate_bandwidth=120 * GB),
    ]
    # Generate the checkpoint side once and keep the traces, so the
    # analytics calibration below is exact for the returned trace.
    ckpt_traces: list[RequestTrace] = []
    for i, app in enumerate(ckpt_apps):
        gen = rng.get(f"ckpt:{app.name}:{i}")
        offset = float(gen.random() * app.interval)
        ckpt_traces.append(checkpoint_trace(app, duration, gen, start_offset=offset))
    n_ckpt = sum(len(t) for t in ckpt_traces)

    wa = 0.08  # analytics write minority
    w = target_write_fraction
    n_analytics = int(n_ckpt * (1 - w) / (w - wa))
    base = AnalyticsApp()
    n_apps = 4
    rate = max(1e-3, n_analytics / duration / n_apps)
    ana_apps = [
        AnalyticsApp(name=f"viz{i}", request_rate=rate,
                     read_fraction=1 - wa,
                     small_fraction=base.small_fraction)
        for i in range(n_apps)
    ]
    ana_traces = [
        analytics_trace(app, duration, rng.get(f"ana:{app.name}:{i}"))
        for i, app in enumerate(ana_apps)
    ]
    workload = MixedWorkload(checkpoint_apps=ckpt_apps,
                             analytics_apps=ana_apps, label="spider-mix")
    trace = merge_traces(ckpt_traces + ana_traces, label="spider-mix")
    return workload, trace
