"""Checkpoint/restart workloads: the bandwidth-bound write bursts of §II.

"These write-heavy checkpoint/restart workloads can create tens or even
hundreds of thousands of files and generate many terabytes of data in a
single checkpoint."

The generator models an application of ``n_procs`` ranks checkpointing a
fixed fraction of its memory footprint every ``interval`` seconds in
file-per-process mode: each burst emits one file per rank, written as
1 MiB-multiple requests (the large mode of the bimodal size distribution),
plus a sprinkle of small metadata/header writes (the small mode).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.units import GB, HOUR, KiB, MiB

__all__ = ["CheckpointApp", "checkpoint_trace", "restart_trace", "time_to_restart", "time_to_checkpoint"]

from repro.workloads.model import RequestTrace


@dataclass(frozen=True)
class CheckpointApp:
    """A periodically checkpointing simulation."""

    name: str = "ckpt-app"
    n_procs: int = 8192
    bytes_per_proc: int = 2 * GB  # state written per rank per checkpoint
    interval: float = HOUR  # seconds between checkpoint starts
    write_request_size: int = 1 * MiB
    header_bytes: int = 8 * KiB  # small header/metadata write per file
    aggregate_bandwidth: float = 200 * GB  # delivered during the burst

    def __post_init__(self) -> None:
        if self.n_procs <= 0 or self.bytes_per_proc <= 0:
            raise ValueError("app dimensions must be positive")
        if self.interval <= 0 or self.aggregate_bandwidth <= 0:
            raise ValueError("interval and bandwidth must be positive")
        if self.write_request_size % MiB != 0:
            raise ValueError("checkpoint writes are 1 MiB multiples (paper workload study)")

    @property
    def checkpoint_bytes(self) -> int:
        return self.n_procs * self.bytes_per_proc

    @property
    def burst_duration(self) -> float:
        return self.checkpoint_bytes / self.aggregate_bandwidth


def checkpoint_trace(
    app: CheckpointApp,
    duration: float,
    rng: np.random.Generator,
    *,
    start_offset: float = 0.0,
    max_requests_per_burst: int = 200_000,
) -> RequestTrace:
    """Server-side request trace of ``app`` over ``duration`` seconds.

    Requests within a burst arrive uniformly over the burst window (the
    servers see the aggregate stream, already interleaved across ranks),
    with sizes at the app's request size; each rank also contributes one
    small header write per burst.  If a burst would exceed
    ``max_requests_per_burst`` data requests, request sizes are coarsened
    (multiple MiB per request) to keep traces tractable — preserving byte
    volume and the MiB-multiple property.
    """
    times_parts: list[np.ndarray] = []
    sizes_parts: list[np.ndarray] = []
    t = start_offset % app.interval
    while t < duration:
        burst_len = min(app.burst_duration, max(duration - t, 1e-3))
        n_data = app.checkpoint_bytes // app.write_request_size
        req_size = app.write_request_size
        if n_data > max_requests_per_burst:
            factor = int(np.ceil(n_data / max_requests_per_burst))
            req_size = app.write_request_size * factor
            n_data = max(1, app.checkpoint_bytes // req_size)
        data_times = t + rng.random(int(n_data)) * burst_len
        header_times = t + rng.random(app.n_procs) * min(burst_len, 2.0)
        times_parts.append(np.concatenate([data_times, header_times]))
        sizes_parts.append(np.concatenate([
            np.full(int(n_data), req_size, dtype=np.int64),
            np.full(app.n_procs, app.header_bytes, dtype=np.int64),
        ]))
        t += app.interval
    if not times_parts:
        return RequestTrace(np.empty(0), np.empty(0, dtype=np.int64),
                            np.empty(0, dtype=bool), label=app.name)
    times = np.concatenate(times_parts)
    sizes = np.concatenate(sizes_parts)
    return RequestTrace(times, sizes, np.ones(len(times), dtype=bool),
                        label=app.name)


def restart_trace(
    app: CheckpointApp,
    rng: np.random.Generator,
    *,
    start: float = 0.0,
    max_requests: int = 200_000,
) -> RequestTrace:
    """The read half of checkpoint/restart: after an application failure,
    every rank reads its last checkpoint back at full parallelism.

    The servers see one dense *read* burst of the full checkpoint volume —
    the "data production/consumption rate" mismatch of §II from the other
    direction.  Requests are 1 MiB multiples plus the per-rank header read.
    """
    read_duration = app.checkpoint_bytes / app.aggregate_bandwidth
    n_data = app.checkpoint_bytes // app.write_request_size
    req_size = app.write_request_size
    if n_data > max_requests:
        factor = int(np.ceil(n_data / max_requests))
        req_size = app.write_request_size * factor
        n_data = max(1, app.checkpoint_bytes // req_size)
    data_times = start + rng.random(int(n_data)) * read_duration
    header_times = start + rng.random(app.n_procs) * min(read_duration, 2.0)
    times = np.concatenate([data_times, header_times])
    sizes = np.concatenate([
        np.full(int(n_data), req_size, dtype=np.int64),
        np.full(app.n_procs, app.header_bytes, dtype=np.int64),
    ])
    return RequestTrace(times, sizes, np.zeros(len(times), dtype=bool),
                        label=f"{app.name}-restart")


def time_to_restart(app: CheckpointApp, delivered_read_bandwidth: float) -> float:
    """Wall-clock to read one full checkpoint back at the delivered rate."""
    if delivered_read_bandwidth <= 0:
        raise ValueError("delivered_read_bandwidth must be positive")
    return app.checkpoint_bytes / delivered_read_bandwidth


def time_to_checkpoint(
    memory_bytes: int,
    fraction: float,
    delivered_bandwidth: float,
) -> float:
    """Seconds to checkpoint ``fraction`` of ``memory_bytes`` at the
    delivered file-system bandwidth — the §III-A design equation
    ("checkpoint 75% of Titan's memory in 6 minutes" ⇒ 1 TB/s)."""
    if not (0 < fraction <= 1):
        raise ValueError("fraction must be in (0, 1]")
    if memory_bytes <= 0 or delivered_bandwidth <= 0:
        raise ValueError("memory and bandwidth must be positive")
    return memory_bytes * fraction / delivered_bandwidth
