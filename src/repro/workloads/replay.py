"""Queueing replay: turn a request trace into per-request latencies.

§II's qualitative claim — "competing workloads can significantly impact
application runtime of simulations or the responsiveness of interactive
analysis workloads" — is about *latency*, which the steady-state flow
solver cannot see.  This module replays a server-side trace through a
FIFO service station and returns each request's sojourn time, so the
interference analysis (:mod:`repro.analysis.interference`) can quantify
what a checkpoint burst does to analytics response times.

Two service models:

* :func:`replay_fifo` — a ``c``-server FIFO station (an OSS/OST service
  pipe with ``c`` concurrent I/O threads), exact event-driven replay via
  a heap of server-free times (the multi-server Lindley recursion);
* :func:`service_times_for` — maps request sizes to service times using
  the disk-model law (per-request positioning cost + size/bandwidth).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.workloads.model import RequestTrace

__all__ = ["ReplayResult", "service_times_for", "replay_fifo", "replay_trace"]


@dataclass(frozen=True)
class ReplayResult:
    """Per-request latency outcome of a replay."""

    latencies: np.ndarray  # sojourn times (wait + service), seconds
    waits: np.ndarray
    is_write: np.ndarray
    source: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.latencies)
        if not (len(self.waits) == len(self.is_write) == len(self.source) == n):
            raise ValueError("replay arrays must align")

    def percentile(self, q: float, *, reads_only: bool = False,
                   source: int | None = None) -> float:
        return self.percentiles([q], reads_only=reads_only,
                                source=source)[0]

    def percentiles(self, qs: list[float], *, reads_only: bool = False,
                    source: int | None = None) -> list[float]:
        """Several percentiles of one filtered selection.

        One mask build and one selection pass serve every requested
        ``q`` — callers wanting p50 and p99 of the same slice should use
        this instead of two :meth:`percentile` calls.
        """
        mask = np.ones(len(self.latencies), dtype=bool)
        if reads_only:
            mask &= ~self.is_write
        if source is not None:
            mask &= self.source == source
        if not mask.any():
            raise ValueError("no requests match the filter")
        return [float(v) for v in np.percentile(self.latencies[mask], qs)]

    def mean(self, *, reads_only: bool = False,
             source: int | None = None) -> float:
        mask = np.ones(len(self.latencies), dtype=bool)
        if reads_only:
            mask &= ~self.is_write
        if source is not None:
            mask &= self.source == source
        if not mask.any():
            raise ValueError("no requests match the filter")
        return float(self.latencies[mask].mean())

    @property
    def utilization_proxy(self) -> float:
        """Mean wait / mean latency — 0 for an idle station, → 1 saturated."""
        total = self.latencies.mean()
        return float(self.waits.mean() / total) if total > 0 else 0.0


def service_times_for(
    sizes: np.ndarray,
    *,
    bandwidth: float,
    positioning_time: float = 0.004,
) -> np.ndarray:
    """Per-request service times: positioning cost + transfer time.

    ``bandwidth`` is the station's streaming rate (e.g. one OST's fs-level
    bandwidth); ``positioning_time`` the per-request fixed cost (seek +
    RPC handling) — small requests are latency-bound, large ones
    bandwidth-bound, matching the bimodal workload's behaviour.
    """
    if bandwidth <= 0:
        raise ValueError("bandwidth must be positive")
    if positioning_time < 0:
        raise ValueError("positioning_time must be non-negative")
    sizes = np.asarray(sizes, dtype=float)
    return positioning_time + sizes / bandwidth


def replay_fifo(
    arrival_times: np.ndarray,
    service_times: np.ndarray,
    *,
    n_servers: int = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """Exact FIFO replay through ``n_servers`` identical servers.

    Returns (waits, latencies).  Requests start in arrival order on the
    earliest-free server (work-conserving FIFO).
    """
    if n_servers < 1:
        raise ValueError("n_servers must be >= 1")
    arrival_times = np.asarray(arrival_times, dtype=float)
    service_times = np.asarray(service_times, dtype=float)
    if arrival_times.shape != service_times.shape:
        raise ValueError("arrivals and services must align")
    if len(arrival_times) and np.any(np.diff(arrival_times) < 0):
        raise ValueError("arrival_times must be sorted")
    n = len(arrival_times)
    # Plain-python lists in the hot loop: scalar indexing into numpy
    # arrays costs several times a list index, and traces run to 10^5
    # requests.
    arrivals = arrival_times.tolist()
    services = service_times.tolist()
    waits = [0.0] * n
    free_at = [0.0] * n_servers  # min-heap of server-free times
    heapq.heapify(free_at)
    replace = heapq.heapreplace
    for i, arrival in enumerate(arrivals):
        earliest = free_at[0]  # peek: the earliest-free server
        if earliest > arrival:
            waits[i] = earliest - arrival
            replace(free_at, earliest + services[i])
        else:
            replace(free_at, arrival + services[i])
    waits_arr = np.asarray(waits)
    return waits_arr, waits_arr + service_times


def replay_trace(
    trace: RequestTrace,
    *,
    bandwidth: float,
    n_servers: int = 1,
    positioning_time: float = 0.004,
) -> ReplayResult:
    """Replay a whole trace through one station."""
    service = service_times_for(trace.sizes, bandwidth=bandwidth,
                                positioning_time=positioning_time)
    waits, latencies = replay_fifo(trace.times, service, n_servers=n_servers)
    return ReplayResult(
        latencies=latencies,
        waits=waits,
        is_write=trace.is_write.copy(),
        source=trace.source.copy(),
    )
