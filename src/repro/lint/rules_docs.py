"""Public-API documentation rule.

A module's ``__all__`` is its published surface — the names README and
DESIGN point users at.  Every function or class exported there carries a
docstring stating its contract (units of its arguments included; that is
where the bytes/seconds convention is written down).  The rule checks
only ``__all__``-listed definitions: private helpers stay free to be
terse.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.registry import Rule, register
from repro.lint.runner import FileContext

__all__ = ["ApiDocstringRule"]


def _declared_all(tree: ast.Module) -> set[str]:
    """String entries of a module-level ``__all__ = [...]`` assignment."""
    names: set[str] = set()
    for stmt in tree.body:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
        if not any(isinstance(t, ast.Name) and t.id == "__all__"
                   for t in targets):
            continue
        value = stmt.value if isinstance(stmt, ast.Assign) else stmt.value
        if isinstance(value, (ast.List, ast.Tuple)):
            for elt in value.elts:
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                    names.add(elt.value)
    return names


@register
class ApiDocstringRule(Rule):
    """Exported definitions document their contract."""

    rule_id = "api-docstring"
    summary = ("every function/class named in a module's __all__ has a "
               "docstring")
    invariant = ("the published API is self-describing: units and "
                 "contracts live on the definition, not in tribal "
                 "knowledge")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        exported = _declared_all(ctx.tree)
        if not exported:
            return
        for stmt in ctx.tree.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                continue
            if stmt.name in exported and ast.get_docstring(stmt) is None:
                kind = "class" if isinstance(stmt, ast.ClassDef) else "function"
                yield self.finding(
                    ctx, stmt,
                    f"exported {kind} {stmt.name!r} (in __all__) has no "
                    f"docstring")
