"""Determinism rules: no hidden entropy, no order-unstable iteration.

The repo's reproducibility contract is that one seed fully determines
every result (same-seed ``==``-equality is asserted by the test suite for
campaigns, benchmarks, and telemetry-on/off pairs).  Two things break
that contract silently:

* **hidden entropy** — wall-clock reads, the stdlib ``random`` module,
  and ad-hoc ``numpy.random`` constructors that bypass the named
  substream derivation in :class:`repro.sim.rng.RngStreams` (the stream
  independence idiom: changing one component's draw count must not
  perturb another's);
* **order-unstable iteration** — ``set``/``frozenset`` iteration order
  varies with insertion history and hash seeding, and directory listings
  come back in filesystem order; feeding either into event scheduling or
  reported sequences makes runs machine-dependent.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.registry import Rule, register
from repro.lint.runner import FileContext

__all__ = ["DeterminismRule", "IterOrderRule", "WALL_CLOCK_CALLS"]

#: modules whose import anywhere outside repro/sim/rng.py is a finding
_BANNED_MODULES = {
    "random": "stdlib random is unseedable per-stream; draw from a "
              "numpy Generator handed in by the caller or from "
              "RngStreams.get(name)",
    "time": "wall-clock reads make runs non-reproducible; simulations "
            "must use Engine.now (sim time)",
    "datetime": "wall-clock dates make runs non-reproducible; pass "
                "timestamps in as floats (seconds)",
}

#: fully-expanded call names that read wall-clock or sleep on it
WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.sleep",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: numpy.random attributes that are fine outside repro/sim/rng.py —
#: deterministic seed plumbing and type names, not entropy sources
_ALLOWED_NUMPY_RANDOM = frozenset({
    "SeedSequence", "Generator", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})

#: the one module allowed to construct generators ad hoc
_RNG_MODULE = "repro/sim/rng.py"


@register
class DeterminismRule(Rule):
    """Forbid hidden entropy sources outside the seeded-RNG module."""

    rule_id = "determinism"
    summary = ("no stdlib random/time/datetime and no ad-hoc numpy.random "
               "constructors outside repro/sim/rng.py")
    invariant = ("one seed fully determines every result: stochastic code "
                 "takes a numpy Generator parameter or draws from a named "
                 "RngStreams substream")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.in_module(_RNG_MODULE):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.partition(".")[0]
                    if root in _BANNED_MODULES:
                        yield self.finding(
                            ctx, node,
                            f"import of {root!r}: {_BANNED_MODULES[root]}")
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                root = node.module.partition(".")[0]
                if root in _BANNED_MODULES:
                    yield self.finding(
                        ctx, node,
                        f"import from {root!r}: {_BANNED_MODULES[root]}")
                elif node.module in ("numpy.random", "numpy"):
                    for alias in node.names:
                        name = alias.name
                        banned = (
                            node.module == "numpy.random"
                            and name not in _ALLOWED_NUMPY_RANDOM
                        ) or (node.module == "numpy" and name == "random")
                        if banned:
                            yield self.finding(
                                ctx, node,
                                f"import of numpy.random.{name}: construct "
                                f"generators only in repro/sim/rng.py; take a "
                                f"Generator parameter or use "
                                f"RngStreams.get(name)")
            elif isinstance(node, ast.Call):
                dotted = ctx.dotted_name(node.func)
                if dotted is None:
                    continue
                if dotted in WALL_CLOCK_CALLS:
                    yield self.finding(
                        ctx, node,
                        f"wall-clock call {dotted}(): results must depend "
                        f"only on the seed; use sim time (Engine.now)")
                elif dotted.startswith("numpy.random."):
                    attr = dotted.rsplit(".", 1)[1]
                    if attr not in _ALLOWED_NUMPY_RANDOM:
                        yield self.finding(
                            ctx, node,
                            f"ad-hoc {dotted}(): bypasses the stream-"
                            f"independence idiom; take a numpy Generator "
                            f"parameter or use RngStreams.get(name)")


#: directory-listing callables whose result order is filesystem-dependent
_FS_ORDER_CALLS = frozenset({"os.listdir", "os.scandir",
                             "glob.glob", "glob.iglob"})
_FS_ORDER_METHODS = frozenset({"iterdir", "glob", "rglob", "scandir"})


def _is_set_expr(node: ast.AST, ctx: FileContext) -> bool:
    """Syntactically-certain set expressions (literal, comprehension,
    set()/frozenset() call).  Variables that merely *hold* sets are out of
    reach for a static check and are not flagged."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return ctx.dotted_name(node.func) in ("set", "frozenset")
    return False


def _is_fs_listing(node: ast.AST, ctx: FileContext) -> bool:
    if not isinstance(node, ast.Call):
        return False
    dotted = ctx.dotted_name(node.func)
    if dotted in _FS_ORDER_CALLS:
        return True
    return (isinstance(node.func, ast.Attribute)
            and node.func.attr in _FS_ORDER_METHODS)


def _sorted_wrapped(node: ast.AST, ctx: FileContext) -> bool:
    """True when ``node`` is an argument of a ``sorted(...)`` call."""
    parent = ctx.parent(node)
    return (isinstance(parent, ast.Call)
            and ctx.dotted_name(parent.func) == "sorted"
            and node in parent.args)


@register
class IterOrderRule(Rule):
    """Flag iteration whose order is hash- or filesystem-dependent."""

    rule_id = "iter-order"
    summary = ("no iterating sets/frozensets or unsorted directory "
               "listings; wrap in sorted(...)")
    invariant = ("event and report ordering is identical on every machine "
                 "and run: unordered collections are sorted before "
                 "iteration")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        iter_exprs: list[ast.AST] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For):
                iter_exprs.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iter_exprs.extend(gen.iter for gen in node.generators)
        flagged: set[int] = set()
        for expr in iter_exprs:
            if _is_set_expr(expr, ctx):
                flagged.add(id(expr))
                yield self.finding(
                    ctx, expr,
                    "iteration over a set/frozenset: order is hash- and "
                    "history-dependent; iterate sorted(...) instead")
        for node in ast.walk(ctx.tree):
            if (id(node) not in flagged and _is_fs_listing(node, ctx)
                    and not _sorted_wrapped(node, ctx)):
                yield self.finding(
                    ctx, node,
                    "directory listing without sorted(...): result order "
                    "is filesystem-dependent")
