"""Units-discipline rules: no magic unit literals, no off-convention names.

Everything in this package works in **bytes** and **seconds** internally
(see :mod:`repro.units`) — the discipline behind the paper's "1 TB/s"
claim surviving vendor-decimal vs binary-request-size ambiguity.  Two
drift modes erode it:

* **magic literals** — ``1e9``, ``1 << 20``, ``3600`` scattered through
  arithmetic re-encode unit knowledge the constants in ``repro.units``
  already own, and each re-encoding is a chance to get it wrong;
* **off-convention names** — a parameter called ``timeout_ms`` or
  ``size_mb`` smuggles a scaled unit through an API whose contract is
  bytes/seconds, so every caller must remember a conversion the type
  system cannot see.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.registry import Rule, register
from repro.lint.runner import FileContext

__all__ = ["MagicUnitRule", "UnitSuffixRule"]

#: literal values that duplicate a repro.units constant
_LITERALS = {
    10 ** 6: "MB", 10 ** 9: "GB", 10 ** 12: "TB", 10 ** 15: "PB",
    3600: "HOUR", 86400: "DAY",
}

#: left-shift amounts that spell binary unit constants
_SHIFTS = {10: "KiB", 20: "MiB", 30: "GiB", 40: "TiB"}

#: multiplication operands that scale another unit (1000 * GB == TB)
_SCALERS = {1000: "the next decimal prefix (1000 * GB is TB)",
            1024: "KiB/MiB/... (48 * 1024 is 48 * KiB)"}

_UNITS_MODULE = "repro/units.py"


def _constant_style(name: str) -> bool:
    """``_CALL_OVERHEAD_BYTES`` / ``REWRITE_EFFICIENCY``-style names."""
    stripped = name.lstrip("_")
    return bool(stripped) and stripped.isupper()


def _named_constant_subtrees(tree: ast.Module) -> set[int]:
    """Node ids inside module-level ``NAME = <expr>`` constant definitions.

    Giving a magic number a name *is* the fix this rule asks for, so the
    right-hand side of a constant-style module-level assignment is exempt
    (that is exactly how ``repro.units`` itself is written).
    """
    exempt: set[int] = set()
    for stmt in tree.body:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
        else:
            continue
        if all(isinstance(t, ast.Name) and _constant_style(t.id)
               for t in targets):
            for sub in ast.walk(stmt):
                exempt.add(id(sub))
    return exempt


def _is_number(node: ast.AST) -> bool:
    return (isinstance(node, ast.Constant)
            and isinstance(node.value, (int, float))
            and not isinstance(node.value, bool))


@register
class MagicUnitRule(Rule):
    """Flag numeric literals that re-encode a ``repro.units`` constant."""

    rule_id = "magic-unit"
    summary = ("no 1e9 / 1 << 20 / 1024**k / 3600-style literals where "
               "repro.units constants exist")
    invariant = ("unit arithmetic flows through repro.units (bytes and "
                 "seconds internally; conversion only at the reporting "
                 "boundary)")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.in_module(_UNITS_MODULE):
            return
        exempt = _named_constant_subtrees(ctx.tree)
        for node in ast.walk(ctx.tree):
            if id(node) in exempt:
                continue
            if _is_number(node):
                value = node.value
                if value in _LITERALS:
                    yield self.finding(
                        ctx, node,
                        f"magic unit literal {value!r}: use "
                        f"repro.units.{_LITERALS[value]}")
                    continue
                parent = ctx.parent(node)
                if (value in _SCALERS and isinstance(parent, ast.BinOp)
                        and isinstance(parent.op, ast.Mult)):
                    yield self.finding(
                        ctx, node,
                        f"magic unit factor {value!r} in multiplication: "
                        f"use {_SCALERS[value]}")
            elif isinstance(node, ast.BinOp):
                if (isinstance(node.op, ast.Pow)
                        and _is_number(node.left) and _is_number(node.right)
                        and node.left.value in (10, 1000, 1024)):
                    # 1000**k / 1024**k always spell a unit; 10**k only
                    # when it lands on one (10**9 = GB, but 10**4 is fine).
                    spelled = (node.left.value != 10
                               or node.right.value in (6, 9, 12, 15))
                    if spelled:
                        yield self.finding(
                            ctx, node,
                            f"magic unit power {node.left.value}**"
                            f"{node.right.value}: use the repro.units "
                            f"constant")
                        continue
                elif (isinstance(node.op, ast.LShift)
                      and _is_number(node.left) and _is_number(node.right)
                      and node.left.value == 1
                      and node.right.value in _SHIFTS):
                    yield self.finding(
                        ctx, node,
                        f"magic unit shift 1 << {node.right.value}: use "
                        f"repro.units.{_SHIFTS[node.right.value]}")


#: name suffixes that contradict the bytes/seconds internal convention
_BAD_SUFFIXES = {
    "_kb": "bytes", "_mb": "bytes", "_gb": "bytes", "_tb": "bytes",
    "_pb": "bytes", "_kib": "bytes", "_mib": "bytes", "_gib": "bytes",
    "_tib": "bytes",
    "_ms": "seconds", "_us": "seconds", "_ns": "seconds",
    "_kbps": "bytes/s", "_mbps": "bytes/s", "_gbps": "bytes/s",
}
_CANONICAL = {"bytes": "'_bytes'", "seconds": "'_s'/'_seconds'",
              "bytes/s": "'_bps' (bytes per second)"}


def _bad_suffix(name: str) -> str | None:
    lowered = name.lower()
    for suffix, dimension in _BAD_SUFFIXES.items():
        if lowered.endswith(suffix):
            return dimension
    return None


@register
class UnitSuffixRule(Rule):
    """Flag parameters/fields named with scaled-unit suffixes."""

    rule_id = "unit-suffix"
    summary = ("no _mb/_gb/_ms/_gbps-style parameter or field names; "
               "canonical units are _bytes, _s, _bps")
    invariant = ("every quantity crossing a public API is bytes, seconds, "
                 "or bytes/s — the name says so, and no caller converts")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = (node.args.posonlyargs + node.args.args
                        + node.args.kwonlyargs)
                for arg in args:
                    dim = _bad_suffix(arg.arg)
                    if dim is not None:
                        yield self.finding(
                            ctx, arg,
                            f"parameter {arg.arg!r} carries a scaled unit; "
                            f"the internal convention is {dim} — name it "
                            f"with {_CANONICAL[dim]}")
            elif (isinstance(node, ast.AnnAssign)
                  and isinstance(node.target, ast.Name)
                  and isinstance(ctx.parent(node), ast.ClassDef)):
                dim = _bad_suffix(node.target.id)
                if dim is not None:
                    yield self.finding(
                        ctx, node,
                        f"field {node.target.id!r} carries a scaled unit; "
                        f"the internal convention is {dim} — name it with "
                        f"{_CANONICAL[dim]}")
