"""Telemetry fast-path rules: observation never perturbs the I/O path.

The telemetry spine (:mod:`repro.obs`) is engineered so a disabled
registry costs one attribute read per call site and allocates nothing
(design constraint 1 in ``repro/obs/instruments.py``).  That property
only holds if call sites honour the idiom::

    telemetry = get_telemetry()
    if telemetry.enabled:
        telemetry.counter("ost.write_bytes", comp).add(float(nbytes))

or the early-return equivalent (``if not telemetry.enabled: return``).
An unguarded chained mutation creates the instrument and boxes floats on
every call even while disabled — observation perturbing the hot path the
paper's §VI monitoring lesson forbids.  A second rule keeps registry
internals private to ``repro/obs``: outside modules reaching into
``telemetry._counters`` (or flipping ``.enabled`` directly instead of
scoping with ``use_telemetry``) bypass the registry's invariants.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.registry import Rule, register
from repro.lint.runner import FileContext

__all__ = ["ObsGuardRule", "ObsInternalsRule"]

_OBS_PACKAGE = "repro/obs"

#: instrument factories on Telemetry and the mutators they pair with
_FACTORIES = frozenset({"counter", "gauge", "histogram"})
_MUTATORS = frozenset({"add", "set", "observe"})

#: receiver spellings that are telemetry/tracer objects, statically
_OBS_RECEIVERS = frozenset({"telemetry", "tracer", "registry"})
_OBS_GETTERS = frozenset({"get_telemetry", "get_tracer"})


def _test_mentions_enabled(test: ast.expr) -> bool:
    return any(isinstance(n, ast.Attribute) and n.attr == "enabled"
               for n in ast.walk(test))


def _enclosing_function(ctx: FileContext, node: ast.AST):
    for anc in ctx.ancestors(node):
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return anc
    return None


def _guarded(ctx: FileContext, call: ast.Call) -> bool:
    """True when ``call`` runs only while the registry is enabled.

    Accepts both idioms used in the repo: nesting under
    ``if telemetry.enabled:`` (any ancestor ``if`` testing ``.enabled``)
    and the early-return form (``if not telemetry.enabled: return`` /
    ``continue`` earlier in the enclosing function).
    """
    for anc in ctx.ancestors(call):
        if isinstance(anc, ast.If) and _test_mentions_enabled(anc.test):
            return True
    fn = _enclosing_function(ctx, call)
    if fn is None:
        return False
    for inner in ast.walk(fn):
        if (isinstance(inner, ast.If)
                and inner.lineno < call.lineno
                and _test_mentions_enabled(inner.test)
                and any(isinstance(s, (ast.Return, ast.Continue, ast.Raise))
                        for s in inner.body)):
            return True
    return False


def _is_obs_receiver(ctx: FileContext, node: ast.AST) -> bool:
    """``telemetry`` / ``tracer`` names and ``get_telemetry()`` calls."""
    if isinstance(node, ast.Name):
        return node.id in _OBS_RECEIVERS
    if isinstance(node, ast.Call):
        dotted = ctx.dotted_name(node.func)
        return dotted is not None and dotted.split(".")[-1] in _OBS_GETTERS
    return False


@register
class ObsGuardRule(Rule):
    """Instrument mutations outside repro/obs sit under an enabled guard."""

    rule_id = "obs-guard"
    summary = ("telemetry counter/gauge/histogram mutations outside "
               "repro/obs use the `if telemetry.enabled:` no-op guard")
    invariant = ("a disabled registry costs one attribute read per call "
                 "site: hot paths never create instruments or box values "
                 "while telemetry is off")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.in_module(_OBS_PACKAGE):
            return
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _MUTATORS):
                continue
            receiver = node.func.value
            if not (isinstance(receiver, ast.Call)
                    and isinstance(receiver.func, ast.Attribute)
                    and receiver.func.attr in _FACTORIES):
                continue
            if not _guarded(ctx, node):
                yield self.finding(
                    ctx, node,
                    f"unguarded telemetry mutation "
                    f".{receiver.func.attr}(...).{node.func.attr}(...): "
                    f"wrap in `if telemetry.enabled:` (or early-return) so "
                    f"disabled runs pay one attribute read")


#: private registry internals no outside module may touch
_PRIVATE_ATTRS = frozenset({
    "_counters", "_gauges", "_histograms", "_buckets", "_registry",
    "_stack", "_spans", "_clock", "_default",
})


@register
class ObsInternalsRule(Rule):
    """Only repro/obs touches telemetry/tracer internals."""

    rule_id = "obs-internals"
    summary = ("no access to telemetry/tracer private attributes (and no "
               "direct .enabled assignment) outside repro/obs")
    invariant = ("registry state changes flow through the public API "
                 "(use_telemetry / use_tracer scoping), so enabling "
                 "telemetry can never change simulation results")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.in_module(_OBS_PACKAGE):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if not _is_obs_receiver(ctx, node.value):
                continue
            if node.attr in _PRIVATE_ATTRS:
                yield self.finding(
                    ctx, node,
                    f"access to telemetry/tracer internal {node.attr!r}: "
                    f"use the public instruments/snapshot API")
            elif node.attr == "enabled" and isinstance(node.ctx, ast.Store):
                yield self.finding(
                    ctx, node,
                    "direct assignment to .enabled: scope registries with "
                    "use_telemetry(...) / use_tracer(...) instead")
