"""SARIF 2.1.0 output for CI code-scanning annotations.

GitHub's code-scanning upload accepts a minimal SARIF run: a tool
driver with rule metadata and one result per finding.  The emitter maps
the registry's ``summary``/``invariant`` onto the rule descriptions so
an annotation shows the repo-level property being guarded, not just the
message text.
"""

from __future__ import annotations

from typing import Iterable

from repro.lint.findings import Finding, Severity
from repro.lint.registry import Rule

__all__ = ["sarif_report"]

_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
           "master/Schemata/sarif-schema-2.1.0.json")


def _level(severity: Severity) -> str:
    return "error" if severity == Severity.ERROR else "warning"


def sarif_report(findings: Iterable[Finding],
                 rules: Iterable[Rule]) -> dict:
    """A SARIF 2.1.0 log dict for ``findings`` under the given rules.

    Rules are listed (sorted by id) even when they produced no findings,
    so the code-scanning UI can show the full checked surface; columns
    are converted from 0-based ``ast`` offsets to SARIF's 1-based.
    """
    rule_list = sorted(rules, key=lambda r: r.rule_id)
    return {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "spider-lint",
                    "rules": [{
                        "id": rule.rule_id,
                        "shortDescription": {"text": rule.summary},
                        "fullDescription": {"text": rule.invariant},
                        "defaultConfiguration": {
                            "level": _level(rule.severity)},
                    } for rule in rule_list],
                },
            },
            "results": [{
                "ruleId": f.rule_id,
                "level": _level(f.severity),
                "message": {"text": f.message},
                "locations": [{
                    "physicalLocation": {
                        "artifactLocation": {"uri": f.path},
                        "region": {
                            "startLine": f.line,
                            "startColumn": f.col + 1,
                        },
                    },
                }],
            } for f in sorted(findings)],
        }],
    }
