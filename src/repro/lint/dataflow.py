"""Intraprocedural reaching-definitions / taint engine for deep rules.

The deep rules (:mod:`repro.lint.rules_deep`) need to know *where a
value came from*: does the argument of this RNG draw originate in a
telemetry read, does this loop iterate something that is statically a
set?  :class:`DataflowAnalysis` answers both with one abstract
interpretation over a function body.

The domain is deliberately small and honest about its limits:

* every expression evaluates to a frozenset of string **labels**;
* a rule supplies a ``classify`` callback that seeds labels at source
  expressions (a telemetry read, a set constructor, a tainted
  parameter);
* assignments, tuple unpacking, augmented assignment, loop targets,
  ``with ... as`` bindings, and arithmetic/boolean/comparison/subscript
  expressions propagate the union of their operands' labels;
* calls to *unknown* callees propagate the union of their argument
  labels into the result (conservative: a helper may pass a tainted
  value through), while ``sorted(...)`` / ``min(...)`` / ``max(...)``
  launder the :data:`SET_LABEL` only — ordering is fixed, provenance is
  not;
* loop bodies are interpreted twice so labels assigned late in a body
  reach uses at its top (two passes reach the fixpoint for a
  single-level environment, which is all a per-name domain needs).

The analysis is flow-*ordered* but branch-insensitive: both arms of an
``if`` contribute to the environment, which errs on the side of
reporting (a value tainted on either branch is tainted after the join).
"""

from __future__ import annotations

import ast
from typing import Callable, Iterable

__all__ = ["DataflowAnalysis", "SET_LABEL", "call_chain_root"]

#: the label :class:`DataflowAnalysis` uses for "statically a set" —
#: shared between the engine's built-in set classification and the
#: cross-iter-order rule
SET_LABEL = "unordered-set"

#: callables whose result is order-stable regardless of input order —
#: they consume an unordered value and emit an ordered (or scalar) one
_ORDER_LAUNDERERS = frozenset({"sorted", "min", "max", "len", "sum"})

_EMPTY: frozenset[str] = frozenset()


def call_chain_root(node: ast.AST) -> ast.AST:
    """The base object of an ``a.b(x).c.d(...)`` chain (``a`` here).

    Walks through attribute accesses and call results; the root is the
    first node that is neither — typically a :class:`ast.Name`, a
    literal, or a subscript.
    """
    while True:
        if isinstance(node, ast.Attribute):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        else:
            return node


class DataflowAnalysis:
    """Labels every expression of one function body with its origins.

    Args:
        fn: the analyzed ``FunctionDef`` (or ``Lambda``) node.
        classify: callback mapping an expression node to the labels it
            *originates* (beyond what propagates into it); return an
            empty iterable for "nothing new".  Called once per
            expression visit, innermost first.
        initial: starting environment, e.g. ``{"param": {"taint"}}``
            for parameter-taint summaries.

    After construction, :meth:`labels_of` returns the computed labels
    for any expression node in the body (expressions never visited —
    dead code in untaken branches does not exist in ``ast`` — report
    the empty set).
    """

    def __init__(
        self,
        fn: ast.AST,
        classify: Callable[[ast.AST], Iterable[str]],
        initial: dict[str, frozenset[str]] | None = None,
    ) -> None:
        self._classify = classify
        self._env: dict[str, frozenset[str]] = dict(initial or {})
        self._labels: dict[int, frozenset[str]] = {}
        body = fn.body if isinstance(fn.body, list) else [ast.Return(fn.body)]
        # Two passes over the whole body: pass one seeds assignments,
        # pass two lets labels defined textually late (or around a loop
        # back-edge) reach earlier uses.  The per-name powerset domain
        # is monotone, so two passes suffice for a stable environment.
        for _ in (0, 1):
            self._exec_block(body)

    # -- public -----------------------------------------------------------

    def labels_of(self, node: ast.AST) -> frozenset[str]:
        """Labels computed for ``node`` (empty if never reached)."""
        return self._labels.get(id(node), _EMPTY)

    # -- statements --------------------------------------------------------

    def _exec_block(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self._exec(stmt)

    def _exec(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = stmt.value
            labels = self._eval(value) if value is not None else _EMPTY
            targets = (stmt.targets if isinstance(stmt, ast.Assign)
                       else [stmt.target])
            for target in targets:
                if isinstance(stmt, ast.AugAssign):
                    labels = labels | self._eval(target)
                self._bind(target, labels)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._eval(stmt.value)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_labels = self._eval(stmt.iter)
            # Iterating an unordered collection yields *elements*, which
            # are not themselves sets; every other provenance label
            # rides through to the loop variable.
            self._bind(stmt.target, iter_labels - {SET_LABEL})
            for _ in (0, 1):  # loop-carried labels reach the body top
                self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test)
            for _ in (0, 1):
                self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                labels = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, labels)
            self._exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._exec_block(stmt.body)
            for handler in stmt.handlers:
                self._exec_block(handler.body)
            self._exec_block(stmt.orelse)
            self._exec_block(stmt.finalbody)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            pass  # nested scopes are analyzed as their own functions
        elif isinstance(stmt, (ast.Assert, ast.Raise, ast.Delete)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child)
        # Pass/Break/Continue/Import/Global/Nonlocal: nothing flows.

    # -- expressions -------------------------------------------------------

    def _bind(self, target: ast.expr, labels: frozenset[str]) -> None:
        if isinstance(target, ast.Name):
            self._env[target.id] = labels
            self._labels[id(target)] = labels
        elif isinstance(target, (ast.Tuple, ast.List)):
            # Unpacking: each element may hold any of the source labels
            # (minus setness, which describes the container).
            for elt in target.elts:
                self._bind(elt, labels - {SET_LABEL})
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            self._eval(target.value)
            self._labels[id(target)] = labels
        elif isinstance(target, ast.Starred):
            self._bind(target.value, labels)

    def _eval(self, node: ast.expr) -> frozenset[str]:
        labels = self._propagate(node) | frozenset(self._classify(node))
        self._labels[id(node)] = labels
        return labels

    def _propagate(self, node: ast.expr) -> frozenset[str]:
        if isinstance(node, ast.Name):
            return self._env.get(node.id, _EMPTY)
        if isinstance(node, ast.Attribute):
            return self._eval(node.value)
        if isinstance(node, ast.Call):
            func = node.func
            arg_labels = _EMPTY
            for arg in node.args:
                arg_labels |= self._eval(arg)
            for kw in node.keywords:
                arg_labels |= self._eval(kw.value)
            if isinstance(func, ast.Name) and func.id in _ORDER_LAUNDERERS:
                return arg_labels - {SET_LABEL}
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return arg_labels | {SET_LABEL}
            if isinstance(func, ast.Name) and func.id in ("list", "tuple"):
                # list(a_set) fixes nothing about the order — setness
                # (the order hazard) survives the conversion.
                return arg_labels
            # Receiver labels ride through method-call results: a read
            # chained off a tainted object stays tainted.  Eval the
            # func expression for its own classification side effects.
            return arg_labels | self._eval(func)
        if isinstance(node, ast.Set):
            for elt in node.elts:
                self._eval(elt)
            return frozenset({SET_LABEL})
        if isinstance(node, ast.SetComp):
            self._eval_comprehension(node)
            return frozenset({SET_LABEL})
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            return self._eval_comprehension(node)
        if isinstance(node, ast.DictComp):
            self._eval_comprehension(node)
            return _EMPTY
        if isinstance(node, ast.BinOp):
            return self._eval(node.left) | self._eval(node.right)
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, ast.BoolOp):
            out = _EMPTY
            for value in node.values:
                out |= self._eval(value)
            return out
        if isinstance(node, ast.Compare):
            self._eval(node.left)
            for comp in node.comparators:
                self._eval(comp)
            return _EMPTY  # a bool carries no provenance worth tracking
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            return self._eval(node.body) | self._eval(node.orelse)
        if isinstance(node, ast.Subscript):
            base = self._eval(node.value)
            if isinstance(node.slice, ast.expr):
                self._eval(node.slice)
            return base
        if isinstance(node, (ast.Tuple, ast.List)):
            out = _EMPTY
            for elt in node.elts:
                out |= self._eval(elt)
            return out
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None:
                    self._eval(key)
            for value in node.values:
                self._eval(value)
            return _EMPTY
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, (ast.JoinedStr, ast.FormattedValue)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._eval(child)
            return _EMPTY  # rendering to text is not a data flow
        if isinstance(node, ast.Lambda):
            return _EMPTY
        if isinstance(node, ast.NamedExpr):
            labels = self._eval(node.value)
            self._bind(node.target, labels)
            return labels
        return _EMPTY  # constants and anything unmodeled

    def _eval_comprehension(self, node: ast.expr) -> frozenset[str]:
        out = _EMPTY
        for gen in node.generators:
            iter_labels = self._eval(gen.iter)
            self._bind(gen.target, iter_labels - {SET_LABEL})
            out |= iter_labels
            for cond in gen.ifs:
                self._eval(cond)
        if isinstance(node, ast.DictComp):
            self._eval(node.key)
            out |= self._eval(node.value)
        else:
            out |= self._eval(node.elt)
        return out
