"""spider-lint: an AST-based checker for this repo's invariants.

The simulation's claims rest on conventions the type system cannot see:
one seed determines every result, all internal quantities are bytes and
seconds, DES process generators stay sim-time pure, and telemetry is
free when disabled.  ``repro.lint`` turns those conventions into
machine-checked rules over the stdlib ``ast`` — no third-party
dependencies, no importing of the code under analysis.

Usage::

    from repro.lint import lint_paths
    findings = lint_paths(["src/repro"])          # [] when clean

or from the CLI: ``spider-repro lint src/repro --format json``.

Rules live in ``rules_*.py`` modules and self-register on import via
:func:`repro.lint.registry.register`; importing this package populates
the registry.  Findings are suppressed per line with a justified
pragma: ``# spider-lint: ignore[rule-id] -- why``.
"""

from __future__ import annotations

from repro.lint.findings import Finding, Severity
from repro.lint.registry import (
    DeepRule,
    LintUsageError,
    Rule,
    all_rules,
    register,
    resolve_rules,
)
from repro.lint.runner import (
    FileContext,
    LintReport,
    Pragma,
    cached_context,
    clear_parse_cache,
    iter_python_files,
    lint_paths,
    lint_source,
    parse_cache_stats,
    parse_pragmas,
    run_lint,
)
from repro.lint.project import ProjectContext, build_project
from repro.lint.sarif import sarif_report

# Importing the rule modules registers every rule (side effect by design).
from repro.lint import rules_determinism as _rules_determinism  # noqa: F401
from repro.lint import rules_units as _rules_units  # noqa: F401
from repro.lint import rules_simtime as _rules_simtime  # noqa: F401
from repro.lint import rules_obs as _rules_obs  # noqa: F401
from repro.lint import rules_docs as _rules_docs  # noqa: F401
from repro.lint import rules_deep as _rules_deep  # noqa: F401

__all__ = [
    "Finding",
    "Severity",
    "Rule",
    "DeepRule",
    "register",
    "all_rules",
    "resolve_rules",
    "LintUsageError",
    "FileContext",
    "LintReport",
    "ProjectContext",
    "build_project",
    "Pragma",
    "parse_pragmas",
    "lint_source",
    "lint_paths",
    "run_lint",
    "iter_python_files",
    "cached_context",
    "clear_parse_cache",
    "parse_cache_stats",
    "sarif_report",
]
