"""The spider-lint rule registry.

Every rule is a singleton instance registered under a stable kebab-case
``rule_id``.  The registry is the single source of truth for the rule
list: the CLI's ``--select``/``--ignore`` validation, the README/DESIGN
documentation lock-step test, and the suppression pragma parser all
resolve rule ids against it.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.lint.findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.lint.project import ProjectContext
    from repro.lint.runner import FileContext

__all__ = ["Rule", "DeepRule", "LintUsageError", "register", "all_rules",
           "resolve_rules"]


class LintUsageError(Exception):
    """A caller mistake (unknown rule id, unreadable path) — the CLI maps
    this onto :class:`repro.cli.CliError` (exit 1, no traceback)."""


class Rule:
    """Base class for one invariant check.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding findings for one parsed file.  ``invariant`` is the
    repo-level property the rule guards; it is surfaced in ``--format
    json`` rule listings and must stay lock-step with the DESIGN.md rule
    table (a docs-consistency test enforces this).
    """

    rule_id: str = ""
    summary: str = ""
    invariant: str = ""
    severity: Severity = Severity.ERROR
    #: deep rules additionally implement :meth:`DeepRule.check_project`
    #: and only produce findings when the runner builds a ProjectContext
    #: (``spider-repro lint --deep``, or the rule is named in --select)
    deep: bool = False

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: "FileContext", node: ast.AST, message: str) -> Finding:
        """Build a finding for ``node`` in ``ctx`` with this rule's identity."""
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message,
            severity=self.severity,
        )


class DeepRule(Rule):
    """Base class for whole-program rules.

    A deep rule checks cross-file properties — reachability from event
    callbacks, taint that crosses function boundaries — so it gets one
    :class:`repro.lint.project.ProjectContext` covering every analyzed
    file instead of a per-file callback.  Its :meth:`check` is a no-op:
    running a deep rule in the fast per-file pass is harmless and yields
    nothing, which keeps ``resolve_rules`` uniform.
    """

    deep: bool = True

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate ``cls`` and add it to the registry."""
    rule = cls()
    if not rule.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    if rule.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.rule_id!r}")
    if not (rule.summary and rule.invariant):
        raise ValueError(f"rule {rule.rule_id!r} must document summary and invariant")
    _REGISTRY[rule.rule_id] = rule
    return cls


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by id for stable output."""
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def resolve_rules(select: Iterable[str] | None = None,
                  ignore: Iterable[str] | None = None) -> list[Rule]:
    """The active rule set after ``--select`` / ``--ignore`` filtering.

    Unknown ids raise :class:`LintUsageError` — a misspelled rule must
    fail loudly, not silently lint nothing.
    """
    known = set(_REGISTRY)
    for ids in (select, ignore):
        unknown = sorted(set(ids or ()) - known)
        if unknown:
            raise LintUsageError(
                f"unknown rule id(s) {', '.join(unknown)}; "
                f"known: {', '.join(sorted(known))}")
    rules = all_rules()
    if select:
        wanted = set(select)
        rules = [r for r in rules if r.rule_id in wanted]
    if ignore:
        dropped = set(ignore)
        rules = [r for r in rules if r.rule_id not in dropped]
    return rules
