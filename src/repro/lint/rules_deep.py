"""Whole-program rules: the invariants PRs 4-7 prove dynamically.

Each rule here is the static form of a property the test suite
re-proves on every PR with equality assertions over whole runs:

* ``epoch-safety`` — FlowNetwork mutations reachable from DES event
  callbacks must batch through an :class:`Epoch` (PR 7's same-tick
  batching contract); direct ``solve()`` in a per-tick handler bypasses
  the batch and re-solves once per event instead of once per tick.
* ``telemetry-taint`` — values read back out of Telemetry/Tracer/
  MetricsDb must never flow into RNG draws, FlowNetwork mutations, or
  event scheduling, or disabling telemetry changes simulation results
  (the bit-identity invariant every subsystem test asserts).
* ``dirty-state`` — public methods of a ``_dirty``-tracked class that
  mutate tracked solver state must also touch the dirty set, or
  ``solve()`` serves stale cached results.
* ``cross-iter-order`` — set-typed values that cross a function or
  object boundary into a loop feeding flow mutations or RNG draws make
  results hash-order dependent (the whole-program extension of the
  per-file ``iter-order`` rule).

All four query the :class:`~repro.lint.project.ProjectContext` index
and the :class:`~repro.lint.dataflow.DataflowAnalysis` taint engine;
nothing here imports the code under analysis.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.dataflow import SET_LABEL, DataflowAnalysis
from repro.lint.findings import Finding
from repro.lint.project import FunctionInfo, ProjectContext, type_is
from repro.lint.registry import DeepRule, register

__all__ = [
    "EpochSafetyRule",
    "TelemetryTaintRule",
    "DirtyStateRule",
    "CrossIterOrderRule",
]

#: FlowNetwork state-changing methods (the delta ops of the incremental
#: solver) — the mutation set both epoch-safety and telemetry-taint key on
NETWORK_MUTATORS = frozenset(
    {"add_flow", "remove_flow", "set_capacity", "set_demand"})
NETWORK_SOLVERS = frozenset({"solve", "solve_rates"})

#: Engine registration methods whose function-valued arguments become
#: DES event callbacks
SCHEDULE_METHODS = frozenset({"call_at", "call_after", "every"})

#: numpy Generator draw methods — consuming entropy here must never
#: depend on telemetry or on set iteration order
RNG_DRAWS = frozenset({
    "random", "integers", "normal", "standard_normal", "lognormal",
    "exponential", "poisson", "uniform", "choice", "shuffle",
    "permutation", "gamma", "binomial", "geometric",
})

_TAINT = "telemetry"
_CROSS = "cross-boundary"

#: read surface of the observability plane: members whose value reflects
#: telemetry state (write members — add/set/observe/insert — are absent
#: on purpose: writing telemetry is the whole point)
_TELEM_READ_ATTRS = frozenset({"value"})
_TELEM_READ_CALLS = frozenset({
    "value", "mean", "percentile", "buckets", "snapshot",
    "counters", "gauges", "histograms",
    "latest", "range", "rate", "aggregate_latest", "top_sources",
    "sources", "metrics",
})
_TELEM_TYPES = ("Telemetry", "Tracer", "MetricsDb",
                "Counter", "Gauge", "Histogram", "LogHistogram")
_TELEM_GETTERS = frozenset({"get_telemetry", "get_tracer"})
_TELEM_NAMES = frozenset({"telemetry", "tracer", "_telemetry", "_tracer"})

_MUTATING_CALLS = frozenset({
    "append", "insert", "add", "discard", "remove", "pop", "popleft",
    "update", "extend", "clear", "setdefault", "appendleft",
})


def _terminal_name(expr: ast.expr) -> str:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return ""


def _is_flow_network(project: ProjectContext, fn: FunctionInfo,
                     expr: ast.expr) -> bool:
    return type_is(project.expr_type(fn, expr), "FlowNetwork")


def _is_epoch(project: ProjectContext, fn: FunctionInfo,
              expr: ast.expr) -> bool:
    return type_is(project.expr_type(fn, expr), "Epoch")


def _is_engine(project: ProjectContext, fn: FunctionInfo,
               expr: ast.expr) -> bool:
    if type_is(project.expr_type(fn, expr), "Engine"):
        return True
    return _terminal_name(expr) in ("engine", "_engine")


def _is_rng(project: ProjectContext, fn: FunctionInfo,
            expr: ast.expr) -> bool:
    if type_is(project.expr_type(fn, expr), "Generator", "RandomState"):
        return True
    return "rng" in _terminal_name(expr).lower()


def _is_telemetry_receiver(project: ProjectContext, fn: FunctionInfo,
                           expr: ast.expr) -> bool:
    """Does ``expr`` evaluate to a telemetry-plane object?

    Type-first (class index / annotations / constructor assignments),
    then the conventional receiver names the per-file obs rules already
    key on, then one level through method-call chains so
    ``telemetry.counter("x")`` is recognized as an instrument.
    """
    if type_is(project.expr_type(fn, expr), *_TELEM_TYPES):
        return True
    if _terminal_name(expr) in _TELEM_NAMES:
        return True
    if isinstance(expr, ast.Call):
        func = expr.func
        if _terminal_name(func) in _TELEM_GETTERS:
            return True
        if isinstance(func, ast.Attribute):
            return _is_telemetry_receiver(project, fn, func.value)
    return False


def _schedule_registrations(project: ProjectContext, fn: FunctionInfo
                            ) -> Iterator[tuple[ast.Call, list[str]]]:
    """Engine callback registrations made inside ``fn``: each yields the
    call node and the resolved functions its arguments designate."""
    for call in fn.calls():
        func = call.func
        if not (isinstance(func, ast.Attribute)
                and func.attr in SCHEDULE_METHODS):
            continue
        if not _is_engine(project, fn, func.value):
            continue
        targets: list[str] = []
        for arg in call.args:
            targets.extend(project.resolve_func_refs(fn, arg))
        if targets:
            yield call, targets


@register
class EpochSafetyRule(DeepRule):
    """Event callbacks must batch FlowNetwork work through an Epoch."""

    rule_id = "epoch-safety"
    summary = ("FlowNetwork mutations reachable from a DES event callback "
               "must be Epoch-batched, and per-tick handlers must not call "
               "solve() directly")
    invariant = ("every per-tick executor funnels same-tick re-solves "
                 "through one Epoch flush")

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        mutators: dict[str, tuple[ast.Call, str]] = {}
        solvers: dict[str, tuple[ast.Call, str]] = {}
        epoch_users: set[str] = set()
        flush_funcs: set[str] = set()
        callbacks: dict[str, FunctionInfo] = {}

        for qualname in sorted(project.functions):
            fn = project.functions[qualname]
            for node in fn.own_nodes():
                if isinstance(node, ast.Call):
                    func = node.func
                    if isinstance(func, ast.Attribute):
                        if (func.attr in NETWORK_MUTATORS
                                and _is_flow_network(project, fn, func.value)
                                and not self._under_epoch(project, fn, node)):
                            mutators.setdefault(qualname, (node, func.attr))
                        elif (func.attr in NETWORK_SOLVERS
                                and _is_flow_network(project, fn, func.value)):
                            solvers.setdefault(qualname, (node, func.attr))
                        elif (func.attr == "request"
                                and _is_epoch(project, fn, func.value)):
                            epoch_users.add(qualname)
                    dotted = fn.ctx.dotted_name(func)
                    if (dotted and type_is(dotted, "Epoch") and node.args):
                        flush_funcs.update(
                            project.resolve_func_refs(fn, node.args[0]))
                elif isinstance(node, (ast.With, ast.AsyncWith)):
                    if any(_is_epoch(project, fn, item.context_expr)
                           for item in node.items):
                        epoch_users.add(qualname)
            for _site, targets in _schedule_registrations(project, fn):
                for target in targets:
                    callbacks.setdefault(target, project.functions[target])

        for entry in sorted(callbacks):
            if entry in flush_funcs:
                continue  # the Epoch flush is *where* batched work runs
            fn = callbacks[entry]
            reach = project.reachable([entry])
            batched = any(g in epoch_users for g in reach)
            if not batched:
                hit = sorted(g for g in reach if g in mutators)
                if hit:
                    node, method = mutators[hit[0]]
                    via = "" if hit[0] == entry else f" via {hit[0]}()"
                    yield self.finding(
                        fn.ctx, fn.node,
                        f"event callback {fn.name}() reaches "
                        f"FlowNetwork.{method}(){via} with no Epoch on the "
                        f"path; batch the mutation with Epoch.request() or "
                        f"a `with epoch:` block")
            direct = sorted(g for g in reach if g in solvers)
            if direct:
                node, method = solvers[direct[0]]
                via = "" if direct[0] == entry else f" via {direct[0]}()"
                yield self.finding(
                    fn.ctx, fn.node,
                    f"event callback {fn.name}() calls "
                    f"FlowNetwork.{method}(){via}, bypassing Epoch batching; "
                    f"per-tick handlers must route re-solves through "
                    f"Epoch.request()")

    @staticmethod
    def _under_epoch(project: ProjectContext, fn: FunctionInfo,
                     node: ast.AST) -> bool:
        """Is this call lexically inside a ``with <epoch>:`` block?"""
        for anc in fn.ctx.ancestors(node):
            if isinstance(anc, (ast.With, ast.AsyncWith)) and any(
                    _is_epoch(project, fn, item.context_expr)
                    for item in anc.items):
                return True
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                break
        return False


class _TaintPass:
    """One dataflow run over every function, with one-level summaries.

    Round 1 computes which functions return tainted values and which
    parameters reach sinks; round 2 re-runs with those summaries active
    so taint crosses one call boundary in each direction.  The rounds
    iterate until the summary sets stop growing (bounded: the sets only
    grow, so at most a handful of rounds on this codebase).
    """

    def __init__(self, project: ProjectContext) -> None:
        self.project = project
        self.returns_taint: set[str] = set()
        self.sink_params: dict[str, set[int]] = {}
        self.analyses: dict[str, DataflowAnalysis] = {}
        for _ in range(4):
            if not self._run_round():
                break

    def _run_round(self) -> bool:
        grew = False
        for qualname in sorted(self.project.functions):
            fn = self.project.functions[qualname]
            analysis = DataflowAnalysis(
                fn.node,
                classify=lambda node, fn=fn: self._classify(fn, node),
                initial=self._param_env(fn))
            self.analyses[qualname] = analysis
            for node in fn.own_nodes():
                if isinstance(node, ast.Return) and node.value is not None:
                    if _TAINT in analysis.labels_of(node.value):
                        if qualname not in self.returns_taint:
                            self.returns_taint.add(qualname)
                            grew = True
            for call, positions in self._sink_args(fn, analysis):
                for pos, labels in positions:
                    for label in labels:
                        if label.startswith("param:"):
                            idx = int(label.split(":", 1)[1])
                            sinks = self.sink_params.setdefault(qualname, set())
                            if idx not in sinks:
                                sinks.add(idx)
                                grew = True
        return grew

    @staticmethod
    def _param_env(fn: FunctionInfo) -> dict[str, frozenset[str]]:
        args = fn.node.args
        names = [a.arg for a in (*args.posonlyargs, *args.args)
                 if a.arg not in ("self", "cls")]
        return {name: frozenset({f"param:{i}"})
                for i, name in enumerate(names)}

    def _classify(self, fn: FunctionInfo, node: ast.AST) -> frozenset[str]:
        project = self.project
        if isinstance(node, ast.Attribute):
            if (node.attr in _TELEM_READ_ATTRS
                    and _is_telemetry_receiver(project, fn, node.value)):
                return frozenset({_TAINT})
        elif isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in _TELEM_READ_CALLS
                    and _is_telemetry_receiver(project, fn, func.value)):
                return frozenset({_TAINT})
            target = project.resolve_call(fn, node)
            if target in self.returns_taint:
                return frozenset({_TAINT})
        return frozenset()

    def _sink_args(self, fn: FunctionInfo, analysis: DataflowAnalysis
                   ) -> Iterator[tuple[ast.Call,
                                       list[tuple[int, frozenset[str]]]]]:
        """Sink calls in ``fn`` with the labels of each sink argument."""
        project = self.project
        for call in fn.calls():
            func = call.func
            if isinstance(func, ast.Attribute):
                is_sink = (
                    (func.attr in RNG_DRAWS
                     and _is_rng(project, fn, func.value))
                    or (func.attr in NETWORK_MUTATORS
                        and _is_flow_network(project, fn, func.value))
                    or (func.attr in SCHEDULE_METHODS
                        and _is_engine(project, fn, func.value)))
                if is_sink:
                    yield call, [(i, analysis.labels_of(arg))
                                 for i, arg in enumerate(call.args)]
                    continue
            target = project.resolve_call(fn, call)
            if target and target in self.sink_params:
                positions = self.sink_params[target]
                yield call, [(i, analysis.labels_of(arg))
                             for i, arg in enumerate(call.args)
                             if i in positions]


@register
class TelemetryTaintRule(DeepRule):
    """Telemetry reads must never influence simulation behavior."""

    rule_id = "telemetry-taint"
    summary = ("values read from Telemetry/Tracer/MetricsDb must not flow "
               "into RNG draws, FlowNetwork mutations, or event scheduling")
    invariant = ("simulation results are bit-identical with telemetry "
                 "enabled or disabled")

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        taint = _TaintPass(project)
        for qualname in sorted(project.functions):
            fn = project.functions[qualname]
            analysis = taint.analyses[qualname]
            for call, positions in taint._sink_args(fn, analysis):
                tainted = [i for i, labels in positions if _TAINT in labels]
                if not tainted:
                    continue
                desc = self._describe(project, fn, call)
                yield self.finding(
                    fn.ctx, call,
                    f"telemetry-derived value flows into {desc} in "
                    f"{fn.name}(); observability reads must stay on the "
                    f"reporting plane (bit-identity)")

    @staticmethod
    def _describe(project: ProjectContext, fn: FunctionInfo,
                  call: ast.Call) -> str:
        func = call.func
        if isinstance(func, ast.Attribute):
            if func.attr in RNG_DRAWS and _is_rng(project, fn, func.value):
                return f"RNG draw .{func.attr}()"
            if func.attr in NETWORK_MUTATORS:
                return f"FlowNetwork.{func.attr}()"
            if func.attr in SCHEDULE_METHODS:
                return f"event scheduling .{func.attr}()"
        target = project.resolve_call(fn, call)
        return f"sink-reaching call {target or 'call'}()"


@register
class DirtyStateRule(DeepRule):
    """Mutating tracked solver state obliges marking it dirty."""

    rule_id = "dirty-state"
    summary = ("public methods of a _dirty-tracked class that mutate "
               "tracked attributes must also touch the dirty set")
    invariant = ("solve() never serves a cached result over silently "
                 "mutated solver state")

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for cls_qual in sorted(project.classes):
            cls = project.classes[cls_qual]
            if not cls.dirty_attrs:
                continue
            touches: dict[str, bool] = {}
            mutated_by: dict[str, list[str]] = {}
            for name in sorted(cls.methods):
                fn = project.functions[cls.methods[name]]
                touches[name] = self._touches_dirty(fn, cls.dirty_attrs)
                mutated_by[name] = sorted(self._mutated_attrs(fn))
            # Attributes tracked by the dirty protocol: mutated by some
            # method that also touches the dirty set (and not dirty
            # attributes themselves).
            tracked = sorted({
                attr
                for name, attrs in mutated_by.items() if touches[name]
                for attr in attrs if attr not in cls.dirty_attrs})
            if not tracked:
                continue
            for name in sorted(cls.methods):
                if name.startswith("_") or name == "__init__":
                    continue  # the protocol binds the public surface
                if touches[name]:
                    continue
                fn = project.functions[cls.methods[name]]
                if self._callee_touches(project, cls.methods, fn, touches):
                    continue
                hit = sorted(set(mutated_by[name]) & set(tracked))
                if hit:
                    yield self.finding(
                        fn.ctx, fn.node,
                        f"{cls.name}.{name}() mutates dirty-tracked "
                        f"attribute(s) {', '.join(hit)} without touching "
                        f"{cls.dirty_attrs[0]}; solve() may serve stale "
                        f"state")

    @staticmethod
    def _dirty_aliases(fn: FunctionInfo, dirty_attrs: list[str]) -> set[str]:
        aliases: set[str] = set()
        for node in fn.own_nodes():
            if (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and isinstance(node.value, ast.Attribute)
                    and isinstance(node.value.value, ast.Name)
                    and node.value.value.id == "self"
                    and node.value.attr in dirty_attrs):
                aliases.add(node.targets[0].id)
        return aliases

    @classmethod
    def _touches_dirty(cls, fn: FunctionInfo, dirty_attrs: list[str]) -> bool:
        aliases = cls._dirty_aliases(fn, dirty_attrs)
        for node in fn.own_nodes():
            if (isinstance(node, ast.Attribute)
                    and node.attr in dirty_attrs
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"):
                return True
            if isinstance(node, ast.Name) and node.id in aliases:
                return True
        return False

    @staticmethod
    def _callee_touches(project: ProjectContext, methods: dict[str, str],
                        fn: FunctionInfo, touches: dict[str, bool]) -> bool:
        """One level: a direct call to a sibling method that touches the
        dirty set (add_component -> set_capacity) keeps the caller honest."""
        by_qual = {q: n for n, q in methods.items()}
        return any(touches.get(by_qual[t], False)
                   for t in project.callees(fn.qualname) if t in by_qual)

    @staticmethod
    def _mutated_attrs(fn: FunctionInfo) -> set[str]:
        """Self-attributes this method mutates in place.

        Counted: subscript stores/deletes/aug-assigns and mutating method
        calls, directly on ``self.X`` or through a local alias of it.
        Plain rebinding (``self.X = ...``) is not counted — rebinding is
        how caches are invalidated (``self._csr = None``), not how
        tracked state drifts.
        """
        aliases: dict[str, str] = {}
        for node in fn.own_nodes():
            if (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and isinstance(node.value, ast.Attribute)
                    and isinstance(node.value.value, ast.Name)
                    and node.value.value.id == "self"):
                aliases[node.targets[0].id] = node.value.attr

        def base_attr(expr: ast.expr) -> str | None:
            if (isinstance(expr, ast.Attribute)
                    and isinstance(expr.value, ast.Name)
                    and expr.value.id == "self"):
                return expr.attr
            if isinstance(expr, ast.Name):
                return aliases.get(expr.id)
            return None

        out: set[str] = set()
        for node in fn.own_nodes():
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            for target in targets:
                if isinstance(target, ast.Subscript):
                    attr = base_attr(target.value)
                    if attr:
                        out.add(attr)
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _MUTATING_CALLS):
                attr = base_attr(node.func.value)
                if attr:
                    out.add(attr)
        return out


class _SetPass:
    """Set-provenance dataflow for cross-iter-order.

    Labels every expression with :data:`SET_LABEL` (statically a set)
    plus :data:`_CROSS` when the set crossed a function or object
    boundary — an attribute, a set-typed parameter, or the result of a
    function summarized as returning a set.  ``sorted()`` strips
    SET_LABEL (the engine's launderers), so a sorted boundary-crossing
    set stops being reportable even though its provenance remains.
    """

    def __init__(self, project: ProjectContext) -> None:
        self.project = project
        self.returns_set: set[str] = set()
        self.analyses: dict[str, DataflowAnalysis] = {}
        for _ in range(4):
            if not self._run_round():
                break

    def _run_round(self) -> bool:
        grew = False
        for qualname in sorted(self.project.functions):
            fn = self.project.functions[qualname]
            set_params = self._set_params(fn)
            elem_aliases = self._elem_set_aliases(fn)
            analysis = DataflowAnalysis(
                fn.node,
                classify=lambda node, fn=fn, sp=set_params, ea=elem_aliases:
                    self._classify(fn, sp, ea, node))
            self.analyses[qualname] = analysis
            for node in fn.own_nodes():
                if (isinstance(node, ast.Return) and node.value is not None
                        and SET_LABEL in analysis.labels_of(node.value)
                        and qualname not in self.returns_set):
                    self.returns_set.add(qualname)
                    grew = True
            returns_ann = fn.node.returns
            if returns_ann is not None and qualname not in self.returns_set:
                from repro.lint.project import _annotation_is_set
                if _annotation_is_set(fn.ctx, returns_ann):
                    self.returns_set.add(qualname)
                    grew = True
        return grew

    @staticmethod
    def _set_params(fn: FunctionInfo) -> set[str]:
        from repro.lint.project import _annotation_is_set
        args = fn.node.args
        return {a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
                if a.annotation is not None
                and _annotation_is_set(fn.ctx, a.annotation)}

    def _elem_set_aliases(self, fn: FunctionInfo) -> set[str]:
        """Locals aliasing a container-of-sets attribute
        (``comp_flows = self._comp_flows``)."""
        out: set[str] = set()
        for node in fn.own_nodes():
            if (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and self._is_elem_set_attr(fn, node.value)):
                out.add(node.targets[0].id)
        return out

    def _is_elem_set_attr(self, fn: FunctionInfo, expr: ast.expr) -> bool:
        if not isinstance(expr, ast.Attribute):
            return False
        cls = self.project.class_info(self.project.expr_type(fn, expr.value))
        return cls is not None and expr.attr in cls.elem_set_attrs

    def _classify(self, fn: FunctionInfo, set_params: set[str],
                  elem_aliases: set[str], node: ast.AST) -> frozenset[str]:
        project = self.project
        if isinstance(node, ast.Attribute):
            cls = project.class_info(project.expr_type(fn, node.value))
            if cls is not None and node.attr in cls.set_attrs:
                return frozenset({SET_LABEL, _CROSS})
        elif isinstance(node, ast.Name):
            if node.id in set_params:
                return frozenset({SET_LABEL, _CROSS})
        elif isinstance(node, ast.Subscript):
            base = node.value
            if self._is_elem_set_attr(fn, base) or (
                    isinstance(base, ast.Name) and base.id in elem_aliases):
                return frozenset({SET_LABEL, _CROSS})
        elif isinstance(node, ast.Call):
            target = project.resolve_call(fn, node)
            if target in self.returns_set:
                return frozenset({SET_LABEL, _CROSS})
        return frozenset()


@register
class CrossIterOrderRule(DeepRule):
    """Boundary-crossing sets must be sorted before order-bearing loops."""

    rule_id = "cross-iter-order"
    summary = ("iteration over a set that crossed a function or object "
               "boundary must be sorted when the loop feeds flow mutations, "
               "RNG draws, or event scheduling")
    invariant = ("no simulation-visible ordering ever derives from hash "
                 "iteration order")

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        sets = _SetPass(project)
        for qualname in sorted(project.functions):
            fn = project.functions[qualname]
            analysis = sets.analyses[qualname]
            for node in fn.own_nodes():
                loops: list[tuple[ast.expr, list[ast.AST]]] = []
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    loops.append((node.iter, node.body))
                elif isinstance(node, (ast.ListComp, ast.SetComp,
                                       ast.GeneratorExp, ast.DictComp)):
                    body: list[ast.AST] = [node]
                    loops.extend((gen.iter, body) for gen in node.generators)
                for iter_expr, body in loops:
                    labels = analysis.labels_of(iter_expr)
                    if SET_LABEL not in labels or _CROSS not in labels:
                        continue
                    sink = self._body_sink(project, fn, body)
                    if sink is None:
                        continue
                    yield self.finding(
                        fn.ctx, node,
                        f"{fn.name}() iterates a set that crossed a "
                        f"function/object boundary and the loop feeds "
                        f"{sink}; wrap the iterable in sorted() to pin "
                        f"the order")

    @staticmethod
    def _body_sink(project: ProjectContext, fn: FunctionInfo,
                   body: list[ast.AST]) -> str | None:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    break
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not isinstance(func, ast.Attribute):
                    continue
                if (func.attr in NETWORK_MUTATORS
                        and _is_flow_network(project, fn, func.value)):
                    return f"FlowNetwork.{func.attr}()"
                if (func.attr in NETWORK_SOLVERS
                        and _is_flow_network(project, fn, func.value)):
                    return f"FlowNetwork.{func.attr}()"
                if func.attr in RNG_DRAWS and _is_rng(project, fn, func.value):
                    return f"RNG draw .{func.attr}()"
                if (func.attr in SCHEDULE_METHODS
                        and _is_engine(project, fn, func.value)):
                    return f"event scheduling .{func.attr}()"
                if func.attr == "request" and _is_epoch(project, fn,
                                                        func.value):
                    return "Epoch.request()"
        return None
