"""Whole-program index for ``spider-repro lint --deep``.

:class:`ProjectContext` parses every file under analysis once (through
the runner's shared parse cache) and builds the three structures the
deep rules query:

* a **module–class–attribute index**: every class with its methods, the
  static types of its ``self.*`` attributes (from ``self.x = Class(...)``
  constructor assignments and ``self.x: Type`` annotations), and which
  attributes are statically set-typed;
* a **call graph** with one-level call-site resolution: ``self.m()``,
  ``helper()`` (module-local or imported), ``self.attr.m()`` /
  ``var.m()`` where the receiver's class is statically known, and calls
  through return-type annotations (``self.build(...).solve()``).
  Resolution is one level deep — no full type inference — but effect
  facts propagate over the resolved edges to a fixpoint, so a rule can
  ask "does anything reachable from this callback mutate the network?";
* **reference resolution** for callables passed by value (the functions
  a ``engine.call_at(t, fn)`` registration will eventually invoke,
  including one level through ``lambda f=x: self.handler(f)`` trampolines).

Everything is stdlib ``ast`` over :class:`repro.lint.runner.FileContext`;
the analyzed code is never imported.  Types are represented as dotted
name strings (``repro.core.flow.FlowNetwork``); :func:`type_is` compares
by terminal segment so fixtures that import a class the project cannot
see still resolve nominally.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.lint.runner import FileContext

__all__ = [
    "ProjectContext",
    "FunctionInfo",
    "ClassInfo",
    "build_project",
    "type_is",
]


def type_is(type_str: str | None, *names: str) -> bool:
    """True when ``type_str``'s terminal segment is one of ``names``.

    Comparing nominally (``...flow.FlowNetwork`` ≡ ``FlowNetwork``)
    lets rules match classes imported from modules outside the analyzed
    set — a single-file fixture importing FlowNetwork resolves the same
    way the real package does.
    """
    if not type_str:
        return False
    return type_str.rpartition(".")[2] in names


@dataclass
class FunctionInfo:
    """One function or method, with its resolution context."""

    qualname: str  # "module.Class.method" / "module.func" / "…method.nested"
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    ctx: FileContext
    module: str
    class_qualname: str | None = None  # nearest enclosing class
    parent_qualname: str | None = None  # enclosing function, for nested defs
    nested: dict[str, str] = field(default_factory=dict)  # name -> qualname
    param_types: dict[str, str] = field(default_factory=dict)
    local_types: dict[str, str] = field(default_factory=dict)

    def own_nodes(self) -> Iterator[ast.AST]:
        """Walk this function's body, excluding nested function scopes."""
        stack: list[ast.AST] = list(ast.iter_child_nodes(self.node))
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda, ast.ClassDef)):
                continue
            stack.extend(ast.iter_child_nodes(node))

    def calls(self) -> Iterator[ast.Call]:
        for node in self.own_nodes():
            if isinstance(node, ast.Call):
                yield node


@dataclass
class ClassInfo:
    """One class: its methods and statically-known attribute types."""

    qualname: str  # "module.ClassName"
    name: str
    node: ast.ClassDef
    ctx: FileContext
    module: str
    methods: dict[str, str] = field(default_factory=dict)  # name -> qualname
    attr_types: dict[str, str] = field(default_factory=dict)
    set_attrs: set[str] = field(default_factory=set)  # statically set-typed
    elem_set_attrs: set[str] = field(default_factory=set)  # list/dict of sets
    dirty_attrs: list[str] = field(default_factory=list)  # *_dirty attributes


class ProjectContext:
    """The cross-file index deep rules run against."""

    def __init__(self, contexts: Iterable[FileContext]) -> None:
        self.files: list[FileContext] = sorted(contexts, key=lambda c: c.path)
        self.modules: dict[str, FileContext] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self._by_path: dict[str, FileContext] = {}
        self._class_by_name: dict[str, list[str]] = {}
        self._edges: dict[str, tuple[str, ...]] = {}
        for ctx in self.files:
            self._index_file(ctx)
        for info in self.functions.values():
            self._infer_local_types(info)
        for qualname in sorted(self.functions):
            self._edges[qualname] = tuple(
                t for t in (self.resolve_call(self.functions[qualname], c)
                            for c in self.functions[qualname].calls())
                if t is not None)

    # -- construction ----------------------------------------------------------

    @staticmethod
    def module_name(ctx: FileContext) -> str:
        if ctx.rel:
            dotted = ctx.rel[:-3].replace("/", ".")  # strip ".py"
            return dotted[:-9] if dotted.endswith(".__init__") else dotted
        stem = ctx.path.rsplit("/", 1)[-1]
        return stem[:-3] if stem.endswith(".py") else stem

    def _index_file(self, ctx: FileContext) -> None:
        module = self.module_name(ctx)
        self.modules[module] = ctx
        self._by_path[ctx.path] = ctx
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.ClassDef):
                self._index_class(ctx, module, stmt)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(ctx, module, stmt, f"{module}.{stmt.name}",
                                     class_qualname=None, parent=None)

    def _index_class(self, ctx: FileContext, module: str,
                     node: ast.ClassDef) -> None:
        qualname = f"{module}.{node.name}"
        info = ClassInfo(qualname=qualname, name=node.name, node=node,
                         ctx=ctx, module=module)
        self.classes[qualname] = info
        self._class_by_name.setdefault(node.name, []).append(qualname)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method_qual = f"{qualname}.{stmt.name}"
                info.methods[stmt.name] = method_qual
                self._index_function(ctx, module, stmt, method_qual,
                                     class_qualname=qualname, parent=None)
                self._collect_attrs(ctx, info, stmt)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name):
                self._record_attr(ctx, info, stmt.target.id, stmt.annotation)

    def _index_function(self, ctx: FileContext, module: str,
                        node: ast.FunctionDef | ast.AsyncFunctionDef,
                        qualname: str, *, class_qualname: str | None,
                        parent: FunctionInfo | None) -> None:
        info = FunctionInfo(qualname=qualname, name=node.name, node=node,
                            ctx=ctx, module=module,
                            class_qualname=class_qualname,
                            parent_qualname=parent.qualname if parent else None)
        self.functions[qualname] = info
        args = node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            ann_type = self._annotation_type(ctx, arg.annotation)
            if ann_type:
                info.param_types[arg.arg] = ann_type
        for child in info.own_nodes():
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested_qual = f"{qualname}.{child.name}"
                info.nested[child.name] = nested_qual
                self._index_function(ctx, module, child, nested_qual,
                                     class_qualname=class_qualname,
                                     parent=info)

    def _collect_attrs(self, ctx: FileContext, info: ClassInfo,
                       method: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        for node in ast.walk(method):
            if isinstance(node, ast.AnnAssign) and _is_self_attr(node.target):
                self._record_attr(ctx, info, node.target.attr, node.annotation)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if not _is_self_attr(target):
                        continue
                    attr = target.attr
                    if attr.endswith("_dirty") and attr not in info.dirty_attrs:
                        info.dirty_attrs.append(attr)
                    if isinstance(node.value, (ast.Set, ast.SetComp)):
                        info.set_attrs.add(attr)
                    elif isinstance(node.value, ast.Call):
                        dotted = ctx.dotted_name(node.value.func)
                        if dotted in ("set", "frozenset"):
                            info.set_attrs.add(attr)
                        elif dotted and _looks_like_class(dotted):
                            info.attr_types.setdefault(attr, dotted)

    def _record_attr(self, ctx: FileContext, info: ClassInfo, attr: str,
                     annotation: ast.expr | None) -> None:
        if attr.endswith("_dirty") and attr not in info.dirty_attrs:
            info.dirty_attrs.append(attr)
        if annotation is None:
            return
        if _annotation_is_set(ctx, annotation):
            info.set_attrs.add(attr)
        elif _annotation_elem_is_set(ctx, annotation):
            info.elem_set_attrs.add(attr)
        else:
            ann_type = self._annotation_type(ctx, annotation)
            if ann_type:
                info.attr_types.setdefault(attr, ann_type)

    def _infer_local_types(self, info: FunctionInfo) -> None:
        # Two passes so `net = self._net; n = net` resolves both names.
        for _ in (0, 1):
            for node in info.own_nodes():
                if isinstance(node, ast.AnnAssign) and isinstance(
                        node.target, ast.Name):
                    ann = self._annotation_type(info.ctx, node.annotation)
                    if ann:
                        info.local_types.setdefault(node.target.id, ann)
                elif (isinstance(node, ast.Assign) and len(node.targets) == 1
                        and isinstance(node.targets[0], ast.Name)):
                    inferred = self.expr_type(info, node.value)
                    if inferred:
                        info.local_types.setdefault(node.targets[0].id, inferred)

    # -- lookup ----------------------------------------------------------------

    def context_for_path(self, path: str) -> FileContext | None:
        return self._by_path.get(path)

    def class_info(self, type_str: str | None) -> ClassInfo | None:
        """The indexed class for a dotted type string, if the project
        holds it — by exact qualname, else by unique terminal name."""
        if not type_str:
            return None
        if type_str in self.classes:
            return self.classes[type_str]
        candidates = self._class_by_name.get(type_str.rpartition(".")[2], [])
        return self.classes[candidates[0]] if len(candidates) == 1 else None

    def expr_type(self, fn: FunctionInfo, expr: ast.expr) -> str | None:
        """Dotted type of ``expr``, or None when statically unknown."""
        if isinstance(expr, ast.Name):
            if expr.id in ("self", "cls") and fn.class_qualname:
                return fn.class_qualname
            return fn.local_types.get(expr.id) or fn.param_types.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self.expr_type(fn, expr.value)
            cls = self.class_info(base)
            return cls.attr_types.get(expr.attr) if cls else None
        if isinstance(expr, ast.Call):
            dotted = fn.ctx.dotted_name(expr.func)
            if dotted and _looks_like_class(dotted):
                return dotted
            target = self.resolve_call(fn, expr)
            if target and target in self.functions:
                callee = self.functions[target]
                return self._annotation_type(callee.ctx, callee.node.returns)
            return None
        if isinstance(expr, ast.NamedExpr):
            return self.expr_type(fn, expr.value)
        return None

    def resolve_call(self, fn: FunctionInfo, call: ast.Call) -> str | None:
        """Qualname of the function a call statically targets, if known."""
        return self.resolve_callable(fn, call.func)

    def resolve_callable(self, fn: FunctionInfo, func: ast.expr) -> str | None:
        if isinstance(func, ast.Name):
            scope: FunctionInfo | None = fn
            while scope is not None:  # nested defs shadow outward
                if func.id in scope.nested:
                    return scope.nested[func.id]
                scope = (self.functions.get(scope.parent_qualname)
                         if scope.parent_qualname else None)
            dotted = fn.ctx.dotted_name(func)
            if dotted and dotted in self.functions:
                return dotted
            if f"{fn.module}.{func.id}" in self.functions:
                return f"{fn.module}.{func.id}"
            return None
        if isinstance(func, ast.Attribute):
            recv_type = self.expr_type(fn, func.value)
            cls = self.class_info(recv_type)
            if cls:
                return cls.methods.get(func.attr)
            return None
        return None

    def resolve_func_refs(self, fn: FunctionInfo,
                          expr: ast.expr) -> list[str]:
        """Functions a callable-valued expression designates.

        Covers the three ways this repo passes callbacks: a bare name
        (nested def or module function), a bound method (``self._m`` /
        ``obj._m``), and a lambda trampoline, resolved one level into
        the call(s) its body makes.
        """
        if isinstance(expr, (ast.Name, ast.Attribute)):
            target = self.resolve_callable(fn, expr)
            return [target] if target else []
        if isinstance(expr, ast.Lambda):
            out: list[str] = []
            for node in ast.walk(expr.body):
                if isinstance(node, ast.Call):
                    target = self.resolve_callable(fn, node.func)
                    if target:
                        out.append(target)
            return out
        return []

    # -- call graph ------------------------------------------------------------

    def callees(self, qualname: str) -> tuple[str, ...]:
        return self._edges.get(qualname, ())

    def reachable(self, seeds: Iterable[str]) -> set[str]:
        """Transitive closure over resolved call edges, seeds included."""
        seen: set[str] = set()
        stack = [s for s in seeds if s in self.functions]
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            stack.extend(t for t in self.callees(cur) if t not in seen)
        return seen

    # -- annotations -----------------------------------------------------------

    def _annotation_type(self, ctx: FileContext,
                         annotation: ast.expr | None) -> str | None:
        return _annotation_type(ctx, annotation)


def _is_self_attr(node: ast.AST) -> bool:
    return (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id in ("self", "cls"))


def _looks_like_class(dotted: str) -> bool:
    """Constructor heuristic: the terminal segment is CapWords."""
    tail = dotted.rpartition(".")[2]
    return bool(tail) and tail[0].isupper()


def _annotation_type(ctx: FileContext,
                     annotation: ast.expr | None) -> str | None:
    """Dotted type named by an annotation, unwrapping Optional forms.

    ``FlowNetwork`` / ``"FlowNetwork"`` / ``FlowNetwork | None`` /
    ``Optional[FlowNetwork]`` all yield the FlowNetwork dotted name;
    container annotations yield None (no single class to resolve).
    """
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(annotation, (ast.Name, ast.Attribute)):
        dotted = ctx.dotted_name(annotation)
        if dotted and _looks_like_class(dotted):
            return dotted
        return None
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        return (_annotation_type(ctx, annotation.left)
                or _annotation_type(ctx, annotation.right))
    if isinstance(annotation, ast.Subscript):
        head = ctx.dotted_name(annotation.value) or ""
        if head.rpartition(".")[2] == "Optional":
            return _annotation_type(ctx, annotation.slice)
        return None
    return None


def _annotation_is_set(ctx: FileContext, annotation: ast.expr) -> bool:
    """``set[...]`` / ``frozenset[...]`` / ``Set[...]`` annotations."""
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return False
    if isinstance(annotation, ast.Subscript):
        annotation = annotation.value
    dotted = (ctx.dotted_name(annotation) or "") if isinstance(
        annotation, (ast.Name, ast.Attribute)) else ""
    return dotted.rpartition(".")[2] in (
        "set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet")


def _annotation_elem_is_set(ctx: FileContext, annotation: ast.expr) -> bool:
    """Container-of-sets annotations: ``list[set[str]]``,
    ``dict[int, set[str]]`` — indexing such an attribute yields a set."""
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return False
    if not isinstance(annotation, ast.Subscript):
        return False
    args = (annotation.slice.elts if isinstance(annotation.slice, ast.Tuple)
            else [annotation.slice])
    return any(_annotation_is_set(ctx, a) for a in args
               if isinstance(a, ast.expr))


def build_project(contexts: Iterable[FileContext]) -> ProjectContext:
    """Build the deep-rule index over already-parsed file contexts."""
    return ProjectContext(contexts)
