"""File loading, pragma parsing, and the lint drive loop.

The runner parses each file once into a :class:`FileContext` — source,
AST, parent links, import-alias map, and suppression pragmas — and hands
the context to every active rule.  Rules never re-read the file and never
import the code under analysis (pure ``ast``; linting a file has no side
effects and works on code whose imports are unavailable).

Suppression pragmas
-------------------
A finding is suppressed by a pragma naming its rule id::

    t0 = time.perf_counter()  # spider-lint: ignore[determinism] -- profiling only

A pragma on its own line applies to the next source line; a trailing
pragma applies to its own line.  The text after ``--`` is the
justification; the repo ratchet test requires one on every pragma.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.lint.findings import Finding
from repro.lint.registry import LintUsageError, Rule, resolve_rules

__all__ = [
    "FileContext",
    "LintReport",
    "Pragma",
    "parse_pragmas",
    "lint_source",
    "lint_paths",
    "run_lint",
    "iter_python_files",
    "cached_context",
    "clear_parse_cache",
    "parse_cache_stats",
]

_PRAGMA_RE = re.compile(
    r"#\s*spider-lint:\s*ignore\[(?P<ids>[A-Za-z0-9_\-, ]+)\]"
    r"(?:\s*--\s*(?P<reason>.*\S))?")


@dataclass(frozen=True)
class Pragma:
    """One ``# spider-lint: ignore[...]`` comment."""

    line: int  # line the pragma is written on (1-based)
    applies_to: int  # line whose findings it suppresses
    rule_ids: tuple[str, ...]
    reason: str  # justification text after "--" ("" if absent)


def parse_pragmas(source: str) -> list[Pragma]:
    """Extract suppression pragmas from ``source``.

    Line-based on purpose: pragmas are comments, and the ``ast`` module
    drops comments, so the scan is textual.  A pragma whose line holds no
    code applies to the next line; otherwise to its own.
    """
    pragmas = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _PRAGMA_RE.search(text)
        if not m:
            continue
        ids = tuple(s.strip() for s in m.group("ids").split(",") if s.strip())
        code_before = text[: m.start()].strip()
        applies_to = lineno if code_before else lineno + 1
        pragmas.append(Pragma(line=lineno, applies_to=applies_to,
                              rule_ids=ids, reason=m.group("reason") or ""))
    return pragmas


@dataclass
class FileContext:
    """Everything a rule needs to check one parsed file."""

    path: str  # path as reported in findings
    rel: str  # posix path from the package root ("repro/sim/rng.py"), or ""
    source: str
    tree: ast.Module
    pragmas: list[Pragma] = field(default_factory=list)
    _parents: dict[int, ast.AST] = field(default_factory=dict)
    import_aliases: dict[str, str] = field(default_factory=dict)

    @classmethod
    def parse(cls, source: str, path: str = "<string>") -> "FileContext":
        """Parse ``source`` into a context (raises ``SyntaxError`` as-is)."""
        tree = ast.parse(source, filename=path)
        ctx = cls(path=path, rel=_repro_rel(path), source=source, tree=tree,
                  pragmas=parse_pragmas(source))
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                ctx._parents[id(child)] = parent
        ctx.import_aliases = _collect_import_aliases(tree)
        return ctx

    # -- navigation -----------------------------------------------------------

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        cur = self.parent(node)
        while cur is not None:
            yield cur
            cur = self.parent(cur)

    def dotted_name(self, node: ast.AST) -> str | None:
        """Resolve ``np.random.default_rng`` → ``numpy.random.default_rng``.

        Walks an Attribute/Name chain down to a Name base and expands the
        base through this file's import aliases.  Returns ``None`` when
        the base is not a plain name (e.g. a call result or subscript) —
        such chains cannot be resolved statically and are never flagged.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(self.import_aliases.get(node.id, node.id))
        return ".".join(reversed(parts))

    def in_module(self, *rels: str) -> bool:
        """True when this file is one of the given package-relative modules
        (``"repro/sim/rng.py"``) or lives under a given package directory
        (``"repro/obs"``)."""
        return any(self.rel == r or self.rel.startswith(r + "/") for r in rels)

    def suppressed(self, finding: Finding) -> bool:
        return any(finding.line == p.applies_to and finding.rule_id in p.rule_ids
                   for p in self.pragmas)


def _repro_rel(path: str) -> str:
    """The path from the ``repro`` package root, for path-scoped exemptions.

    ``/root/repo/src/repro/sim/rng.py`` → ``repro/sim/rng.py``; paths not
    under a ``repro`` directory return ``""`` (no exemption applies, which
    is what fixture files in tests want).
    """
    parts = Path(path).as_posix().split("/")
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i:])
    return ""


def _collect_import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted things they import.

    ``import numpy as np`` → ``{"np": "numpy"}``;
    ``from datetime import datetime as dt`` → ``{"dt": "datetime.datetime"}``.
    Only top-of-chain names are expanded, which is all the rules need.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                aliases[a.asname or a.name.partition(".")[0]] = (
                    a.name if a.asname else a.name.partition(".")[0])
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for a in node.names:
                if a.name == "*":
                    continue
                aliases[a.asname or a.name] = f"{node.module}.{a.name}"
    return aliases


# -- parse cache ---------------------------------------------------------------
#
# One process may lint the same tree repeatedly (the fast pass and the
# deep pass in one CLI run, or a test suite exercising both); parsing
# dominates the wall clock, so contexts are cached keyed by
# (mtime_ns, size).  A file edited between runs misses and reparses.

_PARSE_CACHE: dict[str, tuple[int, int, FileContext]] = {}
_CACHE_STATS = {"hits": 0, "misses": 0}


def cached_context(path: Path) -> FileContext:
    """The parsed :class:`FileContext` for ``path``, from the cache when
    the file is unchanged (same mtime and size) since it was parsed."""
    key = str(path)
    try:
        stat = path.stat()
    except OSError as exc:
        raise LintUsageError(f"cannot read {path}: {exc}") from exc
    entry = _PARSE_CACHE.get(key)
    if entry is not None and entry[0] == stat.st_mtime_ns and entry[1] == stat.st_size:
        _CACHE_STATS["hits"] += 1
        return entry[2]
    _CACHE_STATS["misses"] += 1
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise LintUsageError(f"cannot read {path}: {exc}") from exc
    try:
        ctx = FileContext.parse(source, key)
    except SyntaxError as exc:
        raise LintUsageError(f"cannot parse {path}: {exc}") from exc
    _PARSE_CACHE[key] = (stat.st_mtime_ns, stat.st_size, ctx)
    return ctx


def clear_parse_cache() -> None:
    """Drop every cached context and zero the hit/miss counters."""
    _PARSE_CACHE.clear()
    _CACHE_STATS["hits"] = 0
    _CACHE_STATS["misses"] = 0


def parse_cache_stats() -> dict[str, int]:
    """Process-lifetime cache counters (``{"hits": ..., "misses": ...}``)."""
    return dict(_CACHE_STATS)


def lint_source(source: str, path: str = "<string>",
                rules: Iterable[Rule] | None = None) -> list[Finding]:
    """Lint one source string; the unit every test fixture goes through."""
    ctx = FileContext.parse(source, path)
    active = list(rules) if rules is not None else resolve_rules()
    findings = [f for rule in active for f in rule.check(ctx)
                if not ctx.suppressed(f)]
    return sorted(findings)


def iter_python_files(paths: Iterable[str]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files.

    A nonexistent path raises :class:`LintUsageError` — the CLI turns it
    into a clean exit-1 ``CliError``, matching the report/--trace error
    convention.
    """
    out: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            out.extend(sorted(p.rglob("*.py")))
        elif p.is_file():
            out.append(p)
        else:
            raise LintUsageError(f"no such file or directory: {raw}")
    return sorted(set(out))


@dataclass(frozen=True)
class LintReport:
    """One lint run: findings plus the run's accounting.

    ``cache_hits``/``cache_misses`` count parse-cache activity during
    this run only (surfaced in ``--format json`` under ``--deep``);
    ``deep`` records whether the whole-program pass ran.
    """

    findings: list[Finding]
    files: int
    cache_hits: int
    cache_misses: int
    deep: bool


def run_lint(paths: Iterable[str], *,
             select: Iterable[str] | None = None,
             ignore: Iterable[str] | None = None,
             deep: bool = False) -> LintReport:
    """Lint files and directories; the engine behind ``spider-repro lint``.

    The per-file rules always run.  Deep rules run when ``deep`` is true
    or when ``--select`` names one explicitly (selecting ``epoch-safety``
    and silently checking nothing would be a trap); they see one
    :class:`~repro.lint.project.ProjectContext` spanning every file of
    the run, and their findings honor the same per-line pragmas.
    """
    rules = resolve_rules(select, ignore)
    deep_rules = [r for r in rules if r.deep]
    run_deep = bool(deep_rules) and (
        deep or any(r.rule_id in set(select or ()) for r in deep_rules))
    before = parse_cache_stats()
    contexts = [cached_context(p) for p in iter_python_files(paths)]
    after = parse_cache_stats()

    findings: list[Finding] = []
    per_file = [r for r in rules if not r.deep]
    for ctx in contexts:
        findings.extend(f for rule in per_file for f in rule.check(ctx)
                        if not ctx.suppressed(f))
    if run_deep:
        from repro.lint.project import build_project

        project = build_project(contexts)
        for rule in deep_rules:
            for f in rule.check_project(project):
                ctx = project.context_for_path(f.path)
                if ctx is None or not ctx.suppressed(f):
                    findings.append(f)
    return LintReport(
        findings=sorted(findings),
        files=len(contexts),
        cache_hits=after["hits"] - before["hits"],
        cache_misses=after["misses"] - before["misses"],
        deep=run_deep,
    )


def lint_paths(paths: Iterable[str], *,
               select: Iterable[str] | None = None,
               ignore: Iterable[str] | None = None,
               deep: bool = False) -> list[Finding]:
    """The findings of :func:`run_lint` (compatibility surface)."""
    return run_lint(paths, select=select, ignore=ignore, deep=deep).findings
