"""Finding and severity types for spider-lint.

A finding is one violation of one rule at one source location.  Findings
are plain frozen dataclasses ordered by ``(path, line, col, rule_id)`` so
reports are stable across runs and platforms — the same determinism
discipline the linter itself enforces.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Severity", "Finding"]


class Severity(str, enum.Enum):
    """How a finding is treated by the CLI and CI gate.

    ``ERROR`` findings fail the run (exit status 1); ``WARNING`` findings
    are reported but do not affect the exit status.
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    severity: Severity = Severity.ERROR

    def render(self) -> str:
        """The one-line text-format rendering (``path:line:col: id message``)."""
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule_id} [{self.severity.value}] {self.message}")

    def to_dict(self) -> dict:
        """The JSON-format object (schema locked by tests/test_lint.py)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": self.severity.value,
            "message": self.message,
        }
