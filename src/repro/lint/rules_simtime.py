"""Sim-time purity: DES process generators stay free of real-world effects.

Processes on :class:`repro.sim.engine.Engine` are generator coroutines;
the engine interleaves their steps in event order.  A generator that
reads the wall clock, prints, or touches the filesystem makes the
*simulation output* depend on host speed and interleaving — exactly the
perturbation the paper's monitoring lesson warns against (observation
must never sit in the I/O path).  The rule is conservative and applies to
every generator function except ``@contextmanager`` bodies (those are
resource scopes, not processes): the repo's remaining generators are
either DES processes or deterministic value streams, and neither may
perform I/O.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.registry import Rule, register
from repro.lint.runner import FileContext
from repro.lint.rules_determinism import WALL_CLOCK_CALLS

__all__ = ["SimTimePurityRule"]

#: bare builtins that perform real-world I/O
_IO_BUILTINS = frozenset({"open", "input", "print", "breakpoint"})

#: dotted-call prefixes that reach the OS (os.path.* is pure path algebra)
_IO_PREFIXES = ("os.", "subprocess.", "shutil.", "socket.", "io.")
_PURE_PREFIXES = ("os.path.", "os.environ.get",)

#: attribute calls that read/write files (pathlib and file objects)
_IO_METHODS = frozenset({
    "write_text", "write_bytes", "read_text", "read_bytes",
    "unlink", "touch", "mkdir", "rmdir",
})


#: decorators that turn a generator into a context manager — not a DES
#: process, so the purity rule does not apply
_CM_DECORATORS = frozenset({"contextmanager", "asynccontextmanager"})


def _is_contextmanager(ctx: FileContext,
                       fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for dec in fn.decorator_list:
        dotted = ctx.dotted_name(dec)
        if dotted is not None and dotted.split(".")[-1] in _CM_DECORATORS:
            return True
    return False


def _yields_directly(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """True when ``fn`` itself is a generator (yields not inside a nested
    function — those belong to the inner function)."""
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue  # nested scope: its yields are not ours
        stack.extend(ast.iter_child_nodes(node))
    return False


def _own_nodes(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Walk ``fn``'s body without descending into nested function scopes."""
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


@register
class SimTimePurityRule(Rule):
    """Generator functions must not read wall-clock or perform I/O."""

    rule_id = "simtime-purity"
    summary = ("generator functions (DES process bodies) perform no "
               "wall-clock reads, printing, or file/OS I/O")
    invariant = ("simulated timelines depend only on seeds and sim time; "
                 "observation and I/O never sit in the event path")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _yields_directly(node) or _is_contextmanager(ctx, node):
                continue
            for inner in _own_nodes(node):
                if not isinstance(inner, ast.Call):
                    continue
                dotted = ctx.dotted_name(inner.func)
                if dotted is not None:
                    impure = (
                        dotted in _IO_BUILTINS
                        or dotted in WALL_CLOCK_CALLS
                        or (dotted.startswith(_IO_PREFIXES)
                            and not dotted.startswith(_PURE_PREFIXES))
                    )
                    if impure:
                        yield self.finding(
                            ctx, inner,
                            f"{dotted}() inside generator {node.name!r}: "
                            f"DES processes must stay sim-time pure (no "
                            f"wall-clock, no I/O)")
                        continue
                if (isinstance(inner.func, ast.Attribute)
                        and inner.func.attr in _IO_METHODS):
                    yield self.finding(
                        ctx, inner,
                        f".{inner.func.attr}() inside generator "
                        f"{node.name!r}: DES processes must stay sim-time "
                        f"pure (no file I/O)")
