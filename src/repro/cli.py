"""``spider-repro`` — command-line front end for the reproduction.

Subcommands map one-to-one onto the paper's activities::

    spider-repro inventory              # Figure 1 census + hero numbers
    spider-repro layers                 # Lesson 12 bottom-up profile
    spider-repro ior -n 6048 --ppn 16   # a Figure 3/4-style IOR run
    spider-repro scaling                # the full Figure 4 series
    spider-repro culling                # the §V-A culling campaign
    spider-repro incident --enclosures 5
    spider-repro placement              # the Figure 2 cabinet map
    spider-repro workload               # the §II characterization
    spider-repro interference           # the §II latency-contention study
    spider-repro sched                  # multi-tenant scheduler + QoS caps
    spider-repro recovery --imperative  # failover + router-failure recovery
    spider-repro suite --ssu 1          # the §III-B acceptance suite
    spider-repro reliability --years 20 # failure/rebuild exposure
    spider-repro chaos --faults 12      # a fault-injection campaign
    spider-repro chaos --remediate      # same campaign, closed-loop repairs
    spider-repro resilience             # manual vs automated paired study
    spider-repro monitor                # in-band monitoring overlay campaign
    spider-repro monitor --study        # analytic vs observed MTTD (A16)
    spider-repro meta --files 1000000   # small-file tier paired study (A18)
    spider-repro storm                  # hot-spot storm, static vs flowlet (A19)
    spider-repro ior --trace t.json     # same run, Chrome-trace recorded
    spider-repro report t.json          # Lesson-12 layer table from a trace
    spider-repro lint src/repro         # spider-lint invariant checker

Every subcommand prints the same rendered report its benchmark archives.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager

from repro.units import (
    DAY,
    GB,
    HOUR,
    KiB,
    MS,
    fmt_bandwidth,
    fmt_duration,
    fmt_size,
)

__all__ = ["main", "build_parser", "CliError"]

#: acceptance scale for `spider-repro meta`: the 10^6-file untar storm
_META_DEFAULT_FILES = 1_000_000


class CliError(Exception):
    """A user-facing command failure: printed to stderr, exit status 1,
    no traceback (bad paths, unreadable inputs)."""


@contextmanager
def _tracing(trace_path: str | None):
    """Enable the telemetry registry + sim-time tracer for the duration of
    a subcommand and write the Chrome-trace file on the way out.

    Yields ``(telemetry, tracer)`` — both enabled — when ``trace_path`` is
    set, or ``(None, None)`` (leaving the disabled defaults in place) when
    it is not, so command bodies stay branch-free.
    """
    if trace_path is None:
        yield None, None
        return
    from repro.obs.instruments import Telemetry, use_telemetry
    from repro.obs.trace import Tracer, use_tracer

    # Fail on an unwritable path now, not after the benchmark has run.
    try:
        with open(trace_path, "w"):
            pass
    except OSError as exc:
        raise CliError(f"cannot write trace file: {exc}") from exc
    telemetry = Telemetry(enabled=True)
    tracer = Tracer(enabled=True)
    with use_telemetry(telemetry), use_tracer(tracer):
        yield telemetry, tracer
    tracer.write_chrome_trace(trace_path, telemetry=telemetry)
    print(f"\ntrace written: {trace_path} "
          f"(open in Perfetto / chrome://tracing)")
    print(f"layer report : spider-repro report {trace_path}")


def _cmd_inventory(args) -> int:
    from repro.analysis.reporting import render_kv
    from repro.core.spider import build_spider1, build_spider2

    build = build_spider1 if args.system == "spider1" else build_spider2
    system = build(seed=args.seed, build_clients=False)
    inv = system.inventory()
    print(render_kv([
        ("system", inv["system"]),
        ("SSUs", inv["ssus"]),
        ("disks", inv["disks"]),
        ("OSTs", inv["osts"]),
        ("OSS nodes", inv["osses"]),
        ("I/O routers", inv["routers"]),
        ("namespaces", inv["namespaces"]),
        ("capacity", fmt_size(inv["capacity_bytes"])),
        ("block-level aggregate",
         fmt_bandwidth(system.aggregate_bandwidth(fs_level=False))),
        ("fs-level aggregate",
         fmt_bandwidth(system.aggregate_bandwidth(fs_level=True))),
    ], title=f"{inv['system']} inventory"))
    return 0


def _cmd_layers(args) -> int:
    from repro.analysis.layers import profile_layers
    from repro.analysis.reporting import render_table
    from repro.core.spider import build_spider2

    system = build_spider2(seed=args.seed, build_clients=False)
    profile = profile_layers(system, fs_level=not args.block)
    print(render_table(["layer", "ceiling", "loss vs below"],
                       profile.loss_table(),
                       title="Bottom-up layer profile (Lesson 12)"))
    return 0


def _cmd_ior(args) -> int:
    from repro.core.spider import build_spider2
    from repro.iobench.ior import IorRun

    system = build_spider2(seed=args.seed)
    if args.upgraded:
        system.upgrade_controllers()
    run = IorRun(system, n_processes=args.n_processes, ppn=args.ppn,
                 transfer_size=args.transfer_size * KiB,
                 placement=args.placement)
    with _tracing(args.trace) as (telemetry, tracer):
        engine = None
        if tracer is not None:
            from repro.obs.trace import instrument_engine
            from repro.sim.engine import Engine

            engine = Engine()
            instrument_engine(engine, telemetry=telemetry, tracer=tracer)
        result = run.run(engine)
        print(f"IOR write: {result.n_processes} processes, "
              f"{args.transfer_size} KiB transfers, "
              f"{result.placement} placement")
        print(f"  aggregate : {fmt_bandwidth(result.aggregate_bw)}")
        print(f"  per process: {fmt_bandwidth(result.per_process_bw)}")
        print(f"  data moved : {fmt_size(result.data_moved_bytes)} "
              f"in {result.stonewall_seconds:.0f} s (stonewall)")
    return 0


def _cmd_scaling(args) -> int:
    from repro.analysis.reporting import render_series
    from repro.core.spider import build_spider2
    from repro.iobench.ior import client_scaling

    system = build_spider2(seed=args.seed)
    if args.upgraded:
        system.upgrade_controllers()
    with _tracing(args.trace) as (telemetry, tracer):
        engine = None
        if tracer is not None:
            from repro.obs.trace import instrument_engine
            from repro.sim.engine import Engine

            engine = Engine()
            instrument_engine(engine, telemetry=telemetry, tracer=tracer)
        results = client_scaling(system, ppn=args.ppn, engine=engine)
        print(render_series(
            "processes", "write GB/s",
            [(r.n_processes, r.aggregate_bw / GB) for r in results],
            title="IOR client scaling (cf. Figure 4)"))
    return 0


def _cmd_culling(args) -> int:
    from repro.analysis.reporting import render_table
    from repro.core.spider import build_spider2
    from repro.ops.culling import CullingCampaign

    system = build_spider2(seed=args.seed, build_clients=False)
    campaign = CullingCampaign(system, threshold=args.threshold)
    result = campaign.run_full_campaign()
    rows = [
        (r.level, r.round_index, r.replaced,
         f"{r.metrics_after.worst_intra_ssu_spread:.1%}",
         f"{r.metrics_after.global_spread:.1%}")
        for r in result.rounds
    ]
    print(render_table(
        ["level", "round", "replaced", "intra-SSU after", "global after"],
        rows, title="Culling campaign (§V-A)"))
    print(f"\nblock-level: {result.replaced_at('block')} drives; "
          f"fs-level: {result.replaced_at('fs')} drives "
          f"(paper: ~1,500 + ~500)")
    return 0


def _cmd_incident(args) -> int:
    from repro.ops.incidents import replay_2010_incident

    outcome = replay_2010_incident(args.enclosures)
    print(f"2010 incident replay, {outcome.n_enclosures}-enclosure design:")
    print(f"  worst effective erasures : {outcome.max_effective_erasures}")
    if outcome.journal_replay_failed:
        print(f"  journal replay           : FAILED")
        print(f"  files lost               : {outcome.files_lost:,}")
        print(f"  recovered                : {outcome.recovery_rate:.0%} "
              f"over {outcome.recovery_days:.1f} days")
    else:
        print(f"  journal replay           : tolerated, no data loss")
    return 0


def _cmd_placement(args) -> int:
    from repro.core.placement import evenly_spaced_placement, render_cabinet_map

    print(render_cabinet_map(evenly_spaced_placement()))
    return 0


def _cmd_workload(args) -> int:
    from repro.analysis.reporting import render_table
    from repro.analysis.workload_stats import characterize
    from repro.workloads.mixed import spider_mixed_workload

    _wl, trace = spider_mixed_workload(duration=args.hours * HOUR,
                                       seed=args.seed)
    print(render_table(["metric", "value"], characterize(trace).rows(),
                       title="Center-wide mixed workload (§II)"))
    return 0


def _cmd_interference(args) -> int:
    from repro.analysis.interference import measure_interference
    from repro.analysis.reporting import render_table

    result = measure_interference(seed=args.seed)
    print(render_table(["metric", "value"], result.rows(),
                       title="Checkpoint-vs-analytics interference (§II)"))
    return 0


def _cmd_sched(args) -> int:
    from repro.analysis.reporting import render_kv, render_table
    from repro.core.spider import build_spider2
    from repro.faults import FaultPlan
    from repro.sched import FacilityScheduler, JobMix, QosPolicy, generate_jobs

    if args.duration <= 0:
        raise CliError("--duration must be positive")
    if args.rate_scale <= 0:
        raise CliError("--rate-scale must be positive")
    if args.faults < 0:
        raise CliError("--faults must be non-negative")

    def run(policy):
        # Fresh system per run: fault injectors mutate it in place.
        system = build_spider2(seed=args.seed, build_clients=False)
        backbone = system.aggregate_bandwidth(fs_level=True)
        jobs = generate_jobs(JobMix().scaled(args.rate_scale),
                             duration=args.duration, seed=args.seed,
                             reference_bandwidth=backbone)
        plan = None
        if args.faults:
            plan = FaultPlan.random(system, duration=args.duration,
                                    n_faults=args.faults, seed=args.seed)
        return FacilityScheduler(system, jobs, policy=policy,
                                 fault_plan=plan, seed=args.seed).run()

    with _tracing(args.trace):
        for title, result in (
            ("QoS caps disabled (as-deployed)", run(QosPolicy.disabled())),
            ("QoS caps enabled (Lesson 1 knob)", run(QosPolicy())),
        ):
            print(render_table(
                ["class", "jobs", "done", "slowdown", "p95", "stretch",
                 "bw sat", "fairness"],
                result.class_rows(),
                title=f"Per-class outcomes — {title}"))
            rows = [
                ("jobs generated / submitted",
                 f"{result.n_jobs} / {result.n_submitted}"),
                ("finished / censored",
                 f"{result.n_finished} / {result.n_censored}"),
                ("fault events", result.n_fault_events),
                ("makespan", fmt_duration(result.makespan)),
                ("overall fairness (Jain)",
                 f"{result.overall_fairness:.3f}"),
            ]
            lp = result.latency
            if lp is not None:
                rows += [
                    ("analytics read p99, alone",
                     f"{lp.alone_p99 / MS:.1f} ms"),
                    ("analytics read p99, shared",
                     f"{lp.shared_p99 / MS:.1f} ms"),
                    ("p99 inflation", f"{lp.p99_inflation:.1f}x"),
                ]
            print(render_kv(rows, title="Run summary"))
            print()
    return 0


def _cmd_recovery(args) -> int:
    from repro.analysis.reporting import render_table
    from repro.lustre.recovery import simulate_recovery, simulate_router_failure

    with _tracing(args.trace):
        outcome = simulate_recovery(imperative=args.imperative,
                                    hp_journaling=args.hp_journaling,
                                    seed=args.seed)
        print(render_table(["metric", "value"], outcome.rows(),
                           title="OSS failover recovery (§IV-D)"))
        router = simulate_router_failure(arn=args.imperative, seed=args.seed)
        print()
        print(render_table(["metric", "value"], router.rows(),
                           title="Router failure"))
    return 0


def _cmd_suite(args) -> int:
    from repro.analysis.reporting import render_table
    from repro.core.spider import build_spider2
    from repro.iobench.suite import AcceptanceSuite

    system = build_spider2(seed=args.seed, build_clients=False)
    with _tracing(args.trace):
        report = AcceptanceSuite(system).run_ssu(args.ssu)
        print(render_table(["metric", "value"], report.rows(),
                           title=f"Acceptance suite, SSU {args.ssu} (§III-B)"))
    return 0


def _cmd_report(args) -> int:
    from repro.obs.report import render_layer_report
    from repro.obs.trace import read_chrome_trace

    try:
        snapshot = read_chrome_trace(args.trace).get("telemetry")
    except (OSError, ValueError) as exc:
        raise CliError(f"cannot read trace: {exc}") from exc
    if not snapshot:
        raise CliError(
            f"no telemetry snapshot embedded in {args.trace}; "
            f"re-record with a --trace-enabled subcommand")
    print(render_layer_report(snapshot))
    return 0


def _cmd_chaos(args) -> int:
    from repro.analysis.reporting import render_kv, render_table
    from repro.core.spider import build_spider1, build_spider2
    from repro.faults import (
        FaultCampaign,
        FaultPlan,
        cable_failure_scenario,
        incident_2010_scenario,
    )

    # The 2010 incident needs the five-enclosure Spider I geometry to
    # reproduce the RAID-tolerance breach; the other scenarios run on
    # Spider II.
    build = build_spider1 if args.scenario == "incident2010" else build_spider2
    system = build(seed=args.seed)
    remediation = None
    if args.remediate:
        from repro.resilience import RemediationPolicy

        remediation = RemediationPolicy(seed=args.seed)
    with _tracing(args.trace):
        if args.scenario == "random":
            plan = FaultPlan.random(system, duration=args.duration,
                                    n_faults=args.faults, seed=args.seed)
        elif args.scenario == "cable":
            plan = cable_failure_scenario(system)
        else:
            plan = incident_2010_scenario(system)
        campaign = FaultCampaign(
            system, plan,
            duration=args.duration if args.scenario == "random" else None,
            threshold=args.threshold,
            remediation=remediation)
        result = campaign.run()

        rows = [(f"{t:>10,.0f}", fmt_bandwidth(bw), label)
                for t, bw, label in result.timeline]
        print(render_table(
            ["t (s)", "delivered bw", "event"], rows,
            title=f"Bandwidth-degradation timeline ({args.scenario})"))
        print()
        print(render_kv([
            ("faults injected / repaired",
             f"{result.n_injected} / {result.n_repaired}"),
            ("baseline bandwidth", fmt_bandwidth(result.baseline_bw)),
            ("worst-case bandwidth", fmt_bandwidth(result.worst_bw)),
            ("availability", f"{result.availability:.2%}"),
            (f"time below {result.threshold:.0%} of baseline",
             f"{result.time_below_threshold:,.0f} s "
             f"({result.below_threshold_fraction():.1%})"),
            ("unroutable probe flows", result.unroutable_flows),
        ], title="Campaign metrics"))
        if result.recovery_stats:
            worst = dict(result.recovery_times)
            print()
            print(render_table(
                ["fault class", "events", "mean recovery", "worst recovery"],
                [(cls, str(n), f"{mean:,.0f} s", f"{worst[cls]:,.0f} s")
                 for cls, n, mean in result.recovery_stats],
                title="Recovery time per fault class"))
        if result.remediation is not None:
            print()
            print(render_kv(result.remediation.rows(),
                            title="Closed-loop remediation"))
            if result.remediation.by_class:
                print()
                print(render_table(
                    ["fault class", "remediated", "mean MTTD", "mean MTTR"],
                    result.remediation.class_rows(),
                    title="MTTD/MTTR decomposition per fault class"))
        print()
        print(render_table(
            ["classification", "incidents"],
            list(result.incident_counts),
            title="Health-checker incident triage (§IV-A)"))
    return 0


def _cmd_resilience(args) -> int:
    from repro.analysis.reporting import render_kv, render_table
    from repro.core.spider import build_spider2
    from repro.faults import FaultPlan, cable_failure_scenario
    from repro.resilience import run_paired_study

    seed = args.seed
    if args.scenario == "cable":
        plan_factory = cable_failure_scenario
        duration = None
    else:
        duration = args.duration

        def plan_factory(system):
            return FaultPlan.random(system, duration=args.duration,
                                    n_faults=args.faults, seed=seed)

    with _tracing(args.trace):
        result = run_paired_study(
            lambda: build_spider2(seed=seed),
            plan_factory,
            seed=seed,
            duration=duration,
            threshold=args.threshold)
        print(render_table(
            ["metric", "manual", "automated", "standard-recovery"],
            result.rows(),
            title=f"Manual vs closed-loop remediation ({args.scenario})"))
        print()
        print(render_kv([
            ("blackout reduction",
             f"{result.blackout_reduction_seconds:,.0f} s"),
            ("availability gain", f"{result.availability_gain:+.4%}"),
        ], title="Automated vs manual delta"))
        outcome = result.automated.remediation
        if outcome is not None:
            print()
            print(render_kv(outcome.rows(),
                            title="Closed-loop pipeline (automated arm)"))
            if outcome.by_class:
                print()
                print(render_table(
                    ["fault class", "remediated", "mean MTTD", "mean MTTR"],
                    outcome.class_rows(),
                    title="MTTD/MTTR decomposition per fault class"))
    return 0


def _cmd_monitor(args) -> int:
    from repro.analysis.reporting import render_kv, render_table
    from repro.core.spider import build_spider2
    from repro.faults import FaultCampaign, FaultPlan, cable_failure_scenario
    from repro.obs.overlay import (
        MonitoringOverlay,
        OverlayConfig,
        run_mttd_study,
    )
    from repro.resilience import RemediationPolicy

    if args.faults < 0:
        raise CliError("--faults must be non-negative")
    if args.duration <= 0:
        raise CliError("--duration must be positive")
    try:
        config = OverlayConfig(
            scrape_interval=args.scrape_interval,
            hop_latency=args.hop_latency,
            fan_in=args.fan_in,
            loss_probability=args.loss,
            rollup_interval=args.rollup_interval,
            seed=args.seed)
    except ValueError as exc:
        raise CliError(str(exc)) from exc

    seed = args.seed
    if args.scenario == "cable":
        plan_factory = cable_failure_scenario
        duration = None
    else:
        duration = args.duration

        def plan_factory(system):
            return FaultPlan.random(system, duration=args.duration,
                                    n_faults=args.faults, seed=seed)

    with _tracing(args.trace):
        if args.study:
            result = run_mttd_study(
                lambda: build_spider2(seed=seed),
                plan_factory,
                seed=seed,
                duration=duration,
                threshold=args.threshold,
                base=config)
            print(render_table(
                ["metric", "analytic", "observed", "tight"],
                result.rows(),
                title=f"Analytic vs observed detection ({args.scenario})"))
            print()
            print(render_kv([
                ("monitoring-pipeline MTTD penalty",
                 f"{result.observed_penalty_seconds:+,.1f} s"),
                ("cadence/fan-in tightening gain",
                 f"{result.tightening_gain_seconds:,.1f} s"),
            ], title="Observed vs analytic deltas"))
            return 0

        system = build_spider2(seed=seed)
        plan = plan_factory(system)
        monitor = MonitoringOverlay(system, config)
        result = FaultCampaign(
            system, plan,
            duration=duration,
            threshold=args.threshold,
            remediation=RemediationPolicy(seed=seed),
            monitor=monitor).run()
        overlay = result.overlay
        assert overlay is not None
        print(render_kv(overlay.rows(),
                        title="In-band monitoring overlay"))
        if overlay.alerts:
            print()
            print(render_table(
                ["fired at", "rule", "source", "value"],
                overlay.alert_rows(),
                title="Alerts (overlay view, never ground truth)"))
        if result.remediation is not None:
            print()
            print(render_kv(
                result.remediation.rows(),
                title="Closed-loop remediation (overlay-backed detector)"))
        print()
        print(render_kv([
            ("faults injected / repaired",
             f"{result.n_injected} / {result.n_repaired}"),
            ("availability", f"{result.availability:.2%}"),
            ("worst-case bandwidth", fmt_bandwidth(result.worst_bw)),
        ], title="Campaign metrics"))
    return 0


def _cmd_meta(args) -> int:
    from repro.analysis.reporting import render_kv, render_table
    from repro.metatier import MetaStudySpec, run_meta_study, tradeoff_rows

    if args.files < 1:
        raise CliError("--files must be positive")
    if args.shards < 1:
        raise CliError("--shards must be positive")
    if not (0.0 <= args.cache_hit <= 1.0):
        raise CliError("--cache-hit must be in [0, 1]")
    spec = MetaStudySpec(
        n_files=args.files,
        seed=args.seed,
        n_shards=args.shards,
        n_stores=args.stores,
        cache_hit_rate=args.cache_hit,
        with_faults=not args.no_faults,
    )
    with _tracing(args.trace):
        result = run_meta_study(spec)
        print(render_table(
            ["metric", "per-file (1 MDS)", f"aggregated ({spec.n_shards} MDT)"],
            result.rows(),
            title=f"Small-file metadata tier, {spec.n_files:,} files (A18)"))
        print()
        print(render_kv(result.baseline.rows(),
                        title="Per-file baseline"))
        print()
        print(render_kv(result.aggregated.rows(),
                        title="Aggregated tier (needles + DNE shards)"))
        print()
        print(render_table(
            ["scheme", "raw capacity", "read bw", "rebuild"],
            tradeoff_rows(),
            title="Warm-tier encoding tradeoff (f4 vs RAID-6+replica)"))
        print()
        print(render_kv([
            ("metadata throughput gain",
             f"{result.throughput_gain:,.1f}x"),
            ("MDS makespan removed",
             f"{result.mds_seconds_removed:,.1f} s"),
        ], title="Headline"))
    return 0


def _cmd_storm(args) -> int:
    from dataclasses import replace

    from repro.analysis.reporting import render_kv, render_table
    from repro.core.spider import SPIDER2, build_spider2
    from repro.network.storm import run_storm_study

    if args.clients < 1 or args.stripe < 1:
        raise CliError("--clients and --stripe must be positive")
    if args.link_bw <= 0:
        raise CliError("--link-bw must be positive")
    if not 0 < args.shed <= 1:
        raise CliError("--shed must be in (0, 1]")
    # The storm regime is scarce row bandwidth: the default --link-bw
    # models the per-node share of a Gemini row under contention, which
    # is what makes an all-to-one burst a *network* problem rather than
    # a storage one.
    spec = replace(SPIDER2, torus=replace(SPIDER2.torus,
                                          link_bw=args.link_bw * GB))
    seed = args.seed
    with _tracing(args.trace):
        result = run_storm_study(
            lambda: build_spider2(seed=seed, build_clients=False, spec=spec),
            seed=seed,
            n_storm_clients=args.clients,
            stripe=args.stripe,
            duration=args.duration,
            shed_fraction=args.shed,
        )
    print(render_table(
        ["metric", "static", "flowlet"],
        result.rows(),
        title="Hot-spot storm survival, static vs flowlet routing (A19)"))
    print()
    print(render_kv([
        ("storm window",
         f"{result.storm_start:,.0f}-{result.storm_end:,.0f} s of "
         f"{result.duration:,.0f} s"),
        ("storm clients on the row", str(result.n_storm_clients)),
        ("torus link bandwidth", fmt_bandwidth(args.link_bw * GB)),
        ("probe p99 recovery", f"{result.recovery_factor:,.1f}x"),
    ], title="A19 headline"))
    return 0


def _cmd_lint(args) -> int:
    import json

    from repro.lint import (
        LintUsageError,
        resolve_rules,
        run_lint,
        sarif_report,
    )

    def _ids(raw: str | None) -> list[str] | None:
        if raw is None:
            return None
        return [s.strip() for s in raw.split(",") if s.strip()]

    try:
        report = run_lint(args.paths, select=_ids(args.select),
                          ignore=_ids(args.ignore), deep=args.deep)
        rules = resolve_rules(_ids(args.select), _ids(args.ignore))
    except LintUsageError as exc:
        raise CliError(str(exc)) from exc
    findings = report.findings
    if args.format == "json":
        # The plain-array schema is frozen for the fast pass; --deep
        # wraps it in an object carrying the run's cache accounting.
        if report.deep:
            print(json.dumps({
                "findings": [f.to_dict() for f in findings],
                "files": report.files,
                "cache": {"hits": report.cache_hits,
                          "misses": report.cache_misses},
            }, indent=2))
        else:
            print(json.dumps([f.to_dict() for f in findings], indent=2))
    elif args.format == "sarif":
        print(json.dumps(sarif_report(findings, rules), indent=2))
    else:
        for finding in findings:
            print(finding.render())
        print(f"{len(findings)} finding(s)" if findings
              else "clean: no findings")
    return 1 if findings else 0


def _cmd_reliability(args) -> int:
    from repro.analysis.reporting import render_table
    from repro.ops.reliability import ReliabilitySim

    sim = ReliabilitySim(declustered=args.declustered, seed=args.seed)
    report = sim.run(years=args.years)
    mode = "declustered" if args.declustered else "conventional"
    print(render_table(["metric", "value"], report.rows(),
                       title=f"Failure/rebuild exposure ({mode} rebuilds)"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the ``spider-repro`` argument parser (one subparser per
    activity listed in the module docstring)."""
    parser = argparse.ArgumentParser(
        prog="spider-repro",
        description=__doc__.split("\n\n")[0],
    )
    parser.add_argument("--seed", type=int, default=2014,
                        help="simulation seed (default 2014)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("inventory", help="Figure 1 census + hero numbers")
    p.add_argument("--system", choices=("spider1", "spider2"),
                   default="spider2")
    p.set_defaults(fn=_cmd_inventory)

    p = sub.add_parser("layers", help="Lesson 12 bottom-up layer profile")
    p.add_argument("--block", action="store_true",
                   help="block-level profile (skip fs layers)")
    p.set_defaults(fn=_cmd_layers)

    p = sub.add_parser("ior", help="one IOR run")
    p.add_argument("-n", "--n-processes", type=int, default=1008)
    p.add_argument("--ppn", type=int, default=16)
    p.add_argument("--transfer-size", type=int, default=1024,
                   help="per-process transfer size in KiB (default 1024)")
    p.add_argument("--placement", choices=("random", "optimal"),
                   default="random")
    p.add_argument("--upgraded", action="store_true",
                   help="apply the 2014 controller upgrade first")
    p.add_argument("--trace", metavar="FILE",
                   help="record a Chrome-trace (Perfetto) file; the run "
                        "executes on a simulation engine")
    p.set_defaults(fn=_cmd_ior)

    p = sub.add_parser("scaling", help="the Figure 4 series")
    p.add_argument("--ppn", type=int, default=16)
    p.add_argument("--upgraded", action="store_true")
    p.add_argument("--trace", metavar="FILE",
                   help="record a Chrome-trace (Perfetto) file")
    p.set_defaults(fn=_cmd_scaling)

    p = sub.add_parser("culling", help="the §V-A culling campaign")
    p.add_argument("--threshold", type=float, default=0.05)
    p.set_defaults(fn=_cmd_culling)

    p = sub.add_parser("incident", help="the 2010 incident replay")
    p.add_argument("--enclosures", type=int, choices=(5, 10), default=5)
    p.set_defaults(fn=_cmd_incident)

    p = sub.add_parser("placement", help="the Figure 2 cabinet map")
    p.set_defaults(fn=_cmd_placement)

    p = sub.add_parser("workload", help="the §II characterization")
    p.add_argument("--hours", type=float, default=2.0)
    p.set_defaults(fn=_cmd_workload)

    p = sub.add_parser("interference", help="§II latency contention study")
    p.set_defaults(fn=_cmd_interference)

    p = sub.add_parser("sched",
                       help="center-wide multi-tenant scheduler + QoS caps")
    p.add_argument("--duration", type=float, default=DAY,
                   help="arrival window in seconds (default 1 day)")
    p.add_argument("--rate-scale", type=float, default=1.0,
                   help="multiply every class arrival rate (default 1.0)")
    p.add_argument("--faults", type=int, default=0,
                   help="inject a random fault campaign under load "
                        "(default 0: fault-free)")
    p.add_argument("--trace", metavar="FILE",
                   help="record a Chrome-trace (Perfetto) file")
    p.set_defaults(fn=_cmd_sched)

    p = sub.add_parser("recovery", help="failover + router-failure recovery")
    p.add_argument("--imperative", action="store_true",
                   help="imperative recovery / ARN enabled")
    p.add_argument("--hp-journaling", action="store_true")
    p.add_argument("--trace", metavar="FILE",
                   help="record a Chrome-trace (Perfetto) file with the "
                        "reconnect/replay/reroute spans")
    p.set_defaults(fn=_cmd_recovery)

    p = sub.add_parser("suite", help="the §III-B acceptance suite on one SSU")
    p.add_argument("--ssu", type=int, default=0)
    p.add_argument("--trace", metavar="FILE",
                   help="record a Chrome-trace (Perfetto) file")
    p.set_defaults(fn=_cmd_suite)

    p = sub.add_parser("report",
                       help="Lesson-12 layer table from a recorded trace")
    p.add_argument("trace", help="Chrome-trace file written by --trace")
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser("chaos", help="a fault-injection campaign")
    p.add_argument("--scenario", choices=("random", "cable", "incident2010"),
                   default="random",
                   help="random seeded campaign, the §IV-A cable case, or "
                        "the 2010 enclosure incident (default random)")
    p.add_argument("--faults", type=int, default=8,
                   help="fault count for the random scenario (default 8)")
    p.add_argument("--duration", type=float, default=DAY,
                   help="campaign window in seconds for the random "
                        "scenario (default 1 day)")
    p.add_argument("--threshold", type=float, default=0.5,
                   help="degradation threshold as a fraction of baseline "
                        "(default 0.5)")
    p.add_argument("--remediate", action="store_true",
                   help="close the loop: automated detection + playbook "
                        "repairs race the scripted plan")
    p.add_argument("--trace", metavar="FILE",
                   help="record a Chrome-trace (Perfetto) file")
    p.set_defaults(fn=_cmd_chaos)

    p = sub.add_parser("resilience",
                       help="manual vs closed-loop remediation paired study")
    p.add_argument("--scenario", choices=("cable", "week"), default="cable",
                   help="the §IV-A cable case or a random week-long plan "
                        "(default cable)")
    p.add_argument("--faults", type=int, default=10,
                   help="fault count for the week scenario (default 10)")
    p.add_argument("--duration", type=float, default=7 * DAY,
                   help="plan window in seconds for the week scenario "
                        "(default 7 days)")
    p.add_argument("--threshold", type=float, default=0.5,
                   help="degradation threshold as a fraction of baseline "
                        "(default 0.5)")
    p.add_argument("--trace", metavar="FILE",
                   help="record a Chrome-trace (Perfetto) file with the "
                        "detect/decide/act/verify spans")
    p.set_defaults(fn=_cmd_resilience)

    p = sub.add_parser("monitor",
                       help="in-band monitoring overlay (MELT-style)")
    p.add_argument("--scenario", choices=("cable", "random"), default="cable",
                   help="the §IV-A cable case or a random seeded campaign "
                        "(default cable)")
    p.add_argument("--faults", type=int, default=8,
                   help="fault count for the random scenario (default 8)")
    p.add_argument("--duration", type=float, default=DAY,
                   help="campaign window in seconds for the random "
                        "scenario (default 1 day)")
    p.add_argument("--threshold", type=float, default=0.5,
                   help="degradation threshold as a fraction of baseline "
                        "(default 0.5)")
    p.add_argument("--scrape-interval", type=float, default=30.0,
                   help="per-agent scrape cadence in seconds (default 30)")
    p.add_argument("--rollup-interval", type=float, default=60.0,
                   help="collector rollup window in seconds (default 60)")
    p.add_argument("--fan-in", type=int, default=8,
                   help="aggregation-tree fan-in bound (default 8)")
    p.add_argument("--hop-latency", type=float, default=1.0,
                   help="per-hop tree propagation latency in seconds "
                        "(default 1)")
    p.add_argument("--loss", type=float, default=0.02,
                   help="per-batch loss probability (default 0.02)")
    p.add_argument("--study", action="store_true",
                   help="run the A16 triple: analytic vs observed vs "
                        "tightened-overlay MTTD on the same plan")
    p.add_argument("--trace", metavar="FILE",
                   help="record a Chrome-trace (Perfetto) file with the "
                        "overlay-sweep spans")
    p.set_defaults(fn=_cmd_monitor)

    p = sub.add_parser("meta",
                       help="small-file/metadata tier paired study (A18)")
    p.add_argument("--files", type=int, default=_META_DEFAULT_FILES,
                   help="tiny files in the untar storm (default 1,000,000)")
    p.add_argument("--shards", type=int, default=4,
                   help="MDT shards in the aggregated arm (default 4)")
    p.add_argument("--stores", type=int, default=2,
                   help="segment stores in the aggregated arm (default 2)")
    p.add_argument("--cache-hit", type=float, default=0.8,
                   help="needle-cache hit rate (default 0.8, the Haystack "
                        "number)")
    p.add_argument("--no-faults", action="store_true",
                   help="skip the scripted MDS-overload / OST-fill faults")
    p.add_argument("--trace", metavar="FILE",
                   help="record a Chrome-trace (Perfetto) file with the "
                        "untar/training/arm spans")
    p.set_defaults(fn=_cmd_meta)

    p = sub.add_parser("storm",
                       help="hot-spot storm survival paired study (A19)")
    p.add_argument("--clients", type=int, default=24,
                   help="storm readers clustered on one torus row "
                        "(default 24)")
    p.add_argument("--stripe", type=int, default=12,
                   help="OSTs the shared dataset is striped over "
                        "(default 12)")
    p.add_argument("--duration", type=float, default=2 * HOUR,
                   help="timeline length in seconds (default 2 hours)")
    p.add_argument("--link-bw", type=float, default=0.5,
                   help="torus link bandwidth in GB/s — the scarce-row "
                        "regime that makes the storm a network problem "
                        "(default 0.5)")
    p.add_argument("--shed", type=float, default=0.05,
                   help="degraded-mode cap on the storm class as a "
                        "fraction of aggregate bandwidth (default 0.05)")
    p.add_argument("--trace", metavar="FILE",
                   help="record a Chrome-trace (Perfetto) file with the "
                        "overlay-sweep spans")
    p.set_defaults(fn=_cmd_storm)

    p = sub.add_parser("reliability", help="failure/rebuild exposure")
    p.add_argument("--years", type=float, default=10.0)
    p.add_argument("--declustered", action="store_true")
    p.set_defaults(fn=_cmd_reliability)

    p = sub.add_parser("lint", help="spider-lint invariant checker")
    p.add_argument("paths", nargs="*", default=["src/repro"],
                   help="files or directories to lint (default src/repro)")
    p.add_argument("--format", choices=("text", "json", "sarif"),
                   default="text",
                   help="findings as file:line:col lines, a JSON array, "
                        "or a SARIF 2.1.0 log for code scanning")
    p.add_argument("--select", metavar="IDS",
                   help="comma-separated rule ids to run (default: all)")
    p.add_argument("--ignore", metavar="IDS",
                   help="comma-separated rule ids to skip")
    p.add_argument("--deep", action="store_true",
                   help="run the whole-program dataflow pass "
                        "(epoch-safety, telemetry-taint, dirty-state, "
                        "cross-iter-order)")
    p.set_defaults(fn=_cmd_lint)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point: parse ``argv``, run the subcommand, return its exit
    status (``CliError`` prints to stderr and exits 1, no traceback)."""
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except CliError as exc:
        print(f"spider-repro: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
