"""Disk enclosures and the enclosure-to-RAID-group slot mapping.

The 2010 human-error incident (§IV-E, Lesson 11) hinges on this geometry:
Spider I distributed each 10-disk RAID-6 group evenly across **five** disk
enclosures (two members per enclosure), so a single enclosure outage removed
*two* members of every group behind that controller couplet.  Combined with
one member already rebuilding, that exceeds RAID-6's two-erasure tolerance.
A **ten**-enclosure layout (one member per enclosure) tolerates the same
compound failure.  :class:`EnclosureGroup` builds either layout so the
incident replay (`repro.ops.incidents`) can compare them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Enclosure", "EnclosureGroup"]


@dataclass
class Enclosure:
    """A physical drive shelf holding a contiguous set of slots."""

    index: int
    slots: list[int] = field(default_factory=list)  # global disk indices
    online: bool = True

    def __len__(self) -> int:
        return len(self.slots)


class EnclosureGroup:
    """The shelves behind one controller couplet, plus the slot mapping
    that assigns RAID-group members to enclosures.

    Parameters
    ----------
    n_enclosures:
        Shelves behind the couplet (5 in the Spider I incident design,
        10 in the design that would have tolerated it).
    disks_per_enclosure:
        Slots per shelf.
    raid_width:
        Members per RAID group (10 for 8+2).

    The mapping stripes each RAID group across enclosures round-robin, so a
    group touches ``min(n_enclosures, raid_width)`` distinct shelves and has
    ``ceil(raid_width / n_enclosures)`` members on each.
    """

    def __init__(
        self,
        n_enclosures: int,
        disks_per_enclosure: int,
        raid_width: int = 10,
        first_disk_index: int = 0,
    ) -> None:
        if n_enclosures <= 0 or disks_per_enclosure <= 0:
            raise ValueError("enclosure geometry must be positive")
        if raid_width <= 0:
            raise ValueError("raid_width must be positive")
        total = n_enclosures * disks_per_enclosure
        if total % raid_width != 0:
            raise ValueError(
                f"{n_enclosures}x{disks_per_enclosure} slots not divisible "
                f"by raid_width={raid_width}"
            )
        self.n_enclosures = n_enclosures
        self.disks_per_enclosure = disks_per_enclosure
        self.raid_width = raid_width
        self.first_disk_index = first_disk_index
        self.n_groups = total // raid_width

        self.enclosures = [Enclosure(index=i) for i in range(n_enclosures)]
        # group_members[g][k] -> global disk index of member k of group g
        self.group_members: list[list[int]] = [[] for _ in range(self.n_groups)]
        # member_enclosure[g][k] -> enclosure index of that member
        self.member_enclosure: list[list[int]] = [[] for _ in range(self.n_groups)]

        # Round-robin striping across shelves: member k of group g lives in
        # enclosure (k mod n_enclosures), in a slot dedicated to (g, k).
        per_enclosure_cursor = [0] * n_enclosures
        for g in range(self.n_groups):
            for k in range(raid_width):
                e = k % n_enclosures
                slot_in_enclosure = per_enclosure_cursor[e]
                if slot_in_enclosure >= disks_per_enclosure:
                    raise ValueError("enclosure overflow; geometry inconsistent")
                per_enclosure_cursor[e] += 1
                disk_index = (
                    first_disk_index + e * disks_per_enclosure + slot_in_enclosure
                )
                self.enclosures[e].slots.append(disk_index)
                self.group_members[g].append(disk_index)
                self.member_enclosure[g].append(e)

    def members_per_enclosure(self, group: int) -> dict[int, int]:
        """How many members of ``group`` sit in each enclosure it touches."""
        counts: dict[int, int] = {}
        for e in self.member_enclosure[group]:
            counts[e] = counts.get(e, 0) + 1
        return counts

    def unavailable_members(self, group: int) -> list[int]:
        """Member positions of ``group`` whose enclosure is offline."""
        return [
            k
            for k, e in enumerate(self.member_enclosure[group])
            if not self.enclosures[e].online
        ]

    def set_enclosure_online(self, enclosure: int, online: bool) -> None:
        self.enclosures[enclosure].online = online

    def max_members_lost_per_enclosure(self) -> int:
        """Worst-case RAID-group members taken out by one enclosure outage.

        This is the design metric of Lesson 11: 2 for the 5-enclosure
        Spider I layout, 1 for a 10-enclosure layout.
        """
        worst = 0
        for g in range(self.n_groups):
            worst = max(worst, max(self.members_per_enclosure(g).values()))
        return worst

    def all_disk_indices(self) -> np.ndarray:
        return np.array(
            [d for enc in self.enclosures for d in enc.slots], dtype=int
        )
