"""The Scalable System Unit (SSU): the procurement and integration
building block of the Spider II acquisition (§III-A).

"the procurement focused on the Scalable System Unit (SSU), a storage
building block composed of a vendor-defined set of storage devices suitable
for integration as an independent storage system.  The SOW defined the SSU
as the unit of configuration, pricing, benchmarking, and integration."

A Spider II SSU is modelled as: one controller couplet, ten drive shelves
of 56 drives (560 drives), organized as 56 RAID-6 (8+2) groups — one member
per shelf, the post-incident enclosure geometry.  36 SSUs give the paper's
20,160 drives and 2,016 OSTs.  The Spider I-era geometry (five shelves, two
members per shelf) is available via ``enclosures_per_ssu=5`` for the
incident replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hardware.controller import ControllerCouplet, ControllerSpec
from repro.hardware.disk import DiskPopulation, DiskSpec
from repro.hardware.enclosure import EnclosureGroup
from repro.hardware.raid import RaidGeometry, RaidGroup, RaidState, group_bandwidths
from repro.sim.rng import RngStreams

__all__ = ["SsuSpec", "Ssu"]


@dataclass(frozen=True)
class SsuSpec:
    """Configuration + pricing of one SSU (pricing in normalized units)."""

    n_enclosures: int = 10
    disks_per_enclosure: int = 56
    raid: RaidGeometry = field(default_factory=RaidGeometry)
    disk: DiskSpec = field(default_factory=DiskSpec)
    controller: ControllerSpec = field(default_factory=ControllerSpec)
    price: float = 1.0  # normalized capital cost per SSU
    power_kw: float = 22.0
    rack_units: int = 48

    def __post_init__(self) -> None:
        total = self.n_enclosures * self.disks_per_enclosure
        if total % self.raid.width != 0:
            raise ValueError(
                f"SSU of {total} drives not divisible into RAID width {self.raid.width}"
            )

    @property
    def n_disks(self) -> int:
        return self.n_enclosures * self.disks_per_enclosure

    @property
    def n_groups(self) -> int:
        return self.n_disks // self.raid.width

    @property
    def usable_capacity(self) -> int:
        return self.n_groups * self.raid.n_data * self.disk.capacity_bytes

    def nominal_block_bandwidth(self) -> float:
        """Expected block-level streaming bandwidth: the lesser of the raw
        RAID aggregate and the couplet cap (Lesson 12's layered min)."""
        raw = self.n_groups * self.raid.n_data * self.disk.seq_bw
        return min(raw, 2 * self.controller.block_bw_cap)


class Ssu:
    """A built SSU: drives + shelves + RAID groups + couplet.

    The SSU owns a contiguous index range ``[first_disk, first_disk +
    n_disks)`` inside a shared :class:`DiskPopulation`, so center-wide
    operations (culling across all 20,160 drives) stay vectorized.
    """

    def __init__(
        self,
        spec: SsuSpec,
        population: DiskPopulation,
        first_disk: int,
        *,
        index: int = 0,
        name: str | None = None,
    ) -> None:
        if first_disk < 0 or first_disk + spec.n_disks > population.n_disks:
            raise ValueError("SSU disk range outside population")
        self.spec = spec
        self.population = population
        self.first_disk = first_disk
        self.index = index
        self.name = name or f"ssu{index:02d}"

        self.enclosures = EnclosureGroup(
            n_enclosures=spec.n_enclosures,
            disks_per_enclosure=spec.disks_per_enclosure,
            raid_width=spec.raid.width,
            first_disk_index=first_disk,
        )
        self.couplet = ControllerCouplet(
            spec.controller, n_groups=spec.n_groups, name=f"{self.name}.couplet"
        )
        self.groups = [
            RaidGroup(
                spec.raid,
                population,
                self.enclosures.group_members[g],
                name=f"{self.name}.ost{g:02d}",
                declustered=True,
            )
            for g in range(spec.n_groups)
        ]
        #: (n_groups, width) member-index matrix for vectorized evaluation
        self.members_matrix = np.array(self.enclosures.group_members, dtype=int)

    @property
    def n_groups(self) -> int:
        return self.spec.n_groups

    def disk_indices(self) -> np.ndarray:
        return np.arange(self.first_disk, self.first_disk + self.spec.n_disks)

    # -- performance ----------------------------------------------------------

    def group_state_factors(self) -> np.ndarray:
        """Per-group redundancy-state multiplier: 1 clean, 0.6 while
        degraded/rebuilding (reconstruction competes with host I/O), 0 for
        a failed group (it moves nothing)."""
        return np.array([
            0.0 if g.state is RaidState.FAILED
            else (0.6 if g.state in (RaidState.DEGRADED, RaidState.REBUILDING)
                  else 1.0)
            for g in self.groups
        ])

    def group_raw_bandwidths(self, disk_bw: np.ndarray) -> np.ndarray:
        """Per-group raw streaming bandwidth with redundancy state applied.

        Like :func:`repro.hardware.raid.group_bandwidths` but state-aware:
        erased members (failed drives, offline shelves) are excluded from
        the min-of-members law — the group reconstructs around them — and
        the degraded/rebuilding/failed state factor is applied on top.  For
        an all-clean SSU this reduces exactly to the vectorized law.
        """
        per_member = disk_bw[self.members_matrix]
        erased_any = False
        for g, group in enumerate(self.groups):
            if group.erased:
                per_member[g, list(group.erased)] = np.inf
                erased_any = True
        raw = self.spec.raid.n_data * per_member.min(axis=1)
        state = self.group_state_factors()
        if erased_any:
            # A fully-erased (failed) group would leave inf×0; force to 0.
            return np.where(state > 0.0, raw * state, 0.0)
        if (state == 1.0).all():
            return raw
        return raw * state

    def group_streaming_bandwidths(self, *, fs_level: bool = False) -> np.ndarray:
        """Per-RAID-group streaming bandwidth, capped by the couplet share.

        Applies the min-of-members RAID law, each group's redundancy state
        (degraded/rebuilding groups pay the reconstruction penalty, failed
        groups move nothing), and then the controller fair share — the
        layered view of Lesson 12 inside an SSU.
        """
        disk_bw = self.population.bandwidths(fs_level=fs_level)
        raw = group_bandwidths(self.members_matrix, disk_bw, self.spec.raid.n_data)
        caps = self.couplet.group_share_caps(fs_level=fs_level)
        # Reconstruction I/O competes with host I/O through the whole group
        # path (spindles AND controller), so the penalty applies to the
        # delivered share, not only to the raw spindle rate.
        return np.minimum(raw, caps) * self.group_state_factors()

    def aggregate_bandwidth(self, *, fs_level: bool = False) -> float:
        return float(self.group_streaming_bandwidths(fs_level=fs_level).sum())

    def apply_enclosure_outage(self, enclosure: int) -> None:
        """Take one shelf offline, erasing the affected member of every
        group (two members per group in the 5-shelf Spider I geometry)."""
        self.enclosures.set_enclosure_online(enclosure, False)
        for g, group in enumerate(self.groups):
            for pos, enc in enumerate(self.enclosures.member_enclosure[g]):
                if enc == enclosure:
                    group.erase_member(pos)

    def restore_enclosure(self, enclosure: int) -> None:
        """Bring a shelf back; returning members must rebuild."""
        self.enclosures.set_enclosure_online(enclosure, True)
        for g, group in enumerate(self.groups):
            for pos, enc in enumerate(self.enclosures.member_enclosure[g]):
                if enc == enclosure:
                    group.restore_member(pos)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Ssu({self.name}, disks={self.spec.n_disks}, "
            f"groups={self.spec.n_groups})"
        )


def build_population_for(
    n_ssus: int, spec: SsuSpec, *, rng: RngStreams | None = None
) -> DiskPopulation:
    """A disk population sized for ``n_ssus`` SSUs of the given spec."""
    return DiskPopulation(n_ssus * spec.n_disks, spec.disk, rng=rng)
