"""Storage controller couplets (DDN S2A/SFA-class in the paper).

A *couplet* is a pair of active-active RAID controllers sharing the same
drive shelves.  Each controller normally owns half of the couplet's RAID
groups; on controller failure the partner assumes them all (with its own
bandwidth cap now shared by twice the groups).

Bandwidth calibration (§V-C)
----------------------------
The couplet caps are what pin Spider II's headline numbers:

* At the **block level** the couplet moves ``block_bw_cap`` ≈ 29 GB/s, so
  36 couplets ≈ 1.04 TB/s — "more than 1 TB/s" at acceptance.
* At the **file-system level** the original controller CPUs limited the
  couplet to ≈ 17.8 GB/s (18 couplets per namespace → 320 GB/s).  The 2014
  CPU/memory upgrade raised the fs-level cap to ≈ 28.3 GB/s (→ 510 GB/s per
  namespace), which experiment E6 reproduces.

The DDN-tool monitoring poller (`repro.monitoring.ddntool`) reads request
counters from these objects, mirroring how the real tool polled controller
APIs into a MySQL database.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.units import GB

__all__ = ["ControllerSpec", "Controller", "ControllerCouplet"]


@dataclass(frozen=True)
class ControllerSpec:
    """One controller's capability envelope."""

    block_bw_cap: float = 14.5 * GB  # bytes/s through one controller, block level
    fs_bw_cap: float = 8.9 * GB  # bytes/s at the Lustre/obdfilter level
    upgraded_fs_bw_cap: float = 14.2 * GB  # after the 2014 CPU/memory upgrade
    cache_bytes: int = 16 * GB
    max_iops: float = 400_000.0

    def __post_init__(self) -> None:
        if min(self.block_bw_cap, self.fs_bw_cap, self.upgraded_fs_bw_cap) <= 0:
            raise ValueError("bandwidth caps must be positive")
        if self.fs_bw_cap > self.block_bw_cap:
            raise ValueError("fs-level cap cannot exceed block-level cap")


@dataclass
class ControllerCounters:
    """Counters exposed to the monitoring poller (DDN-tool style)."""

    read_bytes: int = 0
    write_bytes: int = 0
    read_requests: int = 0
    write_requests: int = 0
    request_size_hist: dict[int, int] = field(default_factory=dict)

    def record(self, nbytes: int, *, write: bool, request_size: int) -> None:
        if write:
            self.write_bytes += nbytes
            self.write_requests += max(1, nbytes // max(request_size, 1))
        else:
            self.read_bytes += nbytes
            self.read_requests += max(1, nbytes // max(request_size, 1))
        self.request_size_hist[request_size] = (
            self.request_size_hist.get(request_size, 0) + 1
        )


class Controller:
    """One half of a couplet."""

    def __init__(self, spec: ControllerSpec, name: str) -> None:
        self.spec = spec
        self.name = name
        self.online = True
        self.upgraded = False
        self.counters = ControllerCounters()

    def bw_cap(self, *, fs_level: bool) -> float:
        if not self.online:
            return 0.0
        if not fs_level:
            return self.spec.block_bw_cap
        return self.spec.upgraded_fs_bw_cap if self.upgraded else self.spec.fs_bw_cap


class ControllerCouplet:
    """An active-active controller pair fronting a set of RAID groups.

    ``group_owner[g]`` gives the controller (0/1) currently serving group
    ``g``.  Failover reassigns a failed controller's groups to its partner.
    """

    def __init__(
        self,
        spec: ControllerSpec | None = None,
        n_groups: int = 56,
        name: str = "couplet",
    ) -> None:
        if n_groups <= 0:
            raise ValueError("n_groups must be positive")
        self.spec = spec or ControllerSpec()
        self.name = name
        self.controllers = (
            Controller(self.spec, f"{name}.a"),
            Controller(self.spec, f"{name}.b"),
        )
        self.n_groups = n_groups
        # Even/odd home assignment, the usual active-active split.
        self.home_owner = np.arange(n_groups) % 2
        self.group_owner = self.home_owner.copy()

    # -- failover ---------------------------------------------------------------

    def fail_controller(self, which: int) -> None:
        """Controller ``which`` dies; its partner assumes all its groups."""
        ctrl = self.controllers[which]
        ctrl.online = False
        partner = 1 - which
        if self.controllers[partner].online:
            self.group_owner[self.group_owner == which] = partner

    def restore_controller(self, which: int, *, failback: bool = True) -> None:
        self.controllers[which].online = True
        if failback:
            self.group_owner = np.where(
                np.array([c.online for c in self.controllers])[self.home_owner],
                self.home_owner,
                self.group_owner,
            )

    @property
    def online(self) -> bool:
        return any(c.online for c in self.controllers)

    def upgrade(self) -> None:
        """Apply the 2014 CPU/memory upgrade to both controllers."""
        for c in self.controllers:
            c.upgraded = True

    # -- performance --------------------------------------------------------------

    def bw_cap(self, *, fs_level: bool) -> float:
        """Aggregate couplet cap across online controllers."""
        return sum(c.bw_cap(fs_level=fs_level) for c in self.controllers)

    def group_share_caps(self, *, fs_level: bool) -> np.ndarray:
        """Fair-share bandwidth cap available to each RAID group.

        Each online controller's cap is split evenly over the groups it
        currently owns.  Groups owned by a dead controller with no partner
        get zero.
        """
        caps = np.zeros(self.n_groups)
        for which, ctrl in enumerate(self.controllers):
            owned = self.group_owner == which
            n_owned = int(owned.sum())
            if n_owned and ctrl.online:
                caps[owned] = ctrl.bw_cap(fs_level=fs_level) / n_owned
        return caps

    def record_io(self, nbytes: int, *, write: bool, request_size: int) -> None:
        """Account I/O against the couplet (both controllers see traffic in
        proportion to group ownership; we book it to the first online one)."""
        for ctrl in self.controllers:
            if ctrl.online:
                ctrl.counters.record(nbytes, write=write, request_size=request_size)
                return
