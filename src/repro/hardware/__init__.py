"""Storage hardware substrate: disks, enclosures, RAID arrays, controller
couplets, and the Scalable System Unit (SSU) building block.

All performance numbers flow from :class:`repro.hardware.disk.DiskSpec`
calibration upward, mirroring the paper's bottom-up tuning methodology
(Lesson 12): every layer's expected performance is derivable from the layer
below it, and each layer can only lose throughput, never create it.
"""

from repro.hardware.disk import DiskSpec, Disk, DiskPopulation, DiskState
from repro.hardware.enclosure import Enclosure, EnclosureGroup
from repro.hardware.raid import RaidGeometry, RaidGroup, RaidState
from repro.hardware.controller import ControllerSpec, ControllerCouplet
from repro.hardware.ssu import SsuSpec, Ssu

__all__ = [
    "DiskSpec",
    "Disk",
    "DiskPopulation",
    "DiskState",
    "Enclosure",
    "EnclosureGroup",
    "RaidGeometry",
    "RaidGroup",
    "RaidState",
    "ControllerSpec",
    "ControllerCouplet",
    "SsuSpec",
    "Ssu",
]
