"""Near-line SAS/SATA disk performance model.

Calibration (pinned to the paper)
---------------------------------
* Spider II used 20,160 × 2 TB near-line SAS drives.
* "a single SATA or near line SAS hard disk drive can achieve 20-25% of its
  peak performance under random I/O workloads (with 1 MB I/O block sizes)"
  (§III-A).  The random-access model below is calibrated so a nominal disk
  lands inside that band at a 1 MiB request size.
* Disk-to-disk variance is the subject of Lesson 13: a tail of fully
  functional but *slow* disks inflates RAID-group variance; OLCF culled
  ~1,500/20,160 at the block level and ~500 more at the file-system level.
  The model gives every disk a healthy-body speed factor (tight lognormal)
  plus two latent degradation mechanisms: a block-level slow tail (visible
  to block benchmarks) and an fs-level latency tail (visible only under the
  obdfilter-style workload, reproducing why a second culling round at the
  file-system level found *more* slow disks).

The performance law
-------------------
For request size ``s`` bytes the per-request service time is::

    t(s) = s / seq_bw                  (sequential, streaming)
    t(s) = access_time + s / seq_bw    (random, one head reposition)

so random efficiency is ``s / (s + seq_bw * access_time)``.  With the
default ``seq_bw`` = 140 MB/s and ``access_time`` = 25 ms, the 1 MiB random
efficiency is ≈ 0.23 — inside the paper's 20-25% band.  ``access_time`` is
an *effective* reposition cost (seek + rotation + head settle + on-disk
cache misses under deep queues), not a datasheet seek time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.sim.rng import RngStreams, lognormal_factors
from repro.units import MB, MiB, TB

__all__ = ["DiskSpec", "DiskState", "Disk", "DiskPopulation"]


@dataclass(frozen=True)
class DiskSpec:
    """Datasheet-level description of a drive model."""

    capacity_bytes: int = 2 * TB
    seq_bw: float = 140 * MB  # outer-zone streaming bandwidth, bytes/s
    access_time: float = 0.025  # effective random reposition time, seconds
    annual_failure_rate: float = 0.025  # AFR; drives Weibull-ish failures
    name: str = "nl-sas-2tb"

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        if self.seq_bw <= 0:
            raise ValueError("seq_bw must be positive")
        if self.access_time < 0:
            raise ValueError("access_time must be non-negative")
        if not (0 <= self.annual_failure_rate < 1):
            raise ValueError("annual_failure_rate must be in [0, 1)")

    def random_efficiency(self, request_size: int) -> float:
        """Fraction of streaming bandwidth delivered under random I/O at
        ``request_size`` bytes per request."""
        if request_size <= 0:
            raise ValueError("request_size must be positive")
        return request_size / (request_size + self.seq_bw * self.access_time)

    def bandwidth(self, request_size: int, sequential: bool) -> float:
        """Delivered bandwidth (bytes/s) for a single stream of requests."""
        if sequential:
            return self.seq_bw
        return self.seq_bw * self.random_efficiency(request_size)


class DiskState(enum.Enum):
    """Lifecycle of a drive as the RAID layer sees it."""

    HEALTHY = "healthy"
    FAILED = "failed"
    REPLACED = "replaced"  # culled (still functional) and swapped out


@dataclass
class Disk:
    """One physical drive: spec + individual performance personality."""

    spec: DiskSpec
    serial: str
    speed_factor: float = 1.0  # block-level multiplier on seq_bw
    fs_latency_factor: float = 1.0  # extra service-latency multiplier seen at fs level
    state: DiskState = DiskState.HEALTHY

    @property
    def seq_bw(self) -> float:
        return self.spec.seq_bw * self.speed_factor

    def bandwidth(self, request_size: int, sequential: bool, *, fs_level: bool = False) -> float:
        """Delivered bandwidth, optionally including fs-level latency drag.

        ``fs_level=True`` models the obdfilter-layer view, where drives with
        pathological service-latency tails (firmware, media retries) lose
        additional throughput that block-level streaming never exposes.
        """
        bw = self.spec.bandwidth(request_size, sequential) * self.speed_factor
        if fs_level:
            bw /= self.fs_latency_factor
        return bw


class DiskPopulation:
    """A vectorized population of drives (Spider II has 20,160).

    Internally keeps numpy arrays of the per-disk factors so the culling and
    benchmarking experiments can evaluate all drives at once; individual
    :class:`Disk` views are materialized lazily by :meth:`disk`.
    """

    #: Default incidence of the block-level slow tail (fraction of drives),
    #: calibrated so culling to the 5% envelope replaces ≈1,500 of 20,160
    #: drives, matching §V-A.
    BLOCK_SLOW_FRACTION = 0.0745
    #: Default incidence of the fs-level latency tail, calibrated to the
    #: ≈500 additional drives found by the file-system-level culling round.
    FS_SLOW_FRACTION = 0.0248

    def __init__(
        self,
        n_disks: int,
        spec: DiskSpec | None = None,
        *,
        rng: RngStreams | None = None,
        healthy_sigma: float = 0.012,
        block_slow_fraction: float | None = None,
        fs_slow_fraction: float | None = None,
        serial_prefix: str = "Z1X",
    ) -> None:
        if n_disks <= 0:
            raise ValueError("n_disks must be positive")
        self.spec = spec or DiskSpec()
        self.n_disks = int(n_disks)
        self._rng = rng or RngStreams(0)
        self._serial_prefix = serial_prefix
        self._replacements = 0

        gen = self._rng.get("disk-population")
        # Healthy-body spread: tight lognormal around 1.0.
        self.speed_factor = lognormal_factors(gen, self.n_disks, sigma=healthy_sigma)
        # Block-level slow tail: functional but degraded drives.
        p_block = self.BLOCK_SLOW_FRACTION if block_slow_fraction is None else block_slow_fraction
        slow_mask = gen.random(self.n_disks) < p_block
        self.speed_factor[slow_mask] *= gen.uniform(0.55, 0.93, slow_mask.sum())
        # fs-level latency tail: only visible through the file-system stack.
        p_fs = self.FS_SLOW_FRACTION if fs_slow_fraction is None else fs_slow_fraction
        fs_mask = gen.random(self.n_disks) < p_fs
        self.fs_latency_factor = np.ones(self.n_disks)
        self.fs_latency_factor[fs_mask] = gen.uniform(1.12, 1.6, fs_mask.sum())
        self.failed = np.zeros(self.n_disks, dtype=bool)

    # -- vectorized views -----------------------------------------------------

    def seq_bandwidths(self) -> np.ndarray:
        """Per-disk streaming bandwidth (bytes/s), zero for failed drives."""
        bw = self.spec.seq_bw * self.speed_factor
        return np.where(self.failed, 0.0, bw)

    def bandwidths(
        self, request_size: int = MiB, sequential: bool = True, *, fs_level: bool = False
    ) -> np.ndarray:
        """Per-disk delivered bandwidth under the given access pattern."""
        eff = 1.0 if sequential else self.spec.random_efficiency(request_size)
        bw = self.spec.seq_bw * self.speed_factor * eff
        if fs_level:
            bw = bw / self.fs_latency_factor
        return np.where(self.failed, 0.0, bw)

    def disk(self, index: int) -> Disk:
        """Materialize a single-drive view (for incident replay etc.)."""
        if not 0 <= index < self.n_disks:
            raise IndexError(index)
        state = DiskState.FAILED if self.failed[index] else DiskState.HEALTHY
        return Disk(
            spec=self.spec,
            serial=f"{self._serial_prefix}{index:06d}",
            speed_factor=float(self.speed_factor[index]),
            fs_latency_factor=float(self.fs_latency_factor[index]),
            state=state,
        )

    # -- maintenance actions ---------------------------------------------------

    def replace(self, indices: np.ndarray | list[int]) -> int:
        """Swap the given drives for fresh ones from the healthy body.

        This is the culling action of Lesson 13: the drives are functional,
        but slow, and are returned to the vendor.  Replacement drives carry a
        fresh healthy-body factor and no latent tails (vendor-screened).
        Returns the number of drives replaced.
        """
        indices = np.asarray(indices, dtype=int)
        if indices.size == 0:
            return 0
        if indices.min() < 0 or indices.max() >= self.n_disks:
            raise IndexError("replacement index out of range")
        gen = self._rng.get("disk-replacements")
        self.speed_factor[indices] = lognormal_factors(gen, indices.size, sigma=0.01)
        self.fs_latency_factor[indices] = 1.0
        self.failed[indices] = False
        self._replacements += int(indices.size)
        return int(indices.size)

    @property
    def total_replacements(self) -> int:
        return self._replacements

    def fail(self, index: int) -> None:
        """Hard-fail a drive (media death, not culling)."""
        if not 0 <= index < self.n_disks:
            raise IndexError(index)
        self.failed[index] = True

    def __len__(self) -> int:
        return self.n_disks

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DiskPopulation(n={self.n_disks}, spec={self.spec.name!r}, "
            f"failed={int(self.failed.sum())}, replaced={self._replacements})"
        )
