"""RAID-6 (8+2) groups: geometry, lock-step performance, rebuilds, journals.

Spider II organizes its 20,160 drives into 2,016 RAID-6 arrays of 8 data +
2 parity drives; each array is exported as one Lustre OST (§V-A).

Performance coupling
--------------------
A full-stripe write touches every member, so a group streams at
``n_data × min(member bandwidth)`` — the *slowest member governs the
group*.  This min-of-N coupling is what makes the slow-disk tail so
damaging (Lesson 13) and is the analytical heart of the culling experiment:
with ~7.4% of drives slow, the probability that a 10-wide group contains at
least one slow member is ``1 - (1-0.074)^10 ≈ 54%``, so over half the OSTs
underperform until the tail is culled.

Failure model
-------------
RAID-6 tolerates two simultaneous member erasures.  A third concurrent
erasure fails the group; any dirty write-back journal entries at that
moment are lost (the 2010 incident lost journal data for >1e6 files).
Rebuild duration is ``capacity / rebuild_rate``; parity declustering (a
feature OLCF pushed vendors to add, §IV-A) spreads rebuild I/O over many
drives and shortens the window by ``declustering_speedup``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.hardware.disk import DiskPopulation
from repro.obs.instruments import get_telemetry
from repro.obs.trace import get_tracer
from repro.units import MB

__all__ = ["RaidGeometry", "RaidState", "RaidGroup", "group_bandwidths"]


@dataclass(frozen=True)
class RaidGeometry:
    """Stripe geometry of a RAID group."""

    n_data: int = 8
    n_parity: int = 2
    rebuild_rate: float = 50 * MB  # bytes/s of reconstructed data per rebuild
    declustering_speedup: float = 4.0  # parity declustering rebuild speedup

    def __post_init__(self) -> None:
        if self.n_data <= 0 or self.n_parity < 0:
            raise ValueError("invalid geometry")
        if self.rebuild_rate <= 0:
            raise ValueError("rebuild_rate must be positive")
        if self.declustering_speedup < 1:
            raise ValueError("declustering_speedup must be >= 1")

    @property
    def width(self) -> int:
        return self.n_data + self.n_parity

    @property
    def fault_tolerance(self) -> int:
        return self.n_parity

    def usable_fraction(self) -> float:
        return self.n_data / self.width

    def rebuild_time(self, capacity_bytes: int, *, declustered: bool = False) -> float:
        """Seconds to reconstruct one failed member."""
        rate = self.rebuild_rate * (self.declustering_speedup if declustered else 1.0)
        return capacity_bytes / rate


class RaidState(enum.Enum):
    """Redundancy state of one RAID group."""

    CLEAN = "clean"
    DEGRADED = "degraded"  # erasures <= tolerance, redundancy reduced
    REBUILDING = "rebuilding"
    FAILED = "failed"  # erasures > tolerance: data loss


@dataclass
class JournalState:
    """Write-back journal of a RAID group (high-performance Lustre
    journaling was one of the OLCF-funded Lustre features, §IV-D)."""

    dirty_files: int = 0  # files with journal entries not yet committed
    lost_files: int = 0  # cumulative files whose journal data was lost

    def stage(self, n_files: int) -> None:
        if n_files < 0:
            raise ValueError("n_files must be non-negative")
        self.dirty_files += n_files

    def commit(self) -> int:
        committed, self.dirty_files = self.dirty_files, 0
        return committed

    def lose(self) -> int:
        lost, self.dirty_files = self.dirty_files, 0
        self.lost_files += lost
        return lost


class RaidGroup:
    """One RAID-6 array over specific members of a :class:`DiskPopulation`."""

    def __init__(
        self,
        geometry: RaidGeometry,
        population: DiskPopulation,
        members: list[int] | np.ndarray,
        *,
        name: str = "raid",
        declustered: bool = False,
    ) -> None:
        members = list(int(m) for m in members)
        if len(members) != geometry.width:
            raise ValueError(
                f"group needs {geometry.width} members, got {len(members)}"
            )
        if len(set(members)) != len(members):
            raise ValueError("duplicate members in RAID group")
        self.geometry = geometry
        self.population = population
        self.members = members
        self.name = name
        self.declustered = declustered
        #: member positions currently erased (failed disk or offline shelf)
        self.erased: set[int] = set()
        #: member positions being rebuilt (subset of positions *not* erased
        #: that have not finished reconstruction)
        self.rebuilding: set[int] = set()
        self.journal = JournalState()
        self.data_lost = False
        #: open rebuild trace spans keyed by member position
        self._rebuild_spans: dict[int, object] = {}

    # -- state ---------------------------------------------------------------

    @property
    def state(self) -> RaidState:
        if self.data_lost:
            return RaidState.FAILED
        if self.erased:
            if len(self.erased) > self.geometry.fault_tolerance:
                return RaidState.FAILED
            return RaidState.DEGRADED
        if self.rebuilding:
            return RaidState.REBUILDING
        return RaidState.CLEAN

    @property
    def effective_erasures(self) -> int:
        """Erased plus still-rebuilding members — both lack redundancy."""
        return len(self.erased | self.rebuilding)

    def erase_member(self, position: int) -> None:
        """A member becomes unavailable (disk failure or enclosure outage).

        Crossing the fault-tolerance threshold marks the group failed and
        loses the dirty journal.
        """
        if not 0 <= position < self.geometry.width:
            raise IndexError(position)
        self.erased.add(position)
        if self.effective_erasures > self.geometry.fault_tolerance and not self.data_lost:
            self.data_lost = True
            self.journal.lose()

    def restore_member(self, position: int, *, rebuilt: bool = False) -> None:
        """A member comes back (shelf back online, or disk replaced).

        Unless ``rebuilt`` is true the member re-enters in rebuilding state:
        its contents must be reconstructed before it provides redundancy.
        """
        self.erased.discard(position)
        if not rebuilt and not self.data_lost:
            self.rebuilding.add(position)
            tracer = get_tracer()
            if tracer.enabled and position not in self._rebuild_spans:
                self._rebuild_spans[position] = tracer.open(
                    f"rebuild:{self.name}[{position}]", "raid",
                    group=self.name, position=position,
                    declustered=self.declustered)
            telemetry = get_telemetry()
            if telemetry.enabled:
                telemetry.counter("raid.rebuilds_started", self.name).add(1.0)

    def finish_rebuild(self, position: int) -> None:
        self.rebuilding.discard(position)
        handle = self._rebuild_spans.pop(position, None)
        if handle is not None:
            get_tracer().end(handle)
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.counter("raid.rebuilds_finished", self.name).add(1.0)

    def rebuild_time(self) -> float:
        """Seconds to rebuild one member of this group."""
        return self.geometry.rebuild_time(
            self.population.spec.capacity_bytes, declustered=self.declustered
        )

    # -- capacity & performance ------------------------------------------------

    @property
    def usable_capacity(self) -> int:
        return self.geometry.n_data * self.population.spec.capacity_bytes

    def streaming_bandwidth(self, *, fs_level: bool = False) -> float:
        """Full-stripe streaming bandwidth: ``n_data × min(member bw)``.

        A failed group moves no data; a degraded/rebuilding group pays a
        reconstruction penalty (reads must regenerate missing strips).
        """
        if self.state is RaidState.FAILED:
            return 0.0
        member_bw = self.population.bandwidths(fs_level=fs_level)[self.members]
        available = np.delete(member_bw, list(self.erased)) if self.erased else member_bw
        if available.size == 0:
            return 0.0
        bw = self.geometry.n_data * float(available.min())
        if self.state in (RaidState.DEGRADED, RaidState.REBUILDING):
            bw *= 0.6  # reconstruction overhead while redundancy is reduced
        return bw


def group_bandwidths(
    members_matrix: np.ndarray,
    disk_bandwidths: np.ndarray,
    n_data: int = 8,
) -> np.ndarray:
    """Vectorized streaming bandwidth for many RAID groups at once.

    ``members_matrix`` is ``(n_groups, width)`` of disk indices;
    ``disk_bandwidths`` is per-disk delivered bandwidth.  Returns the
    ``n_data × min-over-members`` law for every group — the fast path used
    by the culling experiment over all 2,016 Spider II groups.
    """
    members_matrix = np.asarray(members_matrix, dtype=int)
    if members_matrix.ndim != 2:
        raise ValueError("members_matrix must be 2-D (n_groups, width)")
    per_member = disk_bandwidths[members_matrix]
    return n_data * per_member.min(axis=1)
