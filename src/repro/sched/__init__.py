"""repro.sched — the center-wide multi-tenant scheduler and QoS arbiter.

The paper's premise is one file system serving every platform in the
center at once; this package models the facility at that level — a
*population* of concurrent jobs arbitrated over the shared backbone:

* :mod:`repro.sched.jobs` — the tenancy model: three
  :class:`PlatformClass` tenants (simulation, analytics, data transfer),
  each job a phase sequence (:class:`Phase`, :class:`JobSpec`);
* :mod:`repro.sched.arrivals` — seed-deterministic Poisson arrival
  generators per class (:class:`JobMix`, :func:`generate_jobs`);
* :mod:`repro.sched.qos` — :class:`QosPolicy` caps/weights/limits and
  the :class:`BandwidthArbiter` that re-solves the flow network at every
  state change;
* :mod:`repro.sched.scheduler` — :class:`FacilityScheduler` drives the
  discrete-event engine, composes with :mod:`repro.faults` to run chaos
  under load, and reports job-visible impact;
* :mod:`repro.sched.metrics` — :class:`JobOutcome`, per-class
  :class:`ClassSummary` with Jain's :func:`jains_index`, the analytics
  :class:`LatencyProbe`, and the deterministic :class:`SchedResult`.

Typical use::

    from repro.core.spider import build_spider2
    from repro.sched import FacilityScheduler, JobMix, generate_jobs

    system = build_spider2(build_clients=False)
    backbone = system.aggregate_bandwidth(fs_level=True)
    jobs = generate_jobs(JobMix(), duration=86_400, seed=42,
                         reference_bandwidth=backbone)
    result = FacilityScheduler(system, jobs, seed=42).run()
    print(result.class_rows(), result.overall_fairness)
"""

from repro.sched.arrivals import JobMix, generate_jobs
from repro.sched.jobs import JobSpec, Phase, PlatformClass
from repro.sched.metrics import (
    ClassSummary,
    JobOutcome,
    LatencyProbe,
    SchedResult,
    jains_index,
)
from repro.sched.qos import BACKBONE_COMPONENT, BandwidthArbiter, QosPolicy
from repro.sched.scheduler import FacilityScheduler

__all__ = [
    "PlatformClass",
    "Phase",
    "JobSpec",
    "JobMix",
    "generate_jobs",
    "QosPolicy",
    "BandwidthArbiter",
    "BACKBONE_COMPONENT",
    "jains_index",
    "JobOutcome",
    "ClassSummary",
    "LatencyProbe",
    "SchedResult",
    "FacilityScheduler",
]
