"""Seed-deterministic job-arrival generators per platform class.

Each class draws Poisson arrivals and job shapes from its own named
:class:`~repro.sim.rng.RngStreams` substream, so the three populations
are independently reproducible: changing the analytics rate does not
perturb a single simulation job, and the same ``(mix, duration, seed,
reference_bandwidth)`` tuple always yields an identical job list.

Demands are expressed as fractions of a ``reference_bandwidth`` (the
facility backbone the scheduler will arbitrate), so one mix describes a
proportionally identical population on the 4-SSU test system and on the
full Spider II: simulation checkpoint bursts momentarily out-demand the
whole backbone, analytics sips a few percent, and DTN streams sit in
between — the §II "different data production/consumption rates".
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.sched.jobs import JobSpec, Phase, PlatformClass
from repro.sim.rng import RngStreams
from repro.units import HOUR, MINUTE

__all__ = ["JobMix", "generate_jobs", "storm_jobs"]


@dataclass(frozen=True)
class JobMix:
    """Arrival intensities (jobs/hour) and shape ranges per platform class.

    Simulation jobs alternate compute intervals with checkpoint bursts;
    ``sim_demand_*`` and ``dtn_demand_*``/``ana_demand_*`` are fractions
    of the reference bandwidth; ``sim_burst_seconds_*`` sizes each burst
    by its isolated drain time (volume = demand x drain seconds).
    """

    simulation_per_hour: float = 8.0
    analytics_per_hour: float = 14.0
    transfer_per_hour: float = 5.0
    # -- simulation (checkpoint/restart) shape --
    sim_bursts_min: int = 2
    sim_bursts_max: int = 5
    sim_compute_min_s: float = 10 * MINUTE
    sim_compute_max_s: float = 30 * MINUTE
    sim_demand_min: float = 0.8
    sim_demand_max: float = 2.5
    sim_burst_seconds_min: float = 20.0
    sim_burst_seconds_max: float = 90.0
    # -- interactive analytics shape --
    ana_demand_min: float = 0.02
    ana_demand_max: float = 0.08
    ana_active_min_s: float = 10 * MINUTE
    ana_active_max_s: float = 40 * MINUTE
    # -- data-transfer (DTN) shape --
    dtn_demand_min: float = 0.10
    dtn_demand_max: float = 0.30
    dtn_active_min_s: float = 5 * MINUTE
    dtn_active_max_s: float = 20 * MINUTE

    def __post_init__(self) -> None:
        for rate in (self.simulation_per_hour, self.analytics_per_hour,
                     self.transfer_per_hour):
            if rate < 0:
                raise ValueError("arrival rates must be non-negative")
        if not (1 <= self.sim_bursts_min <= self.sim_bursts_max):
            raise ValueError("burst counts must satisfy 1 <= min <= max")
        for lo, hi in (
            (self.sim_compute_min_s, self.sim_compute_max_s),
            (self.sim_demand_min, self.sim_demand_max),
            (self.sim_burst_seconds_min, self.sim_burst_seconds_max),
            (self.ana_demand_min, self.ana_demand_max),
            (self.ana_active_min_s, self.ana_active_max_s),
            (self.dtn_demand_min, self.dtn_demand_max),
            (self.dtn_active_min_s, self.dtn_active_max_s),
        ):
            if not (0 < lo <= hi):
                raise ValueError("shape ranges must satisfy 0 < min <= max")

    def scaled(self, factor: float) -> "JobMix":
        """The same mix with every arrival rate multiplied by ``factor``."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        return replace(
            self,
            simulation_per_hour=self.simulation_per_hour * factor,
            analytics_per_hour=self.analytics_per_hour * factor,
            transfer_per_hour=self.transfer_per_hour * factor,
        )


def _poisson_arrivals(gen, per_hour: float, duration: float) -> list[float]:
    """Exponential inter-arrival times cut at ``duration``."""
    times: list[float] = []
    if per_hour <= 0:
        return times
    t = float(gen.exponential(HOUR / per_hour))
    while t < duration:
        times.append(t)
        t += float(gen.exponential(HOUR / per_hour))
    return times


def generate_jobs(
    mix: JobMix,
    *,
    duration: float,
    seed: int,
    reference_bandwidth: float,
) -> tuple[JobSpec, ...]:
    """Generate the arrival-sorted job population for one scheduling window.

    Arrivals land in ``[0, duration)``; demands are drawn as fractions of
    ``reference_bandwidth``.  Deterministic: the same arguments always
    produce an identical tuple, and each platform class consumes only its
    own named substream.
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    if reference_bandwidth <= 0:
        raise ValueError("reference_bandwidth must be positive")
    rng = RngStreams(seed)
    jobs: list[JobSpec] = []

    gen = rng.get("arrivals:simulation")
    for i, arrival in enumerate(_poisson_arrivals(
            gen, mix.simulation_per_hour, duration)):
        n_bursts = int(gen.integers(mix.sim_bursts_min, mix.sim_bursts_max + 1))
        phases: list[Phase] = []
        for _burst in range(n_bursts):
            phases.append(Phase.compute(float(
                gen.uniform(mix.sim_compute_min_s, mix.sim_compute_max_s))))
            demand = float(gen.uniform(
                mix.sim_demand_min, mix.sim_demand_max)) * reference_bandwidth
            drain_s = float(gen.uniform(
                mix.sim_burst_seconds_min, mix.sim_burst_seconds_max))
            phases.append(Phase.io(demand * drain_s, demand))
        jobs.append(JobSpec(f"sim-{i:04d}", PlatformClass.SIMULATION,
                            arrival, tuple(phases)))

    gen = rng.get("arrivals:analytics")
    for i, arrival in enumerate(_poisson_arrivals(
            gen, mix.analytics_per_hour, duration)):
        demand = float(gen.uniform(
            mix.ana_demand_min, mix.ana_demand_max)) * reference_bandwidth
        active_s = float(gen.uniform(mix.ana_active_min_s, mix.ana_active_max_s))
        jobs.append(JobSpec(f"ana-{i:04d}", PlatformClass.ANALYTICS, arrival,
                            (Phase.io(demand * active_s, demand),)))

    gen = rng.get("arrivals:data_transfer")
    for i, arrival in enumerate(_poisson_arrivals(
            gen, mix.transfer_per_hour, duration)):
        demand = float(gen.uniform(
            mix.dtn_demand_min, mix.dtn_demand_max)) * reference_bandwidth
        active_s = float(gen.uniform(mix.dtn_active_min_s, mix.dtn_active_max_s))
        jobs.append(JobSpec(f"dtn-{i:04d}", PlatformClass.DATA_TRANSFER, arrival,
                            (Phase.io(demand * active_s, demand),)))

    jobs.sort(key=lambda j: (j.arrival, j.name))
    return tuple(jobs)


def storm_jobs(
    *,
    n_jobs: int,
    start: float,
    spread: float,
    demand_fraction: float,
    active_seconds: float,
    seed: int,
    reference_bandwidth: float,
) -> tuple[JobSpec, ...]:
    """An all-to-one analytics read storm: the hot-spot stress class.

    ``n_jobs`` analytics jobs arrive nearly at once (uniform over
    ``[start, start + spread)``), each demanding ``demand_fraction`` of
    the reference bandwidth for ``active_seconds`` of isolated drain —
    the §VI-style "everyone reads the same dataset" burst whose
    aggregate collapses whatever links static routing concentrates it
    on.  Draws come from the dedicated ``arrivals:storm`` substream, so
    composing a storm onto a :func:`generate_jobs` population (merge and
    re-sort) perturbs no background job.
    """
    if n_jobs < 1:
        raise ValueError("need at least one storm job")
    if spread < 0 or active_seconds <= 0:
        raise ValueError("spread must be >= 0 and active_seconds > 0")
    if demand_fraction <= 0 or reference_bandwidth <= 0:
        raise ValueError("demand and reference bandwidth must be positive")
    gen = RngStreams(seed).get("arrivals:storm")
    demand = demand_fraction * reference_bandwidth
    jobs = [
        JobSpec(f"storm-{i:04d}", PlatformClass.ANALYTICS,
                start + float(gen.uniform(0.0, spread)) if spread > 0 else start,
                (Phase.io(demand * active_seconds, demand),))
        for i in range(n_jobs)
    ]
    jobs.sort(key=lambda j: (j.arrival, j.name))
    return tuple(jobs)
