"""The facility scheduler: a population of jobs on the shared backbone.

:class:`FacilityScheduler` drives the discrete-event engine with the
arrival stream from :mod:`repro.sched.arrivals` and, at every state
change that touches the data path — job submission, admission, phase
change, completion, fault injection or repair — asks the
:class:`~repro.sched.qos.BandwidthArbiter` for a fresh allocation.
Re-solve requests route through an :class:`~repro.core.flow.Epoch`, so
a burst of simultaneous state changes (a fault cascade, several jobs
finishing at one instant) is batched into a single end-of-tick
allocation round over the arbiter's persistent solver state.  Between
re-solves every running I/O phase drains fluidly at its allocated
rate, so job progress is exact given piecewise-constant rates: the
next phase completion is scheduled as an engine event and invalidated
(via an epoch guard — the engine has no cancellation) when an earlier
state change re-solves first.

Composition with :mod:`repro.faults` runs a chaos campaign *under
load*: injectors mutate the live system, the backbone capacity is
recomputed from it on the next allocation, and the damage lands in
job-visible metrics (slowdown, drain overrun, latency probe) instead of
raw bandwidth alone.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.analysis.interference import isolated_and_shared
from repro.core.flow import Epoch
from repro.core.spider import SpiderSystem
from repro.faults.injectors import injector_for
from repro.faults.plan import FaultPlan
from repro.obs.instruments import get_telemetry
from repro.obs.trace import get_tracer, instrument_engine
from repro.sched.jobs import JobSpec, PlatformClass
from repro.sched.metrics import (
    ClassSummary,
    JobOutcome,
    LatencyProbe,
    SchedResult,
    jains_index,
)
from repro.sched.qos import BACKBONE_COMPONENT, BandwidthArbiter, QosPolicy
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams
from repro.units import GB, HOUR, MiB
from repro.workloads.analytics import AnalyticsApp, analytics_trace
from repro.workloads.model import RequestTrace

if TYPE_CHECKING:
    from repro.network.routing import BackpressureController
    from repro.resilience.playbooks import RemediationPolicy
    from repro.resilience.runner import PlaybookRunner, RemediationOutcome

__all__ = ["FacilityScheduler"]

#: analytics-cluster and DTN uplink capacities, as fractions of the
#: healthy backbone (the simulation side uses the live router aggregate)
ANALYTICS_INGEST_FRACTION = 0.35
DTN_INGEST_FRACTION = 0.20

#: slack past the last arrival before a default horizon censors the run
DEFAULT_HORIZON_TAIL = 12 * HOUR

#: a phase is drained when its remaining volume falls under this floor,
#: or when draining the leftover would take under ``_DONE_EPS_S`` at the
#: phase's current rate — float rounding of ``rate * dt`` at day-scale
#: clock values can leave kilobyte residues whose drain time is below
#: the clock's resolution, and a byte floor alone would spin on them
_DONE_EPS_BYTES = 1e-3
_DONE_EPS_S = 1e-6

#: shared empty float vector for idle settle-vector state
_EMPTY_F = np.empty(0)

#: rate floor used when projecting the next phase-completion time — far
#: below any physical rate, far above the underflow range (see _flush)
_RATE_FLOOR = 1e-200

# -- latency probe calibration ------------------------------------------------
#: probe session length (seconds)
PROBE_DURATION = 300.0
#: one OST-class station carries 1/8 of the backbone, capped at 2 GB/s,
#: and serves with 4 concurrent I/O threads at a 4 ms positioning cost
PROBE_STATION_DIVISOR = 8
PROBE_STATION_CAP = 2 * GB
PROBE_N_SERVERS = 4
PROBE_POSITIONING_S = 0.004
#: the probe session alone drives the station at this utilization
PROBE_UTILIZATION = 0.2
#: mean analytics request size under the default bimodal mix
PROBE_MEAN_REQUEST_BYTES = 1.8 * MiB
#: background stream request size and trace-size ceiling (coarsening
#: past the ceiling preserves the offered utilization by re-deriving the
#: rate from the enlarged request — see _latency_probe)
PROBE_BG_REQUEST_BYTES = 8 * MiB
PROBE_BG_MAX_REQUESTS = 30_000
#: the background replays at this time-weighted percentile of the
#: non-analytics rate (the peak pressure QoS caps shave — the mean is
#: work-conserving and nearly policy-independent)
PROBE_BG_PERCENTILE = 95.0


def _weighted_percentile(samples: list[tuple[float, float]],
                         q: float) -> float:
    """Time-weighted percentile of ``(duration, value)`` samples."""
    if not samples:
        return 0.0
    ordered = sorted(samples, key=lambda s: s[1])
    total = sum(dt for dt, _value in ordered)
    if total <= 0:
        return float(ordered[-1][1])
    threshold = q / 100.0 * total
    acc = 0.0
    for dt, value in ordered:
        acc += dt
        if acc >= threshold:
            return float(value)
    return float(ordered[-1][1])


@dataclass(slots=True)
class _Job:
    """Runtime state of one job (private to the scheduler)."""

    spec: JobSpec
    phase_index: int = 0
    start: float | None = None
    finish: float | None = None
    #: remaining bytes of the current I/O phase — authoritative only
    #: until the phase joins the settle vectors at the next flush;
    #: afterwards the scheduler's remaining vector carries the drained
    #: value (jobs never leave the vectors except by completing)
    remaining: float = 0.0
    #: start time of the current phase
    phase_start: float = 0.0
    #: total time spent in I/O phases
    io_time: float = 0.0
    #: the settle point from which the current I/O phase accrues io_time
    io_enter: float = 0.0
    #: small-int platform code (index into ``list(PlatformClass)``)
    code: int = 0
    #: worst per-phase drain time over its isolated drain
    worst_overrun: float | None = None
    span: object = None

    @property
    def platform(self) -> PlatformClass:
        return self.spec.platform


@dataclass
class _RunState:
    """Mutable per-run accounting, reset by each :meth:`run`."""

    last_settle: float = 0.0
    epoch: int = 0
    n_submitted: int = 0
    n_finished: int = 0
    n_fault_events: int = 0
    makespan: float = 0.0
    #: ``(dt, non-analytics allocated rate)`` per settle interval in
    #: which at least one analytics I/O phase was active
    bg_samples: list[tuple[float, float]] = field(default_factory=list)
    timeline: list[tuple[float, float, str]] = field(default_factory=list)


class FacilityScheduler:
    """Runs a job population against one built system.

    Args:
        system: the facility (mutated in place by fault injectors when a
            ``fault_plan`` is given — build a fresh one per run).
        jobs: the arrival-sorted population (see
            :func:`~repro.sched.arrivals.generate_jobs`).
        policy: admission limits, weights, and QoS caps.
        horizon: run end in simulated seconds; defaults to the last
            arrival plus :data:`DEFAULT_HORIZON_TAIL`.  Jobs still
            queued or running at the horizon are censored.
        fault_plan: optional chaos campaign to execute under load.
        seed: seeds the latency probe's trace substreams only — job
            shapes are fixed by ``jobs``.
        remediation: optional
            :class:`~repro.resilience.playbooks.RemediationPolicy`; when
            given together with a ``fault_plan``, a
            :class:`~repro.resilience.runner.PlaybookRunner` closes the
            loop on every injected fault (the outcome lands in
            :attr:`remediation_outcome` after :meth:`run`).
        backpressure: optional
            :class:`~repro.network.routing.BackpressureController`; each
            allocation round feeds it the backbone utilization the round
            delivered and lets it flip the arbiter's degraded-mode caps
            (wired automatically when the controller has no arbiter of
            its own).  ``None`` — the default — changes nothing.
    """

    def __init__(
        self,
        system: SpiderSystem,
        jobs: tuple[JobSpec, ...] | list[JobSpec],
        *,
        policy: QosPolicy | None = None,
        horizon: float | None = None,
        fault_plan: FaultPlan | None = None,
        seed: int = 0,
        remediation: "RemediationPolicy | None" = None,
        backpressure: "BackpressureController | None" = None,
    ) -> None:
        self.system = system
        self.jobs = tuple(jobs)
        if not self.jobs:
            raise ValueError("need at least one job")
        self.policy = policy or QosPolicy()
        if horizon is None:
            horizon = max(spec.arrival for spec in self.jobs) + DEFAULT_HORIZON_TAIL
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        self.horizon = float(horizon)
        self.fault_plan = fault_plan
        self.seed = seed
        self.remediation = remediation
        #: the :class:`~repro.resilience.runner.RemediationOutcome` of the
        #: last :meth:`run`, when a policy was supplied (``None`` otherwise)
        self.remediation_outcome: "RemediationOutcome | None" = None
        self._arbiter = BandwidthArbiter(self.policy)
        self._backpressure = backpressure
        if backpressure is not None and backpressure.arbiter is None:
            backpressure.arbiter = self._arbiter
        self._baseline_backbone = float(
            system.aggregate_bandwidth(fs_level=True))
        if self._baseline_backbone <= 0:
            raise ValueError("system delivers no fs-level bandwidth")
        self._router_bw_cap = float(system.spec.router_bw_cap)
        # run state (created fresh by run())
        self._engine: Engine | None = None
        self._state = _RunState()
        self._active_io: dict[str, _Job] = {}
        self._running: dict[PlatformClass, int] = {}
        self._queues: dict[PlatformClass, deque[_Job]] = {}
        self._finished: list[_Job] = []
        self._submitted: list[_Job] = []
        self._tokens: dict[object, object] = {}
        self._fault_spans: dict[object, object] = {}
        self._runner: "PlaybookRunner | None" = None
        self._epoch: Epoch | None = None
        # settle vectors: the active I/O phases as of the last flush, in
        # _active_io insertion order (jobs added since are appended to
        # _active_io with rate 0 and join the vectors at the next flush)
        self._io_jobs: list[_Job] = []
        self._io_rates = _EMPTY_F
        self._io_remaining = _EMPTY_F
        self._io_codes = np.empty(0, dtype=np.intp)
        self._io_drain_eps = _EMPTY_F
        self._bg_rate_sum = 0.0
        self._ana_count = 0
        self._classes = list(PlatformClass)
        # cumulative delivered bytes per class code — credited per phase
        # at completion (a drained phase delivered its volume) plus a
        # partial-progress credit for phases still active at the horizon
        self._delivered = [0.0] * len(self._classes)
        self._class_code = {cls: i for i, cls in enumerate(self._classes)}
        self._ana_code = self._class_code[PlatformClass.ANALYTICS]
        self._backbone_dirty = True
        self._backbone_bw = self._baseline_backbone
        self._ingest_caps: dict[PlatformClass, float] = {}
        self._isolated_caps: dict[PlatformClass, float] = {}
        self._refresh_capacity()
        # The *isolated* capacity per class is frozen at the healthy
        # system: the machine-exclusive baseline does not degrade when a
        # fault campaign later hurts the shared instance.
        self._isolated_caps = {
            cls: min(self._ingest_caps.get(cls, math.inf),
                     self._baseline_backbone)
            for cls in PlatformClass
        }

    # -- capacity ------------------------------------------------------------

    def _refresh_capacity(self) -> None:
        """Recompute the backbone and per-class ingest caps from the live
        system (called lazily, only after a fault or repair)."""
        self._backbone_bw = float(
            self.system.aggregate_bandwidth(fs_level=True))
        if self.system.routers:
            n_live = sum(
                1 for router in self.system.routers
                if self.system.lnet.router_online(router.name))
            sim_ingest = n_live * self._router_bw_cap
        else:
            sim_ingest = math.inf
        self._ingest_caps = {
            PlatformClass.SIMULATION: sim_ingest,
            PlatformClass.ANALYTICS:
                ANALYTICS_INGEST_FRACTION * self._baseline_backbone,
            PlatformClass.DATA_TRANSFER:
                DTN_INGEST_FRACTION * self._baseline_backbone,
        }
        self._backbone_dirty = False

    def ingest_capacities(self) -> list[tuple[str, float]]:
        """Live per-class ingest caps as sorted ``(class value, bytes/s)``
        pairs — the probe surface the monitoring overlay's scheduler
        agent samples.  Recomputes lazily after a fault or repair, like
        the arbiter itself; an unbounded cap (a router-less system's
        simulation class) reports as 0.0 rather than infinity so the
        values stay plottable."""
        if self._backbone_dirty:
            self._refresh_capacity()
        return [
            (cls.value,
             0.0 if math.isinf(cap) else float(cap))
            for cls, cap in sorted(
                self._ingest_caps.items(), key=lambda kv: kv[0].value)
        ]

    # -- job lifecycle -------------------------------------------------------

    def _submit(self, job: _Job) -> None:
        engine = self._engine
        assert engine is not None
        self._state.n_submitted += 1
        self._submitted.append(job)
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.counter("sched.submitted",
                              job.platform.value).add(1.0)
        cls = job.platform
        if self._running.get(cls, 0) < self.policy.limit_of(cls):
            self._start_job(job)
        else:
            self._queues.setdefault(cls, deque()).append(job)
        self._resolve(f"submit:{job.spec.name}")

    def _start_job(self, job: _Job) -> None:
        engine = self._engine
        assert engine is not None
        cls = job.platform
        self._running[cls] = self._running.get(cls, 0) + 1
        job.start = engine.now
        job.span = get_tracer().open(
            f"job:{job.spec.name}", "sched", platform=cls.value)
        self._begin_phase(job)

    def _begin_phase(self, job: _Job) -> None:
        engine = self._engine
        assert engine is not None
        phase = job.spec.phases[job.phase_index]
        job.phase_start = engine.now
        if phase.kind == "compute":
            engine.call_after(phase.duration,
                              lambda j=job: self._compute_done(j))
        else:
            job.remaining = float(phase.volume)
            # io_time accrues from the settle point active when the phase
            # joined (the settles partition time, so the accrued span is
            # completion minus this mark).
            job.io_enter = self._state.last_settle
            self._active_io[job.spec.name] = job
            if job.code == self._ana_code:
                self._ana_count += 1
            # The arbiter's flow table mirrors _active_io add-for-add and
            # remove-for-remove, so its rate array stays aligned with
            # this dict's insertion order.
            self._arbiter.add(job.spec.name, job.platform, phase.demand)

    def _compute_done(self, job: _Job) -> None:
        self._advance(job)
        self._resolve(f"phase:{job.spec.name}")

    def _advance(self, job: _Job) -> None:
        """Move to the next phase, or finish the job."""
        job.phase_index += 1
        if job.phase_index >= len(job.spec.phases):
            self._finish_job(job)
        else:
            self._begin_phase(job)

    def _complete_io_phase(self, job: _Job) -> None:
        engine = self._engine
        assert engine is not None
        phase = job.spec.phases[job.phase_index]
        del self._active_io[job.spec.name]
        self._arbiter.remove(job.spec.name)
        self._delivered[job.code] += phase.volume
        job.io_time += engine.now - job.io_enter
        if job.code == self._ana_code:
            self._ana_count -= 1
        drain = engine.now - job.phase_start
        isolated = phase.volume / min(
            phase.demand, self._isolated_caps[job.platform])
        if isolated > 0:
            overrun = drain / isolated
            if job.worst_overrun is None or overrun > job.worst_overrun:
                job.worst_overrun = overrun
        self._advance(job)

    def _finish_job(self, job: _Job) -> None:
        engine = self._engine
        assert engine is not None
        job.finish = engine.now
        self._state.n_finished += 1
        self._state.makespan = max(self._state.makespan, engine.now)
        self._finished.append(job)
        cls = job.platform
        self._running[cls] = self._running.get(cls, 1) - 1
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.counter("sched.finished", cls.value).add(1.0)
            if job.start is not None:
                iso = job.spec.isolated_runtime(self._isolated_caps[cls])
                if iso > 0:
                    telemetry.histogram("sched.slowdown").observe(
                        (job.finish - job.start) / iso)
        get_tracer().end(job.span, finished=True)
        job.span = None
        queue = self._queues.get(cls)
        while (queue and self._running.get(cls, 0) < self.policy.limit_of(cls)):
            self._start_job(queue.popleft())

    # -- fault composition ---------------------------------------------------

    def _inject_fault(self, fault) -> None:
        injector = injector_for(fault)
        self._tokens[fault] = injector.inject(self.system, fault)
        self._state.n_fault_events += 1
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.counter("sched.faults", fault.fault.value).add(1.0)
        self._fault_spans[fault] = get_tracer().open(
            f"fault:{fault.label}", "sched.faults", target=str(fault.target))
        self._backbone_dirty = True
        self._resolve(f"fault:{fault.label}")
        if self._runner is not None:
            engine = self._engine
            assert engine is not None
            self._runner.on_fault(fault, engine.now)

    def _repair_fault(self, fault) -> None:
        # Scripted repair and remediation share this path; whichever runs
        # first consumes the token and the other becomes a no-op.
        if fault not in self._tokens:
            return
        engine = self._engine
        assert engine is not None
        injector = injector_for(fault)
        followup = injector.repair(self.system, fault,
                                   self._tokens.pop(fault, None))
        self._state.n_fault_events += 1
        get_tracer().end(self._fault_spans.pop(fault, None), repaired=True)
        self._backbone_dirty = True
        self._resolve(f"repair:{fault.label}")
        if followup is not None:
            delay, fn = followup

            def _finish() -> None:
                fn()
                self._state.n_fault_events += 1
                self._backbone_dirty = True
                self._resolve(f"recovered:{fault.label}")

            engine.call_after(delay, _finish)

    def _remediate_repair(self, fault) -> bool:
        """Actuator entry point: repair ``fault`` unless already repaired."""
        if fault not in self._tokens:
            return False
        self._repair_fault(fault)
        return True

    # -- the allocation loop -------------------------------------------------

    def _settle(self, now: float) -> None:
        """Account fluid progress since the previous settle point.

        Pure vector work over the settle vectors: rates are constant
        between flushes, so the drained volume is one ``minimum`` over
        the active phases.  Per-job io_time is not touched here — it
        accrues at phase completion from the ``io_enter`` mark, which
        sums the same settle intervals.
        """
        state = self._state
        dt = now - state.last_settle
        state.last_settle = now
        if dt <= 0 or not self._active_io:
            return
        if self._io_jobs:
            remaining = self._io_remaining
            remaining -= np.minimum(self._io_rates * dt, remaining)
        if self._ana_count:
            state.bg_samples.append((dt, self._bg_rate_sum))

    def _resolve(self, label: str) -> None:
        """Request an allocation round for the current tick.

        Routed through the epoch: a burst of same-tick state changes
        collapses into one :meth:`_flush` at end of tick.
        """
        epoch = self._epoch
        assert epoch is not None
        epoch.request(label)

    def _flush(self, label: str) -> None:
        """Settle progress, complete drained phases, re-allocate, and
        schedule the next projected completion (the epoch flush)."""
        engine = self._engine
        assert engine is not None
        state = self._state
        state.epoch += 1
        self._settle(engine.now)
        # Completing a phase can cascade: finish the job, admit a queued
        # one, begin its first I/O phase — all at the current instant,
        # all folded into this one allocation round.
        drained: list[_Job] = []
        io_jobs = self._io_jobs
        keep: np.ndarray | None = None
        if io_jobs:
            # _io_drain_eps = max(byte eps, rate * time eps), precomputed
            # at the last rebuild (rates are constant between flushes).
            mask = self._io_remaining <= self._io_drain_eps
            if mask.any():
                drained = [io_jobs[i]
                           for i in np.flatnonzero(mask).tolist()]
                keep = ~mask
        # Phases that joined after the last flush have rate 0 and drain
        # only if born trivially small.
        if len(self._active_io) > len(io_jobs):
            for job in list(self._active_io.values())[len(io_jobs):]:
                if job.remaining <= _DONE_EPS_BYTES:
                    drained.append(job)
        for job in drained:
            self._complete_io_phase(job)
        if self._backbone_dirty:
            self._refresh_capacity()
        rates = self._arbiter.reallocate(
            backbone_capacity=self._backbone_bw,
            ingest_caps=self._ingest_caps)
        # Rebuild the settle vectors: rates from the solve; remaining and
        # codes carried over from the settled vectors (drained slots
        # dropped) with phases joining now appended.  The surviving old
        # vector entries are exactly the leading entries of _active_io,
        # in order: completions happen only in the drain pass above, and
        # every later add appends behind them.
        active = list(self._active_io.values())
        n_active = len(active)
        assert n_active == len(rates)
        old_remaining = (self._io_remaining if keep is None
                         else self._io_remaining[keep])
        n_surviving = len(old_remaining)
        if n_active > n_surviving:
            tail = active[n_surviving:]
            new_remaining = np.concatenate(
                (old_remaining, [job.remaining for job in tail]))
            codes = np.concatenate(
                (self._io_codes[keep] if keep is not None
                 else self._io_codes,
                 np.asarray([job.code for job in tail], dtype=np.intp)))
        else:
            new_remaining = old_remaining
            codes = self._io_codes[keep] if keep is not None else self._io_codes
        class_rates = np.bincount(codes, weights=rates,
                                  minlength=len(self._classes))
        total = float(class_rates.sum())
        bg_sum = total - float(class_rates[self._ana_code])
        if self._backpressure is not None:
            # Feed the round's backbone utilization to the controller and
            # let it debounce; a degraded-mode flip lands as new caps at
            # the *next* round (the one-round control lag a real shed
            # path would have).
            controller = self._backpressure
            util = total / self._backbone_bw if self._backbone_bw > 0 else 0.0
            controller.feed.observe(BACKBONE_COMPONENT, util, engine.now)
            controller.update(engine.now)
        if n_active:
            self._io_drain_eps = np.maximum(_DONE_EPS_BYTES,
                                            rates * _DONE_EPS_S)
            if total > 0.0:
                # Flooring the rates keeps stalled phases (rate 0) out of
                # the minimum without building an inf-filled out array —
                # their quotients land around 1e212, never the min of a
                # mix that contains at least one flowing phase.
                next_dt = float(
                    (new_remaining / np.maximum(rates, _RATE_FLOOR)).min())
            else:
                next_dt = math.inf
        else:
            next_dt = math.inf
            self._io_drain_eps = _EMPTY_F
        self._io_jobs = active
        self._io_rates = rates
        self._io_remaining = new_remaining
        self._io_codes = codes
        self._bg_rate_sum = bg_sum
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.counter("sched.resolves").add(1.0)
        state.timeline.append((engine.now, total, label))
        # One wakeup for the earliest projected completion; the epoch
        # guard voids it if any state change re-solves first.
        if math.isfinite(next_dt):
            epoch = state.epoch
            engine.call_at(engine.now + max(_DONE_EPS_S, next_dt),
                           lambda e=epoch: self._wakeup(e))

    def _wakeup(self, epoch: int) -> None:
        if epoch != self._state.epoch:
            return
        self._resolve("progress")

    # -- execution -----------------------------------------------------------

    @property
    def solve_counts(self) -> dict[str, int]:
        """Cumulative arbiter re-solve counts by resolve path.

        Keys are the :data:`~repro.core.flow.RESOLVE_COUNTERS` suffixes
        (``full`` / ``delta`` / ``shortcircuit`` / ``cached``); the
        benchmark regression gate asserts a ceiling on ``full`` — see
        ``docs/PERFORMANCE.md``.
        """
        return self._arbiter.solve_counts

    def run(self) -> SchedResult:
        """Execute the population to the horizon and return the
        :class:`~repro.sched.metrics.SchedResult`."""
        engine = self._engine = Engine()
        instrument_engine(engine, get_telemetry(), get_tracer())
        self._epoch = Epoch(self._flush, engine=engine)
        self._arbiter.reset()
        self._state = _RunState()
        self._delivered = [0.0] * len(self._classes)
        self._active_io.clear()
        self._io_jobs = []
        self._io_rates = _EMPTY_F
        self._io_remaining = _EMPTY_F
        self._io_codes = np.empty(0, dtype=np.intp)
        self._io_drain_eps = _EMPTY_F
        self._bg_rate_sum = 0.0
        self._ana_count = 0
        self._running = {cls: 0 for cls in PlatformClass}
        self._queues = {cls: deque() for cls in PlatformClass}
        self._finished.clear()
        self._submitted.clear()
        self._tokens.clear()
        self._fault_spans.clear()
        self._backbone_dirty = True

        self._runner = None
        self.remediation_outcome = None
        if self.fault_plan is not None and self.remediation is not None:
            # Imported lazily: repro.resilience imports the faults package
            # at module level, so the scheduler must not return the favor.
            from repro.resilience.actuator import CallbackActuator
            from repro.resilience.runner import PlaybookRunner

            self._runner = PlaybookRunner(
                self.remediation,
                engine=engine,
                actuator=CallbackActuator(
                    repair=self._remediate_repair,
                    pending=lambda f: f in self._tokens,
                ),
                # Sched systems are usually built without client objects;
                # fall back to the compute-partition size for the
                # reconnect-storm scale.
                n_clients=(len(self.system.clients)
                           or self.system.spec.n_compute_nodes),
                n_routers=len(self.system.routers),
                epoch=self._epoch,
            )

        runtime_jobs = [_Job(spec, code=self._class_code[spec.platform])
                        for spec in self.jobs]
        for job in runtime_jobs:
            if job.spec.arrival < self.horizon:
                engine.call_at(job.spec.arrival,
                               lambda j=job: self._submit(j))
        if self.fault_plan is not None:
            for fault in self.fault_plan:
                if fault.time < self.horizon:
                    engine.call_at(fault.time,
                                   lambda f=fault: self._inject_fault(f))
                if math.isfinite(fault.repair_time) and \
                        fault.repair_time < self.horizon:
                    engine.call_at(fault.repair_time,
                                   lambda f=fault: self._repair_fault(f))
        engine.run(until=self.horizon)
        # Account the tail interval and close censored spans.
        self._settle(self.horizon)
        # Partial delivery credit for phases censored mid-drain (the
        # settle vectors carry their drained state; phases that joined
        # after the last flush never flowed).
        remaining = self._io_remaining.tolist()
        for k, job in enumerate(self._io_jobs):
            phase = job.spec.phases[job.phase_index]
            self._delivered[job.code] += phase.volume - remaining[k]
        tracer = get_tracer()
        for job in runtime_jobs:
            if job.span is not None:
                tracer.end(job.span, finished=False)
                job.span = None
        for fault, span in list(self._fault_spans.items()):
            tracer.end(span, repaired=False)
        self._fault_spans.clear()
        if self._runner is not None:
            self.remediation_outcome = self._runner.finalize()
        return self._result()

    # -- metrics -------------------------------------------------------------

    def _outcome(self, job: _Job) -> JobOutcome:
        spec = job.spec
        isolated = spec.isolated_runtime(self._isolated_caps[job.platform])
        censored = job.finish is None
        slowdown = stretch = satisfaction = None
        if not censored and job.start is not None and isolated > 0:
            slowdown = (job.finish - job.start) / isolated
            stretch = (job.finish - spec.arrival) / isolated
            iso_io = spec.isolated_io_time(self._isolated_caps[job.platform])
            if job.io_time > 0 and iso_io > 0:
                satisfaction = iso_io / job.io_time
        return JobOutcome(
            name=spec.name,
            platform=job.platform.value,
            arrival=spec.arrival,
            start=job.start,
            finish=job.finish,
            censored=censored,
            isolated_runtime=isolated,
            slowdown=slowdown,
            stretch=stretch,
            satisfaction=satisfaction,
            drain_overrun=None if censored else job.worst_overrun,
        )

    def _latency_probe(self) -> LatencyProbe | None:
        """Replay a representative analytics session alone vs against the
        background bandwidth the arbiter delivered during analytics
        activity, scaled to one OST-class station."""
        state = self._state
        if not any(job.platform is PlatformClass.ANALYTICS
                   for job in self._submitted):
            return None
        station_bw = min(PROBE_STATION_CAP,
                         self._baseline_backbone / PROBE_STATION_DIVISOR)
        # Calibrate by service-time utilization: the positioning cost
        # dominates small requests, so byte rates alone misstate load.
        mean_service = (PROBE_POSITIONING_S
                        + PROBE_MEAN_REQUEST_BYTES / station_bw)
        request_rate = PROBE_UTILIZATION * PROBE_N_SERVERS / mean_service
        rng = RngStreams(self.seed)
        primary = analytics_trace(
            AnalyticsApp(name="sched-probe", request_rate=request_rate),
            PROBE_DURATION, rng.get("probe:analytics"))
        if len(primary) == 0:
            return None
        # The background offers the station the same utilization the
        # non-analytics classes put on the backbone at peak.  Coarsening
        # to the request ceiling re-derives the rate from the larger
        # request, so the offered utilization is preserved exactly.
        bg_frac = (_weighted_percentile(state.bg_samples, PROBE_BG_PERCENTILE)
                   / self._baseline_backbone)
        req_bytes = float(PROBE_BG_REQUEST_BYTES)
        bg_service = PROBE_POSITIONING_S + req_bytes / station_bw
        bg_rate = bg_frac * PROBE_N_SERVERS / bg_service
        n_requests = int(bg_rate * PROBE_DURATION)
        if n_requests > PROBE_BG_MAX_REQUESTS:
            factor = int(np.ceil(n_requests / PROBE_BG_MAX_REQUESTS))
            req_bytes *= factor
            bg_service = PROBE_POSITIONING_S + req_bytes / station_bw
            bg_rate = bg_frac * PROBE_N_SERVERS / bg_service
            n_requests = int(bg_rate * PROBE_DURATION)
        times = (np.arange(n_requests) + 0.5) * (PROBE_DURATION
                                                 / max(1, n_requests))
        background = RequestTrace(
            times,
            np.full(n_requests, req_bytes),
            np.ones(n_requests, dtype=bool),
            label="sched-bg")
        alone_results, shared, _merged = isolated_and_shared(
            [primary, background], bandwidth=station_bw,
            n_servers=PROBE_N_SERVERS,
            positioning_time=PROBE_POSITIONING_S,
            alone_sources=(0,))
        alone = alone_results[0]
        alone_p50, alone_p99 = alone.percentiles([50, 99], reads_only=True)
        shared_p50, shared_p99 = shared.percentiles([50, 99],
                                                    reads_only=True, source=0)
        return LatencyProbe(
            station_bandwidth=float(station_bw),
            background_bandwidth=float(bg_rate * req_bytes),
            alone_p50=alone_p50,
            alone_p99=alone_p99,
            shared_p50=shared_p50,
            shared_p99=shared_p99,
        )

    def _result(self) -> SchedResult:
        state = self._state
        outcomes = sorted((self._outcome(job) for job in self._submitted),
                          key=lambda o: o.name)
        by_class: dict[str, list[JobOutcome]] = {}
        for outcome in outcomes:
            by_class.setdefault(outcome.platform, []).append(outcome)
        summaries = tuple(
            (value, ClassSummary.from_outcomes(by_class[value]))
            for value in sorted(by_class))
        satisfactions = [o.satisfaction for o in outcomes
                         if o.satisfaction is not None]
        return SchedResult(
            horizon=self.horizon,
            qos_enabled=self.policy.enabled,
            n_jobs=len(self.jobs),
            n_submitted=state.n_submitted,
            n_finished=state.n_finished,
            n_censored=state.n_submitted - state.n_finished,
            n_fault_events=state.n_fault_events,
            makespan=state.makespan if state.n_finished else self.horizon,
            class_summaries=summaries,
            outcomes=tuple(outcomes),
            timeline=tuple(state.timeline),
            delivered_by_class=tuple(sorted(
                (cls.value, self._delivered[code])
                for cls, code in self._class_code.items())),
            overall_fairness=jains_index(satisfactions),
            latency=self._latency_probe(),
        )
