"""QoS policy and the per-resolve bandwidth arbiter.

The arbiter is the time-varying extension of the interference study: at
every job start/finish/phase change the scheduler hands it the currently
running I/O phases and it re-solves a fresh
:class:`~repro.core.flow.FlowNetwork`.  Each running phase is one flow
crossing three components:

* ``ingest:<class>`` — the platform's injection capacity (Titan's LNET
  router aggregate for simulations, the analysis-cluster and DTN uplinks
  for the others);
* ``qos:<class>`` — the class demand cap, a fraction of the *current*
  backbone, present only when the policy is enabled (DIAL-style
  client-side bandwidth allocation);
* ``fs:backbone`` — the file system's delivered aggregate, recomputed
  from the live system so injected faults surface in every allocation.

Max-min fairness inside and across classes comes from the flow solver;
the policy adds the knobs the paper's Lesson 1 wishes it had — per-class
caps that stop a checkpoint storm from saturating the path analytics
latency rides on.
"""

from __future__ import annotations

import math
import sys
from collections.abc import Mapping
from dataclasses import dataclass, field

import numpy as np

from repro.core.flow import FlowNetwork
from repro.sched.jobs import PlatformClass

__all__ = ["QosPolicy", "BandwidthArbiter", "BACKBONE_COMPONENT"]

#: the shared file-system component every I/O flow crosses
BACKBONE_COMPONENT = "fs:backbone"


def _default_caps() -> dict[PlatformClass, float]:
    # Caps sum to 0.7, reserving headroom for analytics (uncapped) so a
    # checkpoint storm plus a DTN campaign can never saturate the path
    # interactive latency rides on.
    return {
        PlatformClass.SIMULATION: 0.50,
        PlatformClass.ANALYTICS: 1.0,
        PlatformClass.DATA_TRANSFER: 0.20,
    }


def _default_weights() -> dict[PlatformClass, float]:
    return {cls: 1.0 for cls in PlatformClass}


def _default_limits() -> dict[PlatformClass, int]:
    return {
        PlatformClass.SIMULATION: 24,
        PlatformClass.ANALYTICS: 48,
        PlatformClass.DATA_TRANSFER: 12,
    }


@dataclass(frozen=True)
class QosPolicy:
    """Per-class demand caps, arbitration weights, and admission limits.

    ``cap_fraction`` bounds each class's aggregate allocation to a
    fraction of the current backbone (1.0 = uncapped); ``weight`` scales
    a class's share under max-min contention; ``max_concurrent`` is the
    admission limit — arrivals beyond it queue FIFO per class.
    """

    enabled: bool = True
    cap_fraction: Mapping[PlatformClass, float] = field(
        default_factory=_default_caps)
    weight: Mapping[PlatformClass, float] = field(
        default_factory=_default_weights)
    max_concurrent: Mapping[PlatformClass, int] = field(
        default_factory=_default_limits)

    def __post_init__(self) -> None:
        for cls, frac in self.cap_fraction.items():
            if not (0 < frac <= 1):
                raise ValueError(f"cap fraction for {cls.value} must be in (0, 1]")
        for cls, w in self.weight.items():
            if w <= 0:
                raise ValueError(f"weight for {cls.value} must be positive")
        for cls, limit in self.max_concurrent.items():
            if limit < 1:
                raise ValueError(f"max_concurrent for {cls.value} must be >= 1")

    @classmethod
    def disabled(cls) -> "QosPolicy":
        """Arbitration without caps: pure max-min over the shared path
        (the as-deployed Spider, where isolation was a lesson, not a knob)."""
        return cls(enabled=False)

    def cap_of(self, platform: PlatformClass) -> float:
        """The class's cap fraction (1.0 when unset)."""
        return float(self.cap_fraction.get(platform, 1.0))

    def weight_of(self, platform: PlatformClass) -> float:
        """The class's arbitration weight (1.0 when unset)."""
        return float(self.weight.get(platform, 1.0))

    def limit_of(self, platform: PlatformClass) -> int:
        """The class's admission limit (effectively unbounded when unset)."""
        return int(self.max_concurrent.get(platform, sys.maxsize))


class BandwidthArbiter:
    """Solves one allocation round over the currently running I/O phases."""

    def __init__(self, policy: QosPolicy) -> None:
        self.policy = policy

    def allocate(
        self,
        requests: list[tuple[str, PlatformClass, float]],
        *,
        backbone_capacity: float,
        ingest_caps: Mapping[PlatformClass, float],
    ) -> np.ndarray:
        """Allocate rates for ``(name, platform, demand)`` requests.

        Returns a rate array aligned with ``requests``.  Every flow
        crosses its platform ingest link, its QoS class cap (when the
        policy is enabled and the class is capped), and the backbone.
        """
        if not requests:
            return np.empty(0)
        net = FlowNetwork()
        net.add_component(BACKBONE_COMPONENT, backbone_capacity)
        class_paths: dict[PlatformClass, list[str]] = {}
        for _name, platform, _demand in requests:
            if platform in class_paths:
                continue
            ingest = f"ingest:{platform.value}"
            net.add_component(
                ingest, float(ingest_caps.get(platform, math.inf)))
            path = [ingest]
            cap = self.policy.cap_of(platform)
            if self.policy.enabled and cap < 1.0:
                qos = f"qos:{platform.value}"
                net.add_component(qos, cap * backbone_capacity)
                path.append(qos)
            path.append(BACKBONE_COMPONENT)
            class_paths[platform] = path
        for name, platform, demand in requests:
            net.add_flow(name, class_paths[platform], demand=demand,
                         weight=self.policy.weight_of(platform))
        return net.solve().rates
