"""QoS policy and the per-resolve bandwidth arbiter.

The arbiter is the time-varying extension of the interference study: it
owns one persistent :class:`~repro.core.flow.FlowNetwork` whose solver
state survives across allocation rounds.  The scheduler applies delta
operations as jobs come and go (:meth:`BandwidthArbiter.add` /
:meth:`~BandwidthArbiter.remove`) and each
:meth:`~BandwidthArbiter.reallocate` is an incremental re-solve — the
cost model is documented in ``docs/PERFORMANCE.md``.  Each running phase
is one flow crossing three components:

* ``ingest:<class>`` — the platform's injection capacity (Titan's LNET
  router aggregate for simulations, the analysis-cluster and DTN uplinks
  for the others);
* ``qos:<class>`` — the class demand cap, a fraction of the *current*
  backbone, present only when the policy is enabled (DIAL-style
  client-side bandwidth allocation);
* ``fs:backbone`` — the file system's delivered aggregate, recomputed
  from the live system so injected faults surface in every allocation.

Max-min fairness inside and across classes comes from the flow solver;
the policy adds the knobs the paper's Lesson 1 wishes it had — per-class
caps that stop a checkpoint storm from saturating the path analytics
latency rides on.
"""

from __future__ import annotations

import math
import sys
from collections.abc import Mapping
from dataclasses import dataclass, field

import numpy as np

from repro.core.flow import FlowNetwork
from repro.sched.jobs import PlatformClass

__all__ = ["QosPolicy", "BandwidthArbiter", "BACKBONE_COMPONENT"]

#: the shared file-system component every I/O flow crosses
BACKBONE_COMPONENT = "fs:backbone"


def _default_caps() -> dict[PlatformClass, float]:
    # Caps sum to 0.7, reserving headroom for analytics (uncapped) so a
    # checkpoint storm plus a DTN campaign can never saturate the path
    # interactive latency rides on.
    return {
        PlatformClass.SIMULATION: 0.50,
        PlatformClass.ANALYTICS: 1.0,
        PlatformClass.DATA_TRANSFER: 0.20,
    }


def _default_degraded_caps() -> dict[PlatformClass, float]:
    # Degraded mode halves the bulk classes' shares: checkpoint and DTN
    # traffic shed into their queues so the storm-hit links drain, while
    # analytics (the latency victim backpressure exists to protect)
    # stays uncapped.
    return {
        PlatformClass.SIMULATION: 0.25,
        PlatformClass.ANALYTICS: 1.0,
        PlatformClass.DATA_TRANSFER: 0.10,
    }


def _default_weights() -> dict[PlatformClass, float]:
    return {cls: 1.0 for cls in PlatformClass}


def _default_limits() -> dict[PlatformClass, int]:
    return {
        PlatformClass.SIMULATION: 24,
        PlatformClass.ANALYTICS: 48,
        PlatformClass.DATA_TRANSFER: 12,
    }


@dataclass(frozen=True)
class QosPolicy:
    """Per-class demand caps, arbitration weights, and admission limits.

    ``cap_fraction`` bounds each class's aggregate allocation to a
    fraction of the current backbone (1.0 = uncapped); ``weight`` scales
    a class's share under max-min contention; ``max_concurrent`` is the
    admission limit — arrivals beyond it queue FIFO per class.
    """

    enabled: bool = True
    cap_fraction: Mapping[PlatformClass, float] = field(
        default_factory=_default_caps)
    weight: Mapping[PlatformClass, float] = field(
        default_factory=_default_weights)
    max_concurrent: Mapping[PlatformClass, int] = field(
        default_factory=_default_limits)
    #: tighter caps applied while backpressure holds the arbiter in
    #: degraded mode (see :meth:`BandwidthArbiter.set_degraded`): bulk
    #: classes shed harder so the hot links drain; unset classes fall
    #: back to their normal cap
    degraded_cap_fraction: Mapping[PlatformClass, float] = field(
        default_factory=_default_degraded_caps)

    def __post_init__(self) -> None:
        for cls, frac in self.cap_fraction.items():
            if not (0 < frac <= 1):
                raise ValueError(f"cap fraction for {cls.value} must be in (0, 1]")
        for cls, frac in self.degraded_cap_fraction.items():
            if not (0 < frac <= 1):
                raise ValueError(
                    f"degraded cap for {cls.value} must be in (0, 1]")
        for cls, w in self.weight.items():
            if w <= 0:
                raise ValueError(f"weight for {cls.value} must be positive")
        for cls, limit in self.max_concurrent.items():
            if limit < 1:
                raise ValueError(f"max_concurrent for {cls.value} must be >= 1")

    @classmethod
    def disabled(cls) -> "QosPolicy":
        """Arbitration without caps: pure max-min over the shared path
        (the as-deployed Spider, where isolation was a lesson, not a knob)."""
        return cls(enabled=False)

    def cap_of(self, platform: PlatformClass) -> float:
        """The class's cap fraction (1.0 when unset)."""
        return float(self.cap_fraction.get(platform, 1.0))

    def degraded_cap_of(self, platform: PlatformClass) -> float:
        """The class's cap while degraded: the tighter of its degraded
        and normal fractions (degraded mode never *loosens* a cap)."""
        return min(float(self.degraded_cap_fraction.get(platform, 1.0)),
                   self.cap_of(platform))

    def weight_of(self, platform: PlatformClass) -> float:
        """The class's arbitration weight (1.0 when unset)."""
        return float(self.weight.get(platform, 1.0))

    def limit_of(self, platform: PlatformClass) -> int:
        """The class's admission limit (effectively unbounded when unset)."""
        return int(self.max_concurrent.get(platform, sys.maxsize))


class BandwidthArbiter:
    """Arbitrates bandwidth over the currently running I/O phases.

    The arbiter keeps one persistent :class:`FlowNetwork` across
    allocation rounds: phases join and leave via :meth:`add` /
    :meth:`remove` (delta operations) and :meth:`reallocate` refreshes
    the capacity components and re-solves incrementally.  The one-shot
    :meth:`allocate` wrapper rebuilds from scratch for callers outside
    the scheduler loop.
    """

    def __init__(self, policy: QosPolicy) -> None:
        self.policy = policy
        self._net = FlowNetwork()
        self._net.add_component(BACKBONE_COMPONENT, math.inf)
        # platform -> component path, registered lazily on first flow;
        # capacities are placeholders until the next reallocate().
        self._class_paths: dict[PlatformClass, list[str]] = {}
        # capacity-refresh memo: the capacities pushed into the network
        # by the last reallocate — a repeat round (the common quiet case)
        # skips the per-component set_capacity walk entirely
        self._caps_memo: tuple | None = None
        #: backpressure degraded mode: while set, per-class caps come
        #: from the policy's degraded fractions (see :meth:`set_degraded`)
        self.degraded = False

    @property
    def solve_counts(self) -> dict[str, int]:
        """Cumulative solve counts by resolve path (see ``FlowNetwork``)."""
        return self._net.solve_counts

    @property
    def n_flows(self) -> int:
        """Number of I/O phases currently held by the arbiter."""
        return self._net.n_flows

    def reset(self) -> None:
        """Drop all flows and solver state (a fresh scheduler run)."""
        self._net = FlowNetwork()
        self._net.add_component(BACKBONE_COMPONENT, math.inf)
        self._class_paths = {}
        self._caps_memo = None

    def set_degraded(self, active: bool) -> None:
        """Flip backpressure degraded mode (idempotent).

        While degraded, :meth:`reallocate` prices each class's ``qos``
        cap from :meth:`QosPolicy.degraded_cap_of` instead of its normal
        fraction — the shed path the
        :class:`~repro.network.routing.BackpressureController` drives.
        A transition invalidates the capacity memo so the next round
        pushes the new caps even if nothing else moved.
        """
        active = bool(active)
        if active != self.degraded:
            self.degraded = active
            self._caps_memo = None

    def _effective_cap(self, platform: PlatformClass) -> float:
        if self.degraded:
            return self.policy.degraded_cap_of(platform)
        return self.policy.cap_of(platform)

    def _path_of(self, platform: PlatformClass) -> list[str]:
        """The component path for ``platform``, registering it lazily.

        The ``qos`` element is registered whenever *either* the normal or
        the degraded cap can bind, so entering degraded mode later is a
        pure capacity delta — never a topology change.
        """
        path = self._class_paths.get(platform)
        if path is None:
            ingest = f"ingest:{platform.value}"
            self._net.add_component(ingest, math.inf)
            path = [ingest]
            can_bind = (self.policy.cap_of(platform) < 1.0
                        or self.policy.degraded_cap_of(platform) < 1.0)
            if self.policy.enabled and can_bind:
                qos = f"qos:{platform.value}"
                self._net.add_component(qos, math.inf)
                path.append(qos)
            path.append(BACKBONE_COMPONENT)
            self._class_paths[platform] = path
        return path

    def add(self, name: str, platform: PlatformClass,
            demand: float) -> None:
        """Register a running I/O phase as a flow (delta operation)."""
        self._net.add_flow(name, self._path_of(platform), demand=demand,
                           weight=self.policy.weight_of(platform))

    def remove(self, name: str) -> None:
        """Drop a finished I/O phase's flow (delta operation)."""
        self._net.remove_flow(name)

    def reallocate(
        self,
        *,
        backbone_capacity: float,
        ingest_caps: Mapping[PlatformClass, float],
    ) -> np.ndarray:
        """Refresh capacities and re-solve over the held flows.

        Returns a rate array aligned with the arrival order of the held
        flows (the order :meth:`add` calls happened, minus removals) —
        the same order the scheduler walks its active-phase table in.
        Unchanged capacities are no-ops, so a quiet round costs only the
        delta induced by phase churn.
        """
        net = self._net
        if net.n_flows == 0:
            return np.empty(0)
        # Memo on the capacity values actually pushed (per registered
        # class, in registration order): quiet rounds between faults
        # repeat them verbatim.
        memo = (backbone_capacity, self.degraded,
                tuple(ingest_caps.get(platform, math.inf)
                      for platform in self._class_paths))
        if memo != self._caps_memo:
            net.set_capacity(BACKBONE_COMPONENT, float(backbone_capacity))
            for platform, path in self._class_paths.items():
                net.set_capacity(path[0],
                                 float(ingest_caps.get(platform, math.inf)))
                if len(path) == 3:
                    cap = self._effective_cap(platform)
                    net.set_capacity(path[1], cap * backbone_capacity)
            self._caps_memo = memo
        return net.solve_rates()

    def allocate(
        self,
        requests: list[tuple[str, PlatformClass, float]],
        *,
        backbone_capacity: float,
        ingest_caps: Mapping[PlatformClass, float],
    ) -> np.ndarray:
        """One-shot allocation for ``(name, platform, demand)`` requests.

        Rebuilds the solver state from scratch and returns a rate array
        aligned with ``requests``.  Analysis-style callers that price a
        single scenario use this; the scheduler loop uses the delta API.
        """
        if not requests:
            return np.empty(0)
        self.reset()
        for name, platform, demand in requests:
            self.add(name, platform, demand)
        return self.reallocate(backbone_capacity=backbone_capacity,
                               ingest_caps=ingest_caps)
