"""Per-job and per-class outcome metrics for scheduler runs.

The Monitoring Extreme-scale Lustre Toolkit motivates the accounting
here: facility operators need *job-visible* numbers, not raw bandwidth.
Every job yields a :class:`JobOutcome` (slowdown against its isolated
run, stretch including queue wait, bandwidth received vs demanded,
checkpoint-drain overrun); classes roll up into :class:`ClassSummary`
rows with Jain's fairness index; one run returns a :class:`SchedResult`
of plain floats and tuples, so identically seeded runs compare equal
with ``==`` — the same determinism contract as
:class:`~repro.faults.campaign.CampaignResult`.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from repro.sched.jobs import PlatformClass

__all__ = ["jains_index", "JobOutcome", "ClassSummary", "LatencyProbe",
           "SchedResult"]


def jains_index(values: Iterable[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``.

    1.0 means every job got the same normalized share; ``1/n`` means one
    job got everything.  Defined as 1.0 for empty input (nothing to be
    unfair about).
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return 1.0
    total = float(arr.sum())
    squares = float((arr * arr).sum())
    if squares <= 0:
        return 1.0
    return float(total * total / (arr.size * squares))


@dataclass(frozen=True)
class JobOutcome:
    """One job's run, as the facility's accounting sees it.

    ``slowdown`` is wall-clock running time over the isolated fluid
    runtime; ``stretch`` additionally charges queueing delay
    (finish - arrival over isolated runtime); ``satisfaction`` is the
    mean bandwidth received during I/O phases over the isolated rate
    (1.0 = never throttled); ``drain_overrun`` is the worst per-burst
    drain time over its isolated drain (simulation jobs only).  Censored
    jobs (still queued or running at the horizon) carry ``None`` for the
    undefined metrics.
    """

    name: str
    platform: str
    arrival: float
    start: float | None
    finish: float | None
    censored: bool
    isolated_runtime: float
    slowdown: float | None
    stretch: float | None
    satisfaction: float | None
    drain_overrun: float | None


@dataclass(frozen=True)
class ClassSummary:
    """Roll-up of one platform class's finished jobs."""

    n_jobs: int
    n_finished: int
    n_censored: int
    mean_slowdown: float
    p95_slowdown: float
    mean_stretch: float
    mean_satisfaction: float
    fairness: float
    worst_drain_overrun: float | None

    @classmethod
    def from_outcomes(cls, outcomes: list[JobOutcome]) -> "ClassSummary":
        """Summarize one class's outcomes (censored jobs counted, not
        averaged)."""
        finished = [o for o in outcomes if not o.censored]
        slowdowns = [o.slowdown for o in finished if o.slowdown is not None]
        stretches = [o.stretch for o in finished if o.stretch is not None]
        sats = [o.satisfaction for o in finished if o.satisfaction is not None]
        overruns = [o.drain_overrun for o in finished
                    if o.drain_overrun is not None]
        return cls(
            n_jobs=len(outcomes),
            n_finished=len(finished),
            n_censored=len(outcomes) - len(finished),
            mean_slowdown=float(np.mean(slowdowns)) if slowdowns else 0.0,
            p95_slowdown=float(np.percentile(slowdowns, 95)) if slowdowns else 0.0,
            mean_stretch=float(np.mean(stretches)) if stretches else 0.0,
            mean_satisfaction=float(np.mean(sats)) if sats else 0.0,
            fairness=jains_index(sats),
            worst_drain_overrun=max(overruns) if overruns else None,
        )


@dataclass(frozen=True)
class LatencyProbe:
    """Analytics read-latency outcome of one scheduler run.

    A representative analytics session is replayed through one OST-class
    station twice: alone, and against a background write stream whose
    rate is the mean non-analytics bandwidth the arbiter delivered while
    analytics jobs were running (scaled to the station's share of the
    backbone).  QoS caps lower that background rate, so the shared p99
    recovers toward the alone p99 — Lesson 1's isolation knob, measured.
    """

    station_bandwidth: float
    background_bandwidth: float
    alone_p50: float
    alone_p99: float
    shared_p50: float
    shared_p99: float

    @property
    def p99_inflation(self) -> float:
        """Shared p99 over alone p99 (1.0 = perfectly isolated)."""
        if self.alone_p99 <= 0:
            return 1.0
        return self.shared_p99 / self.alone_p99


@dataclass(frozen=True)
class SchedResult:
    """Outcome of one :class:`~repro.sched.scheduler.FacilityScheduler`
    run.  All fields are plain floats/ints/strings/tuples, so results
    from identically seeded runs compare equal with ``==``."""

    #: run horizon (seconds)
    horizon: float
    #: whether QoS demand caps were active
    qos_enabled: bool
    #: jobs in the generated population
    n_jobs: int
    #: jobs that arrived and were submitted before the horizon
    n_submitted: int
    n_finished: int
    #: submitted jobs still queued or running at the horizon
    n_censored: int
    #: fault injections/repairs/recoveries executed during the run
    n_fault_events: int
    #: last job-finish time (horizon if nothing finished)
    makespan: float
    #: ``(class value, ClassSummary)`` sorted by class value
    class_summaries: tuple[tuple[str, ClassSummary], ...]
    #: per-job outcomes sorted by job name
    outcomes: tuple[JobOutcome, ...]
    #: ``(time, total allocated bandwidth, label)`` per arbiter re-solve
    timeline: tuple[tuple[float, float, str], ...]
    #: ``(class value, bytes delivered)`` sorted by class value
    delivered_by_class: tuple[tuple[str, float], ...]
    #: Jain's index over all finished jobs' bandwidth satisfaction
    overall_fairness: float
    #: analytics latency probe (None when no analytics job was submitted)
    latency: LatencyProbe | None

    def summary_of(self, platform: PlatformClass | str) -> ClassSummary:
        """The :class:`ClassSummary` for one platform class."""
        key = platform.value if isinstance(platform, PlatformClass) else platform
        for value, summary in self.class_summaries:
            if value == key:
                return summary
        raise KeyError(f"no summary for class {key!r}")

    def class_rows(self) -> list[tuple]:
        """Per-class table rows for the CLI report."""
        rows = []
        for value, s in self.class_summaries:
            rows.append((
                value, s.n_jobs, s.n_finished,
                f"{s.mean_slowdown:.2f}x", f"{s.p95_slowdown:.2f}x",
                f"{s.mean_stretch:.2f}x", f"{s.mean_satisfaction:.0%}",
                f"{s.fairness:.3f}",
            ))
        return rows
