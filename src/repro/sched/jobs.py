"""The job model of the center-wide scheduler.

The paper's defining claim is that Spider is *center-wide*: one file
system serving Titan's simulations, the analysis clusters, and the
data-transfer nodes simultaneously (Lesson 1 trades "ease of data
access" against "the ability to isolate compute platforms from
competing I/O workloads").  This module gives that claim a unit of
account: a :class:`JobSpec` is one tenant's stay on the facility,
expressed as a sequence of :class:`Phase` steps — compute phases that
touch no storage, and I/O phases that move a byte volume at up to a
demanded bandwidth.

Three :class:`PlatformClass` tenants mirror the paper's platforms:

* ``SIMULATION`` — Titan-style jobs alternating long compute phases
  with checkpoint bursts whose instantaneous demand can exceed the
  whole backbone (§II's "different data production/consumption rates");
* ``ANALYTICS`` — interactive analysis sessions: low steady demand,
  but latency-sensitive (the class the QoS caps exist to protect);
* ``DATA_TRANSFER`` — DTN bulk streams in and out of the center.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["PlatformClass", "Phase", "JobSpec"]


class PlatformClass(Enum):
    """One of the three platform classes sharing the data-centric file
    system: checkpointing simulations, interactive analytics, and bulk
    data transfer."""

    SIMULATION = "simulation"
    ANALYTICS = "analytics"
    DATA_TRANSFER = "data_transfer"


@dataclass(frozen=True)
class Phase:
    """One step of a job's lifetime.

    ``kind`` is ``"compute"`` (runs for ``duration`` seconds touching no
    storage) or ``"io"`` (moves ``volume`` bytes at up to ``demand``
    bytes/s — the actual rate is whatever the arbiter allocates).
    """

    kind: str
    duration: float = 0.0
    volume: float = 0.0
    demand: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("compute", "io"):
            raise ValueError(f"unknown phase kind {self.kind!r}")
        if self.kind == "compute":
            if self.duration <= 0:
                raise ValueError("compute phases need a positive duration")
        else:
            if self.volume <= 0 or self.demand <= 0:
                raise ValueError("io phases need positive volume and demand")

    @classmethod
    def compute(cls, duration: float) -> "Phase":
        """A storage-silent phase of ``duration`` seconds."""
        return cls("compute", duration=duration)

    @classmethod
    def io(cls, volume: float, demand: float) -> "Phase":
        """An I/O phase moving ``volume`` bytes at up to ``demand`` bytes/s."""
        return cls("io", volume=volume, demand=demand)


@dataclass(frozen=True)
class JobSpec:
    """One job: a named tenant of ``platform`` class arriving at
    ``arrival`` seconds and executing ``phases`` in order."""

    name: str
    platform: PlatformClass
    arrival: float
    phases: tuple[Phase, ...]

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise ValueError("arrival must be non-negative")
        if not self.phases:
            raise ValueError("a job needs at least one phase")

    @property
    def total_io_bytes(self) -> float:
        """Total bytes the job moves across all its I/O phases."""
        return float(sum(p.volume for p in self.phases if p.kind == "io"))

    def isolated_runtime(self, capacity: float) -> float:
        """Fluid runtime with the facility to itself: compute phases at
        face value, I/O phases draining at ``min(demand, capacity)``.

        This is the per-job "machine-exclusive scratch" baseline the
        slowdown and stretch metrics divide by.
        """
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        total = 0.0
        for phase in self.phases:
            if phase.kind == "compute":
                total += phase.duration
            else:
                total += phase.volume / min(phase.demand, capacity)
        return total

    def isolated_io_time(self, capacity: float) -> float:
        """The I/O-phase share of :meth:`isolated_runtime`."""
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        return float(sum(p.volume / min(p.demand, capacity)
                         for p in self.phases if p.kind == "io"))
