"""Workload characterization: the Spider I study of §II, as code.

Given a server-side request trace, reproduce the quantities the paper
reports and used to optimize the Spider metadata servers:

* request mix — "a mix of 60% write and 40% read I/O requests";
* size bimodality — "a majority of I/O requests are either small (under
  16 KB) or large (multiples of 1 MB)";
* tail behaviour — "the inter-arrival time and idle time distributions
  both follow a long-tail distribution that can be modeled as a Pareto
  distribution", checked here with a Hill tail-index estimate and a
  tail-heaviness comparison against an exponential fit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.units import MiB
from repro.workloads.model import RequestTrace, SMALL_REQUEST_CEILING

__all__ = ["WorkloadReport", "characterize", "hill_tail_index", "tail_heavier_than_exponential"]


def hill_tail_index(samples: np.ndarray, tail_fraction: float = 0.05) -> float:
    """Hill estimator of the Pareto tail index α from the upper tail.

    Uses the largest ``tail_fraction`` of the samples.  For Pareto(α) data
    the estimate converges to α; for light-tailed (e.g. exponential) data
    it drifts upward with sample size.
    """
    samples = np.asarray(samples, dtype=float)
    samples = samples[samples > 0]
    if len(samples) < 20:
        raise ValueError("need at least 20 positive samples for a tail fit")
    if not (0 < tail_fraction <= 0.5):
        raise ValueError("tail_fraction must be in (0, 0.5]")
    k = max(10, int(len(samples) * tail_fraction))
    tail = np.sort(samples)[-k:]
    x_k = tail[0]
    logs = np.log(tail / x_k)
    mean_log = logs[1:].mean() if len(logs) > 1 else logs.mean()
    if mean_log <= 0:
        return float("inf")
    return float(1.0 / mean_log)


def tail_heavier_than_exponential(samples: np.ndarray, quantile: float = 0.999) -> bool:
    """True when the empirical upper tail exceeds the exponential fit.

    Compares the empirical ``quantile`` against the same quantile of an
    exponential with the sample mean — a simple long-tail detector that
    distinguishes Pareto-like gaps from Poisson arrivals.
    """
    samples = np.asarray(samples, dtype=float)
    samples = samples[samples > 0]
    if len(samples) < 100:
        raise ValueError("need at least 100 samples")
    empirical = float(np.quantile(samples, quantile))
    exponential = float(-np.mean(samples) * np.log(1 - quantile))
    return empirical > exponential


@dataclass(frozen=True)
class WorkloadReport:
    """The §II characterization summary for one trace."""

    n_requests: int
    duration: float
    write_fraction_requests: float
    write_fraction_bytes: float
    small_fraction: float
    mib_multiple_fraction: float
    bimodal_fraction: float  # small OR exact-MiB-multiple
    interarrival_alpha: float
    idle_alpha: float
    interarrival_heavy_tailed: bool

    def rows(self) -> list[tuple[str, str]]:
        """(metric, value) rows for the E3 report."""
        return [
            ("requests", f"{self.n_requests}"),
            ("duration", f"{self.duration:.0f} s"),
            ("write fraction (requests)", f"{self.write_fraction_requests:.2f}"),
            ("write fraction (bytes)", f"{self.write_fraction_bytes:.2f}"),
            ("small (<16 KB) fraction", f"{self.small_fraction:.2f}"),
            ("1 MiB-multiple fraction", f"{self.mib_multiple_fraction:.2f}"),
            ("bimodal coverage", f"{self.bimodal_fraction:.2f}"),
            ("inter-arrival Hill α", f"{self.interarrival_alpha:.2f}"),
            ("idle-time Hill α", f"{self.idle_alpha:.2f}"),
            ("heavier than exponential", str(self.interarrival_heavy_tailed)),
        ]


def characterize(trace: RequestTrace, *, idle_window: float = 0.01) -> WorkloadReport:
    """Run the full Spider I-style characterization on ``trace``."""
    if len(trace) < 200:
        raise ValueError("characterization needs a trace of at least 200 requests")
    sizes = trace.sizes
    small = sizes < SMALL_REQUEST_CEILING
    mib_mult = (sizes % MiB == 0) & (sizes > 0)
    gaps = trace.interarrival_times()
    idles = trace.idle_times(idle_window)
    return WorkloadReport(
        n_requests=len(trace),
        duration=trace.duration,
        write_fraction_requests=trace.write_fraction_requests(),
        write_fraction_bytes=trace.write_fraction_bytes(),
        small_fraction=float(small.mean()),
        mib_multiple_fraction=float(mib_mult.mean()),
        bimodal_fraction=float((small | mib_mult).mean()),
        interarrival_alpha=hill_tail_index(gaps),
        idle_alpha=hill_tail_index(idles) if len(idles) >= 20 else float("nan"),
        interarrival_heavy_tailed=tail_heavier_than_exponential(gaps),
    )
