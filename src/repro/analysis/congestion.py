"""Torus link-congestion analysis (Lesson 14).

"Network congestion will lead to sub-optimal I/O performance.  Identifying
hot spots and eliminating them is key to realizing better performance."

Given a set of (client, router) routed pairs, census the dimension-ordered
routes over the torus links and summarize the hot-spot structure: max/mean
concentration, tail quantiles, and the per-dimension load split that
placement engineering manipulates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.network.lnet import RoutingPolicy
from repro.network.torus import Coord, Torus3D

__all__ = ["CongestionReport", "census_link_loads", "route_census_for_policy"]


@dataclass(frozen=True)
class CongestionReport:
    """Summary of one link-load census."""

    n_routes: int
    n_links_used: int
    total_link_crossings: int
    max_load: int
    mean_load: float
    p99_load: float
    axis_crossings: tuple[int, int, int]  # X, Y, Z link crossings

    @property
    def hotspot_ratio(self) -> float:
        """Max/mean link load — the headline congestion number."""
        return self.max_load / self.mean_load if self.mean_load else 0.0

    @property
    def mean_path_length(self) -> float:
        return self.total_link_crossings / self.n_routes if self.n_routes else 0.0

    def rows(self) -> list[tuple[str, str]]:
        return [
            ("routes", str(self.n_routes)),
            ("links used", str(self.n_links_used)),
            ("mean path length", f"{self.mean_path_length:.2f} hops"),
            ("max link load", str(self.max_load)),
            ("hot-spot ratio (max/mean)", f"{self.hotspot_ratio:.1f}x"),
            ("p99 link load", f"{self.p99_load:.1f}"),
            ("X/Y/Z crossings", "/".join(map(str, self.axis_crossings))),
        ]


def census_link_loads(
    torus: Torus3D,
    pairs: list[tuple[Coord, Coord]],
) -> CongestionReport:
    """Count route crossings per directed link and summarize."""
    if not pairs:
        raise ValueError("need at least one routed pair")
    loads = torus.link_loads(pairs)
    values = np.array(list(loads.values()))
    axis = [0, 0, 0]
    for (_tag, _x, _y, _z, link_axis, _sign), count in loads.items():
        axis[link_axis] += count
    return CongestionReport(
        n_routes=len(pairs),
        n_links_used=len(loads),
        total_link_crossings=int(values.sum()),
        max_load=int(values.max()),
        mean_load=float(values.mean()),
        p99_load=float(np.percentile(values, 99)),
        axis_crossings=(axis[0], axis[1], axis[2]),
    )


def route_census_for_policy(
    torus: Torus3D,
    policy: RoutingPolicy,
    clients: list[Coord],
    dst_leaves: list[int],
) -> CongestionReport:
    """Census the client→router torus traffic a routing policy induces.

    ``dst_leaves[i]`` is the destination leaf of client ``i``'s I/O (the
    leaf of the OSS serving its target OST).
    """
    if len(clients) != len(dst_leaves):
        raise ValueError("clients and dst_leaves must align")
    pairs = []
    for client, leaf in zip(clients, dst_leaves):
        router = policy.select_router(client, leaf)
        if router.coord != client:
            pairs.append((client, router.coord))
    if not pairs:
        raise ValueError("no non-trivial routes to census")
    return census_link_loads(torus, pairs)
