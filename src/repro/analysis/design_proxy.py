"""Lesson 2 quantified: peak sequential performance is the wrong proxy.

"Peak read/write performance cannot be used as a simple proxy for
designing a scratch file system, because it may result in either
over-provisioning the resources or suboptimal performance due to a mix of
I/O patterns.  Good random performance translates to better operational
conditions across a wide variety of application workloads."

The machinery: under a workload whose *byte volume* is ``p`` random and
``1-p`` sequential, a drive's delivered bandwidth is the harmonic
composition of its two rates — time adds, bytes don't::

    delivered(p) = 1 / (p / bw_random + (1 - p) / bw_seq)

Two drive options with identical datasheet sequential ratings but
different random behaviour therefore score identically under a
peak-sequential RFP and very differently under the real 60/40 mix —
the procurement trap Lesson 2 warns about and the reason the Spider II
SOW carried an explicit 240 GB/s random floor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.disk import DiskSpec
from repro.units import MiB

__all__ = ["mixed_delivered_bandwidth", "DesignProxyComparison", "compare_disk_options"]


def mixed_delivered_bandwidth(
    spec: DiskSpec,
    random_fraction: float,
    request_size: int = 1 * MiB,
) -> float:
    """Per-drive delivered bandwidth under a p-random / (1-p)-sequential
    byte mix (harmonic composition of the two service rates)."""
    if not (0 <= random_fraction <= 1):
        raise ValueError("random_fraction must be in [0, 1]")
    bw_seq = spec.bandwidth(request_size, sequential=True)
    bw_rnd = spec.bandwidth(request_size, sequential=False)
    if random_fraction == 0:
        return bw_seq
    if random_fraction == 1:
        return bw_rnd
    return 1.0 / (random_fraction / bw_rnd + (1 - random_fraction) / bw_seq)


@dataclass(frozen=True)
class DesignProxyComparison:
    """Two drive options under the sequential proxy vs the real mix."""

    name_a: str
    name_b: str
    seq_ratio: float  # B/A under the peak-sequential proxy
    mixed_ratio: float  # B/A under the operational mix
    random_fraction: float

    @property
    def proxy_blind(self) -> bool:
        """True when the sequential proxy cannot distinguish the options
        (within 1%) even though the mix can."""
        return abs(self.seq_ratio - 1.0) < 0.01 and abs(self.mixed_ratio - 1.0) >= 0.05

    def rows(self) -> list[tuple[str, str]]:
        return [
            ("options", f"{self.name_a} vs {self.name_b}"),
            ("sequential proxy says", f"B/A = {self.seq_ratio:.2f}"),
            (f"{self.random_fraction:.0%}-random mix says",
             f"B/A = {self.mixed_ratio:.2f}"),
            ("proxy blind to the difference?", str(self.proxy_blind)),
        ]


def compare_disk_options(
    option_a: DiskSpec,
    option_b: DiskSpec,
    *,
    random_fraction: float = 0.4,
    request_size: int = 1 * MiB,
) -> DesignProxyComparison:
    """Score two drive options both ways: peak-sequential proxy vs the
    operational mix (default 40% random bytes, the Spider I read share)."""
    seq_a = option_a.bandwidth(request_size, sequential=True)
    seq_b = option_b.bandwidth(request_size, sequential=True)
    mix_a = mixed_delivered_bandwidth(option_a, random_fraction, request_size)
    mix_b = mixed_delivered_bandwidth(option_b, random_fraction, request_size)
    return DesignProxyComparison(
        name_a=option_a.name,
        name_b=option_b.name,
        seq_ratio=seq_b / seq_a,
        mixed_ratio=mix_b / mix_a,
        random_fraction=random_fraction,
    )
