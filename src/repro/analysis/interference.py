"""Mixed-workload latency interference: §II's contention claim, measured.

"In some cases, competing workloads can significantly impact application
runtime of simulations or the responsiveness of interactive analysis
workloads.  Write and read streams from different computing systems often
interfere because of the difference in data production/consumption rates."

The experiment: an interactive analytics stream runs against one OST-class
service station (a) alone on a machine-exclusive scratch, and (b) sharing
the data-centric file system with a checkpointing application.  Queueing
replay yields read-latency percentiles for both; the *interference factor*
is the ratio.  The same harness also measures the checkpoint's cost: how
much longer a burst takes to drain when analytics competes.

This is the quantitative backbone of Lesson 1's tradeoff ("ease of data
access" vs "the ability to isolate compute platforms from competing I/O
workloads").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


from repro.sim.rng import RngStreams
from repro.units import GB, MS, MiB
from repro.workloads.analytics import AnalyticsApp, analytics_trace
from repro.workloads.checkpoint import CheckpointApp, checkpoint_trace
from repro.workloads.model import RequestTrace, merge_traces
from repro.workloads.replay import ReplayResult, replay_trace

__all__ = ["isolated_and_shared", "InterferenceReport", "measure_interference",
           "PlacementLatencyReport", "measure_placement_latency"]


def isolated_and_shared(
    traces: list[RequestTrace],
    *,
    bandwidth: float,
    n_servers: int = 4,
    positioning_time: float = 0.004,
    label: str = "mixed",
    alone_sources: tuple[int, ...] | None = None,
) -> tuple[list[ReplayResult | None], ReplayResult, RequestTrace]:
    """Replay each trace alone, then all of them merged on one station.

    The isolated-vs-shared harness behind :func:`measure_interference`,
    factored out so other consumers (the scheduler's per-job "isolated
    baseline", notably) reuse it instead of re-deriving the replay
    plumbing.  Returns ``(alone_results, shared_result, merged_trace)``:
    ``alone_results[i]`` aligns with ``traces[i]`` (an empty trace yields
    an empty result), while :func:`~repro.workloads.model.merge_traces`
    *drops* empty traces, so source ids in the shared result follow the
    order of the **non-empty** inputs only.  ``alone_sources`` restricts
    the isolated replays to the listed trace indices (the scheduler's
    latency probe only reads the primary's); skipped entries are ``None``.
    """
    if not traces:
        raise ValueError("need at least one trace")
    alone = [replay_trace(t, bandwidth=bandwidth, n_servers=n_servers,
                          positioning_time=positioning_time)
             if alone_sources is None or i in alone_sources else None
             for i, t in enumerate(traces)]
    merged = merge_traces(traces, label=label)
    shared = replay_trace(merged, bandwidth=bandwidth, n_servers=n_servers,
                          positioning_time=positioning_time)
    return alone, shared, merged


@dataclass(frozen=True)
class InterferenceReport:
    """Latency outcomes with and without the competing stream."""

    alone_read_p50: float
    alone_read_p99: float
    mixed_read_p50: float
    mixed_read_p99: float
    alone_mean_read: float
    mixed_mean_read: float
    burst_drain_alone: float  # seconds to drain one checkpoint burst
    burst_drain_mixed: float

    @property
    def p99_inflation(self) -> float:
        return self.mixed_read_p99 / self.alone_read_p99

    @property
    def mean_inflation(self) -> float:
        return self.mixed_mean_read / self.alone_mean_read

    @property
    def checkpoint_slowdown(self) -> float:
        return self.burst_drain_mixed / self.burst_drain_alone

    def rows(self) -> list[tuple[str, str]]:
        return [
            ("analytics read p50, alone", f"{self.alone_read_p50 / MS:.1f} ms"),
            ("analytics read p50, mixed", f"{self.mixed_read_p50 / MS:.1f} ms"),
            ("analytics read p99, alone", f"{self.alone_read_p99 / MS:.1f} ms"),
            ("analytics read p99, mixed", f"{self.mixed_read_p99 / MS:.1f} ms"),
            ("p99 inflation", f"{self.p99_inflation:.1f}x"),
            ("mean read inflation", f"{self.mean_inflation:.1f}x"),
            ("checkpoint burst drain, alone", f"{self.burst_drain_alone:.1f} s"),
            ("checkpoint burst drain, mixed", f"{self.burst_drain_mixed:.1f} s"),
            ("checkpoint slowdown", f"{self.checkpoint_slowdown:.2f}x"),
        ]


def _burst_drain_time(result: ReplayResult, trace: RequestTrace,
                      source: int, window: float) -> float:
    """Wall-clock of the *first* checkpoint burst through the station:
    last completion minus first arrival among the source's requests that
    arrive within ``window`` seconds of its first request."""
    mask = trace.source == source
    if not mask.any():
        raise ValueError(f"no requests from source {source}")
    first = float(trace.times[mask].min())
    burst = mask & (trace.times < first + window)
    completions = trace.times[burst] + result.latencies[burst]
    return float(completions.max() - first)


def measure_interference(
    *,
    duration: float = 1200.0,
    station_bandwidth: float = 1.0 * GB,
    n_servers: int = 4,
    seed: int = 5,
    analytics: AnalyticsApp | None = None,
    checkpoint: CheckpointApp | None = None,
) -> InterferenceReport:
    """Run the alone-vs-mixed comparison on one OST-class station.

    Defaults: a 1 GB/s station (one OST's fs-level rate) with 4 service
    threads; a 250-request/s analytics session; a checkpoint app whose
    bursts momentarily demand ~3x the station's bandwidth — the "different
    data production/consumption rates" of §II.
    """
    rng = RngStreams(seed)
    analytics = analytics or AnalyticsApp(request_rate=250.0)
    checkpoint = checkpoint or CheckpointApp(
        n_procs=64, bytes_per_proc=48 * MiB,
        interval=300.0, aggregate_bandwidth=3 * station_bandwidth)

    ana = analytics_trace(analytics, duration, rng.get("ana"))
    ckpt = checkpoint_trace(checkpoint, duration, rng.get("ckpt"),
                            start_offset=60.0)

    # Alone (machine-exclusive) vs mixed on the shared station
    # (data-centric), through the reusable harness.
    alone, mixed_result, mixed = isolated_and_shared(
        [ana, ckpt], bandwidth=station_bandwidth, n_servers=n_servers)
    ana_alone, ckpt_alone = alone

    # Source ids assigned by merge order: 0 = analytics, 1 = checkpoint.
    return InterferenceReport(
        alone_read_p50=ana_alone.percentile(50, reads_only=True),
        alone_read_p99=ana_alone.percentile(99, reads_only=True),
        mixed_read_p50=mixed_result.percentile(50, reads_only=True, source=0),
        mixed_read_p99=mixed_result.percentile(99, reads_only=True, source=0),
        alone_mean_read=ana_alone.mean(reads_only=True),
        mixed_mean_read=mixed_result.mean(reads_only=True, source=0),
        burst_drain_alone=_burst_drain_time(
            ckpt_alone, ckpt, source=0, window=checkpoint.interval / 2),
        burst_drain_mixed=_burst_drain_time(
            mixed_result, mixed, source=1, window=checkpoint.interval / 2),
    )


@dataclass(frozen=True)
class PlacementLatencyReport:
    """Read-latency percentiles when the same mixed load lands on a
    namespace concentrated vs spread — the latency side of §VI-A."""

    n_stations: int
    concentrated_p99: float
    spread_p99: float

    @property
    def spread_gain(self) -> float:
        if self.spread_p99 == 0:
            return float("inf")
        return self.concentrated_p99 / self.spread_p99

    def rows(self) -> list[tuple[str, str]]:
        return [
            ("OST-class stations", str(self.n_stations)),
            ("read p99, checkpoint concentrated",
             f"{self.concentrated_p99 / MS:.1f} ms"),
            ("read p99, checkpoint spread",
             f"{self.spread_p99 / MS:.1f} ms"),
            ("spread placement gain", f"{self.spread_gain:.1f}x"),
        ]


def measure_placement_latency(
    *,
    n_stations: int = 8,
    duration: float = 900.0,
    station_bandwidth: float = 1.0 * GB,
    n_servers: int = 4,
    seed: int = 9,
) -> PlacementLatencyReport:
    """Same analytics + checkpoint mix over ``n_stations`` OST-class
    stations, two checkpoint placements:

    * **concentrated** — the whole burst lands on one station (a file
      striped to a single OST, or default allocation under imbalance);
    * **spread** — the burst round-robins across all stations (wide
      striping / libPIO-balanced placement).

    Analytics reads are uniform over stations in both cases.  The report
    compares the analytics read p99 — showing that placement protects
    *latency*, not only bandwidth.
    """
    if n_stations < 2:
        raise ValueError("need at least two stations")
    rng = RngStreams(seed)
    analytics = AnalyticsApp(request_rate=120.0 * n_stations)
    checkpoint = CheckpointApp(
        n_procs=64, bytes_per_proc=48 * MiB,
        interval=300.0, aggregate_bandwidth=1.5 * station_bandwidth)

    ana = analytics_trace(analytics, duration, rng.get("ana"))
    ckpt = checkpoint_trace(checkpoint, duration, rng.get("ckpt"),
                            start_offset=60.0)
    gen = rng.get("placement")
    ana_station = gen.integers(0, n_stations, size=len(ana))

    def run(spread: bool) -> float:
        if spread:
            ckpt_station = np.arange(len(ckpt)) % n_stations
        else:
            ckpt_station = np.zeros(len(ckpt), dtype=int)
        p99s = []
        for s in range(n_stations):
            pieces = []
            a_mask = ana_station == s
            if a_mask.any():
                pieces.append(RequestTrace(
                    ana.times[a_mask], ana.sizes[a_mask],
                    ana.is_write[a_mask], label="ana"))
            c_mask = ckpt_station == s
            if c_mask.any():
                pieces.append(RequestTrace(
                    ckpt.times[c_mask], ckpt.sizes[c_mask],
                    ckpt.is_write[c_mask], label="ckpt"))
            if not pieces:
                continue
            merged = merge_traces(pieces, label=f"station{s}")
            result = replay_trace(merged, bandwidth=station_bandwidth,
                                  n_servers=n_servers)
            reads = result.latencies[~result.is_write]
            if len(reads):
                p99s.append(float(np.percentile(reads, 99)))
        return max(p99s)

    return PlacementLatencyReport(
        n_stations=n_stations,
        concentrated_p99=run(spread=False),
        spread_p99=run(spread=True),
    )
