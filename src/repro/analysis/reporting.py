"""ASCII table/series rendering for the experiment harness.

Every benchmark in ``benchmarks/`` prints its result through these helpers
so EXPERIMENTS.md and the captured benchmark output share one format.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "render_series", "render_kv"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str = "",
) -> str:
    """A monospace table with per-column width fitting."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]

    def fmt(row: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(row, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(cells[0]))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt(r) for r in cells[1:])
    return "\n".join(lines)


def render_series(
    x_label: str,
    y_label: str,
    points: Sequence[tuple[object, float]],
    *,
    title: str = "",
    bar_width: int = 40,
    fmt: str = "{:.1f}",
) -> str:
    """A figure-style series: values plus a proportional ASCII bar."""
    if not points:
        return title or "(empty series)"
    peak = max(abs(v) for _x, v in points) or 1.0
    x_w = max(len(x_label), max(len(str(x)) for x, _ in points))
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{x_label.ljust(x_w)}  {y_label}")
    for x, v in points:
        bar = "#" * max(0, round(bar_width * v / peak))
        lines.append(f"{str(x).ljust(x_w)}  {fmt.format(v):>12} {bar}")
    return "\n".join(lines)


def render_kv(pairs: Sequence[tuple[str, object]], *, title: str = "") -> str:
    """Key/value block for headline-number experiments."""
    width = max(len(k) for k, _v in pairs) if pairs else 0
    lines = [title] if title else []
    lines += [f"{k.ljust(width)} : {v}" for k, v in pairs]
    return "\n".join(lines)
