"""Analyses over simulator output: workload characterization (the Spider I
study of §II), bottom-up layer profiling (Lesson 12), and the ASCII
reporting used by the benchmark harness to print paper-shaped tables.
"""

from repro.analysis.workload_stats import WorkloadReport, characterize, hill_tail_index
from repro.analysis.layers import LayerProfile, profile_layers
from repro.analysis.reporting import render_table, render_series
from repro.analysis.interference import InterferenceReport, measure_interference
from repro.analysis.congestion import CongestionReport, census_link_loads, route_census_for_policy
from repro.analysis.mds_latency import DuStormReport, measure_du_storm
from repro.analysis.design_proxy import compare_disk_options, mixed_delivered_bandwidth

__all__ = [
    "WorkloadReport",
    "characterize",
    "hill_tail_index",
    "LayerProfile",
    "profile_layers",
    "render_table",
    "render_series",
    "InterferenceReport",
    "measure_interference",
    "CongestionReport",
    "census_link_loads",
    "route_census_for_policy",
    "DuStormReport",
    "measure_du_storm",
    "compare_disk_options",
    "mixed_delivered_bandwidth",
]
