"""Metadata latency under load: what a `du` storm does to interactive
users (Lesson 19, quantified).

"du imposes a heavy load on the Lustre MDS when run at this scale."

The model: the MDS is a FIFO service station whose per-op service times
come from :class:`~repro.lustre.mds.MdsSpec`.  An interactive population
issues metadata ops at a steady rate; a `du` over N files injects N
back-to-back stats.  Queueing replay yields the interactive ops' latency
before/during the storm — the responsiveness loss LustreDU exists to
avoid (its server-side sweep never enters this queue).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lustre.mds import MdsSpec
from repro.sim.rng import RngStreams
from repro.units import MS
from repro.workloads.replay import replay_fifo

__all__ = ["DuStormReport", "measure_du_storm"]


@dataclass(frozen=True)
class DuStormReport:
    """Interactive metadata latency, quiet vs during a du storm."""

    quiet_p50: float
    quiet_p99: float
    storm_p50: float
    storm_p99: float
    storm_files: int
    storm_duration: float  # how long the du takes to drain

    @property
    def p99_inflation(self) -> float:
        return self.storm_p99 / self.quiet_p99 if self.quiet_p99 else 0.0

    def rows(self) -> list[tuple[str, str]]:
        return [
            ("interactive p50, quiet", f"{self.quiet_p50 / MS:.2f} ms"),
            ("interactive p99, quiet", f"{self.quiet_p99 / MS:.2f} ms"),
            ("interactive p50, du storm", f"{self.storm_p50 / MS:.2f} ms"),
            ("interactive p99, du storm", f"{self.storm_p99 / MS:.2f} ms"),
            ("p99 inflation", f"{self.p99_inflation:.0f}x"),
            ("du files", f"{self.storm_files:,}"),
            ("du drain time", f"{self.storm_duration:.1f} s"),
        ]


def measure_du_storm(
    *,
    spec: MdsSpec | None = None,
    interactive_rate: float = 2_000.0,  # ops/s from the user population
    duration: float = 120.0,
    storm_files: int = 500_000,
    storm_start: float = 30.0,
    mean_stripe_count: float = 4.0,
    seed: int = 0,
) -> DuStormReport:
    """Replay interactive metadata ops with and without a du storm."""
    if interactive_rate <= 0 or duration <= 0 or storm_files <= 0:
        raise ValueError("rates, duration, and storm size must be positive")
    spec = spec or MdsSpec()
    rng = RngStreams(seed).get("mds.du_storm")

    stat_service = (1.0 + spec.stat_ost_rpc_cost * mean_stripe_count) / spec.stat_rate

    # Interactive population: Poisson arrivals, stat-class ops.
    n_interactive = rng.poisson(interactive_rate * duration)
    t_interactive = np.sort(rng.uniform(0.0, duration, n_interactive))

    def replay(with_storm: bool) -> tuple[np.ndarray, float]:
        if with_storm:
            # The du client streams stats as fast as the MDS answers; model
            # as a closed loop: the storm's ops arrive back-to-back from
            # storm_start (FIFO order preserves the interleaving).
            t_storm = storm_start + np.arange(storm_files) * stat_service
            times = np.concatenate([t_interactive, t_storm])
            kind = np.concatenate([
                np.zeros(n_interactive, dtype=bool),
                np.ones(storm_files, dtype=bool),
            ])
            order = np.argsort(times, kind="stable")
            times, kind = times[order], kind[order]
        else:
            times, kind = t_interactive, np.zeros(n_interactive, dtype=bool)
        services = np.full(len(times), stat_service)
        _waits, latencies = replay_fifo(times, services, n_servers=1)
        interactive_lat = latencies[~kind]
        if with_storm:
            storm_done = (times[kind] + latencies[kind]).max()
            drain = float(storm_done - storm_start)
        else:
            drain = 0.0
        return interactive_lat, drain

    quiet, _ = replay(with_storm=False)
    stormy, drain = replay(with_storm=True)
    return DuStormReport(
        quiet_p50=float(np.percentile(quiet, 50)),
        quiet_p99=float(np.percentile(quiet, 99)),
        storm_p50=float(np.percentile(stormy, 50)),
        storm_p99=float(np.percentile(stormy, 99)),
        storm_files=storm_files,
        storm_duration=drain,
    )
