"""Bottom-up layer profiling: Lesson 12 as an executable analysis.

"Build the performance profile for each layer in the PFS, from the bottom
up.  Quantify and minimize the lost performance in traversing from one
layer to the next along the I/O path."

:func:`profile_layers` walks a Spider system from raw disks to client
stacks, computing each layer's aggregate ceiling and the loss introduced
relative to the layer below.  The output is the table operators use to see
*where* the machine loses its bandwidth (min-of-members RAID coupling,
controller caps, software overhead, router head-room, ...).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.spider import SpiderSystem
from repro.hardware.raid import group_bandwidths
from repro.lustre.ost import fill_penalty
from repro.units import fmt_bandwidth

__all__ = ["LayerProfile", "profile_layers"]


@dataclass(frozen=True)
class Layer:
    name: str
    ceiling: float  # aggregate bytes/s achievable up to this layer
    note: str = ""


@dataclass
class LayerProfile:
    """The full bottom-up profile of one system."""

    system_name: str
    layers: list[Layer]

    def loss_table(self) -> list[tuple[str, str, str]]:
        """(layer, ceiling, loss vs previous layer) rows."""
        rows = []
        prev = None
        for layer in self.layers:
            if prev is None or prev == 0:
                loss = "-"
            else:
                loss = f"{100 * (1 - layer.ceiling / prev):.1f}%"
            rows.append((layer.name, fmt_bandwidth(layer.ceiling), loss))
            prev = layer.ceiling
        return rows

    def ceiling_of(self, name: str) -> float:
        for layer in self.layers:
            if layer.name == name:
                return layer.ceiling
        raise KeyError(name)

    @property
    def end_to_end(self) -> float:
        return self.layers[-1].ceiling

    def bottleneck_layer(self) -> Layer:
        """The layer that sets the end-to-end ceiling: the first (lowest)
        layer whose ceiling equals the profile's end-to-end minimum.
        Ceilings are monotonically non-increasing, so this is where the
        machine stops losing bandwidth — everything above merely inherits
        the limit."""
        floor = self.end_to_end
        for layer in self.layers:
            # Relative tolerance: chained min()s of float products make
            # analytically equal ceilings differ in the last few ulps.
            if layer.ceiling <= floor * (1 + 1e-9):
                return layer
        return self.layers[-1]


def profile_layers(system: SpiderSystem, *, fs_level: bool = True) -> LayerProfile:
    """Compute the layered ceilings of ``system``, bottom-up.

    Each layer's ceiling is min(previous ceiling, this layer's aggregate
    capability) — capacity cannot be created above a bottleneck.
    """
    spec = system.spec
    disk_bw = system.population.bandwidths(fs_level=False)
    layers: list[Layer] = []

    raw_disks = float(disk_bw.sum())
    layers.append(Layer("disks (streaming sum)", raw_disks,
                        f"{spec.n_disks} drives"))

    # RAID: n_data/width parity overhead plus min-of-members coupling.
    group_bw = np.concatenate([
        group_bandwidths(ssu.members_matrix, disk_bw, spec.ssu.raid.n_data)
        for ssu in system.ssus
    ])
    raid = min(raw_disks, float(group_bw.sum()))
    layers.append(Layer("RAID groups (8+2, min-of-members)", raid,
                        f"{spec.n_osts} groups"))

    couplets = min(raid, float(system.couplet_caps(fs_level=False).sum()))
    layers.append(Layer("controller couplets (block)", couplets,
                        f"{spec.n_ssus} couplets"))

    if fs_level:
        fs_couplets = min(couplets, float(system.couplet_caps(fs_level=True).sum()))
        layers.append(Layer("controller couplets (fs path)", fs_couplets, ""))
        eff = np.array([o.spec.obdfilter_efficiency for o in system.osts])
        fills = np.array([o.fill_fraction for o in system.osts])
        ost_level = float(np.minimum(
            group_bw * eff * fill_penalty(fills),
            np.repeat(system.couplet_caps(fs_level=True) / spec.ssu.n_groups,
                      spec.ssu.n_groups),
        ).sum())
        ost_level = min(fs_couplets, ost_level)
        layers.append(Layer("OSTs (obdfilter + fill penalty)", ost_level,
                            "software overhead"))
        base = ost_level
    else:
        base = couplets

    oss_total = min(base, spec.n_osses * spec.oss.node_bw_cap)
    layers.append(Layer("OSS nodes", oss_total, f"{spec.n_osses} servers"))

    san = min(oss_total,
              spec.n_osses * min(spec.fabric.port_bw, spec.oss.node_bw_cap))
    layers.append(Layer("SAN host ports", san, ""))

    routers = min(san, len(system.routers) * spec.router_bw_cap)
    layers.append(Layer("LNET routers", routers, f"{len(system.routers)} routers"))

    clients = min(routers, spec.n_compute_nodes * spec.client_bw_cap)
    layers.append(Layer("client stacks", clients,
                        f"{spec.n_compute_nodes} nodes"))

    return LayerProfile(system_name=spec.name, layers=layers)
