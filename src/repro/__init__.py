"""repro — a simulation-based reproduction of the OLCF Spider experience
paper: Oral et al., "Best Practices and Lessons Learned from Deploying and
Operating Large-Scale Data-Centric Parallel File Systems", SC 2014.

The package builds the whole stack the paper operates: disk/RAID/controller
hardware models, the Gemini-like torus and SION-like InfiniBand fabric, a
functional Lustre model, Spider I/II system builders, the paper\'s workload
generators and benchmark tools (fair-lio, obdfilter-survey, IOR), the
operational toolbox (libPIO, IOSI, LustreDU, parallel tools, purging,
culling, monitoring, procurement), and a benchmark harness regenerating
every figure and headline quantity in the paper\'s evaluation.

Quick start::

    from repro.core import build_spider2
    from repro.units import fmt_bandwidth

    spider = build_spider2(build_clients=False)
    print(spider.inventory())
    print(fmt_bandwidth(spider.aggregate_bandwidth()))  # ~1 TB/s
"""

__version__ = "1.0.0"

from repro import units

__all__ = ["units", "__version__"]
