"""Discrete-event simulation substrate.

The control-plane experiments (failures, monitoring, purging, the 2010
incident replay) run on a small deterministic event engine; the data-plane
experiments use the flow solver in :mod:`repro.core.flow` instead.
"""

from repro.sim.engine import Engine, Event, Process
from repro.sim.rng import RngStreams, bounded_pareto, pareto_interarrivals

__all__ = [
    "Engine",
    "Event",
    "Process",
    "RngStreams",
    "bounded_pareto",
    "pareto_interarrivals",
]
