"""A small deterministic discrete-event simulation engine.

Design notes
------------
* Events are ordered by ``(time, priority, sequence)``; the sequence number
  makes scheduling fully deterministic for equal timestamps, which the test
  suite relies on (seeded runs must be bit-reproducible).
* Processes are generator coroutines that ``yield`` delays (floats) or
  :class:`Event` handles to wait on.  This is the same coroutine style as
  SimPy, reimplemented minimally so the package has no runtime dependency
  beyond numpy/scipy/networkx.
* The engine never advances past ``horizon`` in :meth:`Engine.run`, so
  long-running periodic processes (monitoring checks, purge cycles) do not
  hang a simulation.
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections.abc import Callable, Generator, Iterable
from typing import Any

__all__ = ["Engine", "Event", "Process", "SimulationError"]

#: sentinel argument marking a no-arg callback scheduled via ``call_at`` —
#: the run loop calls ``fn()`` directly instead of paying a lambda frame
#: per event
_NO_ARG = object()


class SimulationError(RuntimeError):
    """Raised for illegal simulation operations (e.g. scheduling in the past)."""


class Event:
    """A one-shot occurrence that processes can wait on.

    An event is *triggered* with an optional value; all waiting callbacks run
    at the trigger time in registration order.
    """

    __slots__ = ("engine", "name", "_callbacks", "triggered", "value", "time")

    def __init__(self, engine: "Engine", name: str = "") -> None:
        self.engine = engine
        self.name = name
        self._callbacks: list[Callable[[Event], None]] = []
        self.triggered = False
        self.value: Any = None
        self.time: float | None = None

    def on_trigger(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback`` to run when the event fires.

        If the event already fired, the callback runs immediately — late
        subscribers must not deadlock.
        """
        if self.triggered:
            callback(self)
        else:
            self._callbacks.append(callback)

    def trigger(self, value: Any = None) -> None:
        if self.triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self.triggered = True
        self.value = value
        self.time = self.engine.now
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "fired" if self.triggered else "pending"
        return f"<Event {self.name!r} {state}>"


ProcessGenerator = Generator[Any, Any, Any]


class Process:
    """A coroutine driven by the engine.

    The generator may yield:

    * a non-negative float — sleep for that many simulated seconds;
    * an :class:`Event` — suspend until it triggers (receiving its value);
    * ``None`` — yield control and resume immediately (same timestamp).

    When the generator returns, :attr:`done` fires with its return value.
    """

    __slots__ = ("engine", "name", "_gen", "done", "steps")

    def __init__(self, engine: "Engine", gen: ProcessGenerator, name: str = "") -> None:
        self.engine = engine
        self.name = name or getattr(gen, "__name__", "process")
        self._gen = gen
        self.done = Event(engine, name=f"{self.name}.done")
        self.steps = 0
        engine._process_started(self)
        engine._schedule(engine.now, 0, self._step, None)

    def _step(self, send_value: Any) -> None:
        self.steps += 1
        counts = self.engine.process_event_counts
        counts[self.name] = counts.get(self.name, 0) + 1
        try:
            yielded = self._gen.send(send_value)
        except StopIteration as stop:
            self.done.trigger(stop.value)
            self.engine._process_ended(self)
            return
        if yielded is None:
            self.engine._schedule(self.engine.now, 0, self._step, None)
        elif isinstance(yielded, Event):
            yielded.on_trigger(lambda ev: self._step(ev.value))
        elif isinstance(yielded, (int, float)):
            delay = float(yielded)
            if delay < 0 or math.isnan(delay):
                raise SimulationError(
                    f"process {self.name!r} yielded invalid delay {yielded!r}"
                )
            self.engine._schedule(self.engine.now + delay, 0, self._step, None)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported value {yielded!r}"
            )


class Engine:
    """The event loop: a heap of ``(time, priority, seq, fn, arg)`` entries."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, int, Callable[[Any], None], Any]] = []
        self._seq = itertools.count()
        self.events_processed = 0
        #: cumulative process-step counts keyed by process name
        self.process_event_counts: dict[str, int] = {}
        #: observability hooks — purely observational: they must not (and,
        #: being called after the fact, cannot) change event ordering, so a
        #: hooked run is bit-identical to an unhooked one.
        self.on_event: Callable[[float], None] | None = None
        self.on_process_start: Callable[[Process], None] | None = None
        self.on_process_end: Callable[[Process], None] | None = None

    # -- lifecycle notifications (called by Process) -------------------------

    def _process_started(self, process: "Process") -> None:
        if self.on_process_start is not None:
            self.on_process_start(process)

    def _process_ended(self, process: "Process") -> None:
        if self.on_process_end is not None:
            self.on_process_end(process)

    # -- scheduling ---------------------------------------------------------

    def _schedule(
        self, time: float, priority: int, fn: Callable[[Any], None], arg: Any
    ) -> None:
        if time < self.now:
            raise SimulationError(f"cannot schedule at {time} (now={self.now})")
        heapq.heappush(self._heap, (time, priority, next(self._seq), fn, arg))

    def call_at(self, time: float, fn: Callable[[], None], *,
                priority: int = 0) -> None:
        """Run ``fn()`` at absolute simulated ``time``.

        Among events at the same instant, lower ``priority`` runs first
        (FIFO within a priority).  The non-default use is end-of-tick
        work: an :class:`~repro.core.flow.Epoch` flush schedules itself at
        ``priority=1`` so it observes every ordinary event of the tick.
        """
        self._schedule(time, priority, fn, _NO_ARG)

    def call_after(self, delay: float, fn: Callable[[], None]) -> None:
        """Run ``fn()`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.call_at(self.now + delay, fn)

    def event(self, name: str = "") -> Event:
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None, name: str = "timeout") -> Event:
        """An event that fires ``delay`` seconds from now with ``value``."""
        ev = Event(self, name)
        self.call_after(delay, lambda: ev.trigger(value))
        return ev

    def process(self, gen: ProcessGenerator, name: str = "") -> Process:
        """Start a coroutine process; it begins at the current time."""
        return Process(self, gen, name)

    def every(
        self,
        interval: float,
        fn: Callable[[], None],
        *,
        start: float | None = None,
        name: str = "periodic",
    ) -> Process:
        """Run ``fn()`` every ``interval`` seconds, forever (bounded by the
        run horizon).  ``start`` defaults to one interval from now.

        The first tick fires *at* the requested ``start`` time (clamped to
        ``now`` when ``start`` lies in the past); it is not deferred behind
        an extra zero-delay hop, so a poller started with ``start=now``
        samples the current instant as its first tick.
        """
        if interval <= 0:
            raise SimulationError(f"interval must be positive, got {interval}")

        def _loop() -> ProcessGenerator:
            first = interval if start is None else max(0.0, start - self.now)
            if first > 0:
                yield first
            while True:
                fn()
                yield interval

        return self.process(_loop(), name=name)

    def all_of(self, events: Iterable[Event], name: str = "all_of") -> Event:
        """An event that fires when every input event has fired.

        The composite value is the list of input values in input order.
        """
        events = list(events)
        combined = Event(self, name)
        remaining = len(events)
        if remaining == 0:
            combined.trigger([])
            return combined
        values: list[Any] = [None] * remaining
        state = {"left": remaining}

        def _make(i: int) -> Callable[[Event], None]:
            def _cb(ev: Event) -> None:
                values[i] = ev.value
                state["left"] -= 1
                if state["left"] == 0:
                    combined.trigger(list(values))

            return _cb

        for i, ev in enumerate(events):
            ev.on_trigger(_make(i))
        return combined

    # -- running ------------------------------------------------------------

    def run(self, until: float = math.inf, max_events: int = 50_000_000) -> float:
        """Process events until the heap drains or simulated ``until``.

        Returns the final simulation time.  ``max_events`` is a runaway
        guard; hitting it raises rather than spinning silently.
        """
        processed = 0
        heap = self._heap
        pop = heapq.heappop
        while heap:
            entry = pop(heap)
            time = entry[0]
            if time > until:
                heapq.heappush(heap, entry)
                break
            self.now = time
            fn = entry[3]
            arg = entry[4]
            if arg is _NO_ARG:
                fn()
            else:
                fn(arg)
            processed += 1
            self.events_processed += 1
            if self.on_event is not None:
                self.on_event(time)
            if processed >= max_events:
                raise SimulationError(f"exceeded max_events={max_events}")
        if until is not math.inf and math.isfinite(until):
            self.now = max(self.now, until)
        return self.now

    def peek(self) -> float:
        """Timestamp of the next scheduled event, or ``inf`` if idle."""
        return self._heap[0][0] if self._heap else math.inf
