"""Shared-resource primitives for the event engine.

Two primitives cover everything the control-plane simulations need:

* :class:`Server` — an N-server FIFO queue with deterministic service times
  supplied per job (MDS request service, RAID rebuild workers, provisioning
  boot slots).
* :class:`TokenBucket` — a rate limiter for modelling polling budgets and
  bandwidth caps in event-level (non-flow-solver) simulations.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.sim.engine import Engine, Event, SimulationError

__all__ = ["Server", "TokenBucket", "ServerStats"]


@dataclass
class ServerStats:
    """Aggregate queueing statistics maintained by :class:`Server`."""

    arrivals: int = 0
    completions: int = 0
    busy_time: float = 0.0
    total_wait: float = 0.0
    total_service: float = 0.0
    max_queue_len: int = 0

    @property
    def mean_wait(self) -> float:
        return self.total_wait / self.completions if self.completions else 0.0

    @property
    def mean_service(self) -> float:
        return self.total_service / self.completions if self.completions else 0.0


@dataclass
class _Job:
    service_time: float
    done: Event
    arrived_at: float
    value: object = None


class Server:
    """An ``n_servers``-way FIFO service station.

    ``submit`` returns an :class:`Event` that fires when the job completes;
    the event value is the job's ``value`` argument.  Utilization and wait
    statistics accumulate in :attr:`stats`.
    """

    def __init__(self, engine: Engine, n_servers: int = 1, name: str = "server") -> None:
        if n_servers < 1:
            raise SimulationError("n_servers must be >= 1")
        self.engine = engine
        self.name = name
        self.n_servers = n_servers
        self._queue: deque[_Job] = deque()
        self._busy = 0
        self.stats = ServerStats()

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    @property
    def busy(self) -> int:
        return self._busy

    def submit(self, service_time: float, value: object = None) -> Event:
        if service_time < 0:
            raise SimulationError(f"negative service time {service_time}")
        self.stats.arrivals += 1
        job = _Job(
            service_time=service_time,
            done=self.engine.event(f"{self.name}.job"),
            arrived_at=self.engine.now,
            value=value,
        )
        self._queue.append(job)
        self.stats.max_queue_len = max(self.stats.max_queue_len, len(self._queue))
        self._dispatch()
        return job.done

    def _dispatch(self) -> None:
        while self._busy < self.n_servers and self._queue:
            job = self._queue.popleft()
            self._busy += 1
            self.stats.total_wait += self.engine.now - job.arrived_at
            self.engine.call_after(job.service_time, lambda j=job: self._finish(j))

    def _finish(self, job: _Job) -> None:
        self._busy -= 1
        self.stats.completions += 1
        self.stats.busy_time += job.service_time
        self.stats.total_service += job.service_time
        job.done.trigger(job.value)
        self._dispatch()

    def utilization(self, elapsed: float | None = None) -> float:
        """Fraction of server-seconds spent busy over ``elapsed`` (default:
        engine time so far)."""
        elapsed = self.engine.now if elapsed is None else elapsed
        if elapsed <= 0:
            return 0.0
        return self.stats.busy_time / (elapsed * self.n_servers)


class TokenBucket:
    """A token-bucket rate limiter with continuous refill.

    ``acquire(n)`` returns an event that fires once ``n`` tokens are
    available; grants are strictly FIFO so a large request cannot be starved
    by a stream of small ones.
    """

    def __init__(
        self,
        engine: Engine,
        rate: float,
        capacity: float | None = None,
        name: str = "bucket",
    ) -> None:
        if rate <= 0:
            raise SimulationError(f"rate must be positive, got {rate}")
        self.engine = engine
        self.name = name
        self.rate = float(rate)
        self.capacity = float(capacity) if capacity is not None else float(rate)
        if self.capacity <= 0:
            raise SimulationError("capacity must be positive")
        self._tokens = self.capacity
        self._last_refill = engine.now
        self._waiters: deque[tuple[float, Event]] = deque()
        self._drain_scheduled = False

    def _refill(self) -> None:
        now = self.engine.now
        self._tokens = min(
            self.capacity, self._tokens + (now - self._last_refill) * self.rate
        )
        self._last_refill = now

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens

    def acquire(self, n: float = 1.0) -> Event:
        if n < 0:
            raise SimulationError(f"cannot acquire {n} tokens")
        if n > self.capacity:
            raise SimulationError(
                f"request of {n} tokens exceeds bucket capacity {self.capacity}"
            )
        ev = self.engine.event(f"{self.name}.grant")
        self._waiters.append((n, ev))
        self._drain()
        return ev

    def _drain(self) -> None:
        self._refill()
        while self._waiters:
            need, ev = self._waiters[0]
            if need <= self._tokens + 1e-12:
                self._tokens -= need
                self._waiters.popleft()
                ev.trigger(need)
                continue
            if not self._drain_scheduled:
                wait = (need - self._tokens) / self.rate
                self._drain_scheduled = True

                def _retry() -> None:
                    self._drain_scheduled = False
                    self._drain()

                self.engine.call_after(wait, _retry)
            break
