"""Seeded random-number streams and the heavy-tailed distributions the
Spider I workload study calls for.

The paper's workload characterization found that request inter-arrival and
idle times "follow a long-tail distribution that can be modeled as a Pareto
distribution".  We use a *bounded* Pareto so synthetic traces have finite
moments and simulations terminate; the bound is placed far enough out that
the body of the distribution is indistinguishable from the unbounded law.

Every stochastic component in the package draws from a named substream of
:class:`RngStreams` so that (a) experiments are reproducible from a single
seed, and (b) changing the amount of randomness consumed by one component
does not perturb another (the "stream independence" idiom from parallel
Monte Carlo practice).
"""

from __future__ import annotations

import numpy as np

__all__ = ["RngStreams", "bounded_pareto", "pareto_interarrivals", "lognormal_factors"]


class RngStreams:
    """A family of independent, named ``numpy.random.Generator`` streams.

    Streams are derived with ``SeedSequence.spawn``-style child seeding keyed
    by the stream name, so ``RngStreams(7).get("disks")`` is always the same
    stream regardless of what other streams were requested before it.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the stream for ``name``."""
        stream = self._streams.get(name)
        if stream is None:
            child = np.random.SeedSequence(
                entropy=self.seed,
                spawn_key=tuple(name.encode("utf-8")),
            )
            stream = np.random.default_rng(child)
            self._streams[name] = stream
        return stream

    def spawn(self, name: str) -> "RngStreams":
        """A child family, independent of this one, for a subcomponent."""
        child_seed = int(self.get(f"spawn:{name}").integers(0, 2**62))
        return RngStreams(child_seed)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngStreams(seed={self.seed}, streams={sorted(self._streams)})"


def bounded_pareto(
    rng: np.random.Generator,
    alpha: float,
    lower: float,
    upper: float,
    size: int | tuple[int, ...] | None = None,
) -> np.ndarray | float:
    """Sample a bounded Pareto(``alpha``) on ``[lower, upper]``.

    Inverse-CDF sampling of the truncated Pareto law

    .. math:: F(x) = \\frac{1 - (L/x)^\\alpha}{1 - (L/H)^\\alpha}

    which reduces to the ordinary Pareto as ``upper`` → ∞.
    """
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    if not (0 < lower < upper):
        raise ValueError(f"need 0 < lower < upper, got {lower}, {upper}")
    u = rng.random(size)
    ratio = (lower / upper) ** alpha
    # Inverse CDF of the bounded Pareto.
    x = lower / (1.0 - u * (1.0 - ratio)) ** (1.0 / alpha)
    return np.minimum(x, upper)


def pareto_interarrivals(
    rng: np.random.Generator,
    n: int,
    alpha: float = 1.4,
    scale: float = 1e-3,
    cap: float = 60.0,
) -> np.ndarray:
    """``n`` heavy-tailed inter-arrival gaps (seconds), Spider I-style.

    Defaults give a millisecond-scale body with occasional multi-second
    idle gaps, matching the long-tail inter-arrival/idle finding in the
    paper's workload study.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if n == 0:
        return np.empty(0)
    return np.asarray(bounded_pareto(rng, alpha, scale, cap, size=n))


def lognormal_factors(
    rng: np.random.Generator,
    n: int,
    sigma: float = 0.05,
) -> np.ndarray:
    """Multiplicative unit-median jitter factors (e.g. per-disk speed spread).

    Median is exactly 1.0; ``sigma`` is the log-space standard deviation.
    """
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    if n < 0:
        raise ValueError("n must be non-negative")
    return rng.lognormal(mean=0.0, sigma=sigma, size=n)
