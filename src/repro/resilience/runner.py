"""The closed loop: detect → decide → act → verify on the DES engine.

:class:`PlaybookRunner` is the remediation engine an executor (fault
campaign or facility scheduler) notifies at every fault injection.  Per
fault it runs the full pipeline as engine events:

* **detect** — the :class:`~repro.resilience.detector.Detector` turns the
  onset into an alert time (poll grid + missed sweeps + debounce);
* **decide** — playbook lookup and dispatch latency;
* **act** — the playbook steps with per-step timeout, bounded retry with
  exponential backoff + jitter, and escalation to the operator tier when
  automation exhausts its attempts; failover/reroute playbooks append the
  §IV-D recovery window (``simulate_recovery`` /
  ``simulate_router_failure`` under ``DEFAULT_RECOVERY_SPEC``), then the
  :class:`~repro.resilience.actuator.Actuator` applies the repair so the
  flow network re-solves;
* **verify** — the green-check latency before the fault is declared
  closed.

Each stage is traced (``detect:``/``decide:``/``act:``/``verify:`` spans
in the ``resilience`` category), counted (``resilience.*`` telemetry),
and timestamped into a :class:`RemediationRecord`; :meth:`finalize`
aggregates the records into a :class:`RemediationOutcome` with the
MTTD/MTTR decomposition per fault class.  All randomness flows through
named substreams of ``RngStreams(policy.seed)``, so outcomes are
seed-deterministic and bit-identical with telemetry on or off.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.faults.events import PlannedFault
from repro.lustre.recovery import (
    DEFAULT_RECOVERY_SPEC,
    simulate_recovery,
    simulate_router_failure,
)
from repro.obs.instruments import get_telemetry
from repro.obs.trace import get_tracer
from repro.resilience.actuator import Actuator
from repro.resilience.detector import Detector
from repro.resilience.playbooks import (
    Playbook,
    RemediationPolicy,
    playbook_for,
)
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams

__all__ = ["PlaybookRunner", "RemediationRecord", "RemediationOutcome"]

#: seed space for the nested recovery simulations (any int31 is fine)
_NESTED_SEED_SPACE = 2 ** 31


@dataclass(frozen=True)
class RemediationRecord:
    """The full detect→decide→act→verify timeline of one fault.

    All timestamps are absolute sim seconds; stages the campaign horizon
    censored are ``inf``.  ``applied`` is ``False`` when the
    plan-scripted repair beat automation to the fault (the remediation
    then verified a repair it did not perform).
    """

    fault_label: str
    fault_class: str
    playbook: str
    injected_at: float
    detected_at: float
    decided_at: float
    acted_at: float
    verified_at: float
    attempts: int
    escalated: bool
    applied: bool

    @property
    def completed(self) -> bool:
        """Whether the pipeline closed inside the campaign window."""
        return math.isfinite(self.verified_at)

    @property
    def detect_seconds(self) -> float:
        """MTTD contribution: onset → alert."""
        return self.detected_at - self.injected_at

    @property
    def decide_seconds(self) -> float:
        """Alert → playbook dispatched."""
        return self.decided_at - self.detected_at

    @property
    def act_seconds(self) -> float:
        """Dispatch → repair applied (steps, retries, recovery tail)."""
        return self.acted_at - self.decided_at

    @property
    def verify_seconds(self) -> float:
        """Repair applied → declared closed."""
        return self.verified_at - self.acted_at

    @property
    def mttr_seconds(self) -> float:
        """Onset → closed: the full time-to-repair."""
        return self.verified_at - self.injected_at


@dataclass(frozen=True)
class RemediationOutcome:
    """Aggregated remediation metrics of one executed run.

    Plain floats/ints/tuples throughout, so outcomes from identically
    seeded runs compare equal with ``==``.  ``by_class`` rows are
    ``(fault class value, completed count, mean MTTD s, mean MTTR s)``.
    """

    n_faults: int
    n_applied: int
    n_preempted: int
    n_escalated: int
    records: tuple[RemediationRecord, ...]
    by_class: tuple[tuple[str, int, float, float], ...]

    @property
    def mean_mttd_seconds(self) -> float:
        """Mean detect latency over completed remediations (0 if none)."""
        done = [r for r in self.records if r.completed]
        if not done:
            return 0.0
        return sum(r.detect_seconds for r in done) / len(done)

    @property
    def mean_mttr_seconds(self) -> float:
        """Mean onset→closed time over completed remediations (0 if none)."""
        done = [r for r in self.records if r.completed]
        if not done:
            return 0.0
        return sum(r.mttr_seconds for r in done) / len(done)

    def rows(self) -> list[tuple[str, str]]:
        """Key/value summary rows for the CLI report."""
        return [
            ("faults seen", str(self.n_faults)),
            ("repairs applied by automation", str(self.n_applied)),
            ("preempted by scripted repair", str(self.n_preempted)),
            ("escalated to operator tier", str(self.n_escalated)),
            ("mean MTTD", f"{self.mean_mttd_seconds:,.1f} s"),
            ("mean MTTR", f"{self.mean_mttr_seconds:,.1f} s"),
        ]

    def class_rows(self) -> list[tuple[str, str, str, str]]:
        """Per-class table rows: class, count, mean MTTD, mean MTTR."""
        return [
            (cls, str(n), f"{mttd:,.1f} s", f"{mttr:,.1f} s")
            for cls, n, mttd, mttr in self.by_class
        ]


class _Remediation:
    """Mutable pipeline state for one fault (private to the runner)."""

    __slots__ = (
        "fault", "playbook", "injected_at", "detected_at", "decided_at",
        "acted_at", "verified_at", "attempts", "escalated", "applied",
        "tail", "detect_span", "decide_span", "act_span", "verify_span",
    )

    def __init__(self, fault: PlannedFault, playbook: Playbook,
                 injected_at: float) -> None:
        self.fault = fault
        self.playbook = playbook
        self.injected_at = injected_at
        self.detected_at = math.inf
        self.decided_at = math.inf
        self.acted_at = math.inf
        self.verified_at = math.inf
        self.attempts = 0
        self.escalated = False
        self.applied = False
        self.tail = 0.0
        self.detect_span = None
        self.decide_span = None
        self.act_span = None
        self.verify_span = None

    def record(self) -> RemediationRecord:
        return RemediationRecord(
            fault_label=self.fault.label,
            fault_class=self.fault.fault.value,
            playbook=self.playbook.name,
            injected_at=self.injected_at,
            detected_at=self.detected_at,
            decided_at=self.decided_at,
            acted_at=self.acted_at,
            verified_at=self.verified_at,
            attempts=self.attempts,
            escalated=self.escalated,
            applied=self.applied,
        )


class PlaybookRunner:
    """Executes remediation pipelines on a shared engine.

    Args:
        policy: the pure-configuration :class:`RemediationPolicy`.
        engine: the executor's engine; all stages are events on it.
        actuator: the write path into the executor's repair machinery.
        n_clients: connected clients, sizing the failover reconnect storm.
        n_routers: LNET routers, sizing the per-router client share for
            reroute tails (0 when the system has none).
        playbooks: optional registry override mapping
            :class:`~repro.faults.events.FaultClass` to
            :class:`~repro.resilience.playbooks.Playbook` (tests inject
            crafted books; production uses the default registry).
        detector: optional detector override exposing
            ``delay_for(fault, at)`` — the monitoring overlay injects its
            :class:`~repro.obs.overlay.observed.ObservedDetector` here so
            MTTD emerges from scrape cadence and tree lag instead of the
            analytic model (the default).
    """

    def __init__(
        self,
        policy: RemediationPolicy,
        *,
        engine: Engine,
        actuator: Actuator,
        n_clients: int,
        n_routers: int = 0,
        playbooks: dict | None = None,
        detector=None,
        epoch=None,
    ) -> None:
        if n_clients <= 0:
            raise ValueError("n_clients must be positive")
        self.policy = policy
        self._engine = engine
        self._actuator = actuator
        #: optional :class:`~repro.core.flow.Epoch` — repair actuations
        #: are applied inside it so the re-solves a repair triggers batch
        #: with everything else landing at the same instant
        self._epoch = epoch
        self._n_clients = int(n_clients)
        self._n_routers = int(n_routers)
        self._playbooks = playbooks
        streams = RngStreams(policy.seed)
        if detector is None:
            detector = Detector(policy.detection,
                                streams.get("resilience.detect"))
        self._detector = detector
        self._rng = streams.get("resilience.act")
        self._pipelines: list[_Remediation] = []

    # -- pipeline stages ------------------------------------------------------

    def on_fault(self, fault: PlannedFault, at: float) -> None:
        """Executor hook: a fault was injected at sim time ``at``."""
        if self._playbooks is not None:
            playbook = self._playbooks[fault.fault]
        else:
            playbook = playbook_for(fault.fault)
        ctx = _Remediation(fault, playbook, at)
        self._pipelines.append(ctx)
        delay = self._detector.delay_for(fault, at)
        ctx.detect_span = get_tracer().open(
            f"detect:{fault.label}", "resilience", fault=fault.fault.value)
        self._engine.call_after(delay, lambda: self._detected(ctx))

    def _detected(self, ctx: _Remediation) -> None:
        ctx.detected_at = self._engine.now
        tracer = get_tracer()
        tracer.end(ctx.detect_span)
        ctx.detect_span = None
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.counter("resilience.detected",
                              ctx.fault.fault.value).add(1.0)
        ctx.decide_span = tracer.open(
            f"decide:{ctx.fault.label}", "resilience",
            playbook=ctx.playbook.name)
        self._engine.call_after(self.policy.decide_latency,
                                lambda: self._decided(ctx))

    def _decided(self, ctx: _Remediation) -> None:
        ctx.decided_at = self._engine.now
        tracer = get_tracer()
        tracer.end(ctx.decide_span)
        ctx.decide_span = None
        ctx.act_span = tracer.open(
            f"act:{ctx.fault.label}", "resilience",
            playbook=ctx.playbook.name)
        # The recovery tail is fixed at decide time: the steps that follow
        # only reorder *when* the failover happens, not what it costs.
        ctx.tail = self._act_tail(ctx.playbook)
        self._run_step(ctx, 0, 1)

    def _act_tail(self, playbook: Playbook) -> float:
        """Seconds of §IV-D recovery appended after the last step."""
        policy = self.policy
        tail = 0.0
        if playbook.failover:
            seed = int(self._rng.integers(_NESTED_SEED_SPACE))
            outcome = simulate_recovery(
                self._n_clients,
                imperative=policy.imperative,
                hp_journaling=policy.hp_journaling,
                spec=DEFAULT_RECOVERY_SPEC,
                seed=seed,
            )
            tail += outcome.blackout_seconds
        if playbook.reroute:
            seed = int(self._rng.integers(_NESTED_SEED_SPACE))
            affected = max(1, round(self._n_clients
                                    / max(1, self._n_routers)))
            outcome = simulate_router_failure(
                affected,
                arn=policy.imperative,
                spec=DEFAULT_RECOVERY_SPEC,
                seed=seed,
            )
            tail += outcome.mean_stall_seconds
        return tail

    def _run_step(self, ctx: _Remediation, index: int, attempt: int) -> None:
        step = ctx.playbook.steps[index]
        ctx.attempts += 1
        failed = float(self._rng.random()) < step.failure_probability
        cost = step.timeout if failed else step.duration
        self._engine.call_after(
            cost, lambda: self._step_done(ctx, index, attempt, failed))

    def _step_done(self, ctx: _Remediation, index: int, attempt: int,
                   failed: bool) -> None:
        if not failed:
            self._advance(ctx, index)
            return
        retry = self.policy.retry
        if attempt >= retry.max_attempts:
            # Automation is out of attempts: page a human.  The operator
            # tier is slow but reliable — the step succeeds after the
            # page delay plus its nominal duration.
            ctx.escalated = True
            telemetry = get_telemetry()
            if telemetry.enabled:
                telemetry.counter("resilience.escalated",
                                  ctx.fault.fault.value).add(1.0)
            step = ctx.playbook.steps[index]
            self._engine.call_after(
                self.policy.operator_delay + step.duration,
                lambda: self._advance(ctx, index))
            return
        backoff = retry.backoff_seconds(attempt, float(self._rng.random()))
        self._engine.call_after(
            backoff, lambda: self._run_step(ctx, index, attempt + 1))

    def _advance(self, ctx: _Remediation, index: int) -> None:
        if index + 1 < len(ctx.playbook.steps):
            self._run_step(ctx, index + 1, 1)
        else:
            self._engine.call_after(ctx.tail,
                                    lambda: self._act_complete(ctx))

    def _act_complete(self, ctx: _Remediation) -> None:
        ctx.acted_at = self._engine.now
        if self._epoch is not None:
            with self._epoch:
                ctx.applied = self._actuator.repair(ctx.fault)
        else:
            ctx.applied = self._actuator.repair(ctx.fault)
        tracer = get_tracer()
        tracer.end(ctx.act_span, applied=ctx.applied,
                   escalated=ctx.escalated, attempts=ctx.attempts)
        ctx.act_span = None
        telemetry = get_telemetry()
        if telemetry.enabled:
            key = "resilience.applied" if ctx.applied \
                else "resilience.preempted"
            telemetry.counter(key, ctx.fault.fault.value).add(1.0)
        ctx.verify_span = tracer.open(
            f"verify:{ctx.fault.label}", "resilience")
        self._engine.call_after(self.policy.verify_latency,
                                lambda: self._verified(ctx))

    def _verified(self, ctx: _Remediation) -> None:
        ctx.verified_at = self._engine.now
        get_tracer().end(ctx.verify_span, verified=True)
        ctx.verify_span = None
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.histogram("resilience.mttr").observe(
                ctx.verified_at - ctx.injected_at)

    # -- aggregation ----------------------------------------------------------

    def finalize(self) -> RemediationOutcome:
        """Close censored spans and aggregate the records (call once,
        after the engine has run to the horizon)."""
        tracer = get_tracer()
        for ctx in self._pipelines:
            for name in ("detect_span", "decide_span", "act_span",
                         "verify_span"):
                handle = getattr(ctx, name)
                if handle is not None:
                    tracer.end(handle, censored=True)
                    setattr(ctx, name, None)
        records = tuple(ctx.record() for ctx in self._pipelines)
        per_class: dict[str, list[RemediationRecord]] = {}
        for record in records:
            if record.completed:
                per_class.setdefault(record.fault_class, []).append(record)
        by_class = tuple(
            (cls,
             len(recs),
             sum(r.detect_seconds for r in recs) / len(recs),
             sum(r.mttr_seconds for r in recs) / len(recs))
            for cls, recs in sorted(per_class.items()))
        return RemediationOutcome(
            n_faults=len(records),
            n_applied=sum(1 for r in records if r.applied),
            n_preempted=sum(1 for r in records
                            if r.completed and not r.applied),
            n_escalated=sum(1 for r in records if r.escalated),
            records=records,
            by_class=by_class,
        )
