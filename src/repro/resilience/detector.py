"""The detection-latency model: polling, debounce, missed sweeps.

The §V lesson behind MELT-style monitoring is that a fault is invisible
until the monitoring stack *notices* it, and the noticing has its own
physics: health checkers sweep on a poll interval, alerts are debounced
so a single flapping sample does not page anyone, and real sweeps
occasionally miss (a scraper timeout, a stale cache, an agent mid-restart).
MTTD — the first term of the MTTR decomposition the paired study reports —
is exactly this pipeline's latency.

:class:`Detector` models it analytically rather than as a periodic engine
process: at fault onset it computes when the next sweep on the global poll
grid lands, adds a geometric number of missed sweeps (each sweep misses
independently with :attr:`DetectionModel.miss_probability`, drawn from a
named :class:`~repro.sim.rng.RngStreams` substream), then adds the
debounce.  One draw sequence per fault in injection order — deterministic
for a given plan and seed, and free of per-sweep engine events.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.monitoring.health import HealthEvent

__all__ = ["DetectionModel", "Detector"]

#: default monitoring sweep period (seconds)
DEFAULT_POLL_INTERVAL = 30.0
#: default alert debounce: persistence required before paging (seconds)
DEFAULT_DEBOUNCE = 10.0
#: default per-sweep missed-detection probability
DEFAULT_MISS_PROBABILITY = 0.02
#: cap on consecutive missed sweeps, so a pathological miss probability
#: cannot stall detection (or randomness consumption) unboundedly
MAX_MISSED_SWEEPS = 20


@dataclass(frozen=True)
class DetectionModel:
    """Configuration of the monitoring-to-alert pipeline.

    All times in seconds.  ``miss_probability`` is the chance any one
    sweep fails to surface a present fault; misses compound geometrically
    (capped at :data:`MAX_MISSED_SWEEPS` sweeps).
    """

    poll_interval: float = DEFAULT_POLL_INTERVAL
    debounce: float = DEFAULT_DEBOUNCE
    miss_probability: float = DEFAULT_MISS_PROBABILITY

    def __post_init__(self) -> None:
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        if self.debounce < 0:
            raise ValueError("debounce must be non-negative")
        if not (0 <= self.miss_probability < 1):
            raise ValueError("miss_probability must be in [0, 1)")


class Detector:
    """Turns a fault onset into the sim time its alert fires.

    Args:
        model: the pipeline configuration.
        rng: the named substream the missed-sweep draws come from
            (conventionally ``streams.get("resilience.detect")``).
    """

    def __init__(self, model: DetectionModel, rng: np.random.Generator) -> None:
        self.model = model
        self._rng = rng

    def detection_delay(self, fault_time: float) -> float:
        """Seconds from fault onset to the alert, for an onset at
        ``fault_time`` on the global poll grid.

        Exactly one uniform draw is consumed per miss check, starting
        with the first sweep after onset, so the draw sequence depends
        only on call order — not on telemetry, tracing, or wall clock.
        """
        model = self.model
        next_sweep = (math.floor(fault_time / model.poll_interval) + 1) \
            * model.poll_interval
        delay = next_sweep - fault_time
        for _sweep in range(MAX_MISSED_SWEEPS):
            if float(self._rng.random()) >= model.miss_probability:
                break
            delay += model.poll_interval
        return delay + model.debounce

    def delay_for(self, fault, at: float) -> float:
        """Detection delay for one planned fault — the pipeline hook the
        runner calls.  The analytic model is omniscient about *where*
        (every host shares the global poll grid), so the fault's identity
        is ignored; the overlay-backed
        :class:`~repro.obs.overlay.observed.ObservedDetector` overrides
        this with host-dependent tree lag."""
        del fault
        return self.detection_delay(at)

    def observe(self, event: HealthEvent) -> float:
        """Absolute sim time the alert for ``event`` reaches automation."""
        return event.time + self.detection_delay(event.time)
