"""Remediation playbooks: fault class → ordered steps, retries, escalation.

Each :class:`Playbook` is the automation-tier runbook for one
:class:`~repro.faults.events.FaultClass` — the codified version of what
the paper's operators did by hand: fail a dying drive out and bring in a
hot spare, reseat the marginal cable, fail the OSS over (standard or
imperative recovery, §IV-D), push the dead-router notice into the LNET
routing tables, shed the ``du`` storm off the MDS, drain a full OST.

Steps are declarative: a duration on success, a timeout when the step
hangs, and a per-attempt failure probability.  The
:class:`~repro.resilience.runner.PlaybookRunner` executes them with
bounded retry (exponential backoff + jitter from a named RNG substream)
and, when automation exhausts its attempts, escalates to the slower
"operator" tier — a human gets paged, waits out
:attr:`RemediationPolicy.operator_delay`, and performs the step reliably.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.events import FaultClass
from repro.resilience.detector import DetectionModel
from repro.units import MINUTE

__all__ = [
    "PlaybookStep",
    "Playbook",
    "RetryPolicy",
    "RemediationPolicy",
    "PLAYBOOKS",
    "playbook_for",
]

# Step timing constants (seconds).  Failover/reroute tails are *not* in
# this table: they come from ``simulate_recovery``/``simulate_router_failure``
# under ``DEFAULT_RECOVERY_SPEC`` (the one constant table in
# :mod:`repro.lustre.recovery`), so the §IV-D numbers cannot drift.
#: confirm an automated diagnosis against a second telemetry source
CONFIRM_SECONDS = 30.0
#: fail a member out of its RAID group / fence a component
ISOLATE_SECONDS = 10.0
#: activate a hot spare into the group (starts the rebuild window)
HOT_SPARE_SECONDS = 45.0
#: an ibdiagnet-style fabric sweep localizing a bad cable
CABLE_SWEEP_SECONDS = 60.0
#: reseat/replace an IB cable at the rack
CABLE_RESEAT_SECONDS = 2 * MINUTE
#: restore a failed couplet controller (power-cycle + firmware settle)
CONTROLLER_RESTORE_SECONDS = 5 * MINUTE
#: push updated LNET routing tables to the server side
ROUTE_PUSH_SECONDS = 30.0
#: identify the client behind a metadata storm from MDS stats
SHED_IDENTIFY_SECONDS = 60.0
#: throttle/evict the offending client
SHED_THROTTLE_SECONDS = 30.0
#: disable new-object allocation on a filling OST
MIGRATE_DISABLE_SECONDS = 15.0
#: migrate objects off the full OST to rebalance
MIGRATE_DRAIN_SECONDS = 10 * MINUTE
#: reseat/power-cycle a drive shelf
SHELF_RESEAT_SECONDS = 5 * MINUTE

#: default per-attempt chance an automated step hangs and times out
STEP_FAILURE_PROBABILITY = 0.05
#: default per-step timeout: the give-up point for one attempt
STEP_TIMEOUT_SECONDS = 3 * MINUTE
#: default latency of the decide stage (playbook lookup + dispatch)
DECIDE_LATENCY_SECONDS = 2.0
#: default latency of the verify stage (probe re-solve + green check)
VERIFY_LATENCY_SECONDS = 15.0
#: default escalation delay: paging a human and their response time
OPERATOR_DELAY_SECONDS = 15 * MINUTE


@dataclass(frozen=True)
class PlaybookStep:
    """One remediation action on the automation tier.

    ``duration`` is the cost of a successful attempt, ``timeout`` the
    cost of a hung one (both seconds); ``failure_probability`` is the
    per-attempt chance of hanging.
    """

    name: str
    duration: float
    timeout: float = STEP_TIMEOUT_SECONDS
    failure_probability: float = STEP_FAILURE_PROBABILITY

    def __post_init__(self) -> None:
        if self.duration <= 0 or self.timeout <= 0:
            raise ValueError("step duration and timeout must be positive")
        if not (0 <= self.failure_probability < 1):
            raise ValueError("failure_probability must be in [0, 1)")


@dataclass(frozen=True)
class Playbook:
    """The ordered remediation steps for one fault class.

    ``failover`` appends an OSS-failover recovery window (via
    ``simulate_recovery``) to the act phase — clients must reconnect and
    replay before the repaired component serves I/O again.  ``reroute``
    appends the router-failure client-stall window (via
    ``simulate_router_failure`` + LNET liveness).
    """

    name: str
    fault_class: FaultClass
    steps: tuple[PlaybookStep, ...]
    failover: bool = False
    reroute: bool = False

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("a playbook needs at least one step")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff + jitter.

    A step is attempted up to ``max_attempts`` times; the *k*-th retry
    waits ``min(backoff_cap, backoff_base * 2**(k-1))`` seconds scaled by
    a uniform jitter factor in ``[1, 1 + jitter]``.  Exhausting the
    attempts escalates to the operator tier.
    """

    max_attempts: int = 3
    backoff_base: float = 5.0
    backoff_cap: float = 2 * MINUTE
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_base <= 0 or self.backoff_cap <= 0:
            raise ValueError("backoff parameters must be positive")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")

    def backoff_seconds(self, attempt: int, jitter_draw: float) -> float:
        """Backoff before retrying after failed attempt ``attempt``
        (1-based), given a uniform ``jitter_draw`` in [0, 1)."""
        base = min(self.backoff_cap, self.backoff_base * 2.0 ** (attempt - 1))
        return base * (1.0 + self.jitter * jitter_draw)


@dataclass(frozen=True)
class RemediationPolicy:
    """Everything the closed loop needs, as pure configuration.

    The policy object holds no runtime state, so one instance can drive
    any number of campaigns; all randomness flows through named
    substreams of ``RngStreams(seed)`` inside the runner.  ``imperative``
    selects imperative recovery + ARN for the failover/reroute tails
    (the §IV-D ablation knob); ``hp_journaling`` the replay speedup.
    """

    detection: DetectionModel = DetectionModel()
    retry: RetryPolicy = RetryPolicy()
    decide_latency: float = DECIDE_LATENCY_SECONDS
    verify_latency: float = VERIFY_LATENCY_SECONDS
    operator_delay: float = OPERATOR_DELAY_SECONDS
    imperative: bool = True
    hp_journaling: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.decide_latency < 0 or self.verify_latency < 0:
            raise ValueError("stage latencies must be non-negative")
        if self.operator_delay < 0:
            raise ValueError("operator_delay must be non-negative")


#: the runbook registry: every fault class maps to exactly one playbook
PLAYBOOKS: dict[FaultClass, Playbook] = {
    pb.fault_class: pb
    for pb in (
        Playbook(
            name="hot-spare-rebuild",
            fault_class=FaultClass.DISK_FAIL,
            steps=(
                PlaybookStep("fail-out-member", ISOLATE_SECONDS),
                PlaybookStep("activate-hot-spare", HOT_SPARE_SECONDS),
            ),
        ),
        Playbook(
            name="cull-slow-disk",
            fault_class=FaultClass.DISK_SLOW,
            steps=(
                PlaybookStep("confirm-latency-outlier", CONFIRM_SECONDS),
                PlaybookStep("swap-in-spare", HOT_SPARE_SECONDS),
            ),
        ),
        Playbook(
            name="reseat-marginal-cable",
            fault_class=FaultClass.CABLE_DEGRADE,
            steps=(
                PlaybookStep("fabric-sweep", CABLE_SWEEP_SECONDS),
                PlaybookStep("reseat-cable", CABLE_RESEAT_SECONDS),
            ),
        ),
        Playbook(
            name="replace-cable-failover",
            fault_class=FaultClass.CABLE_FAIL,
            steps=(
                PlaybookStep("reseat-cable", CABLE_RESEAT_SECONDS),
            ),
            failover=True,
        ),
        Playbook(
            name="controller-failback",
            fault_class=FaultClass.CONTROLLER_FAIL,
            steps=(
                PlaybookStep("verify-partner-holds", CONFIRM_SECONDS),
                PlaybookStep("restore-controller", CONTROLLER_RESTORE_SECONDS),
            ),
            failover=True,
        ),
        Playbook(
            name="router-reroute",
            fault_class=FaultClass.ROUTER_FAIL,
            steps=(
                PlaybookStep("push-routing-tables", ROUTE_PUSH_SECONDS),
            ),
            reroute=True,
        ),
        Playbook(
            name="shed-metadata-storm",
            fault_class=FaultClass.MDS_OVERLOAD,
            steps=(
                PlaybookStep("identify-storm-client", SHED_IDENTIFY_SECONDS),
                PlaybookStep("throttle-client", SHED_THROTTLE_SECONDS),
            ),
        ),
        Playbook(
            name="drain-full-ost",
            fault_class=FaultClass.OST_FILL,
            steps=(
                PlaybookStep("disable-allocation", MIGRATE_DISABLE_SECONDS),
                PlaybookStep("migrate-objects", MIGRATE_DRAIN_SECONDS),
            ),
        ),
        Playbook(
            name="reseat-shelf",
            fault_class=FaultClass.ENCLOSURE_OFFLINE,
            steps=(
                PlaybookStep("reseat-shelf", SHELF_RESEAT_SECONDS),
            ),
            failover=True,
        ),
    )
}


def playbook_for(fault_class: FaultClass) -> Playbook:
    """The registered playbook for one fault class."""
    return PLAYBOOKS[fault_class]
