"""repro.resilience — closed-loop remediation on the fault campaign.

The paper's operational chapters describe humans closing the loop:
monitoring surfaces a dying cable or a failed OSS, an operator diagnoses
it, walks a runbook, and the system recovers minutes to hours later.
This package automates that loop on the discrete-event engine:

* :mod:`repro.resilience.detector` — the detection-latency model
  (poll grid, debounce, missed sweeps): MTTD has physics too;
* :mod:`repro.resilience.playbooks` — the runbook registry mapping every
  :class:`~repro.faults.events.FaultClass` to declarative steps, plus the
  retry/escalation and remediation policies;
* :mod:`repro.resilience.actuator` — the write path applying repairs
  through the executor's own injector adapters, so the flow network
  re-solves exactly as for a scripted repair;
* :mod:`repro.resilience.runner` — :class:`PlaybookRunner` executes
  detect → decide → act → verify as engine events and aggregates the
  MTTD/MTTR decomposition;
* :mod:`repro.resilience.study` — the paired manual-vs-automated
  experiment with the standard-recovery ablation.

Typical use::

    from repro.core.spider import build_spider2
    from repro.faults import FaultCampaign, cable_failure_scenario
    from repro.resilience import RemediationPolicy

    system = build_spider2()
    plan = cable_failure_scenario(system)
    result = FaultCampaign(
        system, plan, remediation=RemediationPolicy(seed=7)).run()
    print(result.remediation.mean_mttr_seconds)
"""

from repro.resilience.actuator import Actuator, CallbackActuator
from repro.resilience.detector import DetectionModel, Detector
from repro.resilience.playbooks import (
    PLAYBOOKS,
    Playbook,
    PlaybookStep,
    RemediationPolicy,
    RetryPolicy,
    playbook_for,
)
from repro.resilience.runner import (
    PlaybookRunner,
    RemediationOutcome,
    RemediationRecord,
)
from repro.resilience.study import (
    PairedStudyResult,
    StudyArm,
    run_paired_study,
)

__all__ = [
    "DetectionModel",
    "Detector",
    "PlaybookStep",
    "Playbook",
    "RetryPolicy",
    "RemediationPolicy",
    "PLAYBOOKS",
    "playbook_for",
    "Actuator",
    "CallbackActuator",
    "PlaybookRunner",
    "RemediationRecord",
    "RemediationOutcome",
    "StudyArm",
    "PairedStudyResult",
    "run_paired_study",
]
