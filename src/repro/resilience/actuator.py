"""The actuator: remediation state changes through the injector adapters.

The closed loop must change the *same* simulated state the fault
injectors changed, or the flow network would never notice the repair.
An :class:`Actuator` is the runner's write path into whichever executor
owns that state — :class:`~repro.faults.campaign.FaultCampaign` or
:class:`~repro.sched.scheduler.FacilityScheduler` — and both route the
call through their existing repair machinery (injector ``repair``,
follow-up rebuilds, telemetry counters, flow re-solve), so a remediated
repair is indistinguishable from a plan-scripted one except for *when*
it happens.

``repair`` returns ``False`` when there is nothing left to do (the
plan-scripted repair fired first); the executor's own repair path holds
the symmetric guard, so exactly one of the two ever acts per fault.
"""

from __future__ import annotations

from typing import Callable

from repro.faults.events import PlannedFault

__all__ = ["Actuator", "CallbackActuator"]


class Actuator:
    """The runner's write path into a fault executor."""

    def repair(self, fault: PlannedFault) -> bool:
        """Apply the remediation repair for ``fault``; return ``True``
        if state changed, ``False`` if the fault was already repaired."""
        raise NotImplementedError

    def pending(self, fault: PlannedFault) -> bool:
        """Whether ``fault`` is still injected (repair not yet applied)."""
        raise NotImplementedError


class CallbackActuator(Actuator):
    """Adapts an executor's repair path via two callables.

    Args:
        repair: called with the fault; returns whether state changed.
        pending: called with the fault; returns whether it is still live.
    """

    def __init__(
        self,
        *,
        repair: Callable[[PlannedFault], bool],
        pending: Callable[[PlannedFault], bool],
    ) -> None:
        self._repair = repair
        self._pending = pending

    def repair(self, fault: PlannedFault) -> bool:
        """Apply the remediation repair through the executor callback."""
        return bool(self._repair(fault))

    def pending(self, fault: PlannedFault) -> bool:
        """Whether the executor still holds an open token for ``fault``."""
        return bool(self._pending(fault))
