"""The headline experiment: plan-scripted vs closed-loop remediation.

:func:`run_paired_study` runs the *same* fault plan on the *same* seed
three times — once with only the plan's scripted repairs (how the §IV-A
timeline actually played out: operators noticed, diagnosed, and walked to
the rack), once with the automated closed loop driving imperative
recovery + ARN, and once with the closed loop downgraded to standard
recovery (the §IV-D ablation).  Because the injected faults, flow
re-solves, and sampling grid are identical across arms, every difference
in availability and blackout seconds is attributable to remediation
alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.resilience.playbooks import RemediationPolicy
from repro.resilience.runner import RemediationOutcome

if TYPE_CHECKING:
    from repro.core.system import SpiderSystem
    from repro.faults.plan import FaultPlan

__all__ = ["StudyArm", "PairedStudyResult", "run_paired_study"]


@dataclass(frozen=True)
class StudyArm:
    """One arm of the paired study, reduced to comparable scalars."""

    name: str
    availability: float
    blackout_seconds: float
    worst_bw: float
    n_injected: int
    n_repaired: int
    remediation: RemediationOutcome | None = None

    def rows(self) -> list[tuple[str, str]]:
        """Key/value rows for the CLI report."""
        rows = [
            ("availability", f"{self.availability:.3%}"),
            ("blackout", f"{self.blackout_seconds:,.0f} s"),
            ("faults injected / repaired",
             f"{self.n_injected} / {self.n_repaired}"),
        ]
        if self.remediation is not None:
            rows.append(("mean MTTD",
                         f"{self.remediation.mean_mttd_seconds:,.1f} s"))
            rows.append(("mean MTTR",
                         f"{self.remediation.mean_mttr_seconds:,.1f} s"))
        return rows


@dataclass(frozen=True)
class PairedStudyResult:
    """Manual vs automated vs standard-recovery ablation, one seed."""

    seed: int
    manual: StudyArm
    automated: StudyArm
    standard: StudyArm

    @property
    def blackout_reduction_seconds(self) -> float:
        """Blackout seconds the closed loop removed vs the scripted plan."""
        return self.manual.blackout_seconds - self.automated.blackout_seconds

    @property
    def availability_gain(self) -> float:
        """Availability delta, automated minus manual."""
        return self.automated.availability - self.manual.availability

    def rows(self) -> list[tuple[str, str, str, str]]:
        """Comparison table rows: metric, manual, automated, standard."""
        arms = (self.manual, self.automated, self.standard)
        rows = [
            ("availability", *(f"{a.availability:.3%}" for a in arms)),
            ("blackout",
             *(f"{a.blackout_seconds:,.0f} s" for a in arms)),
            ("mean MTTR", *(
                "—" if a.remediation is None
                else f"{a.remediation.mean_mttr_seconds:,.1f} s"
                for a in arms)),
        ]
        return rows


def _arm(
    name: str,
    system_factory: "Callable[[], SpiderSystem]",
    plan_factory: "Callable[[SpiderSystem], FaultPlan]",
    *,
    duration: float | None,
    threshold: float,
    remediation: RemediationPolicy | None,
) -> StudyArm:
    from repro.faults.campaign import FaultCampaign

    system = system_factory()
    plan = plan_factory(system)
    result = FaultCampaign(
        system, plan,
        duration=duration,
        threshold=threshold,
        remediation=remediation,
    ).run()
    return StudyArm(
        name=name,
        availability=result.availability,
        blackout_seconds=result.total_blackout_seconds(),
        worst_bw=result.worst_bw,
        n_injected=result.n_injected,
        n_repaired=result.n_repaired,
        remediation=result.remediation,
    )


def run_paired_study(
    system_factory: "Callable[[], SpiderSystem]",
    plan_factory: "Callable[[SpiderSystem], FaultPlan]",
    *,
    seed: int = 0,
    duration: float | None = None,
    threshold: float = 0.5,
) -> PairedStudyResult:
    """Run the manual / automated / standard-ablation triple.

    Args:
        system_factory: builds a *fresh* system per arm (arms mutate
            hardware state, so they cannot share one instance).
        plan_factory: builds the fault plan from that system; must be
            deterministic so all arms face the same faults.
        seed: seeds the remediation policy (detection misses, step
            failures, backoff jitter, nested recovery sims).
        duration: campaign horizon override, as in
            :class:`~repro.faults.campaign.FaultCampaign`.
        threshold: degradation threshold for the availability metrics.
    """
    manual = _arm(
        "manual", system_factory, plan_factory,
        duration=duration, threshold=threshold, remediation=None)
    automated = _arm(
        "automated", system_factory, plan_factory,
        duration=duration, threshold=threshold,
        remediation=RemediationPolicy(
            imperative=True, hp_journaling=True, seed=seed))
    standard = _arm(
        "standard-recovery", system_factory, plan_factory,
        duration=duration, threshold=threshold,
        remediation=RemediationPolicy(
            imperative=False, hp_journaling=False, seed=seed))
    return PairedStudyResult(
        seed=seed, manual=manual, automated=automated, standard=standard)
