"""repro.faults — the declarative fault-injection campaign engine.

The paper's operational sections are a catalogue of component failures a
center-wide file system absorbs continuously; this package turns that
catalogue into executable campaigns:

* :mod:`repro.faults.events` — the fault taxonomy
  (:class:`FaultClass`) and one timed occurrence (:class:`PlannedFault`);
* :mod:`repro.faults.injectors` — one adapter per fault class binding it
  to the layer that breaks (disks, RAID, cables, controllers, routers,
  MDS, OSTs, enclosures);
* :mod:`repro.faults.plan` — composable, seed-deterministic
  :class:`FaultPlan` schedules plus the hand-written §IV-A cable and 2010
  enclosure-incident scenarios;
* :mod:`repro.faults.campaign` — :class:`FaultCampaign` executes a plan on
  the discrete-event engine, re-solves the flow network at every state
  change, feeds the health checker and telemetry spine, and returns a
  :class:`CampaignResult` of availability/degradation metrics.

Typical use::

    from repro.core.spider import build_spider2
    from repro.faults import FaultCampaign, FaultPlan

    system = build_spider2()
    plan = FaultPlan.random(system, duration=86_400, n_faults=12, seed=7)
    result = FaultCampaign(system, plan).run()
    print(result.availability, result.time_below_threshold)
"""

from repro.faults.campaign import CampaignResult, FaultCampaign
from repro.faults.events import FaultClass, PlannedFault
from repro.faults.injectors import INJECTORS, Injector, injector_for
from repro.faults.plan import (
    FaultPlan,
    cable_failure_scenario,
    flapping_router_scenario,
    hotspot_storm_scenario,
    incident_2010_scenario,
)

__all__ = [
    "FaultClass",
    "PlannedFault",
    "Injector",
    "INJECTORS",
    "injector_for",
    "FaultPlan",
    "cable_failure_scenario",
    "incident_2010_scenario",
    "flapping_router_scenario",
    "hotspot_storm_scenario",
    "FaultCampaign",
    "CampaignResult",
]
