"""The fault campaign: timed injection, flow re-solves, health, metrics.

A :class:`FaultCampaign` executes a :class:`~repro.faults.plan.FaultPlan`
against a built :class:`~repro.core.spider.SpiderSystem` on the
discrete-event engine, in two interleaved regimes (the same split as the
rest of the model):

* **DES regime** — fault onsets, repairs, rebuild completions, and health
  symptoms are engine events at their scheduled times;
* **flow regime** — at every state change that touches the data path, the
  campaign re-solves a constant probe workload (each OSS offered exactly
  its couplet fair share) through :class:`~repro.core.path.PathBuilder`,
  sampling the delivered aggregate bandwidth.  The samples form a
  step-function bandwidth-degradation timeline.  Re-solve requests ride
  an :class:`~repro.core.flow.Epoch`, so a same-tick fault cascade costs
  one solve (labels joined with ``"+"``), and the builder is persistent:
  capacity-only faults re-solve incrementally over the built network,
  while routing changes rebuild it (see
  :meth:`~repro.core.path.PathBuilder.resolve` and
  ``docs/PERFORMANCE.md``).

Every injection/repair also feeds the operational surfaces: a
:class:`~repro.monitoring.health.HealthEvent` per fault (plus the
RPC-timeout software symptom for blackout-class faults, which is what lets
the health checker demonstrate hardware-rooted correlation), a
``faults.injected``/``faults.repaired`` telemetry counter per class, and an
open trace span per fault lifetime — so ``spider-repro chaos --trace``
shows faults as intervals on the sim timeline next to the RAID-rebuild and
engine-process spans.

The result is a :class:`CampaignResult` of plain floats and tuples, so two
runs with the same seed compare equal with ``==`` — the determinism
contract the test suite enforces (telemetry on or off, bit-identical).

Passing ``remediation=`` closes the loop: a
:class:`~repro.resilience.runner.PlaybookRunner` rides the same engine,
detects each injected fault through the monitoring-latency model, walks
its playbook, and applies the repair through the campaign's own repair
path — whichever of the scripted repair and the remediation fires first
wins, the other becomes a no-op.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.flow import Epoch
from repro.core.path import PathBuilder, Transfer
from repro.core.spider import SpiderSystem
from repro.faults.events import PlannedFault
from repro.faults.injectors import injector_for
from repro.faults.plan import FaultPlan
from repro.monitoring.health import HealthEvent, LustreHealthChecker
from repro.obs.instruments import get_telemetry
from repro.obs.trace import get_tracer, instrument_engine
from repro.sim.engine import Engine
from repro.units import HOUR

if TYPE_CHECKING:
    from repro.obs.overlay.runtime import MonitoringOverlay, OverlayOutcome
    from repro.resilience.playbooks import RemediationPolicy
    from repro.resilience.runner import PlaybookRunner, RemediationOutcome

__all__ = ["FaultCampaign", "CampaignResult"]

#: seconds between a blackout-class hardware fault and its Lustre symptom
SYMPTOM_DELAY = 5.0

#: a fault class "recovers" when bandwidth returns to this fraction of its
#: pre-fault level
RECOVERY_FRACTION = 0.99


@dataclass(frozen=True)
class CampaignResult:
    """Availability and degradation metrics of one executed campaign.

    All fields are plain floats/ints/tuples, so results from identically
    seeded runs compare equal with ``==``.
    """

    #: delivered probe bandwidth with every component healthy (bytes/s)
    baseline_bw: float
    #: lowest bandwidth sample seen during the campaign (bytes/s)
    worst_bw: float
    #: bandwidth at the campaign horizon (bytes/s)
    final_bw: float
    #: campaign horizon (seconds)
    duration: float
    #: degradation threshold as a fraction of baseline
    threshold: float
    #: seconds spent below ``threshold × baseline_bw``
    time_below_threshold: float
    #: time-weighted mean bandwidth / baseline (1.0 = no degradation)
    availability: float
    #: ``(time, bandwidth, label)`` per flow re-solve, time-sorted
    timeline: tuple[tuple[float, float, str], ...]
    #: worst observed ``(fault class value, recovery seconds)`` per class;
    #: censored at the horizon for faults that never fully recovered
    recovery_times: tuple[tuple[str, float], ...]
    #: health-checker incident classification counts, sorted by key
    incident_counts: tuple[tuple[str, int], ...]
    n_injected: int
    n_repaired: int
    #: probe flows dropped because no live router served their leaf
    unroutable_flows: int
    #: ``(fault class value, event count, mean recovery seconds)`` per
    #: class over every qualifying fault (``recovery_times`` keeps only
    #: the worst case, for backward compatibility)
    recovery_stats: tuple[tuple[str, int, float], ...] = ()
    #: the closed-loop remediation outcome, when a policy was supplied
    remediation: "RemediationOutcome | None" = None
    #: the monitoring-overlay outcome, when a monitor rode the campaign
    overlay: "OverlayOutcome | None" = None

    def below_threshold_fraction(self) -> float:
        """Fraction of the campaign spent below the degradation threshold."""
        return self.time_below_threshold / self.duration if self.duration else 0.0

    def total_blackout_seconds(self) -> float:
        """Sum of recovery seconds over every fault with a measured
        recovery — the scalar the paired study compares across arms."""
        return sum(n * mean for _cls, n, mean in self.recovery_stats)


class FaultCampaign:
    """Executes one :class:`FaultPlan` and measures the damage.

    Args:
        system: the built system to hurt (mutated in place — build a fresh
            one per campaign).
        plan: the fault schedule.
        duration: campaign horizon in seconds; defaults to one hour past
            the plan's last scheduled event so final repairs settle.
        threshold: degradation threshold as a fraction of baseline
            bandwidth, for the ``time_below_threshold`` metric.
        health: the health checker receiving fault events; a fresh
            ``LustreHealthChecker`` by default.
        probe_clients_per_oss: probe streams per OSS.  Two 1.4 GB/s client
            stacks out-demand one OSS's couplet share, so server-side
            degradation is visible rather than hidden behind client limits.
        remediation: optional
            :class:`~repro.resilience.playbooks.RemediationPolicy`; when
            given, a :class:`~repro.resilience.runner.PlaybookRunner`
            closes the loop on every injected fault.
        monitor: optional in-band monitoring overlay
            (:class:`~repro.obs.overlay.runtime.MonitoringOverlay`, or
            anything exposing ``attach(engine)`` / ``detector(model)`` /
            ``outcome()``).  It rides the campaign engine; when a
            remediation policy is also given, its overlay-backed detector
            replaces the analytic one, so MTTD emerges from the
            monitoring pipeline rather than the model.
    """

    def __init__(
        self,
        system: SpiderSystem,
        plan: FaultPlan,
        *,
        duration: float | None = None,
        threshold: float = 0.5,
        health: LustreHealthChecker | None = None,
        probe_clients_per_oss: int = 2,
        remediation: "RemediationPolicy | None" = None,
        monitor: "MonitoringOverlay | None" = None,
    ) -> None:
        if not system.clients:
            raise ValueError("campaign needs a system built with clients")
        if duration is None:
            duration = plan.end + HOUR
        if duration <= 0:
            raise ValueError("duration must be positive")
        if not (0 < threshold < 1):
            raise ValueError("threshold must be in (0, 1)")
        if probe_clients_per_oss < 1:
            raise ValueError("probe_clients_per_oss must be >= 1")
        self.probe_clients_per_oss = probe_clients_per_oss
        self.system = system
        self.plan = plan
        self.duration = float(duration)
        self.threshold = float(threshold)
        self.health = health or LustreHealthChecker()
        self.remediation = remediation
        self.monitor = monitor
        self.transfers = self._probe_transfers()
        #: the persistent probe builder: its network survives across
        #: samples and re-solves incrementally (see PathBuilder.resolve)
        self._builder = PathBuilder(self.system, fs_level=True)
        # run state
        self._engine: Engine | None = None
        self._epoch: Epoch | None = None
        self._runner: "PlaybookRunner | None" = None
        #: (sample time, FlowResult matching the builder's route table)
        self._last: tuple[float, object] | None = None
        self._timeline: list[tuple[float, float, str]] = []
        self._tokens: dict[PlannedFault, object] = {}
        self._spans: dict[PlannedFault, object] = {}
        self._unroutable = 0
        self._n_injected = 0
        self._n_repaired = 0

    def _probe_transfers(self) -> list[Transfer]:
        """Probe streams per OSS, clients chosen by a deterministic stride.

        Each OSS is offered exactly its couplet fair share (the §III-B
        acceptance operating point), split over the probe clients.  Offering
        more would let sibling OSSes behind the same couplet absorb any
        single-OSS fault into their slack; at the engineered share, every
        layer that falls below its share surfaces in the timeline, while
        faults the system genuinely rides out (a degraded RAID group with
        raw bandwidth to spare) stay invisible — which is the point.
        """
        clients = self.system.clients
        osses = self.system.osses
        per_ssu = self.system.spec.osses_per_ssu
        n_probes = len(osses) * self.probe_clients_per_oss
        stride = max(1, len(clients) // n_probes)
        transfers = []
        for i, oss in enumerate(osses):
            share = (self.system.ssus[oss.ssu_index].couplet.bw_cap(fs_level=True)
                     / per_ssu)
            for k in range(self.probe_clients_per_oss):
                idx = i * self.probe_clients_per_oss + k
                transfers.append(Transfer(
                    name=f"probe-{oss.name}-{k}",
                    client=clients[(idx * stride) % len(clients)],
                    ost_indices=tuple(oss.ost_indices),
                    demand=share / self.probe_clients_per_oss,
                ))
        return transfers

    # -- engine callbacks -----------------------------------------------------

    def _sample(self, label: str) -> None:
        """Request a probe re-solve for the current tick.

        Routed through the campaign :class:`Epoch`: a same-tick burst of
        state changes (a fault cascade, a repair plus its followup)
        collapses into one :meth:`_flush_sample` carrying the batched
        labels joined with ``"+"``.
        """
        epoch = self._epoch
        assert epoch is not None
        epoch.request(label)

    def _flush_sample(self, label: str) -> None:
        """Re-solve the probe workload and append a timeline sample."""
        engine = self._engine
        assert engine is not None
        # Attribute the interval just ended to the per-layer byte counters
        # (telemetry-gated inside) before resolve() can replace the route
        # table the previous solve was made under.
        if self._last is not None:
            last_t, last_result = self._last
            self._builder.record_flow_telemetry(last_result,
                                                engine.now - last_t)
        # Incremental re-solve: capacity-only faults ride the delta path;
        # routing changes (router death/repair) rebuild with the policy's
        # balancing state reset, so the routes match what a fresh builder
        # would pick and the timeline cannot drift for reasons unrelated
        # to the injected faults.
        result = self._builder.resolve(self.transfers)
        self._unroutable += self._builder.unroutable_flows
        self._last = (engine.now, result)
        self._timeline.append((engine.now, float(np.sum(result.rates)), label))

    def _inject(self, fault: PlannedFault) -> None:
        engine = self._engine
        assert engine is not None
        injector = injector_for(fault)
        self._tokens[fault] = injector.inject(self.system, fault)
        self._n_injected += 1
        host = injector.host(self.system, fault)
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.counter("faults.injected", fault.fault.value).add(1.0)
        self._spans[fault] = get_tracer().open(
            f"fault:{fault.label}", "faults",
            target=str(fault.target), magnitude=fault.magnitude,
        )
        self.health.ingest(HealthEvent(
            engine.now, injector.event_kind, host, detail=fault.label))
        if injector.symptom is not None:
            symptom = injector.symptom
            engine.call_after(SYMPTOM_DELAY, lambda: self.health.ingest(
                HealthEvent(engine.now, symptom, host,
                            detail=f"symptom of {fault.label}")))
        if injector.resolves_flow:
            self._sample(fault.label)
        if self._runner is not None:
            self._runner.on_fault(fault, engine.now)

    def _repair(self, fault: PlannedFault) -> None:
        # Scripted repair and remediation share this path; whichever runs
        # first consumes the token and the other becomes a no-op.
        if fault not in self._tokens:
            return
        engine = self._engine
        assert engine is not None
        injector = injector_for(fault)
        followup = injector.repair(self.system, fault, self._tokens.pop(fault, None))
        self._n_repaired += 1
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.counter("faults.repaired", fault.fault.value).add(1.0)
        get_tracer().end(self._spans.pop(fault, None), repaired=True)
        if injector.resolves_flow:
            self._sample(f"{fault.label}:repaired")
        if followup is not None:
            delay, fn = followup

            def _finish() -> None:
                fn()
                if injector.resolves_flow:
                    self._sample(f"{fault.label}:recovered")

            engine.call_after(delay, _finish)

    def _remediate_repair(self, fault: PlannedFault) -> bool:
        """Actuator entry point: repair ``fault`` unless already repaired."""
        if fault not in self._tokens:
            return False
        self._repair(fault)
        return True

    # -- execution ------------------------------------------------------------

    def run(self) -> CampaignResult:
        """Execute the plan and return the measured :class:`CampaignResult`."""
        engine = self._engine = Engine()
        instrument_engine(engine, get_telemetry(), get_tracer())
        self._epoch = Epoch(self._flush_sample, engine=engine)
        self._timeline.clear()
        self._tokens.clear()
        self._spans.clear()
        self._last = None
        self._unroutable = self._n_injected = self._n_repaired = 0

        if self.monitor is not None:
            self.monitor.attach(engine)

        self._runner = None
        if self.remediation is not None:
            # Imported lazily: repro.resilience imports the faults package
            # at module level, so the campaign must not return the favor.
            from repro.resilience.actuator import CallbackActuator
            from repro.resilience.runner import PlaybookRunner

            detector = None
            if self.monitor is not None:
                detector = self.monitor.detector(self.remediation.detection)
            self._runner = PlaybookRunner(
                self.remediation,
                engine=engine,
                actuator=CallbackActuator(
                    repair=self._remediate_repair,
                    pending=lambda f: f in self._tokens,
                ),
                n_clients=len(self.system.clients),
                n_routers=len(self.system.routers),
                detector=detector,
            )

        # Sampled synchronously, not through the epoch: the baseline must
        # be the first timeline entry even when the plan's first fault
        # lands at t=0 (an epoch-routed baseline would batch with it).
        self._flush_sample("baseline")
        for fault in self.plan:
            engine.call_at(fault.time, lambda f=fault: self._inject(f))
            if math.isfinite(fault.repair_time):
                engine.call_at(fault.repair_time, lambda f=fault: self._repair(f))
        engine.run(until=self.duration)

        # Attribute the tail interval (last state change → horizon).
        if self._last is not None:
            last_t, last_result = self._last
            self._builder.record_flow_telemetry(
                last_result, max(0.0, self.duration - last_t))

        # Faults still open at the horizon: close their spans, censored.
        for fault in self.plan:
            handle = self._spans.pop(fault, None)
            if handle is not None:
                get_tracer().end(handle, repaired=False)

        outcome = self._runner.finalize() if self._runner is not None else None
        return self._result(outcome)

    # -- metrics --------------------------------------------------------------

    def _result(self, remediation: "RemediationOutcome | None" = None,
                ) -> CampaignResult:
        timeline = list(self._timeline)
        baseline = timeline[0][1] if timeline else 0.0
        floor = self.threshold * baseline

        # Step integration: each sample's bandwidth holds until the next.
        below = 0.0
        integral = 0.0
        for i, (t, bw, _label) in enumerate(timeline):
            t_next = timeline[i + 1][0] if i + 1 < len(timeline) else self.duration
            dt = max(0.0, min(t_next, self.duration) - t)
            integral += bw * dt
            if bw < floor:
                below += dt

        availability = (
            integral / (baseline * self.duration)
            if baseline > 0 and self.duration > 0 else 0.0
        )

        # Recovery per fault class: time from injection until bandwidth
        # returns to RECOVERY_FRACTION of its pre-fault level.
        recovery: dict[str, float] = {}
        stats: dict[str, list[float]] = {}
        for fault in self.plan:
            # Epoch batching joins same-tick sample labels with "+", so
            # match the fault's label as a member, not the whole string.
            injected_at = next(
                (i for i, (t, _bw, label) in enumerate(timeline)
                 if t >= fault.time and fault.label in label.split("+")),
                None,
            )
            if injected_at is None or injected_at == 0:
                continue
            pre_bw = timeline[injected_at - 1][1]
            recovered_at = next(
                (t for t, bw, _label in timeline[injected_at + 1:]
                 if bw >= RECOVERY_FRACTION * pre_bw),
                self.duration,  # censored: never recovered in-window
            )
            elapsed = recovered_at - fault.time
            key = fault.fault.value
            recovery[key] = max(recovery.get(key, 0.0), elapsed)
            stats.setdefault(key, []).append(elapsed)

        return CampaignResult(
            baseline_bw=baseline,
            worst_bw=min((bw for _t, bw, _l in timeline), default=0.0),
            final_bw=timeline[-1][1] if timeline else 0.0,
            duration=self.duration,
            threshold=self.threshold,
            time_below_threshold=below,
            availability=availability,
            timeline=tuple(timeline),
            recovery_times=tuple(sorted(recovery.items())),
            incident_counts=tuple(sorted(self.health.classify_counts().items())),
            n_injected=self._n_injected,
            n_repaired=self._n_repaired,
            unroutable_flows=self._unroutable,
            recovery_stats=tuple(
                (cls, len(vals), sum(vals) / len(vals))
                for cls, vals in sorted(stats.items())),
            remediation=remediation,
            overlay=self.monitor.outcome() if self.monitor is not None
            else None,
        )
