"""Injector adapters: one uniform protocol per fault class, per layer.

Every layer of the model already exposes its own fault surface — the disk
population fails drives, RAID groups erase members, the fabric degrades
cables, the couplet fails controllers, LNET drops routers, the MDS absorbs
metadata storms, OSTs fill.  An :class:`Injector` wraps one such surface in
a uniform shape so the campaign engine can schedule any
:class:`~repro.faults.events.PlannedFault` without knowing which layer it
lands on:

* :meth:`Injector.inject` applies the fault and returns an opaque token
  capturing whatever the repair needs (the pre-fault disk speed, the bytes
  written to fill an OST, the erased member positions of a shelf);
* :meth:`Injector.repair` undoes it with that token and may return a
  *followup* ``(delay, fn)`` — work the repair starts but does not finish,
  e.g. the RAID rebuild that runs for hours after a disk swap;
* :attr:`Injector.event_kind` / :meth:`Injector.host` describe the fault in
  :class:`~repro.monitoring.health.HealthEvent` terms, and
  :attr:`Injector.symptom` names the Lustre-software symptom (RPC timeouts)
  that a blackout-class hardware fault provokes shortly after onset — the
  hardware-event/software-symptom pairing the health checker correlates;
* :attr:`Injector.resolves_flow` says whether the fault changes flow-solver
  capacities (almost all do; a metadata storm degrades the MDS, not the
  data path, so it produces a health incident but no bandwidth sample).

Target conventions (the ``PlannedFault.target`` value per class):

=================== =========================================================
DISK_FAIL           global disk index into ``system.population``
DISK_SLOW           global disk index; ``magnitude`` = speed multiplier
CABLE_DEGRADE       host name (OSS or router); ``magnitude`` = bw multiplier
CABLE_FAIL          host name (OSS or router)
CONTROLLER_FAIL     SSU index (controller ``a`` of that couplet dies)
ROUTER_FAIL         router name
MDS_OVERLOAD        namespace name; ``magnitude`` scales the stat storm
OST_FILL            OST index; ``magnitude`` = target fill fraction
ENCLOSURE_OFFLINE   ``(ssu index, enclosure index)`` pair
=================== =========================================================
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.core.spider import SpiderSystem
from repro.faults.events import FaultClass, PlannedFault
from repro.lustre.mds import OpMix
from repro.monitoring.health import EventKind

__all__ = ["Injector", "INJECTORS", "injector_for"]

#: a repair followup: run ``fn`` ``delay`` seconds after the repair event
Followup = tuple[float, Callable[[], None]]


class Injector:
    """Base adapter.  Subclasses bind one :class:`FaultClass` to one layer."""

    fault_class: FaultClass
    #: primary health event emitted at injection time
    event_kind: EventKind
    #: software symptom provoked shortly after onset (None: no blackout)
    symptom: EventKind | None = None
    #: whether the fault changes flow-solver capacities
    resolves_flow: bool = True

    def host(self, system: SpiderSystem, fault: PlannedFault) -> str:
        """Health-event host: the server chain the event surfaces on."""
        raise NotImplementedError

    def inject(self, system: SpiderSystem, fault: PlannedFault) -> Any:
        """Apply the fault; returns the repair token."""
        raise NotImplementedError

    def repair(
        self, system: SpiderSystem, fault: PlannedFault, token: Any
    ) -> Followup | None:
        """Undo the fault; optionally return deferred completion work."""
        raise NotImplementedError


def _locate_group(system: SpiderSystem, disk_index: int):
    """(ssu, group, member position) owning a global disk index."""
    ssu = system.ssus[disk_index // system.spec.ssu.n_disks]
    g, pos = np.argwhere(ssu.members_matrix == disk_index)[0]
    return ssu, ssu.groups[int(g)], int(pos)


class DiskFailInjector(Injector):
    """A drive hard-fails; its group degrades, the swap triggers a rebuild."""

    fault_class = FaultClass.DISK_FAIL
    event_kind = EventKind.DISK_FAILURE

    def host(self, system, fault):
        _ssu, group, _pos = _locate_group(system, int(fault.target))
        return group.name

    def inject(self, system, fault):
        index = int(fault.target)
        _ssu, group, pos = _locate_group(system, index)
        system.population.fail(index)
        group.erase_member(pos)
        return pos

    def repair(self, system, fault, token):
        index = int(fault.target)
        _ssu, group, pos = _locate_group(system, index)
        system.population.replace([index])
        group.restore_member(pos)  # enters REBUILDING
        return (group.rebuild_time(), lambda: group.finish_rebuild(pos))


class DiskSlowInjector(Injector):
    """Slow-disk onset (Lesson 13): speed × magnitude, group min-law drags."""

    fault_class = FaultClass.DISK_SLOW
    event_kind = EventKind.DISK_LATENCY

    def host(self, system, fault):
        _ssu, group, _pos = _locate_group(system, int(fault.target))
        return group.name

    def inject(self, system, fault):
        index = int(fault.target)
        old = float(system.population.speed_factor[index])
        system.population.speed_factor[index] = old * fault.magnitude
        return old

    def repair(self, system, fault, token):
        system.population.speed_factor[int(fault.target)] = token
        return None


class CableDegradeInjector(Injector):
    """A marginal/flapping IB cable: port bandwidth × magnitude (§IV-A)."""

    fault_class = FaultClass.CABLE_DEGRADE
    event_kind = EventKind.CABLE_ERRORS

    def host(self, system, fault):
        return str(fault.target)

    def inject(self, system, fault):
        system.fabric.degrade_cable(str(fault.target), fault.magnitude)
        return None

    def repair(self, system, fault, token):
        system.fabric.repair_cable(str(fault.target))
        return None


class CableFailInjector(Injector):
    """An IB cable pull: the host port carries nothing until re-seated."""

    fault_class = FaultClass.CABLE_FAIL
    event_kind = EventKind.CABLE_ERRORS
    symptom = EventKind.RPC_TIMEOUT

    def host(self, system, fault):
        return str(fault.target)

    def inject(self, system, fault):
        system.fabric.fail_cable(str(fault.target))
        return None

    def repair(self, system, fault, token):
        system.fabric.repair_cable(str(fault.target))
        return None


class ControllerFailInjector(Injector):
    """One controller of a couplet dies; its partner assumes all groups."""

    fault_class = FaultClass.CONTROLLER_FAIL
    event_kind = EventKind.CONTROLLER_FAILOVER
    symptom = EventKind.RPC_TIMEOUT

    def host(self, system, fault):
        return system.ssus[int(fault.target)].couplet.name

    def inject(self, system, fault):
        system.ssus[int(fault.target)].couplet.fail_controller(0)
        return None

    def repair(self, system, fault, token):
        system.ssus[int(fault.target)].couplet.restore_controller(0)
        return None


class RouterFailInjector(Injector):
    """An LNET I/O router drops out: routing tables and its IB cable."""

    fault_class = FaultClass.ROUTER_FAIL
    event_kind = EventKind.ROUTER_DOWN
    symptom = EventKind.RPC_TIMEOUT

    def host(self, system, fault):
        return str(fault.target)

    def inject(self, system, fault):
        name = str(fault.target)
        system.lnet.set_router_online(name, False)
        system.fabric.fail_cable(name)
        return None

    def repair(self, system, fault, token):
        name = str(fault.target)
        system.lnet.set_router_online(name, True)
        system.fabric.repair_cable(name)
        return None


class MdsOverloadInjector(Injector):
    """A metadata storm (Lesson 19's recursive ``du``) pins one MDS.

    Degrades the metadata path, not the data path: no flow re-solve, but
    the MDS busy-time and op counters move and an RPC-timeout health event
    fires — the purely-software incident class.
    """

    fault_class = FaultClass.MDS_OVERLOAD
    event_kind = EventKind.RPC_TIMEOUT
    resolves_flow = False

    def host(self, system, fault):
        return system.filesystems[str(fault.target)].mds.name

    def inject(self, system, fault):
        mds = system.filesystems[str(fault.target)].mds
        storm = OpMix(stats=int(200_000 * fault.magnitude), mean_stripe_count=4.0)
        return mds.service_time(storm)

    def repair(self, system, fault, token):
        return None  # the storm is an impulse; nothing to undo


class OstFillInjector(Injector):
    """An OST fills to ``magnitude`` fraction, crossing the §VI-C knee."""

    fault_class = FaultClass.OST_FILL
    event_kind = EventKind.OST_FULL

    def host(self, system, fault):
        return system.osts[int(fault.target)].oss_name

    def inject(self, system, fault):
        ost = system.osts[int(fault.target)]
        target_bytes = int(min(1.0, fault.magnitude) * ost.spec.capacity_bytes)
        nbytes = max(0, target_bytes - ost.used_bytes)
        if nbytes:
            ost.allocate(nbytes)
        return nbytes

    def repair(self, system, fault, token):
        if token:
            system.osts[int(fault.target)].release(token)
        return None


class EnclosureOfflineInjector(Injector):
    """A drive shelf drops, erasing one member of every group it feeds."""

    fault_class = FaultClass.ENCLOSURE_OFFLINE
    event_kind = EventKind.ENCLOSURE_OFFLINE
    symptom = EventKind.RPC_TIMEOUT

    def host(self, system, fault):
        ssu_index, enclosure = fault.target
        return f"{system.ssus[int(ssu_index)].name}.enc{int(enclosure)}"

    def inject(self, system, fault):
        ssu_index, enclosure = fault.target
        system.ssus[int(ssu_index)].apply_enclosure_outage(int(enclosure))
        return None

    def repair(self, system, fault, token):
        ssu_index, enclosure = fault.target
        ssu = system.ssus[int(ssu_index)]
        enclosure = int(enclosure)
        ssu.restore_enclosure(enclosure)  # members re-enter REBUILDING
        affected = [
            (group, pos)
            for g, group in enumerate(ssu.groups)
            for pos, enc in enumerate(ssu.enclosures.member_enclosure[g])
            if enc == enclosure and pos in group.rebuilding
        ]
        if not affected:
            return None
        delay = max(group.rebuild_time() for group, _pos in affected)

        def finish() -> None:
            for group, pos in affected:
                group.finish_rebuild(pos)

        return (delay, finish)


#: the adapter registry: every fault class maps to exactly one injector
INJECTORS: dict[FaultClass, Injector] = {
    inj.fault_class: inj
    for inj in (
        DiskFailInjector(),
        DiskSlowInjector(),
        CableDegradeInjector(),
        CableFailInjector(),
        ControllerFailInjector(),
        RouterFailInjector(),
        MdsOverloadInjector(),
        OstFillInjector(),
        EnclosureOfflineInjector(),
    )
}


def injector_for(fault: PlannedFault) -> Injector:
    """The registered adapter for one planned fault."""
    return INJECTORS[fault.fault]
