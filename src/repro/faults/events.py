"""The fault taxonomy of the campaign engine.

The paper's operational sections read as a catalogue of the component
failures a 20,160-disk facility absorbs continuously: disk deaths and the
slow-disk onset of Lesson 13, marginal/pulled IB cables (§IV-A), controller
failovers (§IV-E), I/O router loss (§IV-D), metadata overload (§IV-C), and
OSTs filling past the §VI-C knee.  :class:`FaultClass` enumerates them;
:class:`PlannedFault` is one timed occurrence of one class on one target —
the unit a :class:`repro.faults.plan.FaultPlan` composes and a
:class:`repro.faults.campaign.FaultCampaign` executes.

Targets are small plain values (disk index, host name, ``(ssu, enclosure)``
pair) so plans stay hashable, comparable, and seed-deterministic.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Any

__all__ = ["FaultClass", "PlannedFault"]


class FaultClass(enum.Enum):
    """One injectable failure mode, named for the paper section it models."""

    #: a drive hard-fails; its RAID group degrades, then rebuilds (§IV-A)
    DISK_FAIL = "disk_fail"
    #: slow-disk onset: a functional drive loses speed (Lesson 13)
    DISK_SLOW = "disk_slow"
    #: a marginal/flapping IB cable: bandwidth × magnitude (§IV-A)
    CABLE_DEGRADE = "cable_degrade"
    #: an IB cable pull: the link carries nothing until repaired (§IV-A)
    CABLE_FAIL = "cable_fail"
    #: one controller of a couplet dies; partner assumes its groups (§IV-E)
    CONTROLLER_FAIL = "controller_fail"
    #: an LNET I/O router drops out of the routing tables (§IV-D)
    ROUTER_FAIL = "router_fail"
    #: a metadata storm pins the MDS (§IV-C, Lesson 19)
    MDS_OVERLOAD = "mds_overload"
    #: an OST fills past the fill-penalty knee (§VI-C)
    OST_FILL = "ost_fill"
    #: a drive shelf goes offline, erasing a member of every group (§IV-E)
    ENCLOSURE_OFFLINE = "enclosure_offline"


@dataclass(frozen=True, order=True)
class PlannedFault:
    """One scheduled fault: inject at ``time``, repair ``duration`` later.

    ``target`` identifies the victim in class-specific terms (documented on
    each injector); ``magnitude`` parameterizes severity where the class
    has a dial (degradation factor, fill fraction, overload scale).  A
    ``duration`` of ``inf`` means the fault is never repaired inside the
    campaign window.
    """

    time: float
    fault: FaultClass
    target: Any
    duration: float = math.inf
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("fault time must be non-negative")
        if self.duration <= 0:
            raise ValueError("duration must be positive (use inf for never)")

    @property
    def repair_time(self) -> float:
        """Absolute simulated time of the repair event (may be ``inf``)."""
        return self.time + self.duration

    @property
    def label(self) -> str:
        """Short human/trace label, e.g. ``cable_fail:oss03b``."""
        return f"{self.fault.value}:{self.target}"
