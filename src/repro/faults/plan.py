"""Fault plans: composable, seed-deterministic campaign schedules.

A :class:`FaultPlan` is an immutable, time-sorted collection of
:class:`~repro.faults.events.PlannedFault` occurrences.  Plans compose with
``+`` and shift in time with :meth:`FaultPlan.shift`, so a complex campaign
is built from small named pieces — exactly how the paper's operational
history reads: overlapping episodes of unrelated component failures.

Three sources of plans:

* :meth:`FaultPlan.random` — a seeded random campaign over a built system,
  the "week in the life" background failure load (the same seed always
  yields the same plan, byte for byte);
* :func:`cable_failure_scenario` — the §IV-A single-cable case: a marginal
  OSS cable degrades, then fails outright, then is re-seated;
* :func:`incident_2010_scenario` — the 2010 DDN enclosure incident (§IV-E)
  as a plan: a disk failure with its rebuild in flight, a controller
  failover minutes later, and the enclosure drop eighteen hours in.  On the
  Spider I five-shelf geometry (two RAID members per shelf) the enclosure
  drop pushes the already-degraded group past RAID-6 tolerance — the
  journal-loss mechanism of the real incident.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Sequence

from repro.core.spider import SpiderSystem
from repro.faults.events import FaultClass, PlannedFault
from repro.sim.rng import RngStreams
from repro.units import HOUR

__all__ = ["FaultPlan", "cable_failure_scenario", "incident_2010_scenario",
           "flapping_router_scenario", "hotspot_storm_scenario"]


class FaultPlan:
    """An immutable, time-ordered schedule of planned faults."""

    def __init__(self, faults: Iterable[PlannedFault] = ()) -> None:
        self.faults: tuple[PlannedFault, ...] = tuple(sorted(faults))

    def __iter__(self) -> Iterator[PlannedFault]:
        return iter(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def __add__(self, other: "FaultPlan") -> "FaultPlan":
        return FaultPlan(self.faults + other.faults)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return self.faults == other.faults

    def __hash__(self) -> int:
        return hash(self.faults)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FaultPlan({len(self.faults)} faults, end={self.end:g}s)"

    def shift(self, dt: float) -> "FaultPlan":
        """The same plan, ``dt`` seconds later (for composing episodes)."""
        if dt < 0:
            raise ValueError("dt must be non-negative")
        return FaultPlan(
            PlannedFault(f.time + dt, f.fault, f.target, f.duration, f.magnitude)
            for f in self.faults
        )

    @property
    def end(self) -> float:
        """Latest scheduled event time (injection or finite repair)."""
        times = [
            f.repair_time if math.isfinite(f.repair_time) else f.time
            for f in self.faults
        ]
        return max(times, default=0.0)

    # -- random campaigns ------------------------------------------------------

    @classmethod
    def random(
        cls,
        system: SpiderSystem,
        *,
        duration: float,
        n_faults: int,
        seed: int,
        classes: Sequence[FaultClass] | None = None,
    ) -> "FaultPlan":
        """A seeded random campaign: ``n_faults`` drawn over ``duration``.

        Injection times land in the first 80% of the window so most faults
        see their repair inside the campaign; durations are 5-25% of the
        window.  Targets are drawn uniformly from the system's inventory
        for each class, magnitudes from class-appropriate ranges (slow
        disks at 30-70% speed, marginal cables at 20-80% bandwidth, OSTs
        filled to 80-99%).  Faults that would stack the same mechanism on
        the same target are de-duplicated, so the plan never schedules a
        repair that silently undoes a later, unrelated fault.

        Deterministic: the same ``(system spec, duration, n_faults, seed,
        classes)`` always yields an identical plan.
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        if n_faults < 0:
            raise ValueError("n_faults must be non-negative")
        pool = tuple(classes) if classes is not None else tuple(FaultClass)
        if not pool:
            raise ValueError("need at least one fault class")
        rng = RngStreams(seed).get("faults.plan")
        fs_names = sorted(system.filesystems)
        faults: list[PlannedFault] = []
        seen: set[tuple] = set()
        attempts = 0
        while len(faults) < n_faults and attempts < 20 * max(1, n_faults):
            attempts += 1
            fault_class = pool[int(rng.integers(len(pool)))]
            time = float(rng.uniform(0.0, 0.8 * duration))
            span = float(rng.uniform(0.05, 0.25)) * duration
            magnitude = 1.0
            if fault_class in (FaultClass.DISK_FAIL, FaultClass.DISK_SLOW):
                target: object = int(rng.integers(system.population.n_disks))
                if fault_class is FaultClass.DISK_SLOW:
                    magnitude = float(rng.uniform(0.3, 0.7))
            elif fault_class in (FaultClass.CABLE_DEGRADE, FaultClass.CABLE_FAIL):
                target = system.osses[int(rng.integers(len(system.osses)))].name
                if fault_class is FaultClass.CABLE_DEGRADE:
                    magnitude = float(rng.uniform(0.2, 0.8))
            elif fault_class is FaultClass.CONTROLLER_FAIL:
                target = int(rng.integers(len(system.ssus)))
            elif fault_class is FaultClass.ROUTER_FAIL:
                target = system.routers[int(rng.integers(len(system.routers)))].name
            elif fault_class is FaultClass.MDS_OVERLOAD:
                target = fs_names[int(rng.integers(len(fs_names)))]
                magnitude = float(rng.uniform(0.5, 2.0))
            elif fault_class is FaultClass.OST_FILL:
                target = int(rng.integers(len(system.osts)))
                magnitude = float(rng.uniform(0.8, 0.99))
            else:  # ENCLOSURE_OFFLINE
                target = (
                    int(rng.integers(len(system.ssus))),
                    int(rng.integers(system.spec.ssu.n_enclosures)),
                )
            # One mechanism per target: both cable classes share one cable.
            mechanism = (
                "cable"
                if fault_class in (FaultClass.CABLE_DEGRADE, FaultClass.CABLE_FAIL)
                else fault_class.value
            )
            key = (mechanism, target)
            if key in seen:
                continue
            seen.add(key)
            faults.append(PlannedFault(time, fault_class, target, span, magnitude))
        return cls(faults)


def cable_failure_scenario(system: SpiderSystem, *, oss_name: str | None = None) -> FaultPlan:
    """The §IV-A single-cable case on one OSS's IB cable.

    Timeline: at t=10 min the cable goes marginal (40% bandwidth, symbol
    errors accruing); at t=1 h it fails outright; at t=1.5 h it is
    re-seated.  Every OST behind that OSS rides the degradation — "single
    cable failures can cause performance degradation ... in our experience
    these are very hard to diagnose."
    """
    oss = oss_name or system.osses[0].name
    return FaultPlan([
        PlannedFault(600.0, FaultClass.CABLE_DEGRADE, oss,
                     duration=3000.0, magnitude=0.4),
        PlannedFault(HOUR, FaultClass.CABLE_FAIL, oss, duration=1800.0),
    ])


def incident_2010_scenario(system: SpiderSystem) -> FaultPlan:
    """The 2010 DDN couplet incident (§IV-E) as a fault plan.

    A drive in SSU 0 fails at t=0 and is swapped at t=1 h (rebuild in
    flight for hours after); controller ``a`` of the same couplet fails
    over at t=10 min and stays down; at t=18 h the first drive shelf drops
    offline.  On the five-enclosure Spider I geometry each shelf holds two
    members of every group, so the shelf drop takes the degraded group past
    RAID-6 tolerance — the journal-loss data loss of the real incident.
    """
    failed_disk = int(system.ssus[0].members_matrix[0, 0])
    return FaultPlan([
        PlannedFault(0.0, FaultClass.DISK_FAIL, failed_disk, duration=HOUR),
        PlannedFault(600.0, FaultClass.CONTROLLER_FAIL, 0),
        PlannedFault(18 * HOUR, FaultClass.ENCLOSURE_OFFLINE, (0, 0)),
    ])


def flapping_router_scenario(
    system: SpiderSystem,
    *,
    router_name: str | None = None,
    cycles: int = 6,
    period: float = 120.0,
    start: float = 600.0,
) -> FaultPlan:
    """One LNET router cycling down and up faster than repair crews move.

    ``cycles`` ROUTER_FAIL events at ``period`` spacing, each repaired
    half a period later — the marginal-Gemini-mezzanine pattern of §IV-D
    where a router's heartbeat bounces for an hour before it either dies
    for good or settles.  This is the adversarial input for the routing
    layer's flap dampening: a policy that rebuilds its path tables on
    every transition does ``2 x cycles`` full re-solves; a dampened one
    stays bounded (see ``tests/test_routing_faults.py``).
    """
    if cycles < 1:
        raise ValueError("need at least one flap cycle")
    if period <= 0 or start < 0:
        raise ValueError("period must be positive and start non-negative")
    router = router_name or system.routers[0].name
    return FaultPlan([
        PlannedFault(start + k * period, FaultClass.ROUTER_FAIL, router,
                     duration=period / 2)
        for k in range(cycles)
    ])


def hotspot_storm_scenario(
    system: SpiderSystem,
    *,
    router_name: str | None = None,
    storm_start: float = HOUR,
    fail_after: float = 600.0,
    outage: float = 1200.0,
) -> FaultPlan:
    """A router failure landing mid-storm on the already-hot victim zone.

    The compound case the storm study injects: while an all-to-one read
    storm (see :func:`repro.sched.arrivals.storm_jobs`) is collapsing the
    victim links, one of the routers serving the victim leaf drops out
    ``fail_after`` seconds into the storm and returns ``outage`` seconds
    later — so the routing layer must re-spread around congestion *and*
    absorb a topology change at once.
    """
    if storm_start < 0 or fail_after < 0 or outage <= 0:
        raise ValueError("times must be non-negative and outage positive")
    router = router_name or system.routers[0].name
    return FaultPlan([
        PlannedFault(storm_start + fail_after, FaultClass.ROUTER_FAIL,
                     router, duration=outage),
    ])
