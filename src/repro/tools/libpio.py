"""libPIO: the balanced data placement runtime library (§VI-A).

"Our placement library (libPIO) distributes the load on different storage
components based on their utilization and reduces the load imbalance.  In
particular, it takes into account the load on clients, I/O routers, OSSes,
and OSTs and encapsulates these low-level infrastructure details to provide
I/O placement suggestions for user applications via a simple interface."

The library keeps a utilization view of every component along the I/O path
and answers one question: *which OSTs should this rank write to?*  The
score of a candidate OST combines (weighted):

* its own observed load (active streams) and fill level;
* its OSS's load;
* its couplet's load;
* the load on the routers serving its leaf (the path the client would use).

Default Lustre allocation round-robins over all OSTs regardless of what
the rest of the machine is doing — under contention some of those OSTs sit
behind saturated couplets/OSSes.  libPIO steers new streams away from hot
components, which is where the paper's >70% synthetic and 24% S3D gains
come from (experiment E5).

The integration surface matches the paper's "30 lines in S3D": a selector
callable handed to :meth:`repro.workloads.s3d.S3DApp.output_transfers`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.spider import SpiderSystem

__all__ = ["LibPio"]


@dataclass
class _Weights:
    ost_load: float = 1.0
    oss_load: float = 0.8
    couplet_load: float = 0.9
    router_load: float = 0.5
    fill: float = 0.4


class LibPio:
    """A per-job placement session against one namespace."""

    def __init__(
        self,
        system: SpiderSystem,
        fs_name: str | None = None,
        *,
        weights: _Weights | None = None,
        spread: int = 1,
    ) -> None:
        self.system = system
        self.fs_name = fs_name or next(iter(system.filesystems))
        self.fs = system.filesystems[self.fs_name]
        self.weights = weights or _Weights()
        self.spread = spread
        n = len(self.fs.osts)
        self._ost_index = np.array([o.index for o in self.fs.osts])
        #: streams this session has placed (self-interference accounting)
        self._session_ost_load = np.zeros(n)
        #: external (background) load, set from monitoring observations
        self._external_ost_load = np.zeros(n)
        self._ssu_of = np.array([o.ssu_index for o in self.fs.osts])
        oss_names = sorted({o.oss_name for o in self.fs.osts})
        self._oss_id = {name: i for i, name in enumerate(oss_names)}
        self._oss_of = np.array([self._oss_id[o.oss_name] for o in self.fs.osts])

    # -- utilization feeds ---------------------------------------------------------

    def observe_external_load(self, ost_streams: dict[int, float]) -> None:
        """Feed observed background utilization (streams or normalized load
        per *global* OST index), e.g. from the DDN-tool/monitoring view."""
        self._external_ost_load[:] = 0.0
        pos = {int(g): i for i, g in enumerate(self._ost_index)}
        for ost, load in ost_streams.items():
            if load < 0:
                raise ValueError("load must be non-negative")
            if ost in pos:
                self._external_ost_load[pos[ost]] = load

    def reset_session(self) -> None:
        self._session_ost_load[:] = 0.0

    # -- scoring --------------------------------------------------------------------

    def _component_scores(self) -> np.ndarray:
        """Composite per-OST badness (lower is better)."""
        w = self.weights
        ost_load = self._session_ost_load + self._external_ost_load

        n_ssu = int(self._ssu_of.max()) + 1
        couplet_load = np.zeros(n_ssu)
        np.add.at(couplet_load, self._ssu_of, ost_load)
        n_oss = int(self._oss_of.max()) + 1
        oss_load = np.zeros(n_oss)
        np.add.at(oss_load, self._oss_of, ost_load)

        fills = np.array([o.fill_fraction for o in self.fs.osts])
        # Router pressure per SSU leaf ≈ couplet pressure over its routers.
        routers_per_leaf = max(1, len(self.system.routers)
                               // self.system.spec.fabric.n_leaf_switches)
        router_load = couplet_load / routers_per_leaf

        osts_per_oss = self.system.spec.oss.n_osts
        osts_per_couplet = self.system.spec.ssu.n_groups
        return (
            w.ost_load * ost_load
            + w.oss_load * oss_load[self._oss_of] / osts_per_oss
            + w.couplet_load * couplet_load[self._ssu_of] / osts_per_couplet
            + w.router_load * router_load[self._ssu_of] / osts_per_couplet
            + w.fill * fills
        )

    def suggest(self, stripe_count: int = 1) -> tuple[int, ...]:
        """OST indices (global) for one new file of ``stripe_count`` stripes.

        Picks the lowest-scored OSTs, preferring distinct OSSes for
        multi-stripe files, then books the streams into the session load so
        consecutive calls spread (the library balances the whole job, not
        each rank in isolation).
        """
        if stripe_count < 1:
            raise ValueError("stripe_count must be >= 1")
        scores = self._component_scores()
        order = np.argsort(scores, kind="stable")
        chosen: list[int] = []
        seen_oss: set[int] = set()
        for i in order:
            if len(chosen) == stripe_count:
                break
            if stripe_count > 1 and int(self._oss_of[i]) in seen_oss:
                continue
            chosen.append(int(i))
            seen_oss.add(int(self._oss_of[i]))
        # Not enough distinct OSSes: fill from the top regardless.
        for i in order:
            if len(chosen) == stripe_count:
                break
            if int(i) not in chosen:
                chosen.append(int(i))
        self._session_ost_load[chosen] += 1.0
        return tuple(int(self._ost_index[i]) for i in chosen)

    def selector(self, stripe_count: int = 1):
        """The S3D integration hook: ``(rank, n_osts) -> OST tuple``."""
        def _select(rank: int, n_osts: int) -> tuple[int, ...]:
            return self.suggest(stripe_count)
        return _select
