"""The higher-level services of §VI: the balanced-placement runtime
(libPIO), the I/O Signature Identifier (IOSI), server-side disk usage
(LustreDU), the scalable parallel tools (dcp/dtar/dfind), and the
automatic purge engine.
"""

from repro.tools.libpio import LibPio
from repro.tools.iosi import Iosi, IoSignature
from repro.tools.lustredu import LustreDu
from repro.tools.ptools import SerialTool, ParallelTool, ToolComparison
from repro.tools.purger import Purger, PurgeReport

__all__ = [
    "LibPio",
    "Iosi",
    "IoSignature",
    "LustreDu",
    "SerialTool",
    "ParallelTool",
    "ToolComparison",
    "Purger",
    "PurgeReport",
]
