"""The automatic purge engine (§IV-C, Lesson 10).

"The Spider file systems are scratch.  To maintain these volumes, the OLCF
employs an automatic purging mechanism.  Files that are not created,
modified, or accessed within a contiguous 14 day range are deleted by an
automated process.  This mechanism allows for automatic capacity trimming."

The purger sweeps a file system, deletes entries whose *most recent* of
atime/mtime/ctime is older than the eligibility window, and records what
it did.  Exemptions (system paths, pinned projects) are first-class: a
purge policy that cannot express exceptions gets disabled by operators the
first time it bites a login environment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.lustre.filesystem import LustreFilesystem
from repro.lustre.namespace import FileEntry
from repro.units import DAY, TB

__all__ = ["PurgeReport", "Purger"]


@dataclass(frozen=True)
class PurgeReport:
    """Outcome of one purge sweep."""

    swept_at: float
    files_examined: int
    files_purged: int
    bytes_purged: int
    fill_before: float
    fill_after: float
    dry_run: bool

    def row(self) -> tuple:
        return (
            f"{self.swept_at / DAY:.0f}d",
            self.files_examined,
            self.files_purged,
            f"{self.bytes_purged / TB:.2f} TB",
            f"{self.fill_before:.1%}",
            f"{self.fill_after:.1%}",
        )


class Purger:
    """The 14-day scratch purge policy over one file system."""

    def __init__(
        self,
        fs: LustreFilesystem,
        *,
        age_limit: float = 14 * DAY,
        exempt: Callable[[FileEntry], bool] | None = None,
    ) -> None:
        if age_limit <= 0:
            raise ValueError("age_limit must be positive")
        self.fs = fs
        self.age_limit = age_limit
        self.exempt = exempt or (lambda entry: False)
        self.reports: list[PurgeReport] = []

    def eligible(self, entry: FileEntry, now: float) -> bool:
        """Purge-eligible: last create/modify/access older than the limit,
        and not exempt."""
        if entry.is_dir:
            return False
        if self.exempt(entry):
            return False
        return (now - entry.last_touched()) > self.age_limit

    def sweep(self, now: float, *, dry_run: bool = False) -> PurgeReport:
        """One purge pass.  Collects victims first, then deletes, so the
        walk never mutates the tree it is iterating."""
        fill_before = self.fs.fill_fraction
        victims: list[str] = []
        examined = 0
        purged_bytes = 0
        for entry in self.fs.namespace.files():
            examined += 1
            if self.eligible(entry, now):
                victims.append(entry.path)
                purged_bytes += entry.size
        if not dry_run:
            for path in victims:
                self.fs.unlink(path)
        report = PurgeReport(
            swept_at=now,
            files_examined=examined,
            files_purged=len(victims),
            bytes_purged=purged_bytes,
            fill_before=fill_before,
            fill_after=self.fs.fill_fraction,
            dry_run=dry_run,
        )
        self.reports.append(report)
        return report

    def total_purged_bytes(self) -> int:
        return sum(r.bytes_purged for r in self.reports if not r.dry_run)
