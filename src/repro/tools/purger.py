"""The automatic purge engine (§IV-C, Lesson 10).

"The Spider file systems are scratch.  To maintain these volumes, the OLCF
employs an automatic purging mechanism.  Files that are not created,
modified, or accessed within a contiguous 14 day range are deleted by an
automated process.  This mechanism allows for automatic capacity trimming."

The purger sweeps a file system, deletes entries whose *most recent* of
atime/mtime/ctime is older than the eligibility window, and records what
it did.  Exemptions (system paths, pinned projects) are first-class: a
purge policy that cannot express exceptions gets disabled by operators the
first time it bites a login environment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.lustre.filesystem import LustreFilesystem
from repro.lustre.namespace import FileEntry
from repro.units import DAY, TB

__all__ = ["PurgeReport", "Purger"]


@dataclass(frozen=True)
class PurgeReport:
    """Outcome of one purge sweep."""

    swept_at: float
    files_examined: int
    files_purged: int
    bytes_purged: int
    fill_before: float
    fill_after: float
    dry_run: bool

    def row(self) -> tuple:
        return (
            f"{self.swept_at / DAY:.0f}d",
            self.files_examined,
            self.files_purged,
            f"{self.bytes_purged / TB:.2f} TB",
            f"{self.fill_before:.1%}",
            f"{self.fill_after:.1%}",
        )


class Purger:
    """The 14-day scratch purge policy over one file system."""

    def __init__(
        self,
        fs: LustreFilesystem,
        *,
        age_limit: float = 14 * DAY,
        exempt: Callable[[FileEntry], bool] | None = None,
        batch_size: int = 10_000,
    ) -> None:
        if age_limit <= 0:
            raise ValueError("age_limit must be positive")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.fs = fs
        self.age_limit = age_limit
        self.exempt = exempt or (lambda entry: False)
        self.batch_size = batch_size
        self.reports: list[PurgeReport] = []

    def eligible(self, entry: FileEntry, now: float) -> bool:
        """Purge-eligible: last create/modify/access older than the limit,
        and not exempt."""
        if entry.is_dir:
            return False
        if self.exempt(entry):
            return False
        return (now - entry.last_touched()) > self.age_limit

    def sweep(self, now: float, *, dry_run: bool = False) -> PurgeReport:
        """One purge pass, streaming victims in ``batch_size`` buckets.

        The walk resolves a directory's children when the directory is
        visited, and a batch only ever contains files *already yielded*,
        so deleting a full batch mid-walk never invalidates the
        traversal.  Peak memory is O(batch_size) paths instead of
        O(eligible files) — at Spider's 10^9-inode scale the difference
        is the sweep fitting in the purge node's RAM or not.
        """
        fill_before = self.fs.fill_fraction
        batch: list[str] = []
        examined = 0
        n_purged = 0
        purged_bytes = 0
        for entry in self.fs.namespace.files():
            examined += 1
            if self.eligible(entry, now):
                batch.append(entry.path)
                n_purged += 1
                purged_bytes += entry.size
                if len(batch) >= self.batch_size:
                    self._drain(batch, dry_run)
        self._drain(batch, dry_run)
        report = PurgeReport(
            swept_at=now,
            files_examined=examined,
            files_purged=n_purged,
            bytes_purged=purged_bytes,
            fill_before=fill_before,
            fill_after=self.fs.fill_fraction,
            dry_run=dry_run,
        )
        self.reports.append(report)
        return report

    def _drain(self, batch: list[str], dry_run: bool) -> None:
        """Delete (or, on a dry run, just discard) one victim batch."""
        if not dry_run:
            for path in batch:
                self.fs.unlink(path)
        batch.clear()

    def total_purged_bytes(self) -> int:
        return sum(r.bytes_purged for r in self.reports if not r.dry_run)
