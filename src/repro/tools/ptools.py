"""Scalable parallel file tools: dcp / dtar / dfind vs cp / tar / find.

§VI-C: "There are other Linux tools inefficient at scale, such as copy
(cp), archive (tar), and query (find).  These are single threaded
commands, designed to run on a single file system client."  The
OLCF/LLNL/LANL/DDN collaboration produced parallel replacements (dcp,
dtar, dfind).

The models compute wall-clock over the simulated namespace:

* serial tools: one client walks the tree and processes files one at a
  time — per-file latency plus single-stream transfer time;
* parallel tools: ``n_workers`` clients drain a shared work queue
  (dynamic scheduling, which is what libcircle does in the real tools);
  data-moving tools are additionally capped by the file system's aggregate
  bandwidth, so speedup saturates once the workers out-run the PFS.

Experiment E13 reports the crossover: near-linear speedup for small worker
counts, PFS-bandwidth-bound beyond.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.lustre.filesystem import LustreFilesystem
from repro.lustre.namespace import FileEntry
from repro.units import GB

__all__ = ["SerialTool", "ParallelTool", "ToolComparison"]


@dataclass(frozen=True)
class ToolCosts:
    """Per-operation client-side costs."""

    per_file_latency: float = 0.004  # open/stat/close round trips, seconds
    stream_bw: float = 0.8 * GB  # single-stream client bandwidth
    walk_rate: float = 20_000.0  # directory entries walked per second


@dataclass(frozen=True)
class ToolRun:
    """Outcome of one tool invocation."""

    tool: str
    n_files: int
    total_bytes: int
    wall_seconds: float

    @property
    def throughput(self) -> float:
        return self.total_bytes / self.wall_seconds if self.wall_seconds else 0.0


class SerialTool:
    """cp/tar/find-style single-client behaviour."""

    def __init__(self, fs: LustreFilesystem, costs: ToolCosts | None = None) -> None:
        self.fs = fs
        self.costs = costs or ToolCosts()

    def _files(self, top: str) -> list[FileEntry]:
        return list(self.fs.namespace.files(top))

    def copy(self, top: str = "/") -> ToolRun:
        """`cp -r`: walk + per-file open/transfer, one stream."""
        files = self._files(top)
        total = sum(f.size for f in files)
        wall = (
            len(files) / self.costs.walk_rate
            + len(files) * self.costs.per_file_latency
            + total / self.costs.stream_bw
        )
        return ToolRun("cp", len(files), total, wall)

    def archive(self, top: str = "/") -> ToolRun:
        """`tar`: like copy but a single output stream (same model class)."""
        run = self.copy(top)
        return ToolRun("tar", run.n_files, run.total_bytes, run.wall_seconds * 1.05)

    def find(self, top: str = "/") -> ToolRun:
        """`find`: pure walk + per-entry stat latency, no data movement."""
        files = self._files(top)
        wall = len(files) / self.costs.walk_rate + len(files) * self.costs.per_file_latency
        return ToolRun("find", len(files), 0, wall)


class ParallelTool:
    """dcp/dtar/dfind-style: N workers draining a dynamic work queue."""

    def __init__(
        self,
        fs: LustreFilesystem,
        n_workers: int,
        *,
        costs: ToolCosts | None = None,
        pfs_aggregate_bw: float = 240 * GB,
    ) -> None:
        if n_workers < 1:
            raise ValueError("need at least one worker")
        self.fs = fs
        self.n_workers = n_workers
        self.costs = costs or ToolCosts()
        self.pfs_aggregate_bw = pfs_aggregate_bw

    def _makespan(self, tasks: list[float]) -> float:
        """Dynamic (greedy list) scheduling of per-file task times over the
        workers — the libcircle work-stealing behaviour to first order."""
        if not tasks:
            return 0.0
        heap = [0.0] * min(self.n_workers, len(tasks))
        heapq.heapify(heap)
        for t in sorted(tasks, reverse=True):
            earliest = heapq.heappop(heap)
            heapq.heappush(heap, earliest + t)
        return max(heap)

    def copy(self, top: str = "/") -> ToolRun:
        files = list(self.fs.namespace.files(top))
        total = sum(f.size for f in files)
        # Effective per-worker stream bandwidth: the PFS aggregate caps the
        # sum of worker streams.
        per_worker_bw = min(self.costs.stream_bw,
                            self.pfs_aggregate_bw / self.n_workers)
        tasks = [
            self.costs.per_file_latency + f.size / per_worker_bw for f in files
        ]
        walk = len(files) / (self.costs.walk_rate * min(self.n_workers, 8))
        return ToolRun(f"dcp[{self.n_workers}]", len(files), total,
                       walk + self._makespan(tasks))

    def archive(self, top: str = "/") -> ToolRun:
        run = self.copy(top)
        return ToolRun(f"dtar[{self.n_workers}]", run.n_files, run.total_bytes,
                       run.wall_seconds * 1.05)

    def find(self, top: str = "/") -> ToolRun:
        files = list(self.fs.namespace.files(top))
        tasks = [self.costs.per_file_latency] * len(files)
        walk = len(files) / (self.costs.walk_rate * min(self.n_workers, 8))
        return ToolRun(f"dfind[{self.n_workers}]", len(files), 0,
                       walk + self._makespan(tasks))


@dataclass(frozen=True)
class ToolComparison:
    """Serial vs parallel speedups for one namespace subtree."""

    serial: ToolRun
    parallel: ToolRun

    @property
    def speedup(self) -> float:
        if self.parallel.wall_seconds == 0:
            return float("inf")
        return self.serial.wall_seconds / self.parallel.wall_seconds

    def row(self) -> tuple:
        return (
            self.parallel.tool,
            self.serial.n_files,
            f"{self.serial.wall_seconds:.1f}s",
            f"{self.parallel.wall_seconds:.1f}s",
            f"{self.speedup:.1f}x",
        )
