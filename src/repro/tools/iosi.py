"""IOSI — the I/O Signature Identifier (§VI-B).

"IOSI characterizes per-application I/O behavior from the server-side I/O
throughput logs.  We determined application I/O signatures by observing
multiple runs and identifying the common I/O pattern across those runs.
Note that most scientific applications have a bursty and periodic I/O
pattern with a repetitive behavior across runs.  Unlike client side
tracing ... our approach provides an estimate of observed I/O access
patterns at no cost to the user and without taxing the storage subsystem."

Pipeline (mirroring the published IOSI design):

1. slice the server throughput log at each of the application's run
   windows (the scheduler knows start/end);
2. per run: denoise by subtracting the run's median background level,
   detect bursts above an adaptive threshold;
3. estimate the burst period per run from burst start times;
4. cross-run reduction: the signature keeps the *median* period, burst
   volume, and burst duration over runs — the common pattern survives,
   per-run noise does not.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.model import RequestTrace

__all__ = ["IoSignature", "BurstEvent", "Iosi", "recommend_namespace"]


@dataclass(frozen=True)
class BurstEvent:
    """One detected write burst in a run's throughput series."""

    start: float  # seconds from run start
    duration: float
    volume_bytes: float
    peak_bw: float


@dataclass(frozen=True)
class IoSignature:
    """The extracted per-application signature."""

    period: float  # seconds between burst starts
    burst_volume_bytes: float
    burst_duration: float
    bursts_per_run: float
    n_runs: int

    def matches(self, *, period: float, volume_bytes: float,
                rel_tol: float = 0.2) -> bool:
        """Is the signature within ``rel_tol`` of a ground-truth pattern?"""
        if period <= 0 or volume_bytes <= 0:
            raise ValueError("ground truth must be positive")
        return (
            abs(self.period - period) <= rel_tol * period
            and abs(self.burst_volume_bytes - volume_bytes) <= rel_tol * volume_bytes
        )


class Iosi:
    """Server-side signature extraction across runs."""

    def __init__(self, *, bin_seconds: float = 5.0,
                 threshold_sigmas: float = 2.0,
                 min_volume_fraction: float = 0.25) -> None:
        if bin_seconds <= 0:
            raise ValueError("bin_seconds must be positive")
        if not (0 <= min_volume_fraction < 1):
            raise ValueError("min_volume_fraction must be in [0, 1)")
        self.bin_seconds = bin_seconds
        self.threshold_sigmas = threshold_sigmas
        #: bursts smaller than this fraction of the run's largest burst are
        #: background spikes, not application output phases — drop them
        #: (the published IOSI's data-volume pruning step).
        self.min_volume_fraction = min_volume_fraction

    # -- per-run analysis --------------------------------------------------------

    def detect_bursts(self, times: np.ndarray, bw: np.ndarray) -> list[BurstEvent]:
        """Find bursts in one run's (time, bytes/s) series.

        The threshold adapts to the run: median + ``threshold_sigmas`` ×
        a robust spread estimate (MAD), so background noise level does not
        need to be known a priori.
        """
        times = np.asarray(times, dtype=float)
        bw = np.asarray(bw, dtype=float)
        if len(times) != len(bw):
            raise ValueError("times and bw must align")
        if len(bw) == 0:
            return []
        background = float(np.median(bw))
        mad = float(np.median(np.abs(bw - background))) or (0.05 * background + 1.0)
        threshold = background + self.threshold_sigmas * 1.4826 * mad
        above = bw > threshold
        bursts: list[BurstEvent] = []
        i = 0
        n = len(bw)
        while i < n:
            if not above[i]:
                i += 1
                continue
            j = i
            while j < n and above[j]:
                j += 1
            seg = bw[i:j] - background
            volume = float(seg.sum() * self.bin_seconds)
            bursts.append(BurstEvent(
                start=float(times[i] - times[0]),
                duration=(j - i) * self.bin_seconds,
                volume_bytes=volume,
                peak_bw=float(bw[i:j].max()),
            ))
            i = j
        return bursts

    @staticmethod
    def _period_estimate(bursts: list[BurstEvent]) -> float | None:
        if len(bursts) < 2:
            return None
        starts = np.array([b.start for b in bursts])
        gaps = np.diff(starts)
        return float(np.median(gaps))

    # -- cross-run reduction --------------------------------------------------------

    def extract(
        self,
        server_trace: RequestTrace,
        run_windows: list[tuple[float, float]],
    ) -> IoSignature:
        """Extract the signature of the application that ran during
        ``run_windows`` from the full (noisy, shared) server trace."""
        if not run_windows:
            raise ValueError("need at least one run window")
        periods: list[float] = []
        volumes: list[float] = []
        durations: list[float] = []
        burst_counts: list[int] = []
        for (t0, t1) in run_windows:
            if t1 <= t0:
                raise ValueError(f"bad run window ({t0}, {t1})")
            window = server_trace.slice(t0, t1)
            times, bw = window.bandwidth_series(self.bin_seconds, writes_only=True)
            bursts = self.detect_bursts(times, bw)
            if bursts:
                floor = self.min_volume_fraction * max(
                    b.volume_bytes for b in bursts)
                bursts = [b for b in bursts if b.volume_bytes >= floor]
            burst_counts.append(len(bursts))
            if bursts:
                volumes.extend(b.volume_bytes for b in bursts)
                durations.extend(b.duration for b in bursts)
            period = self._period_estimate(bursts)
            if period is not None:
                periods.append(period)
        if not volumes:
            raise ValueError("no bursts detected in any run window")
        return IoSignature(
            period=float(np.median(periods)) if periods else float("nan"),
            burst_volume_bytes=float(np.median(volumes)),
            burst_duration=float(np.median(durations)),
            bursts_per_run=float(np.mean(burst_counts)),
            n_runs=len(run_windows),
        )


def recommend_namespace(
    signature: IoSignature,
    namespace_headroom: dict[str, float],
) -> str:
    """Place an application on the namespace best able to absorb its bursts.

    §VI-B's closing point: "IOSI can be used to dynamically detect I/O
    patterns and aid users and administrators to allocate resources in an
    efficient manner."  The decision rule is the simple one operators use:
    the app's burst demand is ``burst_volume / burst_duration``; send it to
    the namespace whose current bandwidth *headroom* (bytes/s unused at
    burst time, e.g. from the DDN-tool view) covers that demand with the
    most margin — or, if none covers it, the one that comes closest.
    """
    if not namespace_headroom:
        raise ValueError("need at least one namespace")
    if any(h < 0 for h in namespace_headroom.values()):
        raise ValueError("headroom must be non-negative")
    if signature.burst_duration <= 0:
        raise ValueError("signature must have a positive burst duration")
    demand = signature.burst_volume_bytes / signature.burst_duration
    # Most margin relative to the demand; ties break by name for
    # determinism.
    return min(
        sorted(namespace_headroom),
        key=lambda ns: (namespace_headroom[ns] < demand,
                        -(namespace_headroom[ns] - demand)),
    )
