"""LustreDU: server-side disk-usage accounting (§VI-C, Lesson 19).

"du imposes a heavy load on the Lustre MDS when run at this scale.
Therefore we developed the LustreDU tool, which gathers disk usage
metadata from the Lustre servers once per day."

The model makes the cost asymmetry concrete:

* a client-side ``du`` issues one stat per file, each amplified by
  per-stripe OST RPCs — O(files) expensive MDS operations at query time;
* LustreDU performs one *server-side* sweep per day (a sequential
  readdir-rate scan, orders of magnitude cheaper per entry) into a
  snapshot table; user queries then hit the snapshot and cost the MDS
  nothing.

Experiment E13 compares the MDS-seconds consumed by each approach.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lustre.filesystem import LustreFilesystem
from repro.units import DAY

__all__ = ["DuSnapshot", "LustreDu"]


@dataclass(frozen=True)
class DuSnapshot:
    """One daily sweep's result."""

    taken_at: float
    bytes_by_project: dict[str, int]
    bytes_by_owner: dict[str, int]
    bytes_by_top_dir: dict[str, int]
    n_files: int
    sweep_mds_seconds: float

    def project_usage(self, project: str) -> int:
        return self.bytes_by_project.get(project, 0)

    def owner_usage(self, owner: str) -> int:
        return self.bytes_by_owner.get(owner, 0)

    def directory_usage(self, top_dir: str) -> int:
        return self.bytes_by_top_dir.get(top_dir, 0)


class LustreDu:
    """The daily server-side sweep plus the query interface."""

    def __init__(self, fs: LustreFilesystem, *, sweep_interval: float = DAY,
                 server_scan_speedup: float = 5.0) -> None:
        if sweep_interval <= 0:
            raise ValueError("sweep_interval must be positive")
        if server_scan_speedup < 1:
            raise ValueError("server_scan_speedup must be >= 1")
        self.fs = fs
        self.sweep_interval = sweep_interval
        #: the sweep iterates the metadata backend directly on the server —
        #: no per-entry RPC round trip — so it outruns even the client
        #: readdir rate by this factor.
        self.server_scan_speedup = server_scan_speedup
        self.snapshot: DuSnapshot | None = None
        self.sweeps_run = 0

    def sweep(self, now: float) -> DuSnapshot:
        """Run the server-side scan: one readdir-rate pass over the
        namespace, charged to the MDS at scan cost (not per-file stats)."""
        by_project: dict[str, int] = {}
        by_owner: dict[str, int] = {}
        by_top: dict[str, int] = {}
        n_files = 0
        for entry in self.fs.namespace.files():
            n_files += 1
            by_project[entry.project] = by_project.get(entry.project, 0) + entry.size
            by_owner[entry.owner] = by_owner.get(entry.owner, 0) + entry.size
            parts = entry.path.split("/")
            top = "/" + parts[1] if len(parts) > 1 and parts[1] else "/"
            by_top[top] = by_top.get(top, 0) + entry.size
        cost = self.fs.scan_cost(n_files, self.server_scan_speedup)
        self.snapshot = DuSnapshot(
            taken_at=now,
            bytes_by_project=by_project,
            bytes_by_owner=by_owner,
            bytes_by_top_dir=by_top,
            n_files=n_files,
            sweep_mds_seconds=cost,
        )
        self.sweeps_run += 1
        return self.snapshot

    def query(self, *, project: str | None = None, owner: str | None = None,
              top_dir: str | None = None) -> int:
        """Answer a usage query from the snapshot (zero MDS cost)."""
        if self.snapshot is None:
            raise RuntimeError("no sweep has run yet")
        if project is not None:
            return self.snapshot.project_usage(project)
        if owner is not None:
            return self.snapshot.owner_usage(owner)
        if top_dir is not None:
            return self.snapshot.directory_usage(top_dir)
        return sum(self.snapshot.bytes_by_project.values())

    def staleness(self, now: float) -> float:
        """Seconds since the snapshot — the accuracy/cost tradeoff of the
        once-per-day design."""
        if self.snapshot is None:
            return float("inf")
        return now - self.snapshot.taken_at


def client_du_cost(fs: LustreFilesystem, top: str = "/") -> tuple[int, float]:
    """Run a client-side `du` and return (bytes, MDS-seconds consumed).

    Implemented via :meth:`LustreFilesystem.du`; measured by differencing
    the MDS busy-time counter around the call.
    """
    before = fs.mds.busy_seconds
    total = fs.du(top)
    return total, fs.mds.busy_seconds - before
