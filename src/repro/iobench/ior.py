"""IOR: file-system-level synthetic benchmarking at scale (§V-C).

The paper's scaling studies (Figures 3 and 4) used IOR in file-per-process
mode with stonewalling:

* Figure 3 — fix the client count, sweep the per-process transfer size;
  best write performance at a 1 MB transfer.
* Figure 4 — fix the transfer size at 1 MB, sweep the number of I/O writer
  *processes*; near-linear scaling to ≈6,000 processes, then a plateau
  (≈320 GB/s for one pre-upgrade namespace).
* §V-C's post-upgrade hero run — 1,008 processes against 1,008 OSTs,
  optimally placed, 510 GB/s.

Model pieces, each pinned to an observable:

* **Transfer-size efficiency**: a client stack issuing transfers of ``x``
  bytes pays a fixed per-call overhead, so efficiency rises as
  ``x / (x + c)`` toward the 1 MiB RPC size; past 1 MiB, transfers split
  and alignment slack costs a mild decline ``(1 MiB / x)^0.12``.  This
  yields Figure 3's peak-at-1-MiB shape.
* **Process placement**: ``random`` placement (the batch scheduler's
  nearest-neighbour-optimized layout, which the paper notes is *not* I/O
  optimized) costs a calibrated node-efficiency factor 0.60; ``optimal``
  placement (the hero-run configuration) costs nothing.
* **Node sharing**: ``ppn`` processes share one node's client-stack cap,
  so per-process demand is ``node_cap × placement_eff × xfer_eff / ppn``.
  With ppn = 16 (Titan's core count) this puts the Figure 4 knee at
  ≈6,000 processes against a 320 GB/s namespace — matching the paper.

Everything downstream of the demands is the max-min flow solve over the
real component graph (routers, fabric, couplets, OSTs).
"""

from __future__ import annotations

from dataclasses import dataclass

import math

from repro.core.path import PathBuilder, Transfer
from repro.core.spider import SpiderSystem
from repro.lustre.client import Client
from repro.network.lnet import RoutingPolicy
from repro.obs.trace import get_tracer
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams
from repro.units import GB, KiB, MB, MiB

__all__ = ["IorRun", "IorResult", "transfer_size_sweep", "client_scaling"]

#: per-call overhead expressed as equivalent bytes at full stack speed
_CALL_OVERHEAD_BYTES = 48 * 1024
#: decline exponent for transfers beyond the 1 MiB RPC size
_OVERSIZE_EXPONENT = 0.12
#: node efficiency under scheduler (nearest-neighbour) placement
_RANDOM_PLACEMENT_EFFICIENCY = 0.60


def transfer_efficiency(transfer_size: int) -> float:
    """Client-stack efficiency vs transfer size; peaks at the 1 MiB RPC."""
    if transfer_size <= 0:
        raise ValueError("transfer_size must be positive")
    base = transfer_size / (transfer_size + _CALL_OVERHEAD_BYTES)
    if transfer_size <= MiB:
        return base
    peak = MiB / (MiB + _CALL_OVERHEAD_BYTES)
    return peak * (MiB / transfer_size) ** _OVERSIZE_EXPONENT


@dataclass(frozen=True)
class IorResult:
    """One IOR run's outcome."""

    n_processes: int
    ppn: int
    transfer_size: int
    placement: str
    stonewall_seconds: float
    aggregate_bw: float  # bytes/s
    per_process_bw: float
    bottleneck_components: tuple[str, ...] = ()

    @property
    def data_moved_bytes(self) -> float:
        return self.aggregate_bw * self.stonewall_seconds

    def row(self) -> tuple:
        return (self.n_processes, self.transfer_size, self.placement,
                f"{self.aggregate_bw / GB:.1f} GB/s",
                f"{self.per_process_bw / MB:.1f} MB/s")


@dataclass
class IorRun:
    """An IOR invocation against one namespace of a Spider system."""

    system: SpiderSystem
    fs_name: str | None = None  # default: first namespace
    n_processes: int = 672
    ppn: int = 16
    transfer_size: int = 1 * MiB
    stripe_count: int = 1  # file-per-process default
    stonewall_seconds: float = 30.0
    placement: str = "random"  # "random" | "optimal"
    policy: RoutingPolicy | None = None
    seed: int = 7

    def __post_init__(self) -> None:
        if self.n_processes <= 0 or self.ppn <= 0:
            raise ValueError("process geometry must be positive")
        if self.placement not in ("random", "optimal"):
            raise ValueError(f"unknown placement {self.placement!r}")
        if self.stripe_count < 1:
            raise ValueError("stripe_count must be >= 1")
        if self.fs_name is None:
            self.fs_name = next(iter(self.system.filesystems))

    # -- placement ------------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return -(-self.n_processes // self.ppn)

    def _select_nodes(self) -> list[Client]:
        clients = self.system.clients
        if len(clients) < self.n_nodes:
            raise ValueError(
                f"run needs {self.n_nodes} nodes; system has {len(clients)}"
            )
        if self.placement == "optimal":
            # Even spread over the machine: every k-th node.
            step = len(clients) // self.n_nodes
            return [clients[i * step] for i in range(self.n_nodes)]
        rng = RngStreams(self.seed).get("ior.placement")
        picks = rng.choice(len(clients), size=self.n_nodes, replace=False)
        return [clients[i] for i in sorted(picks)]

    def _placement_efficiency(self) -> float:
        return 1.0 if self.placement == "optimal" else _RANDOM_PLACEMENT_EFFICIENCY

    # -- execution ---------------------------------------------------------------------

    def _build_transfers(self) -> list[Transfer]:
        fs = self.system.filesystems[self.fs_name]
        ns_ost_indices = [o.index for o in fs.osts]
        nodes = self._select_nodes()
        eff = transfer_efficiency(self.transfer_size) * self._placement_efficiency()
        per_process_demand = nodes[0].bw_cap * eff / self.ppn
        transfers = []
        for p in range(self.n_processes):
            node = nodes[p // self.ppn]
            # File-per-process with round-robin OST allocation.
            osts = tuple(
                ns_ost_indices[(p * self.stripe_count + s) % len(ns_ost_indices)]
                for s in range(self.stripe_count)
            )
            transfers.append(Transfer(
                name=f"ior.p{p:05d}",
                client=node,
                ost_indices=osts,
                demand=per_process_demand,
                write=True,
            ))
        return transfers

    def run(self, engine: Engine | None = None) -> IorResult:
        """Execute the run.

        Without an ``engine`` the run is the pure steady-state solve it
        always was (spans, if a tracer is active, sit at sim time 0).
        With an ``engine`` the run executes as a simulation process —
        a metadata create phase (file-per-process creates against the
        namespace's MDS) followed by the stonewalled write phase — so
        trace spans land at real simulated times.  Either way the
        reported bandwidth comes from the same flow solve.
        """
        if engine is not None:
            return self._run_on_engine(engine)
        tracer = get_tracer()
        with tracer.span("ior.run", "iobench",
                         n_processes=self.n_processes,
                         transfer_size=self.transfer_size,
                         placement=self.placement):
            with tracer.span("ior.setup", "iobench"):
                transfers = self._build_transfers()
            builder = PathBuilder(self.system, policy=self.policy, fs_level=True)
            with tracer.span("ior.write_phase", "iobench"):
                result = builder.solve(transfers)
            builder.record_flow_telemetry(result, self.stonewall_seconds)
        return self._make_result(result)

    def _run_on_engine(self, engine: Engine) -> IorResult:
        from repro.lustre.mds import OpMix

        tracer = get_tracer()
        out: dict[str, object] = {}

        def _phases():
            fs = self.system.filesystems[self.fs_name]
            run_span = tracer.open("ior.run", "iobench",
                                   n_processes=self.n_processes,
                                   transfer_size=self.transfer_size,
                                   placement=self.placement)
            create_span = tracer.open("ior.create_phase", "mds",
                                      files=self.n_processes)
            t_meta = fs.mds.service_time(OpMix(
                creates=self.n_processes,
                mean_stripe_count=float(self.stripe_count)))
            yield t_meta
            tracer.end(create_span)
            setup_span = tracer.open("ior.setup", "iobench")
            transfers = self._build_transfers()
            tracer.end(setup_span)
            builder = PathBuilder(self.system, policy=self.policy, fs_level=True)
            write_span = tracer.open("ior.write_phase", "iobench")
            result = builder.solve(transfers)
            yield self.stonewall_seconds
            tracer.end(write_span, aggregate_bw=result.total)
            tracer.end(run_span)
            builder.record_flow_telemetry(result, self.stonewall_seconds)
            out["result"] = result

        proc = engine.process(_phases(), name=f"ior[n={self.n_processes}]")
        # Drive until the benchmark finishes, without draining unrelated
        # periodic processes (monitors) that may share the engine.
        while not proc.done.triggered and engine.peek() != math.inf:
            engine.run(until=engine.peek())
        return self._make_result(out["result"])

    def _make_result(self, result) -> IorResult:
        total = result.total
        return IorResult(
            n_processes=self.n_processes,
            ppn=self.ppn,
            transfer_size=self.transfer_size,
            placement=self.placement,
            stonewall_seconds=self.stonewall_seconds,
            aggregate_bw=total,
            per_process_bw=total / self.n_processes,
            bottleneck_components=tuple(sorted(result.bottlenecks)[:8]),
        )


def transfer_size_sweep(
    system: SpiderSystem,
    sizes: tuple[int, ...] = (64 * KiB, 256 * KiB, 512 * KiB,
                              1 * MiB, 2 * MiB, 4 * MiB, 8 * MiB, 16 * MiB),
    *,
    n_processes: int = 672,
    engine: Engine | None = None,
    **kwargs,
) -> list[IorResult]:
    """Figure 3: fixed client count, swept per-process transfer size."""
    return [
        IorRun(system, n_processes=n_processes, transfer_size=s, **kwargs).run(engine)
        for s in sizes
    ]


def client_scaling(
    system: SpiderSystem,
    process_counts: tuple[int, ...] = (96, 384, 1008, 2016, 4032, 6048,
                                       8064, 12096, 16128),
    *,
    transfer_size: int = 1 * MiB,
    engine: Engine | None = None,
    **kwargs,
) -> list[IorResult]:
    """Figure 4: 1 MiB transfers, swept I/O writer process count."""
    return [
        IorRun(system, n_processes=n, transfer_size=transfer_size, **kwargs).run(engine)
        for n in process_counts
    ]
