"""fair-lio: the OLCF block-level benchmark tool (§III-B).

"The block-level benchmark tool, fair-lio, was developed by OLCF and uses
the Linux AIO library (libaio).  It can generate multiple in-flight I/O
requests on disks at specific locations, bypassing the file system cache."

The tool here performs the same parameter-space exploration — I/O request
size, queue depth, read/write mix, duration, and mode (sequential/random)
— against simulated block targets:

* :class:`DiskTarget` — one drive;
* :class:`LunTarget` — one RAID-6 LUN (requests stripe over data drives).

Queue-depth model: deeper queues let the drive schedule repositions, so the
effective random access time shrinks as ``access / qd**0.4`` with a floor
of 30% of the nominal reposition cost — the empirical elevator-scheduling
shape (NCQ/TCQ) within the envelope the paper's 20–25% single-disk figure
implies at qd = 1..4.  Sequential throughput is queue-depth-insensitive
once qd ≥ 1.  Measurements carry a small seeded noise term so repeated
runs exhibit realistic run-to-run variance (the performance-binning
workflows depend on it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Protocol

import numpy as np

from repro.hardware.disk import Disk
from repro.hardware.raid import RaidGroup
from repro.sim.rng import RngStreams
from repro.units import KiB, MB, MiB

__all__ = ["DiskTarget", "LunTarget", "FairLioResult", "FairLioSweep"]

_QD_EXPONENT = 0.4
_QD_FLOOR = 0.30


def _effective_access_time(access_time: float, queue_depth: int) -> float:
    if queue_depth < 1:
        raise ValueError("queue_depth must be >= 1")
    return max(access_time * _QD_FLOOR, access_time / queue_depth ** _QD_EXPONENT)


class BlockTarget(Protocol):
    """Anything fair-lio can aim at."""

    name: str

    def bandwidth(self, request_size: int, *, sequential: bool,
                  queue_depth: int, write: bool) -> float: ...


@dataclass
class DiskTarget:
    """A single drive as a block device."""

    disk: Disk
    name: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            self.name = self.disk.serial

    def bandwidth(self, request_size: int, *, sequential: bool,
                  queue_depth: int = 1, write: bool = True) -> float:
        if request_size <= 0:
            raise ValueError("request_size must be positive")
        seq_bw = self.disk.seq_bw
        if sequential:
            return seq_bw
        access = _effective_access_time(self.disk.spec.access_time, queue_depth)
        return seq_bw * request_size / (request_size + seq_bw * access)


@dataclass
class LunTarget:
    """A RAID-6 LUN: requests stripe across the data drives.

    A request of ``s`` bytes splits into ``s / n_data`` per member, so
    random efficiency is evaluated at the *per-disk* chunk — large LUN
    requests still produce smallish disk accesses, which is why random LUN
    throughput falls off harder than single-disk numbers suggest.
    """

    group: RaidGroup
    name: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            self.name = self.group.name

    def bandwidth(self, request_size: int, *, sequential: bool,
                  queue_depth: int = 1, write: bool = True) -> float:
        if request_size <= 0:
            raise ValueError("request_size must be positive")
        geometry = self.group.geometry
        member_bw = self.group.population.bandwidths()[self.group.members]
        slowest = float(member_bw.min())
        if sequential:
            return geometry.n_data * slowest
        per_disk = max(1, request_size // geometry.n_data)
        spec = self.group.population.spec
        access = _effective_access_time(spec.access_time, queue_depth)
        eff = per_disk / (per_disk + slowest * access)
        return geometry.n_data * slowest * eff


@dataclass(frozen=True)
class FairLioResult:
    """One sweep point."""

    target: str
    request_size: int
    queue_depth: int
    write_fraction: float
    sequential: bool
    duration: float
    bandwidth: float  # measured bytes/s
    iops: float

    def row(self) -> tuple:
        mode = "seq" if self.sequential else "rnd"
        return (self.target, self.request_size, self.queue_depth,
                f"{self.write_fraction:.2f}", mode,
                f"{self.bandwidth / MB:.1f} MB/s", f"{self.iops:.0f}")


@dataclass
class FairLioSweep:
    """The parameter-space exploration: the §III-B variable set."""

    request_sizes: tuple[int, ...] = (4 * KiB, 16 * KiB, 64 * KiB,
                                      256 * KiB, 1 * MiB, 4 * MiB)
    queue_depths: tuple[int, ...] = (1, 4, 16)
    write_fractions: tuple[float, ...] = (0.0, 0.6, 1.0)
    modes: tuple[bool, ...] = (True, False)  # sequential?
    duration: float = 30.0
    noise_sigma: float = 0.01  # run-to-run measurement spread

    def run(self, target: BlockTarget,
            rng: np.random.Generator | None = None) -> list[FairLioResult]:
        """Execute the full sweep against ``target``."""
        rng = rng or RngStreams(0).get("fairlio.measure")
        results = []
        for sequential in self.modes:
            for size in self.request_sizes:
                for qd in self.queue_depths:
                    for wf in self.write_fractions:
                        # Reads and writes perform alike at the block layer
                        # of these arrays; the mix matters at the fs layer.
                        bw = target.bandwidth(
                            size, sequential=sequential,
                            queue_depth=qd, write=wf >= 0.5,
                        )
                        measured = bw * float(rng.normal(1.0, self.noise_sigma))
                        measured = max(0.0, measured)
                        results.append(FairLioResult(
                            target=target.name,
                            request_size=size,
                            queue_depth=qd,
                            write_fraction=wf,
                            sequential=sequential,
                            duration=self.duration,
                            bandwidth=measured,
                            iops=measured / size,
                        ))
        return results

    def run_many(self, targets: Iterable[BlockTarget],
                 rng: np.random.Generator | None = None) -> list[FairLioResult]:
        rng = rng or RngStreams(0).get("fairlio.measure")
        out: list[FairLioResult] = []
        for target in targets:
            out.extend(self.run(target, rng))
        return out


def random_to_sequential_ratio(results: list[FairLioResult],
                               request_size: int = 1 * MiB,
                               queue_depth: int = 1) -> float:
    """The §III-A acceptance metric: random/sequential bandwidth at 1 MB.

    The paper's observation — 20-25% for a single NL-SAS drive — drove the
    240 GB/s random-workload floor in the Spider II RFP.
    """
    seq = [r for r in results
           if r.sequential and r.request_size == request_size
           and r.queue_depth == queue_depth]
    rnd = [r for r in results
           if not r.sequential and r.request_size == request_size
           and r.queue_depth == queue_depth]
    if not seq or not rnd:
        raise ValueError("sweep lacks the 1 MiB qd points")
    seq_bw = float(np.mean([r.bandwidth for r in seq]))
    rnd_bw = float(np.mean([r.bandwidth for r in rnd]))
    return rnd_bw / seq_bw
