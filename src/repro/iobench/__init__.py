"""The paper's benchmark tools, reimplemented against the simulator.

* :mod:`repro.iobench.fairlio` — OLCF's block-level libaio sweep tool
  (request size × queue depth × read/write mix × sequential/random);
* :mod:`repro.iobench.obdfilter_survey` — the Lustre obdfilter-layer
  object read/write/rewrite survey;
* :mod:`repro.iobench.ior` — IOR-style file-system-level benchmarking
  (file-per-process, stonewalling) used for the scaling studies of §V-C;
* :mod:`repro.iobench.suite` — the procurement acceptance suite of §III-B
  combining block- and fs-level runs to measure file-system overhead.
"""

from repro.iobench.fairlio import FairLioSweep, FairLioResult, LunTarget, DiskTarget
from repro.iobench.obdfilter_survey import ObdfilterSurvey, SurveyResult
from repro.iobench.ior import IorRun, IorResult, transfer_size_sweep, client_scaling
from repro.iobench.suite import AcceptanceSuite, SuiteReport

__all__ = [
    "FairLioSweep",
    "FairLioResult",
    "LunTarget",
    "DiskTarget",
    "ObdfilterSurvey",
    "SurveyResult",
    "IorRun",
    "IorResult",
    "transfer_size_sweep",
    "client_scaling",
    "AcceptanceSuite",
    "SuiteReport",
]
