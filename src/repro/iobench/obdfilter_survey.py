"""obdfilter-survey: the Lustre file-system-level benchmark (§III-B).

"The file system benchmark tool is based on obdfilter-survey, a
widely-used Lustre benchmark tool, benchmarking the obdfilter layer in the
Lustre I/O stack to measure object read, write, and re-write performance.
By comparing these two benchmark results [block vs fs], we can measure the
file system overhead."

The survey measures each OST at the obdfilter layer: the RAID group's
block-level streaming bandwidth, discounted by the obdfilter software
efficiency and — crucially for the second culling round of §V-A — divided
by each member drive's *fs-level latency factor*, the pathology invisible
to block-level streaming.  Re-writes pay an extra journal/allocation cost.

Two concurrency modes mirror how the tool is actually used:

* ``mode="isolated"`` (default) — OSTs measured one at a time per
  controller, so each sees the whole controller; this is the per-OST
  qualification run the culling workflow uses and it exposes slow-member
  variance.
* ``mode="concurrent"`` — all surveyed OSTs driven together (the hero-run
  configuration); the controller cap is fair-shared and usually masks
  drive-level variance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.spider import SpiderSystem
from repro.hardware.raid import group_bandwidths
from repro.lustre.ost import OBDFILTER_EFFICIENCY
from repro.sim.rng import RngStreams
from repro.units import MB

__all__ = ["SurveyResult", "ObdfilterSurvey"]

REWRITE_EFFICIENCY = 0.93  # rewrite vs write at the obdfilter layer


@dataclass(frozen=True)
class SurveyResult:
    """Per-OST survey outcome (bytes/s)."""

    ost_index: int
    write: float
    rewrite: float
    read: float

    def row(self) -> tuple:
        return (self.ost_index, f"{self.write / MB:.0f}",
                f"{self.rewrite / MB:.0f}", f"{self.read / MB:.0f}")


@dataclass
class ObdfilterSurvey:
    """Survey a set of OSTs on a built Spider system."""

    system: SpiderSystem
    mode: str = "isolated"
    noise_sigma: float = 0.01
    read_efficiency: float = 1.02  # reads slightly outrun writes (no parity update)

    def __post_init__(self) -> None:
        if self.mode not in ("isolated", "concurrent"):
            raise ValueError(f"unknown survey mode {self.mode!r}")

    def run(self, ost_indices: list[int] | None = None,
            rng: np.random.Generator | None = None) -> list[SurveyResult]:
        rng = rng or RngStreams(0).get("obdfilter.measure")
        sys = self.system
        if ost_indices is None:
            ost_indices = list(range(sys.spec.n_osts))
        # fs-level view: block bandwidth with the latency-tail drag applied.
        disk_bw = sys.population.bandwidths(fs_level=True)
        results = []
        for ssu in sys.ssus:
            base = ssu.index * sys.spec.ssu.n_groups
            wanted = [i for i in ost_indices if base <= i < base + sys.spec.ssu.n_groups]
            if not wanted:
                continue
            raw = group_bandwidths(ssu.members_matrix, disk_bw,
                                   sys.spec.ssu.raid.n_data)
            if self.mode == "concurrent":
                caps = ssu.couplet.group_share_caps(fs_level=True)
            else:
                # One OST at a time: the whole owning controller is available.
                controller_caps = np.array([
                    c.bw_cap(fs_level=True) for c in ssu.couplet.controllers
                ])
                caps = controller_caps[ssu.couplet.group_owner]
            for i in wanted:
                g = i - base
                write = min(float(raw[g]), float(caps[g])) * OBDFILTER_EFFICIENCY
                noise = float(rng.normal(1.0, self.noise_sigma))
                write = max(0.0, write * noise)
                results.append(SurveyResult(
                    ost_index=i,
                    write=write,
                    rewrite=write * REWRITE_EFFICIENCY,
                    read=min(write * self.read_efficiency, float(caps[g])),
                ))
        results.sort(key=lambda r: r.ost_index)
        return results

    def fs_overhead(self, block_bandwidths: np.ndarray,
                    results: list[SurveyResult]) -> float:
        """Mean fs-level overhead vs the block-level measurement of the same
        OSTs — the §III-B block-vs-fs comparison."""
        fs = np.array([r.write for r in results])
        block = np.asarray(block_bandwidths, dtype=float)
        if len(fs) != len(block):
            raise ValueError("need matching block and fs measurement sets")
        mask = block > 0
        if not mask.any():
            raise ValueError("no positive block measurements")
        return float(1.0 - (fs[mask] / block[mask]).mean())
