"""The procurement benchmark suite of §III-B.

"OLCF developed and released a benchmark suite ... It includes block-level
and file system-level benchmark components.  The block-level performance
represents the raw performance of the storage systems.  The file-system
performance also accounts for the software overhead ...  By comparing
these two benchmark results, we can measure the file system overhead."

:class:`AcceptanceSuite` runs fair-lio over an SSU's LUNs and
obdfilter-survey over its OSTs, derives the fs overhead, evaluates the
random/sequential ratio, and checks the SOW performance floors — the
artifact a vendor response is scored against in `repro.ops.procurement`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.spider import SpiderSystem
from repro.iobench.fairlio import FairLioSweep, LunTarget, random_to_sequential_ratio
from repro.iobench.obdfilter_survey import ObdfilterSurvey
from repro.obs.trace import get_tracer
from repro.sim.rng import RngStreams
from repro.units import GB, KiB, MiB

__all__ = ["SuiteReport", "AcceptanceSuite"]


@dataclass(frozen=True)
class SuiteReport:
    """Aggregate acceptance results for one SSU."""

    ssu_index: int
    block_seq_bw: float  # aggregate sequential, block level
    block_random_bw: float  # aggregate random, 1 MiB per-disk chunks, qd1
    fs_write_bw: float  # aggregate obdfilter write (concurrent)
    fs_overhead: float  # 1 - fs/block per-OST mean
    random_ratio: float  # random/sequential at 1 MiB

    def rows(self) -> list[tuple[str, str]]:
        return [
            ("block sequential", f"{self.block_seq_bw / GB:.1f} GB/s"),
            ("block random (1MiB/disk)", f"{self.block_random_bw / GB:.1f} GB/s"),
            ("fs-level write", f"{self.fs_write_bw / GB:.1f} GB/s"),
            ("fs overhead", f"{self.fs_overhead:.1%}"),
            ("random/seq ratio", f"{self.random_ratio:.2f}"),
        ]


@dataclass
class AcceptanceSuite:
    """Run the §III-B suite against one SSU of a built system."""

    system: SpiderSystem
    sweep: FairLioSweep = field(default_factory=lambda: FairLioSweep(
        request_sizes=(256 * KiB, MiB, 8 * MiB),
        queue_depths=(1, 4), write_fractions=(0.0, 1.0)))
    seed: int = 3

    def run_ssu(self, ssu_index: int) -> SuiteReport:
        sys = self.system
        ssu = sys.ssus[ssu_index]
        # Per-SSU substream: surveying SSU 3 draws the same numbers whether
        # or not SSUs 0-2 were surveyed first.
        rng = RngStreams(self.seed).get(f"suite.ssu:{ssu_index}")

        tracer = get_tracer()
        luns = [LunTarget(g) for g in ssu.groups]
        with tracer.span("suite.fairlio", "iobench", ssu=ssu_index,
                         luns=len(luns)):
            block_results = self.sweep.run_many(luns, rng)

        seq = [r for r in block_results
               if r.sequential and r.request_size == MiB and r.queue_depth == 1]
        # Random measured at an 8 MiB LUN request — a 1 MiB chunk per data
        # disk, the granularity behind the paper's 20-25% figure and the
        # 240 GB/s SOW floor.
        rnd = [r for r in block_results
               if not r.sequential and r.request_size == 8 * MiB
               and r.queue_depth == 1]
        # Aggregate over LUNs, capped by the couplet's block path.
        per_lun_seq = {}
        for r in seq:
            per_lun_seq.setdefault(r.target, []).append(r.bandwidth)
        block_seq = min(
            sum(float(np.mean(v)) for v in per_lun_seq.values()),
            ssu.couplet.bw_cap(fs_level=False),
        )
        per_lun_rnd = {}
        for r in rnd:
            per_lun_rnd.setdefault(r.target, []).append(r.bandwidth)
        block_rnd = min(
            sum(float(np.mean(v)) for v in per_lun_rnd.values()),
            ssu.couplet.bw_cap(fs_level=False),
        )

        base = ssu_index * sys.spec.ssu.n_groups
        ost_indices = list(range(base, base + sys.spec.ssu.n_groups))
        with tracer.span("suite.obdfilter_survey", "iobench", ssu=ssu_index):
            survey_iso = ObdfilterSurvey(sys, mode="isolated").run(ost_indices, rng)
            survey_conc = ObdfilterSurvey(sys, mode="concurrent").run(ost_indices, rng)
        fs_write = sum(r.write for r in survey_conc)

        block_per_ost = np.array([float(np.mean(per_lun_seq[g.name]))
                                  for g in ssu.groups])
        overhead = ObdfilterSurvey(sys).fs_overhead(block_per_ost, survey_iso)

        return SuiteReport(
            ssu_index=ssu_index,
            block_seq_bw=block_seq,
            block_random_bw=block_rnd,
            fs_write_bw=fs_write,
            fs_overhead=overhead,
            # Random ratio at a per-disk 1 MiB chunk (8 MiB LUN request),
            # matching the paper's single-disk definition of the metric.
            random_ratio=random_to_sequential_ratio(
                block_results, request_size=8 * MiB),
        )

    def check_sow_targets(
        self,
        report: SuiteReport,
        *,
        seq_floor: float,
        random_floor: float,
    ) -> dict[str, bool]:
        """Evaluate an SSU report against SOW performance floors."""
        return {
            "sequential": report.block_seq_bw >= seq_floor,
            "random": report.block_random_bw >= random_floor,
        }
