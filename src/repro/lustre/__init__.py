"""A functional Lustre-like parallel file system model.

This is not a POSIX implementation; it is the *operational* model of Lustre
that the paper reasons with: a metadata server with a finite op rate, object
storage targets backed by RAID groups with fill-dependent performance,
object storage servers with finite CPU/network capability, striped file
layouts, and LNET routers bridging the compute interconnect to the SAN.
"""

from repro.lustre.namespace import Namespace, FileEntry, StripeLayout
from repro.lustre.mds import MdsSpec, MetadataServer, MetadataCluster
from repro.lustre.ost import OstSpec, Ost, fill_penalty
from repro.lustre.oss import OssSpec, Oss
from repro.lustre.client import Client
from repro.lustre.filesystem import LustreFilesystem
from repro.lustre.recovery import RecoverySpec, RecoveryOutcome, simulate_recovery

__all__ = [
    "Namespace",
    "FileEntry",
    "StripeLayout",
    "MdsSpec",
    "MetadataServer",
    "MetadataCluster",
    "OstSpec",
    "Ost",
    "fill_penalty",
    "OssSpec",
    "Oss",
    "Client",
    "LustreFilesystem",
    "RecoverySpec",
    "RecoveryOutcome",
    "simulate_recovery",
]
