"""An in-memory Lustre namespace: directories, files, stripe layouts.

Scale notes: Spider-class namespaces hold hundreds of millions of files;
the experiments here exercise up to a few million.  Entries are kept in a
flat ``dict`` keyed by path with slotted records, which keeps per-file
overhead near 200 bytes and directory listing O(children) via a parallel
children index — enough for every experiment while staying debuggable.

Timestamps are simulated seconds (floats); the purge engine (14-day policy,
§IV-C) and LustreDU read them directly.
"""

from __future__ import annotations

import posixpath
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.units import MiB

__all__ = ["StripeLayout", "FileEntry", "Namespace", "NamespaceError"]


class NamespaceError(Exception):
    """Illegal namespace operation (missing parent, duplicate path, ...)."""


@dataclass(frozen=True)
class StripeLayout:
    """Lustre striping metadata for one file.

    ``stripe_size`` is the per-OST chunk; ``osts`` the ordered target list.
    The best-practice guidance of §VII (stripe small files to a single OST,
    wide-stripe large shared files) manifests as choices of this layout.
    """

    osts: tuple[int, ...]
    stripe_size: int = MiB

    def __post_init__(self) -> None:
        if not self.osts:
            raise ValueError("a layout needs at least one OST")
        if self.stripe_size <= 0:
            raise ValueError("stripe_size must be positive")

    @property
    def stripe_count(self) -> int:
        return len(self.osts)

    def ost_share(self, size: int) -> dict[int, int]:
        """Bytes landing on each OST for a file of ``size`` bytes."""
        if size < 0:
            raise ValueError("size must be non-negative")
        shares: dict[int, int] = {ost: 0 for ost in self.osts}
        full_rounds, rem = divmod(size, self.stripe_size * self.stripe_count)
        for ost in self.osts:
            shares[ost] += full_rounds * self.stripe_size
        i = 0
        while rem > 0:
            take = min(rem, self.stripe_size)
            shares[self.osts[i % self.stripe_count]] += take
            rem -= take
            i += 1
        return shares


@dataclass
class FileEntry:
    """One namespace entry (file or directory)."""

    __slots__ = (
        "path", "is_dir", "size", "atime", "mtime", "ctime",
        "layout", "owner", "project",
    )

    path: str
    is_dir: bool
    size: int
    atime: float
    mtime: float
    ctime: float
    layout: StripeLayout | None
    owner: str
    project: str

    @property
    def name(self) -> str:
        return posixpath.basename(self.path) or "/"

    def last_touched(self) -> float:
        """Most recent of atime/mtime/ctime — the purge-eligibility clock
        ("not created, modified, or accessed within a contiguous 14 day
        range", §IV-C)."""
        return max(self.atime, self.mtime, self.ctime)


def _normalize(path: str) -> str:
    if not path.startswith("/"):
        raise NamespaceError(f"paths must be absolute: {path!r}")
    norm = posixpath.normpath(path)
    return norm


class Namespace:
    """The file tree of one Lustre file system."""

    def __init__(self, name: str = "atlas") -> None:
        self.name = name
        root = FileEntry(
            path="/", is_dir=True, size=0,
            atime=0.0, mtime=0.0, ctime=0.0,
            layout=None, owner="root", project="system",
        )
        self._entries: dict[str, FileEntry] = {"/": root}
        self._children: dict[str, set[str]] = {"/": set()}
        self.n_files = 0
        self.n_dirs = 1

    # -- lookup ------------------------------------------------------------------

    def __contains__(self, path: str) -> bool:
        return _normalize(path) in self._entries

    def get(self, path: str) -> FileEntry:
        entry = self._entries.get(_normalize(path))
        if entry is None:
            raise NamespaceError(f"no such entry: {path}")
        return entry

    def listdir(self, path: str) -> list[str]:
        path = _normalize(path)
        entry = self.get(path)
        if not entry.is_dir:
            raise NamespaceError(f"not a directory: {path}")
        return sorted(self._children[path])

    def __len__(self) -> int:
        """Total entries including directories."""
        return len(self._entries)

    # -- mutation ----------------------------------------------------------------

    def _attach(self, path: str) -> None:
        parent = posixpath.dirname(path) or "/"
        parent_entry = self._entries.get(parent)
        if parent_entry is None:
            raise NamespaceError(f"missing parent directory: {parent}")
        if not parent_entry.is_dir:
            raise NamespaceError(f"parent is a file: {parent}")
        self._children[parent].add(path)

    def mkdir(self, path: str, now: float = 0.0, *, owner: str = "root",
              project: str = "system", parents: bool = False) -> FileEntry:
        path = _normalize(path)
        if path in self._entries:
            entry = self._entries[path]
            if entry.is_dir:
                return entry
            raise NamespaceError(f"file exists: {path}")
        parent = posixpath.dirname(path) or "/"
        if parents and parent not in self._entries:
            self.mkdir(parent, now, owner=owner, project=project, parents=True)
        entry = FileEntry(
            path=path, is_dir=True, size=0,
            atime=now, mtime=now, ctime=now,
            layout=None, owner=owner, project=project,
        )
        self._attach(path)
        self._entries[path] = entry
        self._children[path] = set()
        self.n_dirs += 1
        return entry

    def create(
        self,
        path: str,
        layout: StripeLayout,
        now: float = 0.0,
        *,
        size: int = 0,
        owner: str = "user",
        project: str = "proj",
    ) -> FileEntry:
        path = _normalize(path)
        if path in self._entries:
            raise NamespaceError(f"file exists: {path}")
        entry = FileEntry(
            path=path, is_dir=False, size=int(size),
            atime=now, mtime=now, ctime=now,
            layout=layout, owner=owner, project=project,
        )
        self._attach(path)
        self._entries[path] = entry
        self.n_files += 1
        return entry

    def write(self, path: str, nbytes: int, now: float) -> FileEntry:
        """Append ``nbytes`` (grow the file) and bump mtime."""
        if nbytes < 0:
            raise NamespaceError("write size must be non-negative")
        entry = self.get(path)
        if entry.is_dir:
            raise NamespaceError(f"is a directory: {path}")
        entry.size += int(nbytes)
        entry.mtime = now
        return entry

    def read(self, path: str, now: float) -> FileEntry:
        entry = self.get(path)
        entry.atime = now
        return entry

    def rename(self, old: str, new: str, now: float) -> FileEntry:
        """Move a *file* to a new absolute path (two-dentry transaction).

        Directory renames are out of scope: Lustre's DNE1 restriction —
        and the subtree partitioning built on it — pins a directory to
        its MDT, so the simulated tools never move one.
        """
        old = _normalize(old)
        new = _normalize(new)
        entry = self.get(old)
        if entry.is_dir:
            raise NamespaceError(f"cannot rename a directory: {old}")
        if new in self._entries:
            raise NamespaceError(f"file exists: {new}")
        self._attach(new)
        parent = posixpath.dirname(old) or "/"
        self._children[parent].discard(old)
        del self._entries[old]
        entry.path = new
        entry.ctime = now
        self._entries[new] = entry
        return entry

    def unlink(self, path: str) -> FileEntry:
        path = _normalize(path)
        entry = self.get(path)
        if entry.is_dir:
            if self._children[path]:
                raise NamespaceError(f"directory not empty: {path}")
            if path == "/":
                raise NamespaceError("cannot remove root")
            del self._children[path]
            self.n_dirs -= 1
        else:
            self.n_files -= 1
        parent = posixpath.dirname(path) or "/"
        self._children[parent].discard(path)
        del self._entries[path]
        return entry

    # -- traversal ----------------------------------------------------------------

    def walk(self, top: str = "/") -> Iterator[FileEntry]:
        """Depth-first traversal of every entry under ``top`` (inclusive)."""
        top = _normalize(top)
        entry = self.get(top)
        stack = [entry]
        while stack:
            entry = stack.pop()
            yield entry
            if entry.is_dir:
                for child in sorted(self._children[entry.path], reverse=True):
                    stack.append(self._entries[child])

    def files(self, top: str = "/") -> Iterator[FileEntry]:
        for entry in self.walk(top):
            if not entry.is_dir:
                yield entry

    def total_bytes(self, top: str = "/") -> int:
        return sum(f.size for f in self.files(top))

    def select(self, predicate: Callable[[FileEntry], bool], top: str = "/") -> list[FileEntry]:
        return [f for f in self.files(top) if predicate(f)]
