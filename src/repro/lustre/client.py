"""Lustre clients: Titan compute nodes mounting the center-wide file system.

A client is a (name, torus coordinate) pair with a per-node bandwidth cap
(the Lustre client stack tops out below the NIC injection rate).  Other
OLCF resources — analysis clusters, visualization systems, data-transfer
nodes — mount the same namespaces but enter the fabric through their own
router sets; they are modelled as clients with ``coord=None`` plus an
explicit entry leaf.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.torus import Coord
from repro.units import GB

__all__ = ["Client"]


@dataclass(frozen=True)
class Client:
    """One file-system client."""

    name: str
    coord: Coord | None = None  # torus position; None for off-torus resources
    bw_cap: float = 2.2 * GB  # Lustre client stack ceiling, bytes/s
    resource: str = "titan"  # owning compute resource

    def __post_init__(self) -> None:
        if self.bw_cap <= 0:
            raise ValueError("bw_cap must be positive")

    @property
    def component(self) -> str:
        """Flow-network component name for the client stack cap."""
        return f"client:{self.name}"

    @property
    def on_torus(self) -> bool:
        return self.coord is not None
