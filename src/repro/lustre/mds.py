"""Metadata servers: the single-MDS bottleneck and DNE.

§IV-C is explicit about why Spider is split into multiple namespaces:

  "Lustre supports a single metadata server per namespace.  This limitation
   cannot sustain the necessary rate of concurrent file system metadata
   operations for the OLCF user workloads."

The model gives one MDS a finite operation budget with per-op costs, and a
:class:`MetadataCluster` distributes load over several MDTs, either as
separate namespaces (Spider's choice) or as DNE (Lustre ≥ 2.4's distributed
namespace, which the paper recommends using *in addition to* multiple
namespaces).  The stat-amplification of striped files — every ``stat`` must
consult every OST holding data — is modelled via ``stat_ost_rpcs``; this is
the mechanism behind both the `du` pathology (Lesson 19) and the
single-OST-striping best practice of §VII.

Capacity calibration: a Lustre 2.x-era MDS sustains on the order of 10-40k
metadata ops/s depending on mix; defaults sit in that band.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.instruments import get_telemetry

__all__ = ["MdsSpec", "OpMix", "MetadataServer", "MetadataCluster"]


@dataclass(frozen=True)
class MdsSpec:
    """Service rates of one metadata server (ops/second)."""

    create_rate: float = 15_000.0
    stat_rate: float = 40_000.0
    unlink_rate: float = 12_000.0
    mkdir_rate: float = 10_000.0
    readdir_entry_rate: float = 200_000.0  # directory entries scanned per sec
    #: a same-MDT rename is a two-dentry transaction; hard links update one
    #: dentry plus the inode's link count — both land between create and
    #: unlink in cost.  Cross-MDT versions of these ops pay an additional
    #: multiplier (see :class:`repro.metatier.shards.ShardedNamespace`).
    rename_rate: float = 9_000.0
    link_rate: float = 13_000.0
    #: additional per-stat OST RPC cost, as a fraction of one stat, charged
    #: once per stripe the file spans
    stat_ost_rpc_cost: float = 0.4

    def __post_init__(self) -> None:
        rates = (self.create_rate, self.stat_rate, self.unlink_rate,
                 self.mkdir_rate, self.readdir_entry_rate,
                 self.rename_rate, self.link_rate)
        if any(r <= 0 for r in rates):
            raise ValueError("all rates must be positive")
        if self.stat_ost_rpc_cost < 0:
            raise ValueError("stat_ost_rpc_cost must be non-negative")


@dataclass
class OpMix:
    """A metadata workload expressed as operation counts."""

    creates: int = 0
    stats: int = 0
    unlinks: int = 0
    mkdirs: int = 0
    readdir_entries: int = 0
    renames: int = 0
    links: int = 0
    #: mean stripe count of statted files (drives OST RPC amplification)
    mean_stripe_count: float = 1.0

    def scaled(self, factor: float) -> "OpMix":
        return OpMix(
            creates=int(self.creates * factor),
            stats=int(self.stats * factor),
            unlinks=int(self.unlinks * factor),
            mkdirs=int(self.mkdirs * factor),
            readdir_entries=int(self.readdir_entries * factor),
            renames=int(self.renames * factor),
            links=int(self.links * factor),
            mean_stripe_count=self.mean_stripe_count,
        )

    @property
    def total_ops(self) -> int:
        return (self.creates + self.stats + self.unlinks + self.mkdirs
                + self.readdir_entries + self.renames + self.links)


class MetadataServer:
    """One MDS/MDT with a finite service budget."""

    def __init__(self, spec: MdsSpec | None = None, name: str = "mds0") -> None:
        self.spec = spec or MdsSpec()
        self.name = name
        self.ops_served = 0
        self.busy_seconds = 0.0
        # (registry, ops counter, latency histogram) — instruments are
        # stable per (name, source) key, so the hot path caches them and
        # revalidates only on registry swap (use_telemetry in tests).
        self._instruments = None

    def service_time(self, mix: OpMix) -> float:
        """Seconds of MDS time to serve ``mix`` (an M/D/1-style demand)."""
        s = self.spec
        stat_cost = (1.0 + s.stat_ost_rpc_cost * max(0.0, mix.mean_stripe_count)) / s.stat_rate
        t = (
            mix.creates / s.create_rate
            + mix.stats * stat_cost
            + mix.unlinks / s.unlink_rate
            + mix.mkdirs / s.mkdir_rate
            + mix.readdir_entries / s.readdir_entry_rate
            + mix.renames / s.rename_rate
            + mix.links / s.link_rate
        )
        self.ops_served += mix.total_ops
        self.busy_seconds += t
        telemetry = get_telemetry()
        if telemetry.enabled:
            cached = self._instruments
            if cached is None or cached[0] is not telemetry:
                cached = self._instruments = (
                    telemetry,
                    telemetry.counter("mds.ops", self.name),
                    telemetry.histogram("mds.service_seconds", self.name,
                                        floor=1e-6),
                )
            cached[1].add(float(mix.total_ops))
            # Service latency distribution: one sample per request batch,
            # normalized to the mean per-op service time so the histogram
            # reads as request latency, not batch size.
            if mix.total_ops:
                cached[2].observe(t / mix.total_ops)
        return t

    def sustainable_rate(self, mix: OpMix) -> float:
        """Ops/s ceiling for a workload with the proportions of ``mix``."""
        total = mix.total_ops
        if total == 0:
            return float("inf")
        # Take a snapshot; service_time mutates counters, so use a probe MDS.
        probe = MetadataServer(self.spec, name="probe")
        t = probe.service_time(mix)
        return total / t if t > 0 else float("inf")


class MetadataCluster:
    """Several MDTs, load-shared either as separate namespaces or via DNE.

    * ``mode="namespaces"`` — files are partitioned by project/namespace;
      each MDS sees only its own namespace's traffic (Spider's design).
      Imbalance across namespaces strands capacity, captured by
      ``balance`` ∈ (0, 1]: the busiest MDS gets ``1/ (n·balance)`` of load.
    * ``mode="dne"`` — directory-level distribution inside a single
      namespace; near-perfect balance but a cross-MDT overhead on renames
      and cross-directory ops (``dne_overhead``).
    """

    def __init__(
        self,
        n_servers: int,
        spec: MdsSpec | None = None,
        *,
        mode: str = "namespaces",
        balance: float = 0.85,
        dne_overhead: float = 0.10,
    ) -> None:
        if n_servers < 1:
            raise ValueError("need at least one MDS")
        if mode not in ("namespaces", "dne"):
            raise ValueError(f"unknown mode {mode!r}")
        if not (0 < balance <= 1):
            raise ValueError("balance must be in (0, 1]")
        if dne_overhead < 0:
            raise ValueError("dne_overhead must be non-negative")
        self.mode = mode
        self.balance = balance
        self.dne_overhead = dne_overhead
        self.servers = [
            MetadataServer(spec, name=f"mds{i}") for i in range(n_servers)
        ]

    @property
    def n_servers(self) -> int:
        return len(self.servers)

    def sustainable_rate(self, mix: OpMix) -> float:
        """Aggregate metadata ops/s the cluster can sustain for ``mix``."""
        single = self.servers[0].sustainable_rate(mix)
        if self.n_servers == 1:
            return single
        if self.mode == "namespaces":
            # The busiest namespace saturates first; effective aggregate is
            # n * balance * single.
            return self.n_servers * self.balance * single
        # DNE: even distribution, small cross-MDT tax.
        return self.n_servers * single / (1.0 + self.dne_overhead)

    def speedup_over_single(self, mix: OpMix) -> float:
        single = self.servers[0].sustainable_rate(mix)
        return self.sustainable_rate(mix) / single if single else float("inf")
