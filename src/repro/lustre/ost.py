"""Object Storage Targets: one OST per RAID-6 group.

Each OST tracks allocated capacity and exposes a *fill penalty* — the paper
reports performance loss starting above 50% utilization and becoming severe
past 70% (§IV-C, §VI-C):

  "many other HPC centers that use Lustre note a severe performance
   degradation after the resource is 70% or more full."
  "We have seen direct performance degradation when the utilization of the
   filesystem is greater than 50%."

The penalty curve below is piecewise linear through (0.5, 1.0) → (0.7,
0.85) → (0.9, 0.55) → (1.0, 0.35): flat to 50%, a shallow knee to 70%, and
a steep fall beyond — the standard ldiskfs free-extent fragmentation shape.
Lesson 10's "capacity targets 30% or more above aggregate user workload
estimates" is exactly the strategy of staying left of the 70% knee.

The obdfilter layer's software overhead (measured by comparing block-level
and fs-level benchmarks, §III-B) appears as ``obdfilter_efficiency``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs.instruments import get_telemetry

__all__ = ["OstSpec", "Ost", "fill_penalty", "OBDFILTER_EFFICIENCY"]

#: fs-level bandwidth retained after obdfilter/ldiskfs software overhead,
#: for large sequential objects (the block-vs-fs gap of §III-B).
OBDFILTER_EFFICIENCY = 0.90

#: knots of the fill-penalty curve: (fill fraction, bandwidth multiplier)
_FILL_KNOTS = np.array([
    (0.0, 1.00),
    (0.5, 1.00),
    (0.7, 0.85),
    (0.9, 0.55),
    (1.0, 0.35),
])


def fill_penalty(fill_fraction: float | np.ndarray) -> float | np.ndarray:
    """Bandwidth multiplier as a function of OST fill level ∈ [0, 1]."""
    fill = np.clip(fill_fraction, 0.0, 1.0)
    out = np.interp(fill, _FILL_KNOTS[:, 0], _FILL_KNOTS[:, 1])
    if np.isscalar(fill_fraction) or np.ndim(fill_fraction) == 0:
        return float(out)
    return out


@dataclass(frozen=True)
class OstSpec:
    """Static parameters of one OST."""

    capacity_bytes: int
    obdfilter_efficiency: float = OBDFILTER_EFFICIENCY

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        if not (0 < self.obdfilter_efficiency <= 1):
            raise ValueError("obdfilter_efficiency must be in (0, 1]")


class Ost:
    """One object storage target.

    ``raw_bandwidth_fn`` supplies the current block-level streaming
    bandwidth of the backing RAID group (couplet share applied), so OST
    objects stay thin views over the vectorized SSU state.
    """

    def __init__(
        self,
        index: int,
        spec: OstSpec,
        *,
        ssu_index: int = 0,
        group_index: int = 0,
        oss_name: str = "",
    ) -> None:
        self.index = index
        self.spec = spec
        self.ssu_index = ssu_index
        self.group_index = group_index
        self.oss_name = oss_name
        self.used_bytes = 0
        self.n_objects = 0
        self.read_bytes_total = 0
        self.written_bytes_total = 0
        # (registry, write counter, read counter) — cached instruments,
        # revalidated on registry swap (instruments are stable per key).
        self._instruments = None

    def _tel_counters(self, telemetry):
        cached = self._instruments
        if cached is None or cached[0] is not telemetry:
            cached = self._instruments = (
                telemetry,
                telemetry.counter("ost.write_bytes", self.component),
                telemetry.counter("ost.read_bytes", self.component),
            )
        return cached

    # -- capacity -----------------------------------------------------------------

    @property
    def fill_fraction(self) -> float:
        return min(1.0, self.used_bytes / self.spec.capacity_bytes)

    @property
    def free_bytes(self) -> int:
        return max(0, self.spec.capacity_bytes - self.used_bytes)

    def allocate(self, nbytes: int) -> None:
        """Account an object extent; allocation past capacity raises."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if self.used_bytes + nbytes > self.spec.capacity_bytes:
            raise OSError(f"OST {self.index} out of space (ENOSPC)")
        self.used_bytes += nbytes
        self.n_objects += 1
        self.written_bytes_total += nbytes
        telemetry = get_telemetry()
        if telemetry.enabled:
            self._tel_counters(telemetry)[1].add(float(nbytes))

    def release(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        self.used_bytes = max(0, self.used_bytes - nbytes)
        self.n_objects = max(0, self.n_objects - 1)

    def record_read(self, nbytes: int) -> None:
        self.read_bytes_total += nbytes
        telemetry = get_telemetry()
        if telemetry.enabled:
            self._tel_counters(telemetry)[2].add(float(nbytes))

    # -- performance ----------------------------------------------------------------

    def fs_bandwidth(self, raw_bandwidth: float) -> float:
        """fs-level delivered bandwidth given the block-level ``raw_bandwidth``:
        obdfilter overhead and fill penalty applied in sequence."""
        penalty = fill_penalty(self.fill_fraction)
        if penalty < 1.0:
            telemetry = get_telemetry()
            if telemetry.enabled:
                telemetry.counter("ost.fill_penalty_hits", self.component).add(1.0)
        return raw_bandwidth * self.spec.obdfilter_efficiency * penalty

    @property
    def component(self) -> str:
        """Flow-network component name for this OST."""
        return f"ost:{self.index}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Ost({self.index}, fill={self.fill_fraction:.0%})"
