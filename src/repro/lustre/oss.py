"""Object Storage Servers.

Spider II runs 288 diskless OSS nodes, 8 per SSU, each serving 7 OSTs
(§V, Lesson 7).  An OSS contributes two capacities to the I/O path:

* its InfiniBand host port into the SSU's leaf switch (the fabric cable);
* a node cap (CPU + memory bandwidth of the Lustre server stack).

Diskless provisioning (GeDI) is modelled in :mod:`repro.ops.provisioning`;
here the OSS is the data-path element.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.instruments import get_telemetry
from repro.units import GB

__all__ = ["OssSpec", "Oss"]


@dataclass(frozen=True)
class OssSpec:
    """Capability envelope of one OSS node."""

    node_bw_cap: float = 5.0 * GB  # Lustre server stack throughput, bytes/s
    n_osts: int = 7

    def __post_init__(self) -> None:
        if self.node_bw_cap <= 0:
            raise ValueError("node_bw_cap must be positive")
        if self.n_osts <= 0:
            raise ValueError("n_osts must be positive")


class Oss:
    """One OSS: a named host on the SAN serving a contiguous OST range."""

    def __init__(
        self,
        name: str,
        spec: OssSpec,
        *,
        ssu_index: int,
        leaf: int,
        ost_indices: list[int],
    ) -> None:
        if len(ost_indices) != spec.n_osts:
            raise ValueError(
                f"OSS {name} expects {spec.n_osts} OSTs, got {len(ost_indices)}"
            )
        self.name = name
        self.spec = spec
        self.ssu_index = ssu_index
        self.leaf = leaf
        self.ost_indices = list(ost_indices)
        self.online = True
        self.bytes_served_total = 0.0

    def record_bytes(self, nbytes: float) -> None:
        """Account data served through this OSS (attributed after a flow
        solve; the OSS itself is a passive capacity in the path)."""
        self.bytes_served_total += nbytes
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.counter("oss.bytes", self.name).add(float(nbytes))

    @property
    def component(self) -> str:
        """Flow-network component name for the OSS node cap."""
        return f"oss:{self.name}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Oss({self.name}, leaf={self.leaf}, osts={self.ost_indices})"
