"""Lustre failover recovery: standard vs imperative (§IV-D).

"OLCF direct-funded development efforts through multiple providers to
produce features including asymmetric router notification,
high-performance Lustre journaling, and imperative recovery, all
benefiting the Lustre community at large."

When an OSS fails over, its OSTs cannot serve I/O until *recovery*
completes: every connected client must reconnect and replay its open
transactions.  Two regimes:

* **standard recovery** — clients only notice the failover when their
  in-flight RPCs time out (obd_timeout-scale delays), so reconnects
  straggle in over minutes; the window closes when every client has
  reconnected or the recovery timer expires (abandoning stragglers and
  evicting them).
* **imperative recovery** — the failover target proactively notifies
  clients through the MGS, collapsing discovery to seconds.

High-performance journaling (the same funding line) shortens the replay
phase once clients are back.

The simulation runs client reconnects on the event engine and reports the
I/O-blackout window — the number operators actually feel.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.obs.trace import get_tracer
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams
from repro.units import MINUTE

__all__ = [
    "RecoverySpec",
    "DEFAULT_RECOVERY_SPEC",
    "RecoveryOutcome",
    "simulate_recovery",
    "RouterFailureOutcome",
    "simulate_router_failure",
]

# The one constant table for recovery timing.  Everything that needs an
# obd_timeout-scale number — the ``recovery`` CLI subcommand, the
# resilience playbooks, tests — reads these (directly or through
# ``DEFAULT_RECOVERY_SPEC``), so the values cannot drift apart.
#: obd_timeout: the standard-recovery discovery scale (seconds)
OBD_TIMEOUT = 100.0
#: hard cap on the reconnect window before stragglers are evicted
RECOVERY_WINDOW = 5 * MINUTE
#: imperative recovery: MGS IR notification latency (seconds)
MGS_NOTIFY_LATENCY = 2.0
#: connect + lock re-acquisition cost per client (seconds)
RECONNECT_COST = 1.5
#: transactions replayed per second (stock journaling)
REPLAY_RATE = 20_000.0
#: high-performance journaling replay speedup factor
JOURNAL_SPEEDUP = 3.0


@dataclass(frozen=True)
class RecoverySpec:
    """Timing parameters of the recovery machinery."""

    rpc_timeout: float = OBD_TIMEOUT  # standard discovery scale
    recovery_window: float = RECOVERY_WINDOW  # cap before evicting stragglers
    mgs_notify_latency: float = MGS_NOTIFY_LATENCY  # imperative MGS IR
    reconnect_cost: float = RECONNECT_COST  # per-client reconnect
    replay_rate: float = REPLAY_RATE  # transactions replayed per second
    journal_speedup: float = JOURNAL_SPEEDUP  # hp journaling factor

    def __post_init__(self) -> None:
        for value in (self.rpc_timeout, self.recovery_window,
                      self.mgs_notify_latency, self.reconnect_cost,
                      self.replay_rate, self.journal_speedup):
            if value <= 0:
                raise ValueError("all recovery parameters must be positive")


#: the shared default spec (the constant table above, as one object)
DEFAULT_RECOVERY_SPEC = RecoverySpec()


@dataclass(frozen=True)
class RecoveryOutcome:
    """What one failover cost."""

    imperative: bool
    n_clients: int
    reconnected: int
    evicted: int
    window_seconds: float  # failover to I/O resumption
    replay_seconds: float

    @property
    def blackout_seconds(self) -> float:
        return self.window_seconds + self.replay_seconds

    def rows(self) -> list[tuple[str, str]]:
        mode = "imperative" if self.imperative else "standard"
        return [
            ("mode", mode),
            ("clients", str(self.n_clients)),
            ("reconnected", str(self.reconnected)),
            ("evicted", str(self.evicted)),
            ("reconnect window", f"{self.window_seconds:.1f} s"),
            ("replay", f"{self.replay_seconds:.1f} s"),
            ("I/O blackout", f"{self.blackout_seconds:.1f} s"),
        ]


def simulate_recovery(
    n_clients: int = 18_688,
    *,
    imperative: bool = False,
    hp_journaling: bool = False,
    spec: RecoverySpec | None = None,
    open_transactions: int = 250_000,
    absent_fraction: float = 0.002,
    seed: int = 0,
) -> RecoveryOutcome:
    """One OSS failover with ``n_clients`` connected.

    ``absent_fraction`` of clients are dead (crashed nodes) and can never
    reconnect — they are what forces standard recovery to run out its full
    window, a detail operators of 18,688-client systems know well.
    """
    if n_clients <= 0:
        raise ValueError("n_clients must be positive")
    if not (0 <= absent_fraction < 1):
        raise ValueError("absent_fraction must be in [0, 1)")
    spec = spec or RecoverySpec()
    rng = RngStreams(seed).get("recovery")
    engine = Engine()

    n_absent = int(round(n_clients * absent_fraction))
    n_live = n_clients - n_absent

    if imperative:
        # MGS notification fan-out plus reconnect.
        discovery = rng.exponential(spec.mgs_notify_latency, size=n_live)
    else:
        # Clients notice on their next timed-out RPC: uniform phase within
        # the timeout, plus the timeout itself.
        discovery = spec.rpc_timeout * (1.0 + rng.random(n_live) * 0.5)
    reconnect_at = discovery + rng.exponential(spec.reconnect_cost,
                                               size=n_live)

    state = {"reconnected": 0, "last": 0.0}

    def _reconnect() -> None:
        state["reconnected"] += 1
        state["last"] = engine.now

    for t in reconnect_at:
        engine.call_at(float(min(t, spec.recovery_window)), _reconnect)
    engine.run(until=spec.recovery_window)

    if n_absent > 0 and not imperative:
        # Stragglers hold the window open until the timer expires.
        window = spec.recovery_window
    elif n_absent > 0 and imperative:
        # IR knows who was notified; the window closes once every *live*
        # client is back (version-based recovery evicts the dead quickly).
        window = state["last"]
    else:
        window = state["last"]

    replay = open_transactions / spec.replay_rate
    if hp_journaling:
        replay /= spec.journal_speedup

    tracer = get_tracer()
    if tracer.enabled:
        # The recovery ran on its own nested engine; re-anchor its spans
        # at the caller's current sim time so traces compose.
        t0 = tracer.now()
        tracer.record(
            "recovery:reconnect-window", "recovery", t0, t0 + float(window),
            imperative=imperative, reconnected=state["reconnected"],
            evicted=n_absent)
        tracer.record(
            "recovery:replay", "recovery",
            t0 + float(window), t0 + float(window) + float(replay),
            transactions=open_transactions, hp_journaling=hp_journaling)

    return RecoveryOutcome(
        imperative=imperative,
        n_clients=n_clients,
        reconnected=state["reconnected"],
        evicted=n_absent,
        window_seconds=float(window),
        replay_seconds=float(replay),
    )


@dataclass(frozen=True)
class RouterFailureOutcome:
    """Cost of one LNET router failure to the clients routed through it.

    The third §IV-D funded feature — *asymmetric router notification*
    (ARN) — addresses exactly this: without it, a client discovers a dead
    router only by timing out RPCs in flight on it (and the notification
    is asymmetric because the servers, on the InfiniBand side, notice the
    router vanish long before the Gemini-side clients do).
    """

    arn: bool
    n_affected_clients: int
    mean_stall_seconds: float
    max_stall_seconds: float
    total_stall_client_seconds: float

    def rows(self) -> list[tuple[str, str]]:
        return [
            ("notification", "ARN" if self.arn else "timeout-based"),
            ("affected clients", str(self.n_affected_clients)),
            ("mean I/O stall", f"{self.mean_stall_seconds:.1f} s"),
            ("max I/O stall", f"{self.max_stall_seconds:.1f} s"),
            ("total stall", f"{self.total_stall_client_seconds:,.0f} "
                            f"client-seconds"),
        ]


def simulate_router_failure(
    n_affected_clients: int = 500,
    *,
    arn: bool = False,
    spec: RecoverySpec | None = None,
    reroute_cost: float = 0.5,
    seed: int = 0,
) -> RouterFailureOutcome:
    """One router dies; its clients stall until they reroute.

    Without ARN each client stalls for its own RPC timeout (phase-shifted
    by where it was in its timeout window); with ARN the servers push the
    dead-router notice and clients reroute within seconds.
    """
    if n_affected_clients <= 0:
        raise ValueError("n_affected_clients must be positive")
    if reroute_cost <= 0:
        raise ValueError("reroute_cost must be positive")
    spec = spec or RecoverySpec()
    rng = RngStreams(seed).get("router-failure")
    if arn:
        discovery = rng.exponential(spec.mgs_notify_latency,
                                    size=n_affected_clients)
    else:
        discovery = spec.rpc_timeout * (1.0 + rng.random(n_affected_clients) * 0.5)
    stalls = discovery + reroute_cost
    tracer = get_tracer()
    if tracer.enabled:
        t0 = tracer.now()
        tracer.record(
            "recovery:reroute", "recovery", t0, t0 + float(stalls.max()),
            arn=arn, affected=n_affected_clients)
    return RouterFailureOutcome(
        arn=arn,
        n_affected_clients=n_affected_clients,
        mean_stall_seconds=float(stalls.mean()),
        max_stall_seconds=float(stalls.max()),
        total_stall_client_seconds=float(stalls.sum()),
    )
