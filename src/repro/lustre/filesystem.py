"""A mounted Lustre file system: one namespace + one MDS + a set of OSTs.

Spider II exposes two such file systems ("atlas1"/"atlas2"), each spanning
half the SSUs (§IV-C).  This class binds the metadata model to the OST
capacity accounting so higher-level tools (purger, LustreDU, dcp/dfind,
capacity planning) operate against one coherent object.

Object allocation follows Lustre's QOS allocator in spirit: weighted
round-robin preferring emptier OSTs once imbalance exceeds a threshold.
libPIO (the paper's balanced-placement library) bypasses this default by
passing an explicit OST list.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.lustre.mds import MdsSpec, MetadataServer, OpMix
from repro.lustre.namespace import FileEntry, Namespace, StripeLayout
from repro.lustre.ost import Ost
from repro.units import MiB

__all__ = ["LustreFilesystem"]


class LustreFilesystem:
    """One namespace backed by a set of OSTs and a single MDS."""

    def __init__(
        self,
        name: str,
        osts: list[Ost],
        mds: MetadataServer | None = None,
        *,
        default_stripe_count: int = 4,
        default_stripe_size: int = MiB,
        qos_threshold: float = 0.17,
    ) -> None:
        if not osts:
            raise ValueError("a file system needs at least one OST")
        if default_stripe_count < 1:
            raise ValueError("default_stripe_count must be >= 1")
        self.name = name
        self.namespace = Namespace(name)
        self.osts = list(osts)
        self.mds = mds or MetadataServer(MdsSpec(), name=f"{name}-mds")
        self.default_stripe_count = min(default_stripe_count, len(osts))
        self.default_stripe_size = default_stripe_size
        self.qos_threshold = qos_threshold
        self._rr = itertools.cycle(range(len(self.osts)))
        self._ost_by_index = {ost.index: ost for ost in self.osts}

    # -- capacity -----------------------------------------------------------------

    @property
    def capacity_bytes(self) -> int:
        return sum(o.spec.capacity_bytes for o in self.osts)

    @property
    def used_bytes(self) -> int:
        return sum(o.used_bytes for o in self.osts)

    @property
    def fill_fraction(self) -> float:
        return self.used_bytes / self.capacity_bytes

    def ost(self, index: int) -> Ost:
        return self._ost_by_index[index]

    def fill_fractions(self) -> np.ndarray:
        return np.array([o.fill_fraction for o in self.osts])

    # -- allocation ------------------------------------------------------------------

    def choose_osts(self, stripe_count: int) -> tuple[int, ...]:
        """Pick OSTs for a new file: round robin while balanced, weighted
        toward free space when imbalance exceeds ``qos_threshold`` (the
        behaviour of Lustre's QOS allocator)."""
        stripe_count = min(stripe_count, len(self.osts))
        fills = self.fill_fractions()
        if fills.max() - fills.min() <= self.qos_threshold:
            start = next(self._rr)
            return tuple(
                self.osts[(start + i) % len(self.osts)].index
                for i in range(stripe_count)
            )
        # Imbalanced: prefer the emptiest OSTs.
        order = np.argsort(fills)
        return tuple(self.osts[i].index for i in order[:stripe_count])

    def layout_for(
        self,
        stripe_count: int | None = None,
        stripe_size: int | None = None,
        osts: tuple[int, ...] | None = None,
    ) -> StripeLayout:
        if osts is None:
            osts = self.choose_osts(stripe_count or self.default_stripe_count)
        else:
            for idx in osts:
                if idx not in self._ost_by_index:
                    raise KeyError(f"OST {idx} not in file system {self.name}")
        return StripeLayout(osts=tuple(osts), stripe_size=stripe_size or self.default_stripe_size)

    # -- file operations ---------------------------------------------------------------

    def create_file(
        self,
        path: str,
        now: float,
        *,
        size: int = 0,
        stripe_count: int | None = None,
        stripe_size: int | None = None,
        osts: tuple[int, ...] | None = None,
        owner: str = "user",
        project: str = "proj",
    ) -> FileEntry:
        """Create (and optionally pre-size) a file; charges MDS + OSTs."""
        layout = self.layout_for(stripe_count, stripe_size, osts)
        entry = self.namespace.create(
            path, layout, now, size=0, owner=owner, project=project
        )
        self.mds.service_time(OpMix(creates=1))
        if size:
            self.append(path, size, now)
        return entry

    def mkdir(self, path: str, now: float, **kwargs) -> FileEntry:
        entry = self.namespace.mkdir(path, now, parents=True, **kwargs)
        self.mds.service_time(OpMix(mkdirs=1))
        return entry

    def append(self, path: str, nbytes: int, now: float) -> FileEntry:
        """Grow a file, charging its stripes' OSTs."""
        entry = self.namespace.get(path)
        if entry.layout is None:
            raise ValueError(f"{path} has no layout")
        old = entry.size
        new_shares = entry.layout.ost_share(old + nbytes)
        old_shares = entry.layout.ost_share(old)
        for ost_index, total in new_shares.items():
            delta = total - old_shares.get(ost_index, 0)
            if delta > 0:
                self._ost_by_index[ost_index].allocate(delta)
        return self.namespace.write(path, nbytes, now)

    def read_file(self, path: str, now: float) -> FileEntry:
        entry = self.namespace.read(path, now)
        if entry.layout is not None:
            for ost_index, share in entry.layout.ost_share(entry.size).items():
                self._ost_by_index[ost_index].record_read(share)
        return entry

    def unlink(self, path: str) -> FileEntry:
        entry = self.namespace.get(path)
        if not entry.is_dir and entry.layout is not None:
            for ost_index, share in entry.layout.ost_share(entry.size).items():
                self._ost_by_index[ost_index].release(share)
        self.mds.service_time(OpMix(unlinks=1))
        return self.namespace.unlink(path)

    # -- metadata-path conveniences -------------------------------------------------------

    def stat(self, path: str) -> FileEntry:
        entry = self.namespace.get(path)
        stripes = entry.layout.stripe_count if entry.layout else 0
        self.mds.service_time(OpMix(stats=1, mean_stripe_count=stripes))
        return entry

    def du(self, top: str = "/") -> int:
        """Client-side `du`: stats every file — the MDS-hammering pattern
        LustreDU exists to avoid (Lesson 19)."""
        total = 0
        for entry in self.namespace.files(top):
            stripes = entry.layout.stripe_count if entry.layout else 0
            self.mds.service_time(OpMix(stats=1, mean_stripe_count=stripes))
            total += entry.size
        return total

    def scan_cost(self, n_entries: int, server_scan_speedup: float) -> float:
        """Server-side sweep cost (LustreDU): one readdir-rate pass over
        ``n_entries``, charged to the single MDS.

        Part of the sweep protocol shared with
        :class:`repro.metatier.shards.ShardedFilesystem`, where the same
        scan fans out over the MDT shards and returns the makespan.
        """
        return self.mds.service_time(
            OpMix(readdir_entries=max(1, int(n_entries / server_scan_speedup))))
