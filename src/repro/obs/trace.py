"""A sim-time-aware span tracer with Chrome-trace / JSONL exporters.

Spans are stamped with *simulated* time (:attr:`Engine.now`) as the primary
timeline — that is the timeline Lesson 12 reasons about — plus wall-clock
time as a secondary measure of how long the Python model itself took.  The
Chrome-trace exporter writes the JSON object format (``{"traceEvents":
[...]}``) that both ``chrome://tracing`` and Perfetto load directly; the
JSONL exporter writes one span per line for ad-hoc ``jq``/pandas analysis.

Like :mod:`repro.obs.instruments`, the tracer is process-wide but
explicitly passable, deterministic (it never perturbs the simulation), and
disabled by default with a one-attribute-read fast path.
"""

from __future__ import annotations

import json
import time as _time  # spider-lint: ignore[determinism] -- wall time is the tracer's secondary axis, never fed back into the simulation
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.obs.instruments import Telemetry, get_telemetry
from repro.units import MS, US

__all__ = [
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "instrument_engine",
    "read_chrome_trace",
    "read_jsonl",
]


@dataclass
class Span:
    """One completed span: a named interval on the sim timeline."""

    name: str
    cat: str
    t0_sim: float
    t1_sim: float
    t0_wall: float
    t1_wall: float
    depth: int = 0
    parent: str | None = None
    args: dict[str, Any] = field(default_factory=dict)

    @property
    def sim_duration(self) -> float:
        return self.t1_sim - self.t0_sim

    @property
    def wall_duration(self) -> float:
        return self.t1_wall - self.t0_wall


def _wall_clock() -> float:
    """The tracer's secondary timeline: how long the Python model itself
    takes.  Wall time only ever annotates spans (``wall_ms``); it never
    reaches simulation state, so determinism of results is preserved."""
    return _time.perf_counter()  # spider-lint: ignore[determinism] -- deliberate wall-clock self-profiling, annotation-only


class _OpenSpan:
    __slots__ = ("name", "cat", "t0_sim", "t0_wall", "depth", "parent", "args")

    def __init__(self, name, cat, t0_sim, t0_wall, depth, parent, args):
        self.name = name
        self.cat = cat
        self.t0_sim = t0_sim
        self.t0_wall = t0_wall
        self.depth = depth
        self.parent = parent
        self.args = args


class Tracer:
    """Collects spans and instant events against a sim clock.

    ``sim_clock`` is any zero-argument callable returning the current
    simulated time; :meth:`attach_engine` wires it to ``engine.now``.  When
    no clock is attached spans sit at sim time 0 and only their wall-clock
    durations carry information.
    """

    def __init__(
        self,
        *,
        sim_clock: Callable[[], float] | None = None,
        enabled: bool = True,
    ) -> None:
        self.enabled = enabled
        self._clock: Callable[[], float] = sim_clock or (lambda: 0.0)
        self.spans: list[Span] = []
        self.instants: list[Span] = []
        self._stack: list[_OpenSpan] = []

    # -- clock ----------------------------------------------------------------

    def attach_engine(self, engine) -> None:
        """Stamp subsequent spans with ``engine.now``."""
        self._clock = lambda: engine.now

    def now(self) -> float:
        return self._clock()

    # -- span recording --------------------------------------------------------

    def begin(self, name: str, cat: str = "", **args: Any) -> _OpenSpan | None:
        """Open a span on the nesting stack.

        For intervals that start and end in different call frames but
        still nest properly (otherwise see :meth:`open`).

        Args:
            name: span name as rendered on the timeline.
            cat: trace category; each category becomes its own track in
                the Chrome-trace export.
            **args: arbitrary JSON-serializable annotations, merged with
                any passed to :meth:`end`.

        Returns:
            An opaque handle to pass to :meth:`end`, or ``None`` when the
            tracer is disabled (:meth:`end` accepts ``None`` silently).
        """
        if not self.enabled:
            return None
        parent = self._stack[-1].name if self._stack else None
        handle = _OpenSpan(name, cat, self._clock(), _wall_clock(),
                           len(self._stack), parent, dict(args))
        self._stack.append(handle)
        return handle

    def open(self, name: str, cat: str = "", **args: Any) -> _OpenSpan | None:
        """Open a span *outside* the nesting stack.

        For intervals that overlap arbitrarily with others — concurrent
        engine processes, RAID rebuilds, fault lifetimes — where stack
        discipline would force bogus closures.  Close with :meth:`end` as
        usual.  Args/returns as :meth:`begin`.
        """
        if not self.enabled:
            return None
        parent = self._stack[-1].name if self._stack else None
        return _OpenSpan(name, cat, self._clock(), _wall_clock(),
                         len(self._stack), parent, dict(args))

    def end(self, handle: _OpenSpan | None, **args: Any) -> Span | None:
        """Close an open span.

        Args:
            handle: the value :meth:`begin`/:meth:`open` returned (``None``
                is accepted and ignored, so disabled-tracer call sites need
                no guard).
            **args: extra annotations merged into the span's args.

        Returns:
            The completed :class:`Span` (also appended to :attr:`spans`),
            or ``None`` if there was nothing to close.  A stacked handle
            ended out of order first closes every span opened after it.
        """
        if handle is None or not self.enabled:
            return None
        if handle in self._stack:
            # Close anything opened after the handle (unbalanced callers).
            while self._stack and self._stack[-1] is not handle:
                self.end(self._stack[-1])
            self._stack.pop()
        handle.args.update(args)
        span = Span(
            name=handle.name, cat=handle.cat,
            t0_sim=handle.t0_sim, t1_sim=self._clock(),
            t0_wall=handle.t0_wall, t1_wall=_wall_clock(),
            depth=handle.depth, parent=handle.parent, args=handle.args,
        )
        self.spans.append(span)
        return span

    @contextmanager
    def span(self, name: str, cat: str = "", **args: Any) -> Iterator[None]:
        """Context-manager form of :meth:`begin`/:meth:`end`.

        Args as :meth:`begin`; the span closes when the ``with`` block
        exits (including on exception).
        """
        handle = self.begin(name, cat, **args)
        try:
            yield
        finally:
            self.end(handle)

    def record(self, name: str, cat: str, t0_sim: float, t1_sim: float,
               **args: Any) -> Span | None:
        """Record a completed span at explicit sim times.

        For intervals derived analytically or replayed from a nested
        simulation (e.g. the reconnect window of a failover recovery run
        on its own engine) where :meth:`begin`/:meth:`end` cannot observe
        the endpoints live.  Both wall stamps are taken now, so the span
        carries zero wall duration.  Args as :meth:`begin`.
        """
        if not self.enabled:
            return None
        wall = _wall_clock()
        span = Span(
            name=name, cat=cat,
            t0_sim=t0_sim, t1_sim=t1_sim,
            t0_wall=wall, t1_wall=wall,
            depth=len(self._stack),
            parent=self._stack[-1].name if self._stack else None,
            args=dict(args),
        )
        self.spans.append(span)
        return span

    def instant(self, name: str, cat: str = "", **args: Any) -> None:
        """A zero-duration marker (saturation events, failures)."""
        if not self.enabled:
            return
        t_sim = self._clock()
        wall = _wall_clock()
        self.instants.append(Span(
            name=name, cat=cat, t0_sim=t_sim, t1_sim=t_sim,
            t0_wall=wall, t1_wall=wall,
            depth=len(self._stack),
            parent=self._stack[-1].name if self._stack else None,
            args=dict(args),
        ))

    def reset(self) -> None:
        self.spans.clear()
        self.instants.clear()
        self._stack.clear()

    # -- export ----------------------------------------------------------------

    def to_chrome_trace(self, telemetry: Telemetry | None = None) -> dict:
        """The Chrome-trace JSON object (Perfetto-loadable).

        Span ``ts``/``dur`` are simulated microseconds; the wall-clock
        duration rides along in ``args.wall_ms``.  Each category gets its
        own ``tid`` so layers render as separate tracks.  If ``telemetry``
        is given its counters/gauges are appended as Chrome counter
        (``"ph": "C"``) events and its full snapshot is embedded under the
        top-level ``"telemetry"`` key (valid: the format allows extra
        top-level metadata keys).
        """
        tids: dict[str, int] = {}

        def tid_of(cat: str) -> int:
            return tids.setdefault(cat or "default", len(tids) + 1)

        events: list[dict] = []
        for cat in sorted({s.cat or "default" for s in self.spans + self.instants}):
            events.append({
                "name": "thread_name", "ph": "M", "pid": 1,
                "tid": tid_of(cat), "args": {"name": cat},
            })
        for s in self.spans:
            args = dict(s.args)
            args["wall_ms"] = round(s.wall_duration / MS, 6)
            if s.parent:
                args["parent"] = s.parent
            events.append({
                "name": s.name, "cat": s.cat or "default", "ph": "X",
                "ts": s.t0_sim / US, "dur": s.sim_duration / US,
                "pid": 1, "tid": tid_of(s.cat or "default"), "args": args,
            })
        for s in self.instants:
            events.append({
                "name": s.name, "cat": s.cat or "default", "ph": "i",
                "ts": s.t0_sim / US, "s": "p",
                "pid": 1, "tid": tid_of(s.cat or "default"),
                "args": dict(s.args),
            })
        out: dict[str, Any] = {
            "traceEvents": events,
            "displayTimeUnit": "ms",
        }
        if telemetry is not None:
            t_end = max((s.t1_sim for s in self.spans), default=0.0) / US
            for c in telemetry.counters():
                events.append({
                    "name": c.name, "cat": _layer_of(c.name), "ph": "C",
                    "ts": t_end, "pid": 1,
                    "args": {c.source or "value": c.value},
                })
            out["telemetry"] = telemetry.snapshot()
        return out

    def write_chrome_trace(self, path, telemetry: Telemetry | None = None) -> None:
        """Write :meth:`to_chrome_trace` as JSON to ``path``."""
        with open(path, "w") as fh:
            json.dump(self.to_chrome_trace(telemetry), fh)

    def write_jsonl(self, path) -> None:
        """One span per line: the ad-hoc analysis format."""
        with open(path, "w") as fh:
            for s in self.spans + self.instants:
                fh.write(json.dumps({
                    "name": s.name, "cat": s.cat,
                    "t0_sim": s.t0_sim, "t1_sim": s.t1_sim,
                    "wall_ms": s.wall_duration / MS,
                    "depth": s.depth, "parent": s.parent,
                    "args": s.args,
                }) + "\n")


def _layer_of(metric_name: str) -> str:
    """Layer (trace category) of a metric, from its dotted-name prefix."""
    return metric_name.split(".", 1)[0]


def read_chrome_trace(path) -> dict:
    """Load a ``--trace`` output file back (exporter round-trip).

    Args:
        path: a file previously written by :meth:`Tracer.write_chrome_trace`
            (or any Chrome-trace-format JSON object).

    Returns:
        The parsed trace dict, with ``"traceEvents"`` guaranteed present
        (and ``"telemetry"`` present when the writer embedded a snapshot).

    Raises:
        OSError: the file cannot be opened.
        ValueError: the file is not valid JSON, or parses to something
            other than a Chrome-trace object (e.g. a JSONL span file, a
            bare list, or a scalar).
    """
    with open(path) as fh:
        try:
            data = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict) or "traceEvents" not in data:
        raise ValueError(f"{path} is not a Chrome-trace-format file")
    return data


def read_jsonl(path) -> list[dict]:
    """Load a :meth:`Tracer.write_jsonl` file: one span dict per line."""
    with open(path) as fh:
        return [json.loads(line) for line in fh if line.strip()]


#: process-wide default tracer — disabled.
_default = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-wide tracer (the disabled default unless replaced)."""
    return _default


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process-wide tracer; returns the old one."""
    global _default
    previous, _default = _default, tracer
    return previous


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Scope ``tracer`` as the process-wide tracer for a ``with`` block,
    restoring the previous one on exit (exception-safe)."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


def instrument_engine(
    engine,
    telemetry: Telemetry | None = None,
    tracer: Tracer | None = None,
) -> None:
    """Wire an :class:`~repro.sim.engine.Engine` into the telemetry spine.

    * every processed event increments the ``engine.events`` counter
      (skipped when the registry is disabled at wiring time — the hook
      would be a per-event no-op call otherwise);
    * process starts/ends become spans in the ``engine`` category;
    * the tracer's sim clock is attached to ``engine.now``.

    Purely observational: no simulation events are scheduled and event
    ordering is untouched, so instrumented runs stay bit-identical.
    """
    registry = telemetry or get_telemetry()
    if registry.enabled:
        event_counter = registry.counter("engine.events")
        engine.on_event = lambda _time_: event_counter.add(1.0)

    if tracer is not None:
        tracer.attach_engine(engine)
        open_spans: dict[int, _OpenSpan | None] = {}

        def _start(process) -> None:
            open_spans[id(process)] = tracer.open(
                f"process:{process.name}", "engine")

        def _end(process) -> None:
            handle = open_spans.pop(id(process), None)
            if handle is not None:
                tracer.end(handle, steps=process.steps)

        engine.on_process_start = _start
        engine.on_process_end = _end
