"""A process-wide but explicitly-passable telemetry registry.

The paper's tuning methodology (Lesson 12) is bottom-up layer profiling:
establish the expected performance of a layer, compare observed, let each
layer re-define the bottleneck.  That methodology needs every layer to
*emit* observations, and MELT's argument (Brim et al.) is that the
heterogeneous Lustre stack wants a single aggregation point for them.
:class:`Telemetry` is that aggregation point for the simulation: counters,
gauges, and log-scale histograms keyed by ``(name, source)`` — the same
keying as :class:`repro.monitoring.metricsdb.MetricsDb`, so recorded
telemetry bridges into the simulated DDN-tool's query surface unchanged.

Design constraints, in order:

1. **Cheap enough to leave on.**  Every mutating instrument call guards on
   a single attribute read (``registry.enabled``); a disabled registry does
   no arithmetic and allocates nothing per call.
2. **Deterministic.**  Instruments never touch the RNG, never schedule
   simulation events, and never read wall-clock time — a run with
   telemetry enabled is bit-identical to a run without (the test suite
   proves it).
3. **Explicitly passable.**  Most call sites use the process-wide default
   (:func:`get_telemetry`), but every instrumented API also accepts an
   explicit registry so tests and concurrent experiments can isolate their
   measurements.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Telemetry",
    "get_telemetry",
    "set_telemetry",
    "use_telemetry",
]


class Counter:
    """A monotonically increasing sum (bytes moved, events processed)."""

    __slots__ = ("name", "source", "value", "_registry")

    def __init__(self, registry: "Telemetry", name: str, source: str) -> None:
        self._registry = registry
        self.name = name
        self.source = source
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        if self._registry.enabled:
            self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Counter {self.name}/{self.source}={self.value}>"


class Gauge:
    """A last-value-wins observation (utilization, queue depth)."""

    __slots__ = ("name", "source", "value", "_registry")

    def __init__(self, registry: "Telemetry", name: str, source: str) -> None:
        self._registry = registry
        self.name = name
        self.source = source
        self.value = 0.0

    def set(self, value: float) -> None:
        if self._registry.enabled:
            self.value = float(value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Gauge {self.name}/{self.source}={self.value}>"


class Histogram:
    """A log-scale histogram: exponential buckets, bounded relative error.

    Bucket ``i`` covers ``(floor * growth**(i-1), floor * growth**i]``;
    bucket 0 covers ``[0, floor]``.  With the default ``growth`` of 2 a
    percentile estimate is within a factor of 2 of the true value over an
    unbounded range with a handful of buckets — the right trade for
    latency/throughput distributions whose interesting structure is in the
    orders of magnitude, not the mantissa.
    """

    __slots__ = ("name", "source", "count", "sum", "min", "max",
                 "floor", "growth", "_log_growth", "_pow2", "_buckets",
                 "_registry")

    def __init__(
        self,
        registry: "Telemetry",
        name: str,
        source: str,
        *,
        floor: float = 1e-6,
        growth: float = 2.0,
    ) -> None:
        if floor <= 0:
            raise ValueError("floor must be positive")
        if growth <= 1:
            raise ValueError("growth must be > 1")
        self._registry = registry
        self.name = name
        self.source = source
        self.floor = floor
        self.growth = growth
        self._log_growth = math.log(growth)
        self._pow2 = growth == 2.0
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._buckets: dict[int, int] = {}

    def _bucket_index(self, value: float) -> int:
        if value <= self.floor:
            return 0
        if self._pow2:
            # growth=2 (the default): ceil(log2(value/floor)) is the binary
            # exponent from frexp — exact, no transcendental call.
            mantissa, exponent = math.frexp(value / self.floor)
            idx = exponent - 1 if mantissa == 0.5 else exponent
        else:
            idx = math.ceil(math.log(value / self.floor) / self._log_growth
                            - 1e-12)
        return idx if idx > 1 else 1

    def bucket_upper_bound(self, index: int) -> float:
        return self.floor * self.growth ** index

    def observe(self, value: float) -> None:
        if not self._registry.enabled:
            return
        if value < 0 or value != value:  # negative or NaN
            raise ValueError(f"histogram {self.name!r} observed {value!r}")
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        idx = self._bucket_index(value)
        buckets = self._buckets
        buckets[idx] = buckets.get(idx, 0) + 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Estimate the ``p``-th percentile (p ∈ [0, 100]).

        Returns the upper bound of the bucket where the cumulative count
        crosses the rank, clamped into ``[min, max]`` so single-bucket and
        tail estimates never leave the observed range.
        """
        if not (0 <= p <= 100):
            raise ValueError("percentile must be in [0, 100]")
        if self.count == 0:
            return 0.0
        rank = p / 100.0 * self.count
        cumulative = 0
        for idx in sorted(self._buckets):
            cumulative += self._buckets[idx]
            if cumulative >= rank:
                return min(self.max, max(self.min, self.bucket_upper_bound(idx)))
        return self.max  # pragma: no cover - defensive (rank <= count)

    def buckets(self) -> dict[int, int]:
        return dict(self._buckets)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Histogram {self.name}/{self.source} n={self.count} "
                f"mean={self.mean:.3g}>")


class Telemetry:
    """The registry: instruments keyed by ``(name, source)``.

    ``source`` plays the same role as the MetricsDb source column — the
    entity being measured (an OST component, a router name, an MDS).  The
    empty source means "the process".
    """

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: dict[tuple[str, str], Counter] = {}
        self._gauges: dict[tuple[str, str], Gauge] = {}
        self._histograms: dict[tuple[str, str], Histogram] = {}

    # -- instrument accessors (create-on-first-use) --------------------------

    def counter(self, name: str, source: str = "") -> Counter:
        """The counter keyed ``(name, source)``, created on first use.

        Args:
            name: dotted metric name; the prefix names the layer
                (``ost.write_bytes``, ``engine.events``).
            source: the entity being measured (a component or host name);
                empty means "the process".

        Returns:
            The same :class:`Counter` instance on every call with the same
            key, so call sites may cache it.
        """
        key = (name, source)
        inst = self._counters.get(key)
        if inst is None:
            inst = self._counters[key] = Counter(self, name, source)
        return inst

    def gauge(self, name: str, source: str = "") -> Gauge:
        """The gauge keyed ``(name, source)``, created on first use.

        Args/returns as :meth:`counter`, but the instrument is
        last-value-wins (utilization, queue depth, fill level).
        """
        key = (name, source)
        inst = self._gauges.get(key)
        if inst is None:
            inst = self._gauges[key] = Gauge(self, name, source)
        return inst

    def histogram(
        self, name: str, source: str = "",
        *, floor: float = 1e-6, growth: float = 2.0,
    ) -> Histogram:
        """The histogram keyed ``(name, source)``, created on first use.

        Args:
            name: dotted metric name (``mds.service_seconds``).
            source: the entity being measured; empty means "the process".
            floor: upper bound of bucket 0 — observations at or below it
                are indistinguishable.  Only honoured on first creation.
            growth: bucket growth factor (> 1); the bound on relative
                percentile error.  Only honoured on first creation.

        Returns:
            The same :class:`Histogram` instance on every call with the
            same key (later ``floor``/``growth`` arguments are ignored).
        """
        key = (name, source)
        inst = self._histograms.get(key)
        if inst is None:
            inst = self._histograms[key] = Histogram(
                self, name, source, floor=floor, growth=growth)
        return inst

    # -- iteration / export ---------------------------------------------------

    def counters(self) -> list[Counter]:
        """Every counter, sorted by ``(name, source)`` for stable output."""
        return [self._counters[k] for k in sorted(self._counters)]

    def gauges(self) -> list[Gauge]:
        """Every gauge, sorted by ``(name, source)`` for stable output."""
        return [self._gauges[k] for k in sorted(self._gauges)]

    def histograms(self) -> list[Histogram]:
        """Every histogram, sorted by ``(name, source)`` for stable output."""
        return [self._histograms[k] for k in sorted(self._histograms)]

    def reset(self) -> None:
        """Drop every instrument (a fresh measurement window)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def snapshot(self) -> dict:
        """A JSON-serializable dump of every instrument's current state."""
        return {
            "counters": [
                {"name": c.name, "source": c.source, "value": c.value}
                for c in self.counters()
            ],
            "gauges": [
                {"name": g.name, "source": g.source, "value": g.value}
                for g in self.gauges()
            ],
            "histograms": [
                {
                    "name": h.name, "source": h.source,
                    "count": h.count, "sum": h.sum,
                    "min": h.min if h.count else 0.0,
                    "max": h.max if h.count else 0.0,
                    "floor": h.floor, "growth": h.growth,
                    "p50": h.percentile(50), "p99": h.percentile(99),
                    "buckets": {str(i): n for i, n in sorted(h._buckets.items())},
                }
                for h in self.histograms()
            ],
        }

    def publish(self, db, now: float, *, default_source: str = "telemetry") -> int:
        """Bridge the registry into a :class:`MetricsDb`-shaped store.

        Counters and gauges insert as points at ``now``; histograms insert
        their count, mean, and p50/p99 summaries.  Returns the number of
        points written.  ``db`` is duck-typed on ``insert(metric, source,
        time, value)`` so this module never imports ``repro.monitoring``.
        """
        written = 0
        for c in self.counters():
            db.insert(c.name, c.source or default_source, now, c.value)
            written += 1
        for g in self.gauges():
            db.insert(g.name, g.source or default_source, now, g.value)
            written += 1
        for h in self.histograms():
            src = h.source or default_source
            db.insert(f"{h.name}.count", src, now, float(h.count))
            db.insert(f"{h.name}.mean", src, now, h.mean)
            db.insert(f"{h.name}.p50", src, now, h.percentile(50))
            db.insert(f"{h.name}.p99", src, now, h.percentile(99))
            written += 4
        return written


#: the process-wide default registry — disabled, so un-traced runs pay one
#: attribute check per instrument call and nothing else.
_default = Telemetry(enabled=False)


def get_telemetry() -> Telemetry:
    """The process-wide registry (disabled unless something enabled it)."""
    return _default


def set_telemetry(registry: Telemetry) -> Telemetry:
    """Install ``registry`` as the process-wide default; returns the old one."""
    global _default
    previous, _default = _default, registry
    return previous


@contextmanager
def use_telemetry(registry: Telemetry) -> Iterator[Telemetry]:
    """Scoped :func:`set_telemetry` — restores the previous default on exit."""
    previous = set_telemetry(registry)
    try:
        yield registry
    finally:
        set_telemetry(previous)
