"""The non-omniscient detector: MTTD emerges from the pipeline.

Where the analytic :class:`~repro.resilience.detector.Detector` *models*
detection latency (poll grid + geometric misses + debounce), the
:class:`ObservedDetector` *derives* it from the monitoring overlay's own
physics.  A fault injected at ``t`` on host ``h`` becomes visible at the
root when the agent watching ``h`` next scrapes (the shared grid
``k * scrape_interval``, the same grid shape as the analytic model — so
the paired study compares like with like), plus one tree traversal
(``depth(agent) * hop_latency``), plus the batches the fabric lost on the
way up (each lost batch costs one more scrape interval; geometric with
the overlay's ``loss_probability``, capped at
:data:`~repro.obs.overlay.config.MAX_LOST_BATCHES`), plus the alert
debounce.

The loss-free part is an exact closed form — the acceptance criterion's
"deterministic function of scrape interval + tree depth" — exposed as
:meth:`expected_delay` so tests can assert strict monotonicity:
tightening the cadence shrinks the grid wait, widening the fan-in
shallows the tree, and both strictly reduce MTTD.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.faults.events import PlannedFault
from repro.faults.injectors import injector_for
from repro.resilience.detector import DetectionModel

from repro.obs.overlay.config import MAX_LOST_BATCHES, OverlayConfig
from repro.obs.overlay.tree import AggregationTree

__all__ = ["ObservedDetector", "resolver_for_system"]


class ObservedDetector:
    """Drop-in for the resilience detector, backed by the overlay.

    Args:
        model: the resilience pipeline's :class:`DetectionModel` — only
            its ``debounce`` is used here; cadence and loss come from the
            overlay config, which is the point.
        config: the overlay's knobs (scrape cadence, hop latency, loss).
        tree: the aggregation tree the samples climb.
        host_to_agent: explicit host → agent-name map (OSS → its SSU
            agent, router → its module agent, …).  Hosts not in the map
            fall back to their prefix before the first dot (covers
            ``ssu03.enc2`` → ``ssu03``), then to the deepest agent —
            conservative: an unmapped host is assumed worst-case far.
        resolve_host: fault → health-event host (the campaign's injector
            ``host()``, closed over the live system).
        rng: the named substream batch-loss retries draw from
            (conventionally ``streams.get("obs.overlay.detect")``).
    """

    def __init__(
        self,
        model: DetectionModel,
        *,
        config: OverlayConfig,
        tree: AggregationTree,
        host_to_agent: dict[str, str],
        resolve_host: Callable[[PlannedFault], str],
        rng: np.random.Generator,
    ) -> None:
        self.model = model
        self.config = config
        self.tree = tree
        self._host_to_agent = dict(host_to_agent)
        self._resolve_host = resolve_host
        self._rng = rng
        agents = tree.agents
        self._agent_set = frozenset(agents)
        self._deepest_agent = max(
            agents, key=lambda name: (tree.depth_of(name), name))

    def agent_for(self, host: str) -> str:
        """The monitoring agent whose sweeps cover ``host``."""
        agent = self._host_to_agent.get(host)
        if agent is not None:
            return agent
        prefix = host.split(".", 1)[0]
        agent = self._host_to_agent.get(prefix)
        if agent is not None:
            return agent
        if prefix in self._agent_set:
            return prefix
        return self._deepest_agent

    def expected_delay(self, host: str, at: float) -> float:
        """The loss-free detection delay for a fault on ``host`` at sim
        time ``at`` — the exact closed form the acceptance criterion
        names:

        ``(next scrape grid tick after at) - at
        + depth(agent) * hop_latency + debounce``

        Strictly decreasing in scrape cadence and in agent depth, hence
        in fan-in (wider fan-in ⇒ fewer relay levels ⇒ smaller depth).
        """
        config = self.config
        next_sweep = (math.floor(at / config.scrape_interval) + 1) \
            * config.scrape_interval
        agent = self.agent_for(host)
        tree_lag = self.tree.depth_of(agent) * config.hop_latency
        return (next_sweep - at) + tree_lag + self.model.debounce

    def delay_for(self, fault: PlannedFault, at: float) -> float:
        """Seconds from injection of ``fault`` at ``at`` to its alert.

        The loss-free :meth:`expected_delay` plus one scrape interval per
        lost batch — exactly one uniform draw per loss check, in fault
        call order, so the sequence is independent of telemetry and
        tracing (the same contract as the analytic detector).
        """
        host = self._resolve_host(fault)
        delay = self.expected_delay(host, at)
        loss = self.config.loss_probability
        for _batch in range(MAX_LOST_BATCHES):
            if float(self._rng.random()) >= loss:
                break
            delay += self.config.scrape_interval
        return delay


def resolver_for_system(system) -> Callable[[PlannedFault], str]:
    """A fault → host resolver closed over a built Spider system, using
    the campaign injectors' own ``host()`` mapping."""
    def resolve(fault: PlannedFault) -> str:
        return injector_for(fault).host(system, fault)
    return resolve
