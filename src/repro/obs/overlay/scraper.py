"""Per-node monitoring agents: probes, samples, and the scrapers.

A :class:`Probe` is one ground-truth reader — a closure over live system
state (a couplet's failover-aware bandwidth cap, a cable's health bit, a
router module's live count) that the overlay samples on its cadence.
Probe metrics all carry the ``mon.`` prefix so the canonical rollup set
is disjoint from mirrored telemetry names by construction.

:func:`probes_for_system` builds the standard agent inventory for a
:class:`~repro.core.spider.SpiderSystem`: one agent per SSU (couplet
state, degraded RAID groups, and the IB cables of its OSSes), one agent
per LNET router module, and one agent per metadata server.  Agent count
therefore scales with cabinets, not hosts — ~150 agents on the full
Spider II, ~12 on the test mini — which keeps overlay event cost bounded.

A :class:`Scraper` may also *mirror* the in-process telemetry registry
(the MELT bridge): when the registry is enabled, the flow solver's
``flow.layer.*`` gauges ride the same batches up the tree, giving the
Lesson-12 report an overlay *view* to diff against ground truth.  The
mirror reads the registry only when enabled and mirrored metrics are
excluded from rollups, so rollups stay bit-identical with telemetry on or
off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.hardware.raid import RaidState
from repro.obs.instruments import get_telemetry

__all__ = [
    "Probe",
    "Sample",
    "Scraper",
    "probes_for_system",
    "scheduler_probes",
    "routing_probes",
]

#: metric-name prefix of every canonical (rollup-eligible) overlay probe
PROBE_PREFIX = "mon."

#: telemetry gauge names the MELT bridge mirrors up the tree when the
#: registry is enabled (the Lesson-12 layer surface)
MIRRORED_GAUGES = ("flow.layer.load", "flow.layer.capacity")


@dataclass(frozen=True)
class Probe:
    """One ground-truth reader an agent samples each sweep.

    ``metric`` must carry the ``mon.`` prefix; ``source`` names the
    entity measured (an SSU, an OSS cable, a router module, an MDS);
    ``read`` returns the current value (pure: no mutation, no RNG);
    ``counter`` marks monotonically increasing values so the collector
    computes a rate for them.
    """

    metric: str
    source: str
    read: Callable[[], float] = field(compare=False)
    counter: bool = False

    def __post_init__(self) -> None:
        if not self.metric.startswith(PROBE_PREFIX):
            raise ValueError(
                f"probe metric {self.metric!r} must start with "
                f"{PROBE_PREFIX!r}")


@dataclass(frozen=True)
class Sample:
    """One sampled value: ``metric``/``source`` read at sim time
    ``sampled_at``."""

    metric: str
    source: str
    value: float
    sampled_at: float


class Scraper:
    """One monitoring agent: sweeps its probes on the overlay cadence.

    Args:
        name: the agent's name — also its leaf node in the aggregation
            tree and the host-resolution target of the observed detector.
        leaf: the fabric leaf switch the agent hangs off.
        probes: the ground-truth readers this agent owns.
        mirror_telemetry: when ``True`` the agent also samples the
            mirrored telemetry gauges (:data:`MIRRORED_GAUGES`) from the
            process registry *if it is enabled* — the MELT bridge.  The
            sweep itself always runs, so the overlay's event and RNG
            schedule is identical with the registry on or off.
    """

    def __init__(
        self,
        name: str,
        leaf: int,
        probes: list[Probe],
        *,
        mirror_telemetry: bool = False,
    ) -> None:
        self.name = name
        self.leaf = int(leaf)
        self.probes = list(probes)
        self.mirror_telemetry = mirror_telemetry

    def sweep(self, now: float) -> tuple[Sample, ...]:
        """Read every probe (and the telemetry mirror, when enabled) at
        sim time ``now``; returns the batch payload."""
        samples = [
            Sample(p.metric, p.source, float(p.read()), now)
            for p in self.probes
        ]
        if self.mirror_telemetry:
            telemetry = get_telemetry()
            if telemetry.enabled:
                mirrored = set(MIRRORED_GAUGES)
                for gauge in telemetry.gauges():
                    if gauge.name in mirrored:
                        samples.append(Sample(
                            gauge.name, gauge.source, gauge.value, now))
        return tuple(samples)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Scraper({self.name!r}, leaf={self.leaf}, "
                f"probes={len(self.probes)})")


def _ssu_scraper(system, ssu_index: int) -> Scraper:
    """The agent watching one SSU: couplet, RAID groups, OSS cables."""
    ssu = system.ssus[ssu_index]
    # Nominal is the couplet cap at overlay construction (both
    # controllers online), so the fraction reads 1.0 healthy and ~0.5
    # after a failover regardless of controller generation.
    nominal = float(ssu.couplet.bw_cap(fs_level=True)) or 1.0
    probes = [
        Probe(
            "mon.couplet_bw_frac", ssu.name,
            lambda s=ssu, n=nominal: s.couplet.bw_cap(fs_level=True) / n),
        # Counted directly (not via group_state_factors) — this runs on
        # every sweep and must not build a numpy array per read.
        Probe(
            "mon.groups_degraded", ssu.name,
            lambda s=ssu: float(sum(1 for g in s.groups
                                    if g.state is not RaidState.CLEAN))),
    ]
    fabric = system.fabric
    for oss in system.osses:
        if oss.ssu_index != ssu_index:
            continue
        probes.append(Probe(
            "mon.cable_ok", oss.name,
            lambda f=fabric, h=oss.name: 1.0 if f.cable_of(h).healthy
            else 0.0))
        probes.append(Probe(
            "mon.cable_errors", oss.name,
            lambda f=fabric, h=oss.name: float(f.cable_of(h).symbol_errors),
            counter=True))
    leaf = min((oss.leaf for oss in system.osses
                if oss.ssu_index == ssu_index),
               default=ssu_index % system.fabric.spec.n_leaf_switches)
    return Scraper(ssu.name, leaf, probes)


def _router_module_scrapers(system) -> list[Scraper]:
    """One agent per LNET router module (``rtrNNN``), counting live
    routers against the module's slot count."""
    modules: dict[str, list] = {}
    for router in system.routers:
        modules.setdefault(router.name.split(".")[0], []).append(router)
    scrapers = []
    lnet = system.lnet
    for module in sorted(modules):
        routers = modules[module]

        def _frac(rs=tuple(routers), cfg=lnet) -> float:
            live = sum(1 for r in rs if cfg.router_online(r.name))
            return live / len(rs)

        scrapers.append(Scraper(
            module, routers[0].leaf,
            [Probe("mon.routers_online_frac", module, _frac)]))
    return scrapers


def _mds_scrapers(system) -> list[Scraper]:
    """One agent per namespace MDS, reading its served-op and busy-time
    ground-truth counters."""
    scrapers = []
    for fs_name in sorted(system.filesystems):
        mds = system.filesystems[fs_name].mds
        scrapers.append(Scraper(mds.name, 0, [
            Probe("mon.mds_busy_seconds", mds.name,
                  lambda m=mds: float(m.busy_seconds), counter=True),
            Probe("mon.mds_ops", mds.name,
                  lambda m=mds: float(m.ops_served), counter=True),
        ]))
    return scrapers


def probes_for_system(system, *, extra_probes: list[Probe] | None = None,
                      ) -> list[Scraper]:
    """The standard agent inventory for a built Spider system.

    Args:
        system: a :class:`~repro.core.spider.SpiderSystem`.
        extra_probes: optional additional probes (e.g. the scheduler-class
            surface from :func:`scheduler_probes`), attached to a
            dedicated ``aux`` agent on leaf 0.

    Returns:
        One :class:`Scraper` per SSU, per router module, and per MDS,
        plus the telemetry-mirroring ``flowstats`` agent, sorted by name.
    """
    scrapers = [_ssu_scraper(system, i) for i in range(len(system.ssus))]
    scrapers.extend(_router_module_scrapers(system))
    scrapers.extend(_mds_scrapers(system))
    scrapers.append(Scraper("flowstats", 0, [], mirror_telemetry=True))
    if extra_probes:
        scrapers.append(Scraper("aux", 0, list(extra_probes)))
    scrapers.sort(key=lambda s: s.name)
    return scrapers


def scheduler_probes(scheduler) -> list[Probe]:
    """Scheduler-class probes: live per-class ingest caps as gauges.

    ``scheduler`` is duck-typed on
    :meth:`repro.sched.scheduler.FacilityScheduler.ingest_capacities`;
    each platform class becomes one ``mon.sched_ingest_cap`` gauge
    (bytes/s) so the overlay's view of scheduler capacity degrades with
    router faults exactly as the arbiter's does.
    """
    probes = []
    for cls_value, _cap in scheduler.ingest_capacities():
        def _read(sched=scheduler, cls=cls_value) -> float:
            caps = dict(sched.ingest_capacities())
            return float(caps[cls])

        probes.append(Probe("mon.sched_ingest_cap", cls_value, _read))
    return probes


def routing_probes(builder, components: list[str]) -> list[Probe]:
    """Per-link utilization probes for the routing layer's feed.

    ``builder`` is duck-typed on
    :meth:`repro.core.path.PathBuilder.link_utilization`; each watched
    component becomes one ``mon.link_util`` gauge.  This is the only
    channel through which the adaptive policy sees solver outcomes: the
    values ride the overlay's sweep/window cadence, so routing reacts to
    what a monitoring system would have shown minutes ago, not to
    in-process truth — and the reads are plain method calls, never the
    telemetry registry, so decisions stay bit-identical with telemetry
    on or off.
    """
    return [
        Probe("mon.link_util", comp,
              lambda b=builder, c=comp: float(b.link_utilization(c)))
        for comp in components
    ]
