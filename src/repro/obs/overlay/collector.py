"""The root collector: windowed rollups, staleness tagging, MELT bridge.

Batches arriving from the aggregation tree buffer until the window
closes; each close folds the buffered samples into one :class:`Rollup`
per canonical (``mon.``-prefixed) metric — sample counts, staleness
counts, and the mean/max/p99 of the freshest per-source values, plus a
rate for counter probes — and streams them into a
:class:`~repro.monitoring.metricsdb.MetricsDb` and a sweep span on the
:class:`~repro.obs.trace.Tracer`.

Two invariants the test suite enforces:

* **Ingest-order independence** — folds operate on samples sorted by
  ``(metric, source, sampled_at, value)`` and per-source freshness is a
  max, so delivering the same window's batches in any order produces
  bit-identical rollups (the same boundary contract as the PR 5
  ``LustreHealthChecker`` partition).
* **Telemetry neutrality** — only ``mon.`` metrics enter rollups;
  mirrored telemetry gauges update the overlay-view gauges (the
  Lesson-12 lag column) and nothing else, so rollups are bit-identical
  with the registry enabled or disabled.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.obs.instruments import get_telemetry
from repro.obs.trace import get_tracer

from repro.obs.overlay.scraper import PROBE_PREFIX, Sample

__all__ = ["Rollup", "CollectorSink"]


@dataclass(frozen=True)
class Rollup:
    """One metric's aggregate over one closed window.

    ``rate`` is the per-second change of the summed per-source values
    since the previous window (0 for gauge metrics and on counter
    resets); ``mean``/``max``/``p99`` summarize the freshest value per
    source inside the window.  All fields are plain values, so rollup
    tuples from identically seeded runs compare equal with ``==``.
    """

    window_end: float
    metric: str
    n_sources: int
    n_samples: int
    n_stale: int
    rate: float
    mean: float
    max: float
    p99: float


def _percentile(sorted_values: list[float], p: float) -> float:
    """Nearest-rank percentile of an ascending list (exact, not binned)."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(p / 100.0 * len(sorted_values)))
    return sorted_values[rank - 1]


class CollectorSink:
    """Buffers delivered batches and folds them at window close.

    Args:
        rollup_interval: window width in seconds (used for span naming;
            the runtime owns the close schedule).
        staleness_limit: samples older than this at window close are
            tagged stale (they still aggregate — stale beats absent, but
            the operator surface must say so).
        counter_metrics: canonical metric names whose probes are
            monotone counters; these get a ``rate`` in their rollups.
        db: optional :class:`~repro.monitoring.metricsdb.MetricsDb`
            receiving ``overlay.*`` points at every window close.
    """

    def __init__(
        self,
        *,
        rollup_interval: float,
        staleness_limit: float,
        counter_metrics: frozenset[str] = frozenset(),
        db=None,
    ) -> None:
        if rollup_interval <= 0:
            raise ValueError("rollup_interval must be positive")
        if staleness_limit <= 0:
            raise ValueError("staleness_limit must be positive")
        self.rollup_interval = float(rollup_interval)
        self.staleness_limit = float(staleness_limit)
        self.counter_metrics = frozenset(counter_metrics)
        self.db = db
        self.rollups: list[Rollup] = []
        self.n_windows = 0
        self.n_samples = 0
        self.n_stale = 0
        self._buffer: list[Sample] = []
        #: freshest delivered (value, sampled_at) per canonical
        #: (metric, source) — the overlay's current belief
        self._view: dict[tuple[str, str], tuple[float, float]] = {}
        #: freshest mirrored telemetry (value, sampled_at) per
        #: (metric, source) — feeds the Lesson-12 lag gauges only
        self._mirror: dict[tuple[str, str], tuple[float, float]] = {}
        #: previous window's (close time, summed value) per counter metric
        self._counter_last: dict[str, tuple[float, float]] = {}

    # -- ingest ---------------------------------------------------------------

    def deliver(self, samples: tuple[Sample, ...], now: float) -> None:
        """A batch arrived at the root at sim time ``now``; buffer it
        until the window closes.  ``now`` is unused beyond the contract
        that batches for a window arrive before its close."""
        del now
        self._buffer.extend(samples)

    # -- window close ---------------------------------------------------------

    def close_window(self, now: float) -> list[Rollup]:
        """Fold the buffered samples into per-metric rollups at ``now``.

        Returns the new rollups (also appended to :attr:`rollups`).
        Folding sorts the buffer first, so the result is independent of
        batch arrival order within the window.
        """
        window = sorted(
            (s for s in self._buffer if s.metric.startswith(PROBE_PREFIX)),
            key=lambda s: (s.metric, s.source, s.sampled_at, s.value))
        mirrored = sorted(
            (s for s in self._buffer if not s.metric.startswith(PROBE_PREFIX)),
            key=lambda s: (s.metric, s.source, s.sampled_at, s.value))
        self._buffer.clear()

        # Freshest sample per (metric, source): last in sort order.
        for sample in window:
            self._view[(sample.metric, sample.source)] = (
                sample.value, sample.sampled_at)
        for sample in mirrored:
            self._mirror[(sample.metric, sample.source)] = (
                sample.value, sample.sampled_at)

        per_metric: dict[str, list[Sample]] = {}
        for sample in window:
            per_metric.setdefault(sample.metric, []).append(sample)

        new_rollups = []
        for metric in sorted(per_metric):
            samples = per_metric[metric]
            n_stale = sum(1 for s in samples
                          if now - s.sampled_at > self.staleness_limit)
            fresh: dict[str, float] = {}
            for s in samples:  # sorted: later samples overwrite earlier
                fresh[s.source] = s.value
            values = sorted(fresh.values())
            rate = 0.0
            if metric in self.counter_metrics:
                total = sum(values)
                last = self._counter_last.get(metric)
                if last is not None:
                    t_last, v_last = last
                    dt = now - t_last
                    # A negative delta is a counter reset (a replaced
                    # cable, a restarted MDS): restart the window.
                    if dt > 0 and total >= v_last:
                        rate = (total - v_last) / dt
                self._counter_last[metric] = (now, total)
            rollup = Rollup(
                window_end=now,
                metric=metric,
                n_sources=len(values),
                n_samples=len(samples),
                n_stale=n_stale,
                rate=rate,
                mean=sum(values) / len(values),
                max=values[-1],
                p99=_percentile(values, 99.0),
            )
            new_rollups.append(rollup)
            self.n_samples += len(samples)
            self.n_stale += n_stale
        self.rollups.extend(new_rollups)
        self.n_windows += 1

        if self.db is not None:
            for r in new_rollups:
                self.db.insert(f"overlay.{r.metric}.mean", "overlay",
                               now, r.mean)
                self.db.insert(f"overlay.{r.metric}.max", "overlay",
                               now, r.max)
                self.db.insert(f"overlay.{r.metric}.p99", "overlay",
                               now, r.p99)
                if r.metric in self.counter_metrics:
                    self.db.insert(f"overlay.{r.metric}.rate", "overlay",
                                   now, r.rate)
            self.db.insert("overlay.window.samples", "overlay", now,
                           float(sum(r.n_samples for r in new_rollups)))
            self.db.insert("overlay.window.stale", "overlay", now,
                           float(sum(r.n_stale for r in new_rollups)))

        self._publish_view_gauges(now)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.record(
                f"sweep:{self.n_windows - 1}", "overlay",
                now - self.rollup_interval, now,
                samples=sum(r.n_samples for r in new_rollups),
                stale=sum(r.n_stale for r in new_rollups),
                metrics=len(new_rollups))
        return new_rollups

    def _publish_view_gauges(self, now: float) -> None:
        """Expose the mirrored layer view (load + age) as telemetry
        gauges — the ``overlay.view.*`` surface the Lesson-12 report
        diffs against ground truth."""
        telemetry = get_telemetry()
        if not telemetry.enabled or not self._mirror:
            return
        for metric, source in sorted(self._mirror):
            value, sampled_at = self._mirror[(metric, source)]
            if metric == "flow.layer.load":
                telemetry.gauge("overlay.view.load", source).set(value)
                telemetry.gauge("overlay.view.age_seconds", source).set(
                    now - sampled_at)
            elif metric == "flow.layer.capacity":
                telemetry.gauge("overlay.view.capacity", source).set(value)

    # -- queries --------------------------------------------------------------

    def view(self) -> dict[tuple[str, str], tuple[float, float]]:
        """The overlay's current belief: freshest delivered ``(value,
        sampled_at)`` per canonical (metric, source)."""
        return dict(self._view)

    def latest_rollups(self) -> list[Rollup]:
        """The rollups of the most recently closed window (metric-sorted)."""
        if not self.rollups:
            return []
        last_end = self.rollups[-1].window_end
        return [r for r in self.rollups if r.window_end == last_end]
