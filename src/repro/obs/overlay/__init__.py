"""The in-band monitoring overlay (MELT-style tree aggregation).

Per-node :class:`~repro.obs.overlay.scraper.Scraper` agents sample
ground-truth probes on a seeded cadence; an
:class:`~repro.obs.overlay.tree.AggregationTree` spanning the SION
leaf/core fabric carries the batches to a root
:class:`~repro.obs.overlay.collector.CollectorSink` with per-hop
latency, bounded fan-in, and seeded loss; the collector streams windowed
rollups into a :class:`~repro.monitoring.metricsdb.MetricsDb`, feeds an
:class:`~repro.obs.overlay.alerts.AlertEngine`, and backs the
non-omniscient :class:`~repro.obs.overlay.observed.ObservedDetector`.

Deliberately *not* imported from :mod:`repro.obs` itself: the overlay
reaches down into faults/core/sched surfaces that the leaf ``obs``
package must stay independent of.
"""

from repro.obs.overlay.alerts import (
    Alert,
    AlertEngine,
    BurnRateRule,
    ThresholdRule,
    default_rules,
)
from repro.obs.overlay.collector import CollectorSink, Rollup
from repro.obs.overlay.config import OverlayConfig
from repro.obs.overlay.observed import ObservedDetector, resolver_for_system
from repro.obs.overlay.runtime import MonitoringOverlay, OverlayOutcome
from repro.obs.overlay.scraper import (
    Probe,
    Sample,
    Scraper,
    probes_for_system,
    scheduler_probes,
)
from repro.obs.overlay.study import MttdArm, MttdStudyResult, run_mttd_study
from repro.obs.overlay.tree import AggregationTree

__all__ = [
    "AggregationTree",
    "Alert",
    "AlertEngine",
    "BurnRateRule",
    "CollectorSink",
    "MonitoringOverlay",
    "MttdArm",
    "MttdStudyResult",
    "ObservedDetector",
    "OverlayConfig",
    "OverlayOutcome",
    "Probe",
    "Rollup",
    "Sample",
    "Scraper",
    "ThresholdRule",
    "default_rules",
    "probes_for_system",
    "resolver_for_system",
    "run_mttd_study",
    "scheduler_probes",
]
