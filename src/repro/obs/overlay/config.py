"""Configuration of the in-band monitoring overlay.

One frozen dataclass holds every knob of the MELT-style pipeline
(arXiv:1504.06836): how often per-node agents scrape their probes, how
the aggregation tree is shaped (bounded fan-in inserts relay hops), what
one tree hop costs in propagation latency, how often a sample batch is
lost on the way up, how wide the root collector's rollup windows are, and
when a delivered sample counts as stale.  The config is pure data — the
runtime (:mod:`repro.obs.overlay.runtime`) turns it into engine
processes, and the observed detector
(:mod:`repro.obs.overlay.observed`) turns it into an MTTD formula — so
a paired study can sweep cadence and fan-in without touching code.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["OverlayConfig"]

#: default per-agent scrape cadence (seconds) — matches the analytic
#: detector's poll grid so the paired study compares like with like
DEFAULT_SCRAPE_INTERVAL = 30.0
#: default per-hop propagation latency up the aggregation tree (seconds)
DEFAULT_HOP_LATENCY = 1.0
#: default bounded fan-in of every tree node (children per parent)
DEFAULT_FAN_IN = 8
#: default per-batch loss probability on the path to the root — matches
#: the analytic detector's per-sweep miss probability
DEFAULT_LOSS_PROBABILITY = 0.02
#: default root rollup window (seconds)
DEFAULT_ROLLUP_INTERVAL = 60.0
#: cap on consecutive lost batches the observed detector will model, so
#: a pathological loss probability cannot stall detection unboundedly
#: (mirrors ``resilience.detector.MAX_MISSED_SWEEPS``)
MAX_LOST_BATCHES = 20


@dataclass(frozen=True)
class OverlayConfig:
    """Every knob of the monitoring overlay, all times in seconds.

    ``scrape_interval`` is the per-agent poll cadence (agents tick on the
    shared grid ``k * scrape_interval``, like the analytic detector's
    poll grid).  ``fan_in`` bounds the children of every aggregation-tree
    node; smaller fan-in inserts relay hops, deepening the tree.
    ``hop_latency`` is the per-hop propagation cost, so an agent at depth
    ``d`` delivers ``d * hop_latency`` seconds after sampling.
    ``loss_probability`` is the chance one batch never reaches the root.
    ``staleness_limit`` tags samples older than this at window close
    (``None``: twice the scrape interval).  ``seed`` feeds the overlay's
    named RNG substreams (batch loss, detector loss retries).
    """

    scrape_interval: float = DEFAULT_SCRAPE_INTERVAL
    hop_latency: float = DEFAULT_HOP_LATENCY
    fan_in: int = DEFAULT_FAN_IN
    loss_probability: float = DEFAULT_LOSS_PROBABILITY
    rollup_interval: float = DEFAULT_ROLLUP_INTERVAL
    staleness_limit: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.scrape_interval <= 0:
            raise ValueError("scrape_interval must be positive")
        if self.hop_latency < 0:
            raise ValueError("hop_latency must be non-negative")
        if self.fan_in < 2:
            raise ValueError("fan_in must be at least 2")
        if not (0 <= self.loss_probability < 1):
            raise ValueError("loss_probability must be in [0, 1)")
        if self.rollup_interval <= 0:
            raise ValueError("rollup_interval must be positive")
        if self.staleness_limit is not None and self.staleness_limit <= 0:
            raise ValueError("staleness_limit must be positive")

    @property
    def effective_staleness_limit(self) -> float:
        """The staleness cutoff actually applied (seconds): the explicit
        ``staleness_limit`` or twice the scrape interval."""
        if self.staleness_limit is not None:
            return self.staleness_limit
        return 2.0 * self.scrape_interval

    def tightened(self, *, cadence_factor: float = 3.0,
                  fan_in_factor: int = 2) -> "OverlayConfig":
        """A derived config with a faster cadence and wider fan-in — the
        "tightened" arm of the MTTD study.

        Args:
            cadence_factor: divide the scrape interval by this (> 1).
            fan_in_factor: multiply the fan-in by this (>= 1).
        """
        if cadence_factor <= 1:
            raise ValueError("cadence_factor must be > 1")
        if fan_in_factor < 1:
            raise ValueError("fan_in_factor must be >= 1")
        return OverlayConfig(
            scrape_interval=self.scrape_interval / cadence_factor,
            hop_latency=self.hop_latency,
            fan_in=self.fan_in * fan_in_factor,
            loss_probability=self.loss_probability,
            rollup_interval=self.rollup_interval,
            staleness_limit=self.staleness_limit,
            seed=self.seed,
        )
