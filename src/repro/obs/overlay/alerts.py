"""Alerting on the overlay view — never on ground truth.

The :class:`AlertEngine` consumes only what the collector actually
delivered: per-source freshest values for threshold rules, per-window
rollup rates for burn-rate rules.  A fault the overlay has not yet seen
(lost batches, tree lag, scrape phase) therefore cannot fire an alert —
which is the point: alert timing inherits the monitoring pipeline's
physics instead of the simulator's omniscience.

Threshold rules debounce by consecutive windows (``for_windows``) and
latch per source — one alert per excursion, not one per window.  A
source returning in bounds resets its streak and unlatches, so the next
excursion alerts again.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.overlay.collector import Rollup

__all__ = [
    "Alert",
    "ThresholdRule",
    "BurnRateRule",
    "AlertEngine",
    "default_rules",
]


@dataclass(frozen=True)
class Alert:
    """One fired alert: ``rule`` on ``metric``/``source`` observed at
    sim time ``time`` with offending ``value``."""

    time: float
    rule: str
    metric: str
    source: str
    value: float


@dataclass(frozen=True)
class ThresholdRule:
    """Fire when a source's freshest value crosses a bound for
    ``for_windows`` consecutive windows.

    Exactly one of ``below``/``above`` must be set; the rule latches per
    source until the value returns in bounds.
    """

    name: str
    metric: str
    below: float | None = None
    above: float | None = None
    for_windows: int = 1

    def __post_init__(self) -> None:
        if (self.below is None) == (self.above is None):
            raise ValueError(
                f"rule {self.name!r}: set exactly one of below/above")
        if self.for_windows < 1:
            raise ValueError(f"rule {self.name!r}: for_windows must be >= 1")

    def breached(self, value: float) -> bool:
        """Is ``value`` out of bounds for this rule?"""
        if self.below is not None:
            return value < self.below
        return value > self.above


@dataclass(frozen=True)
class BurnRateRule:
    """Fire when a counter metric's short-term rate exceeds ``factor``
    times its long-term rate (and a floor), the classic multi-window
    burn-rate shape.

    ``short_windows``/``long_windows`` are rollup-window counts; the
    floor ``threshold_rate`` suppresses alerts while both rates are
    negligible (a brand-new overlay has no history to burn against).
    """

    name: str
    metric: str
    threshold_rate: float
    short_windows: int = 2
    long_windows: int = 10
    factor: float = 4.0

    def __post_init__(self) -> None:
        if not 1 <= self.short_windows < self.long_windows:
            raise ValueError(
                f"rule {self.name!r}: need 1 <= short_windows < long_windows")
        if self.threshold_rate < 0:
            raise ValueError(
                f"rule {self.name!r}: threshold_rate must be non-negative")
        if self.factor <= 1:
            raise ValueError(f"rule {self.name!r}: factor must be > 1")


class AlertEngine:
    """Evaluates rules against each closed window's overlay state.

    Args:
        threshold_rules: per-source freshest-value rules.
        burn_rate_rules: per-metric rollup-rate rules.
    """

    def __init__(
        self,
        threshold_rules: list[ThresholdRule] | None = None,
        burn_rate_rules: list[BurnRateRule] | None = None,
    ) -> None:
        self.threshold_rules = list(threshold_rules or [])
        self.burn_rate_rules = list(burn_rate_rules or [])
        self.alerts: list[Alert] = []
        #: (rule name, source) -> consecutive breached-window count
        self._streaks: dict[tuple[str, str], int] = {}
        #: latched (rule name, source) pairs — alerted, not yet recovered
        self._latched: set[tuple[str, str]] = set()
        #: per burn-rate metric: window-end -> rate history (ordered)
        self._rate_history: dict[str, list[float]] = {}

    def observe_window(
        self,
        now: float,
        view: dict[tuple[str, str], tuple[float, float]],
        rollups: list[Rollup],
    ) -> list[Alert]:
        """Evaluate every rule against one closed window.

        Args:
            now: the window-close sim time.
            view: the collector's freshest ``(value, sampled_at)`` per
                (metric, source) — :meth:`CollectorSink.view`.
            rollups: the window's new rollups.

        Returns:
            Alerts fired this window (also appended to :attr:`alerts`).
        """
        fired = []
        for rule in self.threshold_rules:
            for metric, source in sorted(view):
                if metric != rule.metric:
                    continue
                value, _sampled_at = view[(metric, source)]
                key = (rule.name, source)
                if rule.breached(value):
                    streak = self._streaks.get(key, 0) + 1
                    self._streaks[key] = streak
                    if streak >= rule.for_windows and key not in self._latched:
                        self._latched.add(key)
                        fired.append(Alert(now, rule.name, metric, source,
                                           value))
                else:
                    self._streaks[key] = 0
                    self._latched.discard(key)

        rates = {r.metric: r.rate for r in rollups}
        for rule in self.burn_rate_rules:
            history = self._rate_history.setdefault(rule.metric, [])
            history.append(rates.get(rule.metric, 0.0))
            del history[:-rule.long_windows]
            if len(history) < rule.long_windows:
                continue
            short = sum(history[-rule.short_windows:]) / rule.short_windows
            long = sum(history) / len(history)
            key = (rule.name, "overlay")
            if short > rule.threshold_rate and short > rule.factor * long:
                if key not in self._latched:
                    self._latched.add(key)
                    fired.append(Alert(now, rule.name, rule.metric,
                                       "overlay", short))
            else:
                self._latched.discard(key)

        self.alerts.extend(fired)
        return fired


def default_rules() -> tuple[list[ThresholdRule], list[BurnRateRule]]:
    """The stock rule set for a Spider system overlay: couplet failover,
    cable loss, router-module loss, and a cable-error burn rate."""
    thresholds = [
        ThresholdRule("couplet-degraded", "mon.couplet_bw_frac", below=0.95),
        ThresholdRule("cable-down", "mon.cable_ok", below=0.5),
        ThresholdRule("routers-down", "mon.routers_online_frac", below=0.95),
        ThresholdRule("raid-rebuilding", "mon.groups_degraded", above=0.5,
                      for_windows=2),
    ]
    burn_rates = [
        BurnRateRule("cable-error-burn", "mon.cable_errors",
                     threshold_rate=1.0),
    ]
    return thresholds, burn_rates
