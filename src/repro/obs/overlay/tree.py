"""The aggregation tree: agents → leaf switches → cores → root collector.

MELT's architecture (arXiv:1504.06836) aggregates per-node samples up a
tree laid over the machine's own interconnect.  Here the tree spans the
SION fabric the simulated Spider systems already model: every monitoring
agent hangs off the leaf switch of the hardware it watches, leaf switches
hang off core switches, and the cores feed the root collector.  A bounded
fan-in caps the children of every node; where a level exceeds it,
intermediate *relay* nodes are inserted (k-ary packing), which is exactly
how fan-in buys shallowness — and why the observed detector's MTTD is a
function of fan-in: each extra relay level is one more ``hop_latency`` on
every sample from that subtree.

The tree is pure structure (a parent map + depth arithmetic); the runtime
schedules no per-hop events.  A batch created at an agent of depth ``d``
arrives at the root ``d * hop_latency`` seconds later in one engine event,
so overlay cost scales with agent count, not tree size.
"""

from __future__ import annotations

__all__ = ["AggregationTree"]

#: the root node's name in the parent map
ROOT = "collector"


class AggregationTree:
    """Parent map + depths of the overlay's aggregation topology.

    Args:
        agents: ``(agent name, leaf switch index)`` pairs — the tree's
            leaves.  Order does not matter; construction sorts by name.
        n_leaves: leaf-switch count of the fabric the tree spans.
        n_cores: core-switch count of the fabric.
        fan_in: maximum children per node (>= 2); levels wider than this
            get relay nodes inserted.
    """

    def __init__(
        self,
        agents: list[tuple[str, int]],
        *,
        n_leaves: int,
        n_cores: int,
        fan_in: int,
    ) -> None:
        if not agents:
            raise ValueError("tree needs at least one agent")
        if n_leaves < 1 or n_cores < 1:
            raise ValueError("n_leaves and n_cores must be positive")
        if fan_in < 2:
            raise ValueError("fan_in must be at least 2")
        self.fan_in = int(fan_in)
        #: child name -> parent name; the root maps to ``None``
        self.parent: dict[str, str | None] = {ROOT: None}
        self.n_relays = 0

        by_leaf: dict[int, list[str]] = {}
        for name, leaf in sorted(agents):
            if not 0 <= leaf < n_leaves:
                raise ValueError(f"agent {name!r} on out-of-range leaf {leaf}")
            if name in self.parent:
                raise ValueError(f"duplicate agent name {name!r}")
            self.parent[name] = None  # reserve; assigned by _pack below
            by_leaf.setdefault(leaf, []).append(name)

        used_cores: dict[int, list[str]] = {}
        for leaf in sorted(by_leaf):
            leaf_node = f"leaf{leaf}"
            self.parent[leaf_node] = None
            self._pack(leaf_node, by_leaf[leaf])
            used_cores.setdefault(leaf % n_cores, []).append(leaf_node)
        core_nodes = []
        for core in sorted(used_cores):
            core_node = f"core{core}"
            self.parent[core_node] = None
            self._pack(core_node, used_cores[core])
            core_nodes.append(core_node)
        self._pack(ROOT, core_nodes)

        self._depths = {name: self._walk_depth(name) for name in self.parent}
        self._agents = sorted(name for name, _leaf in agents)

    def _pack(self, parent: str, children: list[str]) -> None:
        """Attach ``children`` under ``parent``, inserting relay levels
        whenever a level exceeds the fan-in bound."""
        level = list(children)
        serial = 0
        while len(level) > self.fan_in:
            packed = []
            for i in range(0, len(level), self.fan_in):
                relay = f"{parent}.r{serial}"
                serial += 1
                self.n_relays += 1
                self.parent[relay] = None
                for child in level[i:i + self.fan_in]:
                    self.parent[child] = relay
                packed.append(relay)
            level = packed
        for child in level:
            self.parent[child] = parent

    def _walk_depth(self, name: str) -> int:
        depth = 0
        node: str | None = name
        while node is not None and node != ROOT:
            node = self.parent[node]
            depth += 1
            if depth > len(self.parent):  # pragma: no cover - defensive
                raise RuntimeError(f"parent cycle at {name!r}")
        return depth

    # -- queries --------------------------------------------------------------

    def depth_of(self, name: str) -> int:
        """Hops from node ``name`` to the root collector."""
        return self._depths[name]

    @property
    def agents(self) -> list[str]:
        """Agent (leaf-of-tree) names, sorted."""
        return list(self._agents)

    @property
    def max_depth(self) -> int:
        """Hops of the deepest agent — the worst-case tree lag in hops."""
        return max(self._depths[name] for name in self._agents)

    @property
    def n_nodes(self) -> int:
        """Total node count: agents + relays + switches + root."""
        return len(self.parent)

    def children_of(self, name: str) -> list[str]:
        """Direct children of ``name``, sorted (empty for agents)."""
        return sorted(c for c, p in self.parent.items() if p == name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"AggregationTree({len(self._agents)} agents, "
                f"fan_in={self.fan_in}, max_depth={self.max_depth}, "
                f"relays={self.n_relays})")
