"""The A16 experiment: analytic vs observed vs tightened MTTD.

:func:`run_mttd_study` runs the same fault plan on the same seed three
times, all with the closed-loop remediation enabled:

* **analytic** — the stock :class:`~repro.resilience.detector.Detector`
  (poll grid + geometric misses + debounce), no overlay;
* **observed** — the overlay rides the campaign and its
  :class:`~repro.obs.overlay.observed.ObservedDetector` feeds the
  pipeline, so MTTD now includes real tree lag and batch loss;
* **tight** — the same overlay with
  :meth:`~repro.obs.overlay.config.OverlayConfig.tightened` knobs
  (faster cadence, wider fan-in ⇒ shallower tree), demonstrating the
  acceptance criterion: tightening the monitoring pipeline strictly
  reduces MTTD, and the reduction is a closed-form function of scrape
  interval and tree depth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.resilience.playbooks import RemediationPolicy

from repro.obs.overlay.config import OverlayConfig
from repro.obs.overlay.runtime import MonitoringOverlay, OverlayOutcome

if TYPE_CHECKING:
    from repro.core.spider import SpiderSystem
    from repro.faults.plan import FaultPlan

__all__ = ["MttdArm", "MttdStudyResult", "run_mttd_study"]


@dataclass(frozen=True)
class MttdArm:
    """One arm of the MTTD study, reduced to comparable scalars."""

    name: str
    scrape_interval: float
    tree_depth: int
    mean_mttd_seconds: float
    mean_mttr_seconds: float
    availability: float
    n_faults: int
    overlay: OverlayOutcome | None = None

    def rows(self) -> list[tuple[str, str]]:
        """Key/value rows for the CLI report."""
        rows = [
            ("scrape/poll interval", f"{self.scrape_interval:,.1f} s"),
            ("tree depth", str(self.tree_depth) if self.tree_depth else "—"),
            ("mean MTTD", f"{self.mean_mttd_seconds:,.1f} s"),
            ("mean MTTR", f"{self.mean_mttr_seconds:,.1f} s"),
            ("availability", f"{self.availability:.3%}"),
        ]
        if self.overlay is not None:
            rows.append(("batches sent / lost",
                         f"{self.overlay.n_batches} / {self.overlay.n_lost}"))
            rows.append(("alerts fired", str(len(self.overlay.alerts))))
        return rows


@dataclass(frozen=True)
class MttdStudyResult:
    """Analytic vs observed vs tightened-overlay detection, one seed."""

    seed: int
    analytic: MttdArm
    observed: MttdArm
    tight: MttdArm

    @property
    def observed_penalty_seconds(self) -> float:
        """MTTD the monitoring pipeline adds over the analytic model."""
        return (self.observed.mean_mttd_seconds
                - self.analytic.mean_mttd_seconds)

    @property
    def tightening_gain_seconds(self) -> float:
        """MTTD removed by tightening cadence and fan-in."""
        return (self.observed.mean_mttd_seconds
                - self.tight.mean_mttd_seconds)

    def rows(self) -> list[tuple[str, str, str, str]]:
        """Comparison table rows: metric, analytic, observed, tight."""
        arms = (self.analytic, self.observed, self.tight)
        return [
            ("scrape/poll interval",
             *(f"{a.scrape_interval:,.1f} s" for a in arms)),
            ("tree depth",
             *(str(a.tree_depth) if a.tree_depth else "—" for a in arms)),
            ("mean MTTD", *(f"{a.mean_mttd_seconds:,.1f} s" for a in arms)),
            ("mean MTTR", *(f"{a.mean_mttr_seconds:,.1f} s" for a in arms)),
            ("availability", *(f"{a.availability:.3%}" for a in arms)),
        ]


def _arm(
    name: str,
    system_factory: "Callable[[], SpiderSystem]",
    plan_factory: "Callable[[SpiderSystem], FaultPlan]",
    *,
    duration: float | None,
    threshold: float,
    policy: RemediationPolicy,
    config: OverlayConfig | None,
) -> MttdArm:
    # Imported lazily to keep the overlay package import-light; the
    # campaign itself lazy-imports the resilience runner the same way.
    from repro.faults.campaign import FaultCampaign

    system = system_factory()
    plan = plan_factory(system)
    monitor = (MonitoringOverlay(system, config)
               if config is not None else None)
    result = FaultCampaign(
        system, plan,
        duration=duration,
        threshold=threshold,
        remediation=policy,
        monitor=monitor,
    ).run()
    remediation = result.remediation
    assert remediation is not None
    return MttdArm(
        name=name,
        scrape_interval=(config.scrape_interval if config is not None
                         else policy.detection.poll_interval),
        tree_depth=monitor.tree.max_depth if monitor is not None else 0,
        mean_mttd_seconds=remediation.mean_mttd_seconds,
        mean_mttr_seconds=remediation.mean_mttr_seconds,
        availability=result.availability,
        n_faults=remediation.n_faults,
        overlay=result.overlay,
    )


def run_mttd_study(
    system_factory: "Callable[[], SpiderSystem]",
    plan_factory: "Callable[[SpiderSystem], FaultPlan]",
    *,
    seed: int = 0,
    duration: float | None = None,
    threshold: float = 0.5,
    base: OverlayConfig | None = None,
) -> MttdStudyResult:
    """Run the analytic / observed / tightened triple on one plan.

    Args:
        system_factory: builds a *fresh* system per arm (campaigns mutate
            hardware state, so arms cannot share one instance).
        plan_factory: builds the fault plan from that system; must be
            deterministic so every arm faces the same faults.
        seed: seeds both the remediation policy and the overlay.
        duration: campaign horizon override.
        threshold: degradation threshold for the availability metric.
        base: the observed arm's overlay config (default
            :class:`OverlayConfig` with this ``seed``); the tight arm
            uses ``base.tightened()``.
    """
    if base is None:
        base = OverlayConfig(seed=seed)
    policy = RemediationPolicy(imperative=True, hp_journaling=True, seed=seed)
    analytic = _arm(
        "analytic", system_factory, plan_factory,
        duration=duration, threshold=threshold, policy=policy, config=None)
    observed = _arm(
        "observed", system_factory, plan_factory,
        duration=duration, threshold=threshold, policy=policy, config=base)
    tight = _arm(
        "tight", system_factory, plan_factory,
        duration=duration, threshold=threshold, policy=policy,
        config=base.tightened())
    return MttdStudyResult(
        seed=seed, analytic=analytic, observed=observed, tight=tight)
