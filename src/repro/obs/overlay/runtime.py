"""The overlay runtime: scrapers, tree, collector, and alerts on one engine.

:class:`MonitoringOverlay` assembles the full in-band pipeline for a
built Spider system and attaches it to a DES engine:

* one periodic process drives the shared scrape grid
  (``k * scrape_interval``): each tick sweeps every agent in name order
  — the seeded loss draw (one uniform per batch, from the
  ``obs.overlay.loss`` substream) therefore lands in a fixed order;
* each surviving batch reaches the root ``depth(agent) * hop_latency``
  after its sweep; batches sharing a depth share one delivery event
  (their arrival time is identical, and the collector sorts before
  folding), keeping engine cost per tick O(depths) rather than
  O(agents);
* a periodic collector process closes rollup windows and feeds the
  :class:`~repro.obs.overlay.alerts.AlertEngine` the overlay view.

The loss draw happens on every tick and the delivery event is scheduled
even for an empty payload, so the overlay's event and RNG schedule is
bit-identical with telemetry enabled or disabled — only the mirrored
payload (which never enters rollups) differs.

:meth:`MonitoringOverlay.detector` hands the resilience pipeline an
:class:`~repro.obs.overlay.observed.ObservedDetector` wired to this
overlay's tree and cadence; :meth:`MonitoringOverlay.outcome` freezes the
run into a plain-value :class:`OverlayOutcome` for reports and same-seed
equality tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.monitoring.metricsdb import MetricsDb
from repro.obs.instruments import get_telemetry
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams

from repro.obs.overlay.alerts import Alert, AlertEngine, default_rules
from repro.obs.overlay.collector import CollectorSink, Rollup
from repro.obs.overlay.config import OverlayConfig
from repro.obs.overlay.observed import ObservedDetector, resolver_for_system
from repro.obs.overlay.scraper import (
    Scraper,
    probes_for_system,
    scheduler_probes,
)
from repro.obs.overlay.tree import AggregationTree

__all__ = ["MonitoringOverlay", "OverlayOutcome"]

#: default per-series retention cap of the overlay's own MetricsDb
DEFAULT_MAX_POINTS = 4096
#: compacted-region granularity, in rollup windows
COMPACTION_WINDOWS = 10


@dataclass(frozen=True)
class OverlayOutcome:
    """The frozen result of one overlay run — plain values throughout,
    so outcomes from identically seeded runs compare equal with ``==``."""

    n_agents: int
    tree_depth: int
    n_relays: int
    n_batches: int
    n_lost: int
    n_samples: int
    n_stale: int
    n_windows: int
    rollups: tuple[Rollup, ...]
    alerts: tuple[Alert, ...]

    def rows(self) -> list[tuple[str, str]]:
        """Key/value summary rows for the CLI report."""
        return [
            ("monitoring agents", str(self.n_agents)),
            ("tree depth (max hops)", str(self.tree_depth)),
            ("relay nodes inserted", str(self.n_relays)),
            ("batches sent", str(self.n_batches)),
            ("batches lost", str(self.n_lost)),
            ("samples rolled up", str(self.n_samples)),
            ("stale samples", str(self.n_stale)),
            ("rollup windows closed", str(self.n_windows)),
            ("alerts fired", str(len(self.alerts))),
        ]

    def alert_rows(self) -> list[tuple[str, str, str, str]]:
        """Alert table rows: time, rule, source, value."""
        return [
            (f"{a.time:,.0f} s", a.rule, a.source, f"{a.value:.3g}")
            for a in self.alerts
        ]


class MonitoringOverlay:
    """The assembled in-band monitoring pipeline for one system.

    Args:
        system: a built :class:`~repro.core.spider.SpiderSystem`.
        config: the overlay knobs (default :class:`OverlayConfig`).
        scheduler: optional facility scheduler whose per-class ingest
            caps ride along as ``mon.sched_ingest_cap`` probes.
        extra_probes: optional additional probes for the ``aux`` agent
            (e.g. the per-link ``mon.link_util`` gauges from
            :func:`~repro.obs.overlay.scraper.routing_probes`), appended
            after any scheduler probes.
        db: optional :class:`~repro.monitoring.metricsdb.MetricsDb` sink;
            by default the overlay owns a retention-capped one
            (:data:`DEFAULT_MAX_POINTS` points, compaction at
            :data:`COMPACTION_WINDOWS` rollup windows).
    """

    def __init__(
        self,
        system,
        config: OverlayConfig | None = None,
        *,
        scheduler=None,
        extra_probes=None,
        db: MetricsDb | None = None,
    ) -> None:
        self.system = system
        self.config = config if config is not None else OverlayConfig()
        extra = scheduler_probes(scheduler) if scheduler is not None else []
        if extra_probes:
            extra = extra + list(extra_probes)
        self.scrapers: list[Scraper] = probes_for_system(
            system, extra_probes=extra or None)
        self.tree = AggregationTree(
            [(s.name, s.leaf) for s in self.scrapers],
            n_leaves=system.spec.fabric.n_leaf_switches,
            n_cores=system.spec.fabric.n_core_switches,
            fan_in=self.config.fan_in)
        counter_metrics = frozenset(
            p.metric for s in self.scrapers for p in s.probes if p.counter)
        if db is not None:
            self.db = db
        else:
            self.db = MetricsDb(
                max_points=DEFAULT_MAX_POINTS,
                compaction_window=COMPACTION_WINDOWS
                * self.config.rollup_interval)
        self.collector = CollectorSink(
            rollup_interval=self.config.rollup_interval,
            staleness_limit=self.config.effective_staleness_limit,
            counter_metrics=counter_metrics,
            db=self.db)
        thresholds, burn_rates = default_rules()
        self.alert_engine = AlertEngine(thresholds, burn_rates)
        streams = RngStreams(self.config.seed).spawn("obs.overlay")
        self._loss_rng = streams.get("loss")
        self._detect_rng = streams.get("detect")
        self._host_to_agent = self._build_host_map(system)
        self._depths = {s.name: self.tree.depth_of(s.name)
                        for s in self.scrapers}
        self.n_batches = 0
        self.n_lost = 0
        self._engine: Engine | None = None

    @staticmethod
    def _build_host_map(system) -> dict[str, str]:
        """Host → agent name: OSSes to their SSU agent, routers to their
        module agent; agents cover themselves.  Everything else resolves
        by the detector's prefix fallback."""
        mapping: dict[str, str] = {}
        for oss in system.osses:
            mapping[oss.name] = system.ssus[oss.ssu_index].name
        for router in system.routers:
            mapping[router.name] = router.name.split(".")[0]
        for ssu in system.ssus:
            mapping[ssu.name] = ssu.name
        for fs_name in sorted(system.filesystems):
            mds = system.filesystems[fs_name].mds
            mapping[mds.name] = mds.name
        return mapping

    # -- engine wiring --------------------------------------------------------

    def attach(self, engine: Engine) -> "MonitoringOverlay":
        """Schedule the overlay's periodic processes on ``engine``: the
        shared scrape-grid loop (every agent sweeps each tick, in name
        order) plus the collector's window-close loop.  Returns ``self``
        for chaining."""
        if self._engine is not None:
            raise RuntimeError("overlay already attached to an engine")
        self._engine = engine
        engine.every(self.config.scrape_interval, self._sweep_all,
                     name="overlay:scrape")
        engine.every(self.config.rollup_interval, self._close_window,
                     name="overlay:collect")
        return self

    def _sweep_all(self) -> None:
        """One grid tick: every agent sweeps (name order — the loss-draw
        order is fixed), then one delivery event fires per distinct tree
        depth among the survivors, one traversal later.

        Batches sharing a depth share a delivery event (their root
        arrival time is identical anyway); the collector sorts before
        folding, so the grouping is observationally neutral — it just
        keeps engine event cost per tick O(depths), not O(agents)."""
        now = self._engine.now
        telemetry = get_telemetry()
        enabled = telemetry.enabled
        loss_p = self.config.loss_probability
        draw = self._loss_rng.random
        by_lag: dict[float, list] = {}
        for scraper in self.scrapers:  # already sorted by name
            samples = scraper.sweep(now)
            self.n_batches += 1
            lost = float(draw()) < loss_p
            if enabled:
                telemetry.counter("overlay.batches", scraper.name).add(1.0)
                if lost:
                    telemetry.counter("overlay.batches_lost",
                                      scraper.name).add(1.0)
            if lost:
                self.n_lost += 1
                continue
            lag = self._depths[scraper.name] * self.config.hop_latency
            # The key exists even for an empty payload (the flowstats
            # agent with the registry disabled), so the delivery-event
            # schedule is identical with telemetry on or off.
            by_lag.setdefault(lag, []).extend(samples)
        for lag in sorted(by_lag):
            payload = tuple(by_lag[lag])
            self._engine.call_after(
                lag,
                lambda p=payload: self.collector.deliver(
                    p, self._engine.now))

    def _close_window(self) -> None:
        now = self._engine.now
        rollups = self.collector.close_window(now)
        self.alert_engine.observe_window(now, self.collector.view(), rollups)

    # -- consumers ------------------------------------------------------------

    def detector(self, model) -> ObservedDetector:
        """An overlay-backed detector for the resilience pipeline —
        ``model`` is the policy's
        :class:`~repro.resilience.detector.DetectionModel` (its debounce
        carries over; cadence and loss come from this overlay)."""
        return ObservedDetector(
            model,
            config=self.config,
            tree=self.tree,
            host_to_agent=self._host_to_agent,
            resolve_host=resolver_for_system(self.system),
            rng=self._detect_rng)

    def outcome(self) -> OverlayOutcome:
        """Freeze the run so far into a plain-value outcome."""
        collector = self.collector
        return OverlayOutcome(
            n_agents=len(self.scrapers),
            tree_depth=self.tree.max_depth,
            n_relays=self.tree.n_relays,
            n_batches=self.n_batches,
            n_lost=self.n_lost,
            n_samples=collector.n_samples,
            n_stale=collector.n_stale,
            n_windows=collector.n_windows,
            rollups=tuple(collector.rollups),
            alerts=tuple(self.alert_engine.alerts),
        )
