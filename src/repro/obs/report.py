"""Render a Lesson-12-style layer table from recorded telemetry.

The flow solver records, per solve, the aggregate load/capacity/utilization
of every *layer* of the I/O path (component-name prefixes: ``client``,
``gl`` torus links, ``router``, ``ibport``/``ibleaf``/``ibup``/``ibcore``,
``oss``, ``couplet``, ``ost``).  This module turns a telemetry snapshot —
live, or re-loaded from a ``--trace`` file — back into the operator-facing
table of Lesson 12: where along the path did the bandwidth go, and which
layer is the bottleneck.

The layer naming is kept in lock-step with
:func:`repro.analysis.layers.profile_layers` via :data:`PREFIX_TO_PROFILE`
so a telemetry-derived bottleneck can be cross-checked against the
analytical bottom-up profile (the acceptance test does exactly that).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import MS, fmt_bandwidth

__all__ = [
    "LayerUsage",
    "PREFIX_TO_PROFILE",
    "layer_usage_from_snapshot",
    "bottleneck_layer",
    "render_layer_report",
]

#: component-name prefix -> human layer label (report rows, in path order)
LAYER_LABELS: dict[str, str] = {
    "client": "client stacks",
    "inj": "torus injection",
    "gl": "torus links",
    "router": "LNET routers",
    "ibport": "IB host ports",
    "ibleaf": "IB leaf switches",
    "ibup": "IB uplinks",
    "ibcore": "IB core switches",
    "oss": "OSS nodes",
    "couplet": "controller couplets",
    "ost": "OSTs (RAID groups)",
}

#: component-name prefix -> the matching layer name in
#: :func:`repro.analysis.layers.profile_layers` output (fs-level profile)
PREFIX_TO_PROFILE: dict[str, str] = {
    "client": "client stacks",
    "router": "LNET routers",
    "ibport": "SAN host ports",
    "ibleaf": "SAN host ports",
    "ibup": "SAN host ports",
    "ibcore": "SAN host ports",
    "oss": "OSS nodes",
    "couplet": "controller couplets (fs path)",
    "ost": "OSTs (obdfilter + fill penalty)",
}

#: rendering order — the data path, client side down to the disks
_PATH_ORDER = ["client", "inj", "gl", "router", "ibport", "ibleaf", "ibup",
               "ibcore", "oss", "couplet", "ost"]


@dataclass(frozen=True)
class LayerUsage:
    """One layer's aggregate state from a recorded flow solve."""

    prefix: str
    load: float  # aggregate bytes/s crossing the layer
    capacity: float  # aggregate finite capacity of the layer
    max_util: float  # utilization of the layer's hottest component
    saturated: int  # number of saturated components
    #: the monitoring overlay's (delayed) view of the layer load, when an
    #: overlay mirrored the flow gauges up its tree; None without one
    overlay_load: float | None = None
    #: age of that overlay view at its last rollup (seconds)
    overlay_age: float | None = None

    @property
    def label(self) -> str:
        return LAYER_LABELS.get(self.prefix, self.prefix)

    @property
    def utilization(self) -> float:
        return self.load / self.capacity if self.capacity > 0 else 0.0

    @property
    def overlay_lag(self) -> float | None:
        """Ground-truth minus overlay-view load (bytes/s) — what the
        monitoring pipeline has not caught up to; None without an
        overlay view."""
        if self.overlay_load is None:
            return None
        return self.load - self.overlay_load


def layer_usage_from_snapshot(snapshot: dict) -> list[LayerUsage]:
    """Rebuild per-layer usage from a :meth:`Telemetry.snapshot` dict.

    Reads the ``flow.layer.*`` gauges/counters the flow solver records;
    the snapshot may come from a live registry or from the ``telemetry``
    key of a ``--trace`` file.
    """
    gauges: dict[tuple[str, str], float] = {
        (g["name"], g["source"]): g["value"] for g in snapshot.get("gauges", [])
    }
    prefixes = sorted({src for (name, src) in gauges if name == "flow.layer.load"})
    usages = []
    for prefix in prefixes:
        overlay_key = ("overlay.view.load", prefix)
        usages.append(LayerUsage(
            prefix=prefix,
            load=gauges.get(("flow.layer.load", prefix), 0.0),
            capacity=gauges.get(("flow.layer.capacity", prefix), 0.0),
            max_util=gauges.get(("flow.layer.max_util", prefix), 0.0),
            saturated=int(gauges.get(("flow.layer.saturated", prefix), 0.0)),
            overlay_load=gauges.get(overlay_key),
            overlay_age=gauges.get(("overlay.view.age_seconds", prefix)),
        ))
    usages.sort(key=lambda u: (_PATH_ORDER.index(u.prefix)
                               if u.prefix in _PATH_ORDER else len(_PATH_ORDER),
                               u.prefix))
    return usages


def bottleneck_layer(usages: list[LayerUsage]) -> LayerUsage | None:
    """The limiting layer.

    Among layers with saturated components, pick the one with the highest
    *aggregate* utilization — that is where the machine runs out of
    capacity (individual hot components elsewhere merely shift load to
    siblings; a layer whose total headroom is gone caps the sum).  With no
    saturation anywhere (a demand-limited run) fall back to the hottest
    per-component utilization: where pressure would bite first.
    """
    if not usages:
        return None
    saturated = [u for u in usages if u.saturated > 0]
    if saturated:
        return max(saturated, key=lambda u: (u.utilization, u.max_util))
    return max(usages, key=lambda u: u.max_util)


def render_layer_report(snapshot: dict) -> str:
    """The ``spider-repro report`` body for one telemetry snapshot.

    Args:
        snapshot: a :meth:`Telemetry.snapshot` dict — taken live, or read
            back from the ``"telemetry"`` key of a ``--trace`` file via
            :func:`repro.obs.trace.read_chrome_trace`.

    Returns:
        A multi-line string: the Lesson-12 layer-utilization table (one
        row per I/O-path layer, client side down to the disks), the
        identified bottleneck layer, and a headline-counter summary —
        or a hint to re-run with ``--trace`` when the snapshot holds no
        flow-solver telemetry.
    """
    from repro.analysis.reporting import render_table

    usages = layer_usage_from_snapshot(snapshot)
    if not usages:
        return ("no flow-solver telemetry recorded "
                "(re-run with --trace on a data-moving subcommand)")
    # The monitoring-lag column only appears when an overlay mirrored the
    # flow gauges: ground-truth-only snapshots keep the pre-overlay shape.
    with_lag = any(u.overlay_load is not None for u in usages)
    rows = []
    for u in usages:
        row = [
            u.label,
            fmt_bandwidth(u.load),
            fmt_bandwidth(u.capacity),
            f"{u.utilization:.1%}",
            f"{u.max_util:.1%}",
            str(u.saturated) if u.saturated else "-",
        ]
        if with_lag:
            if u.overlay_lag is None:
                row.append("-")
            else:
                age = f" @{u.overlay_age:,.0f}s" if u.overlay_age else ""
                row.append(f"{fmt_bandwidth(u.overlay_lag)}{age}")
        rows.append(tuple(row))
    headers = ["layer", "load", "capacity", "util", "hottest", "saturated"]
    if with_lag:
        headers.append("monitoring lag")
    table = render_table(
        headers, rows, title="Layer utilization from telemetry (Lesson 12)")
    bn = bottleneck_layer(usages)
    lines = [table, ""]
    if bn is not None:
        how = ("saturated" if bn.saturated
               else "hottest (demand-limited run, nothing saturated)")
        lines.append(f"bottleneck layer: {bn.label} [{how}]")

    extras = _render_counter_summary(snapshot)
    if extras:
        lines.append("")
        lines.append(extras)
    return "\n".join(lines)


def _render_counter_summary(snapshot: dict) -> str:
    """Headline per-layer counters/histograms (engine, MDS, OST, LNET)."""
    from repro.analysis.reporting import render_table

    rows: list[tuple[str, str]] = []
    totals: dict[str, float] = {}
    for c in snapshot.get("counters", []):
        totals[c["name"]] = totals.get(c["name"], 0.0) + c["value"]
    for name in ("engine.events", "flow.solves", "flow.saturated_components",
                 "mds.ops", "ost.fill_penalty_hits"):
        if name in totals:
            rows.append((name, f"{totals[name]:,.0f}"))
    for name in ("ost.write_bytes", "ost.read_bytes", "oss.bytes",
                 "lnet.routed_bytes"):
        if name in totals:
            rows.append((name, fmt_bandwidth(totals[name]).replace("/s", "")))
    for h in snapshot.get("histograms", []):
        if h["name"] == "mds.service_seconds" and h["count"]:
            rows.append((f"mds service p50/p99 [{h['source']}]",
                         f"{h['p50'] / MS:.2f} / {h['p99'] / MS:.2f} ms"))
        if h["name"] == "flow.rounds" and h["count"]:
            rows.append(("flow filling rounds (mean)",
                         f"{h['sum'] / h['count']:.1f}"))
    if not rows:
        return ""
    return render_table(["telemetry", "value"], rows, title="Recorded totals")
