"""repro.obs — the cross-layer telemetry spine.

Three pieces:

* :mod:`repro.obs.instruments` — a process-wide but explicitly-passable
  registry of counters, gauges, and log-scale histograms (no-op fast path
  when disabled);
* :mod:`repro.obs.trace` — a sim-time-aware span tracer with Chrome-trace
  (Perfetto) and JSONL exporters;
* :mod:`repro.obs.report` — the Lesson-12 layer table rendered straight
  from recorded telemetry (the ``spider-repro report`` subcommand).

Both the registry and the tracer are **disabled by default**: every
instrumented call site guards on one attribute read, and enabling them
never changes simulation results (the determinism tests prove
bit-identity).  Typical use — enable both for a scoped measurement, then
export::

    from repro.obs import Telemetry, Tracer, use_telemetry, use_tracer

    telemetry = Telemetry(enabled=True)
    tracer = Tracer(enabled=True)
    with use_telemetry(telemetry), use_tracer(tracer):
        run_experiment()                      # any instrumented code
        telemetry.counter("my.metric").add(1)  # or your own instruments
        with tracer.span("analysis", "mycat"):
            analyse()
    tracer.write_chrome_trace("trace.json", telemetry)  # Perfetto-loadable

    from repro.obs.report import render_layer_report
    print(render_layer_report(telemetry.snapshot()))  # Lesson-12 table
"""

from repro.obs.instruments import (
    Counter,
    Gauge,
    Histogram,
    Telemetry,
    get_telemetry,
    set_telemetry,
    use_telemetry,
)
from repro.obs.trace import (
    Span,
    Tracer,
    get_tracer,
    instrument_engine,
    read_chrome_trace,
    read_jsonl,
    set_tracer,
    use_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Telemetry",
    "get_telemetry",
    "set_telemetry",
    "use_telemetry",
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "instrument_engine",
    "read_chrome_trace",
    "read_jsonl",
]
