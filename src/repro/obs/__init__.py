"""repro.obs — the cross-layer telemetry spine.

Three pieces:

* :mod:`repro.obs.instruments` — a process-wide but explicitly-passable
  registry of counters, gauges, and log-scale histograms (no-op fast path
  when disabled);
* :mod:`repro.obs.trace` — a sim-time-aware span tracer with Chrome-trace
  (Perfetto) and JSONL exporters;
* :mod:`repro.obs.report` — the Lesson-12 layer table rendered straight
  from recorded telemetry (the ``spider-repro report`` subcommand).
"""

from repro.obs.instruments import (
    Counter,
    Gauge,
    Histogram,
    Telemetry,
    get_telemetry,
    set_telemetry,
    use_telemetry,
)
from repro.obs.trace import (
    Span,
    Tracer,
    get_tracer,
    instrument_engine,
    read_chrome_trace,
    read_jsonl,
    set_tracer,
    use_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Telemetry",
    "get_telemetry",
    "set_telemetry",
    "use_telemetry",
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "instrument_engine",
    "read_chrome_trace",
    "read_jsonl",
]
