"""Max-min fair flow allocation over a capacitated component DAG.

Why flow-level, not packet-level
--------------------------------
The paper's tuning methodology (Lesson 12) reasons about the I/O path as a
stack of capacitated layers — disks, RAID groups, controller couplets,
OSSes, InfiniBand links, LNET routers, Gemini links, client NICs — and asks
at each layer "what bandwidth should survive to here?".  Steady-state
bandwidth under that world-view is exactly a *bandwidth-sharing* problem:
every I/O stream (flow) crosses a sequence of components, each component has
a capacity shared by the flows crossing it, and TCP-like transports plus
Lustre's request schedulers drive the share toward (weighted) max-min
fairness.  Packet-level detail would add runtime, not insight, at the scale
of 18,688 clients.

Algorithm
---------
Progressive filling (the textbook max-min construction):

1. every unfrozen flow's rate grows uniformly (scaled by its weight);
2. the first component to saturate freezes the flows crossing it at their
   current rate (flows with finite *demand* freeze when they reach it);
3. repeat on the residual network until all flows are frozen.

Two kernels implement the same filling: a vectorized one over a CSR-style
incidence structure (component -> member flows, O(nnz) numpy per round) for
large problems, and a plain-scalar one whose python-loop constants beat
numpy call overhead on subproblems under :data:`_SCALAR_NNZ_MAX`
incidences.

Incremental re-solves
---------------------
The network is a persistent solver state: delta operations
(:meth:`FlowNetwork.add_flow` / :meth:`~FlowNetwork.remove_flow` /
:meth:`~FlowNetwork.set_capacity` / :meth:`~FlowNetwork.set_demand`) mark
only the touched components dirty, and :meth:`FlowNetwork.solve` re-solves
only the *connected dirty region*: the closure of the dirty components
under the comp<->flow incidence relation.  By construction no flow outside
the closure crosses a component inside it, so the closure is an independent
subproblem of the global max-min allocation (which is unique and decomposes
over disconnected regions) — frozen rates elsewhere are reused verbatim.
When no component in the closure can saturate (every finite demand sum sits
strictly under capacity and no unbounded-demand flow crosses it), the
analytic short-circuit applies: rates follow directly from demands, no
filling at all.  The four resolve paths are counted in
:attr:`FlowNetwork.solve_counts` and, when telemetry is enabled, in the
:data:`RESOLVE_COUNTERS` telemetry counters.  The cost model for each path
is documented in ``docs/PERFORMANCE.md``.

Same-tick change batching is provided by :class:`Epoch`: executors route
their re-solve triggers through ``epoch.request(label)`` and a burst of
simultaneous changes costs one flush (one solve) at the end of the tick.

Properties (enforced by the property-based tests):

* feasibility: per-component load ≤ capacity (+ float slack);
* demand-boundedness: rate ≤ demand for every flow;
* max-min/Pareto: every flow is limited by a *saturated* component on its
  path or by its own demand — no rate can be raised without lowering a
  smaller (weighted) rate;
* delta/scratch equivalence: any sequence of delta operations followed by a
  solve yields the same rates (within 1e-9 relative) as a from-scratch
  solve of the final network.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from collections.abc import Callable

import numpy as np

from repro.obs.instruments import get_telemetry
from repro.obs.trace import get_tracer

__all__ = ["FlowNetwork", "FlowResult", "Epoch", "RESOLVE_COUNTERS"]

_EPS = 1e-9

#: relative headroom a closure component must keep for the analytic
#: short-circuit — strict, so a demand sum sitting exactly at capacity
#: still goes through progressive filling like a scratch solve would
_SHORTCIRCUIT_MARGIN = 1e-9

#: subproblems with at most this many (flow, component) incidences run on
#: the scalar kernel, whose python-loop constants beat numpy call overhead
#: by roughly an order of magnitude at this size
_SCALAR_NNZ_MAX = 1024

#: telemetry counter emitted per solve, keyed by the resolve path taken
#: (``full`` = from-scratch fill, ``delta`` = dirty-closure re-fill,
#: ``shortcircuit`` = analytic uncongested path, ``cached`` = no dirty
#: state, the previous result is returned)
RESOLVE_COUNTERS = (
    "flow.resolve.full",
    "flow.resolve.delta",
    "flow.resolve.shortcircuit",
    "flow.resolve.cached",
)


class FlowResult:
    """Outcome of a :meth:`FlowNetwork.solve` call.

    ``rates`` is a per-flow allocated rate array (bytes/s) aligned with
    ``flow_names``.  The per-component views (``component_load``,
    ``component_capacity``) are snapshots taken at solve time but
    materialized into dicts lazily — large networks solved in a loop never
    pay for dicts nobody reads.  ``bottlenecks`` maps each saturated
    component to its capacity; on an incremental solve it carries the
    merged view (components saturated by earlier solves and still binding,
    plus the ones the re-filled region saturated), and ``rounds`` /
    ``saturation_order`` describe the *last* fill only (a short-circuited
    or cached solve reports its inherited order and ``rounds=0``).
    """

    __slots__ = (
        "rates", "flow_names", "bottlenecks", "rounds", "saturation_order",
        "_comp_names", "_n_comp", "_load_arr", "_cap_arr",
        "_load_dict", "_cap_dict",
    )

    def __init__(
        self,
        rates: np.ndarray,
        flow_names: list[str],
        comp_names: list[str],
        load_arr: np.ndarray,
        cap_arr: np.ndarray,
        bottlenecks: dict[str, float],
        rounds: int,
        saturation_order: tuple[str, ...],
    ) -> None:
        self.rates = rates
        self.flow_names = flow_names
        self.bottlenecks = bottlenecks
        #: number of progressive-filling rounds the solve took
        self.rounds = rounds
        #: saturated components in the order they saturated (first = the
        #: binding bottleneck the filling hit first)
        self.saturation_order = saturation_order
        self._comp_names = comp_names
        self._n_comp = len(comp_names)
        self._load_arr = load_arr
        self._cap_arr = cap_arr
        self._load_dict: dict[str, float] | None = None
        self._cap_dict: dict[str, float] | None = None

    @property
    def component_load(self) -> dict[str, float]:
        """Per-component load (bytes/s), materialized on first access."""
        if self._load_dict is None:
            self._load_dict = dict(
                zip(self._comp_names[:self._n_comp],
                    self._load_arr.tolist()))
        return self._load_dict

    @property
    def component_capacity(self) -> dict[str, float]:
        """Per-component capacity (bytes/s), materialized on first access."""
        if self._cap_dict is None:
            self._cap_dict = dict(
                zip(self._comp_names[:self._n_comp],
                    self._cap_arr.tolist()))
        return self._cap_dict

    @property
    def total(self) -> float:
        """Aggregate allocated rate over all flows."""
        return float(self.rates.sum())

    def rate_of(self, name: str) -> float:
        """The allocated rate of flow ``name``."""
        return float(self.rates[self.flow_names.index(name)])

    def saturated_components(self, tol: float = 1e-6) -> list[str]:
        """Components whose load is within ``tol`` (relative) of capacity."""
        cap = self._cap_arr
        load = self._load_arr
        hit = np.isfinite(cap) & (load >= cap * (1 - tol) - _EPS)
        names = self._comp_names
        return [names[i] for i in np.flatnonzero(hit).tolist()]

    def utilization(self, component: str) -> float:
        """Load / capacity of ``component`` (0.0 for infinite capacity)."""
        cap = self.component_capacity[component]
        if cap == 0:
            return 1.0 if self.component_load[component] > 0 else 0.0
        if math.isinf(cap):
            return 0.0
        return self.component_load[component] / cap


class _FlowRec:
    """Per-flow bookkeeping (slot index + unique component path)."""

    __slots__ = ("idx", "path")

    def __init__(self, idx: int, path: tuple[int, ...]) -> None:
        self.idx = idx
        self.path = path


def _grown(buf: np.ndarray, n: int) -> np.ndarray:
    """Return ``buf`` or an amortized-doubled copy with room for slot ``n``."""
    if n < buf.shape[0]:
        return buf
    out = np.empty(max(16, 2 * buf.shape[0]))
    out[:buf.shape[0]] = buf
    return out


def _fill_scalar(
    caps: list[float],
    paths: list[tuple[int, ...]],
    demands: list[float],
    weights: list[float],
    pre: tuple[list[float], list[float], list[float]] | None = None,
    comp_n: list[int] | None = None,
    order: list[int] | None = None,
    prefix_ok: bool = False,
) -> tuple[list[float], list[int], int]:
    """Progressive filling on plain scalars (small subproblems).

    Semantically identical to :func:`_fill_vector` — same freeze
    tolerances, same round structure — with python-loop constants that
    beat numpy call overhead below :data:`_SCALAR_NNZ_MAX` incidences.
    ``pre`` optionally carries the persistent solver's precomputed
    ``(comp_w, step_level, edge_level)`` setup — valid only when every
    flow has a non-empty path and demand above :data:`_EPS`; ``comp_w``
    is copied before mutation, the level lists are read-only.  ``comp_n``
    optionally carries per-component member counts; a saturating
    component crossed by *every* flow (a shared backbone) then freezes
    all remaining active flows directly, skipping the member walk.
    ``order`` optionally carries the flow indices sorted ascending by
    ``demand / weight`` (any order among ties), which turns the
    per-round demand-fill minimum into one pointer read.  ``prefix_ok``
    (only meaningful with ``pre``; derived locally otherwise) asserts
    that every demand exceeds 1.0, making the freeze levels monotone in
    the sort order so demand freezes form an exact prefix — the
    per-round freeze walk then stops at its first miss.
    Returns ``(rates, saturation order as local comp ids, rounds)``;
    per-component load is left to the caller (computable from the rates,
    and skipped entirely on un-observed hot-loop solves).
    """
    inf = math.inf
    n = len(demands)
    m = len(caps)
    rates = [0.0] * n
    frozen = [False] * n
    residual = list(caps)

    # Every flow starts filling at level 0, so an active flow always sits
    # at ``rate = weight * level`` where ``level`` is the cumulative fill.
    # That collapses the per-round work: per-flow demand fills become
    # precomputed levels, component residuals drain by ``step * comp_w``
    # (no inner path loop), and rates materialize only at freeze time.
    if pre is not None:
        comp_w0, step_level, edge_level = pre
        comp_w = list(comp_w0)
        n_active = n
    else:
        comp_w = [0.0] * m
        for i, path in enumerate(paths):
            w = weights[i]
            for c in path:
                comp_w[c] += w
        step_level = [inf] * n  # level where the flow reaches its demand
        edge_level = [inf] * n  # eps-slackened level at which it freezes
        n_active = n
        prefix_ok = True
        for i in range(n):
            d = demands[i]
            if d <= _EPS:
                frozen[i] = True
                n_active -= 1
                w = weights[i]
                for c in paths[i]:
                    comp_w[c] -= w
            elif not paths[i]:
                rates[i] = d
                frozen[i] = True
                n_active -= 1
            elif d < inf:
                if d <= 1.0:
                    prefix_ok = False
                w = weights[i]
                step_level[i] = d / w
                edge_level[i] = (d - _EPS * (d if d > 1.0 else 1.0)) / w
    if order is None:
        order = sorted(range(n), key=step_level.__getitem__)
    sat_order: list[int] = []
    sat_seen = [False] * m
    rounds = 0
    max_rounds = m + n + 2
    level = 0.0
    head = 0
    while n_active:
        rounds += 1
        if rounds > max_rounds:  # pragma: no cover - defensive
            raise RuntimeError("progressive filling failed to converge")
        # Fill level at which the first component saturates or the first
        # active flow reaches its demand (the head of the sorted order).
        step = inf
        for c in range(m):
            w = comp_w[c]
            if w > _EPS:
                r = residual[c]
                fill = r / w if r > _EPS else 0.0
                if fill < step:
                    step = fill
        while head < n and frozen[order[head]]:
            head += 1
        if head < n:
            fill = step_level[order[head]] - level
            if fill < step:
                step = fill
        if step == inf:
            # Active flows cross only infinite-capacity components and
            # have infinite demand: leave them unbounded (inf rates).
            for k in range(head, n):
                i = order[k]
                if not frozen[i]:
                    rates[i] = inf
            break
        if step < 0.0:
            step = 0.0
        level += step
        # Advance: each component drains by the summed weight of its
        # active members; detect saturation in the same pass.
        newly_sat = []
        for c in range(m):
            w = comp_w[c]
            if w > _EPS:
                r = residual[c] - step * w
                residual[c] = r
                cap = caps[c]
                if cap < inf and r <= _EPS + 1e-12 * cap:
                    newly_sat.append(c)
        if newly_sat:
            for c in newly_sat:
                if not sat_seen[c]:
                    sat_seen[c] = True
                    sat_order.append(c)
            if comp_n is not None and any(comp_n[c] == n for c in newly_sat):
                # A saturated component crossed by every flow: all
                # remaining active flows freeze at this level.
                for k in range(head, n):
                    i = order[k]
                    if not frozen[i]:
                        frozen[i] = True
                        rates[i] = weights[i] * level
                break
        # Snapshot semantics: demand-satisfied flows and the members of
        # newly saturated components freeze together in one walk, judged
        # against the round-start component weights (``comp_w``
        # decrements land after saturation was detected, so order inside
        # the batch is free).  With monotone freeze levels
        # (``prefix_ok``) and no saturation to match, the eligible flows
        # are a prefix of the active tail and the walk stops at its
        # first miss instead of scanning every remaining flow.
        for k in range(head, n):
            i = order[k]
            if frozen[i]:
                continue
            path = paths[i]
            if edge_level[i] <= level:
                freeze = True
            else:
                freeze = False
                for c in newly_sat:
                    if c in path:
                        freeze = True
                        break
            if freeze:
                frozen[i] = True
                n_active -= 1
                w = weights[i]
                rates[i] = w * level
                for c in path:
                    comp_w[c] -= w
            elif prefix_ok and not newly_sat:
                break
    return rates, sat_order, rounds


def _fill_vector(
    capacity: np.ndarray,
    demand: np.ndarray,
    weight: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
    flow_of_entry: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, list[int], int]:
    """Vectorized progressive filling over a CSR incidence structure.

    Each round is O(nnz) in numpy; the number of rounds is bounded by the
    number of distinct bottlenecks.  Returns ``(rates, load, saturation
    order as local comp ids, rounds)``.
    """
    n_flows = demand.shape[0]
    n_comp = capacity.shape[0]
    rates = np.zeros(n_flows)
    frozen = np.zeros(n_flows, dtype=bool)
    residual = capacity.astype(float, copy=True)
    sat_order: list[int] = []
    sat_seen = np.zeros(n_comp, dtype=bool)

    # Flows with zero demand (or empty paths and zero demand) freeze at 0.
    frozen |= demand <= _EPS
    # Flows with no components are limited only by their demand.
    empty_path = np.diff(indptr) == 0
    sel = empty_path & ~frozen
    rates[sel] = demand[sel]
    frozen |= empty_path

    finite_demand = np.isfinite(demand)
    demand_edge = np.where(
        finite_demand,
        demand - _EPS * np.maximum(np.where(finite_demand, demand, 0.0), 1.0),
        np.inf,
    )
    finite_cap = np.isfinite(capacity)
    sat_slack = _EPS + 1e-12 * np.where(finite_cap, capacity, 0.0)

    max_rounds = n_comp + n_flows + 2
    rounds_used = 0
    for _round in range(max_rounds):
        if frozen.all():
            break
        rounds_used += 1
        active_entry = ~frozen[flow_of_entry]
        # Weighted active flow count per component.
        comp_weight = np.zeros(n_comp)
        np.add.at(comp_weight, indices[active_entry],
                  weight[flow_of_entry[active_entry]])
        # Fill level at which each component saturates.
        with np.errstate(divide="ignore", invalid="ignore"):
            comp_fill = np.where(comp_weight > _EPS,
                                 residual / comp_weight, np.inf)
        comp_fill = np.where(
            residual <= _EPS,
            np.where(comp_weight > _EPS, 0.0, np.inf), comp_fill)
        # Fill level at which each active flow reaches its demand.
        active = ~frozen
        with np.errstate(divide="ignore", invalid="ignore"):
            demand_fill = np.where(active, (demand - rates) / weight, np.inf)
        min_comp_fill = comp_fill.min() if n_comp else math.inf
        min_demand_fill = demand_fill.min() if n_flows else math.inf
        step = min(min_comp_fill, min_demand_fill)
        if not math.isfinite(step):
            # Active flows cross only infinite-capacity components and
            # have infinite demand: leave them unbounded (inf rates).
            rates[active] = math.inf
            break
        step = max(step, 0.0)

        # Advance all active flows by step * weight.
        delta = step * weight * active
        rates += delta
        np.subtract.at(residual, indices[active_entry],
                       delta[flow_of_entry[active_entry]])
        residual = np.maximum(residual, 0.0)

        # Freeze demand-satisfied flows (infinite demand never satisfies).
        frozen |= active & (rates >= demand_edge)

        # Freeze flows crossing saturated components (only components
        # with finite capacity can saturate).
        saturated = finite_cap & (residual <= sat_slack) & (comp_weight > _EPS)
        if saturated.any():
            new_ids = np.flatnonzero(saturated & ~sat_seen)
            sat_seen[new_ids] = True
            sat_order.extend(new_ids.tolist())
            sat_entry = saturated[indices] & active_entry
            frozen[flow_of_entry[sat_entry]] = True
    else:  # pragma: no cover - defensive
        raise RuntimeError("progressive filling failed to converge")

    load = np.zeros(n_comp)
    finite = np.isfinite(rates)
    fin_entry = finite[flow_of_entry]
    np.add.at(load, indices[fin_entry], rates[flow_of_entry[fin_entry]])
    return rates, load, sat_order, rounds_used


class FlowNetwork:
    """A persistent set of capacitated components plus flows crossing them.

    The network doubles as the solver state: :meth:`solve` reuses the
    previous allocation and re-fills only the connected dirty region the
    delta operations touched (see the module docstring for the cost
    model).  Solves are deterministic — the same operation sequence always
    yields the same result, bit for bit.

    >>> net = FlowNetwork()
    >>> net.add_component("link", 10.0)
    >>> net.add_flow("a", ["link"])
    >>> net.add_flow("b", ["link"])
    >>> res = net.solve()
    >>> res.rates.tolist()
    [5.0, 5.0]
    """

    def __init__(self) -> None:
        # components (append-only; capacities mutable)
        self._comp_id: dict[str, int] = {}
        self._comp_names: list[str] = []
        self._caps = np.empty(16)
        self._caps_list: list[float] = []
        self._load = np.empty(16)
        self._comp_flows: list[set[str]] = []
        #: per-component sum of finite member demands / count of
        #: infinite-demand members, maintained incrementally for the
        #: short-circuit feasibility check
        self._demand_load: list[float] = []
        self._inf_count: list[int] = []
        # flows (dict order == slot order of the parallel buffers).  The
        # python-list mirrors of demands/weights/paths feed the scalar
        # kernel without per-solve tolist conversions; the numpy buffers
        # feed the vector kernel and the result snapshots.
        self._flows: dict[str, _FlowRec] = {}
        self._demands = np.empty(16)
        self._weights = np.empty(16)
        self._rates = np.empty(16)
        self._demands_list: list[float] = []
        self._weights_list: list[float] = []
        self._paths_list: list[tuple[int, ...]] = []
        self._nnz = 0
        # precomputed scalar-kernel setup, maintained by the delta
        # operations: per-component active weight sums and per-flow
        # demand fill levels (valid whenever ``_n_irregular`` is 0)
        self._comp_w: list[float] = []
        self._step_lvl: list[float] = []
        self._edge_lvl: list[float] = []
        #: flows the precomputed setup cannot describe (zero demand or
        #: an empty path) — their presence falls back to the generic
        #: kernel setup
        self._n_irregular = 0
        #: finite-demand flows with demand ≤ 1.0 — while zero, demand
        #: freeze levels are monotone in the demand/weight sort and the
        #: scalar kernel's freeze walk can stop at its first miss
        self._n_small = 0
        # flow slots sorted ascending by demand/weight (parallel key
        # list), maintained by the delta operations so entire solves
        # skip the per-solve argsort; ties order by operation history,
        # which the filling is insensitive to beyond float round-off
        self._order: list[int] = []
        self._order_keys: list[float] = []
        #: per-component member count (mirrors ``len(_comp_flows[c])``
        #: without per-solve list building)
        self._comp_nf: list[int] = []
        #: whether ``_load`` currently reflects ``_rates`` — scalar-kernel
        #: solves defer the per-component load sum to result-build time
        self._load_valid = True
        # solver state
        self._dirty: set[int] = set()
        self._has_solution = False
        self._bottlenecks: dict[str, float] = {}
        self._last_rounds = 0
        self._csr: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        self._result_cache: FlowResult | None = None
        #: cumulative count of solves by resolve path (``full`` /
        #: ``delta`` / ``shortcircuit`` / ``cached``), independent of
        #: telemetry — the benchmark regression gate reads this
        self.solve_counts: dict[str, int] = {
            "full": 0, "delta": 0, "shortcircuit": 0, "cached": 0}

    # -- construction and delta operations ----------------------------------------

    def add_component(self, name: str, capacity: float) -> None:
        """Register a component; re-adding is a :meth:`set_capacity` (used
        by what-if analyses such as controller upgrades), which dirties
        the dependent solver state instead of silently keeping stale
        bookkeeping."""
        if capacity < 0:
            raise ValueError(f"negative capacity for {name!r}")
        i = self._comp_id.get(name)
        if i is not None:
            self.set_capacity(name, capacity)
            return
        i = len(self._comp_names)
        self._comp_id[name] = i
        self._comp_names.append(name)
        self._caps = _grown(self._caps, i)
        self._load = _grown(self._load, i)
        self._caps[i] = float(capacity)
        self._caps_list.append(float(capacity))
        self._load[i] = 0.0
        self._comp_flows.append(set())
        self._demand_load.append(0.0)
        self._inf_count.append(0)
        self._comp_w.append(0.0)
        self._comp_nf.append(0)
        self._result_cache = None

    def set_capacity(self, name: str, capacity: float) -> None:
        """Change a component's capacity, dirtying the flows crossing it.

        A no-op (nothing dirtied) when the capacity is unchanged.
        """
        if capacity < 0:
            raise ValueError(f"negative capacity for {name!r}")
        i = self._comp_id[name]
        capacity = float(capacity)
        if self._caps_list[i] == capacity:
            return
        self._caps[i] = capacity
        self._caps_list[i] = capacity
        self._dirty.add(i)
        self._result_cache = None

    def has_component(self, name: str) -> bool:
        """Whether ``name`` is a registered component."""
        return name in self._comp_id

    def capacity_of(self, name: str) -> float:
        """The capacity of component ``name``."""
        return float(self._caps[self._comp_id[name]])

    def add_flow(
        self,
        name: str,
        path: list[str],
        demand: float = math.inf,
        weight: float = 1.0,
    ) -> None:
        """Add a flow crossing ``path`` (component names, any order/repeats
        collapse to unique membership), wanting at most ``demand`` bytes/s.
        """
        if name in self._flows:
            raise ValueError(f"duplicate flow name {name!r}")
        if weight <= 0:
            raise ValueError("weight must be positive")
        if demand < 0:
            raise ValueError("demand must be non-negative")
        comp_id = self._comp_id
        # Paths are a handful of components, so a list membership test
        # beats building a set for the dedup.
        path_ids: list[int] = []
        for comp in path:
            c = comp_id.get(comp)
            if c is None:
                raise KeyError(f"unknown component {comp!r} in flow {name!r}")
            if c not in path_ids:
                path_ids.append(c)
        if not path_ids and math.isinf(demand):
            raise ValueError(
                f"flow {name!r} has no components and unbounded demand"
            )
        i = len(self._flows)
        self._demands = _grown(self._demands, i)
        self._weights = _grown(self._weights, i)
        self._rates = _grown(self._rates, i)
        demand = float(demand)
        weight = float(weight)
        self._demands[i] = demand
        self._weights[i] = weight
        # An empty-path flow is limited only by its demand; flows with
        # components get their rate from the next solve.
        self._rates[i] = demand if not path_ids else 0.0
        path_tuple = tuple(path_ids)
        self._flows[name] = _FlowRec(i, path_tuple)
        self._demands_list.append(demand)
        self._weights_list.append(weight)
        self._paths_list.append(path_tuple)
        # Precomputed kernel setup (matches _fill_scalar's generic setup
        # arithmetic operation for operation).
        if demand <= _EPS or not path_ids:
            self._n_irregular += 1
            self._step_lvl.append(math.inf)
            self._edge_lvl.append(math.inf)
        else:
            if math.isfinite(demand):
                if demand <= 1.0:
                    self._n_small += 1
                self._step_lvl.append(demand / weight)
                self._edge_lvl.append(
                    (demand - _EPS * (demand if demand > 1.0 else 1.0))
                    / weight)
            else:
                self._step_lvl.append(math.inf)
                self._edge_lvl.append(math.inf)
            comp_w = self._comp_w
            for c in path_ids:
                comp_w[c] += weight
        key = demand / weight
        pos = bisect_right(self._order_keys, key)
        self._order_keys.insert(pos, key)
        self._order.insert(pos, i)
        self._nnz += len(path_ids)
        finite = math.isfinite(demand)
        dirty = self._dirty
        comp_nf = self._comp_nf
        for c in path_ids:
            self._comp_flows[c].add(name)
            comp_nf[c] += 1
            if finite:
                self._demand_load[c] += demand
            else:
                self._inf_count[c] += 1
            dirty.add(c)
        self._csr = None
        self._result_cache = None

    def has_flow(self, name: str) -> bool:
        """Whether a flow named ``name`` is present."""
        return name in self._flows

    def remove_flow(self, name: str) -> None:
        """Remove a flow, dirtying the components it crossed."""
        rec = self._flows.pop(name)
        i = rec.idx
        n = len(self._flows)
        demand = self._demands_list[i]
        weight = self._weights_list[i]
        # Compact the parallel slot buffers and renumber the survivors.
        self._demands[i:n] = self._demands[i + 1:n + 1]
        self._weights[i:n] = self._weights[i + 1:n + 1]
        self._rates[i:n] = self._rates[i + 1:n + 1]
        for other in self._flows.values():
            if other.idx > i:
                other.idx -= 1
        del self._demands_list[i]
        del self._weights_list[i]
        del self._paths_list[i]
        del self._step_lvl[i]
        del self._edge_lvl[i]
        # Retract the flow's precomputed-setup contribution (symmetric to
        # add_flow's).
        if demand <= _EPS or not rec.path:
            self._n_irregular -= 1
        else:
            if demand <= 1.0:
                self._n_small -= 1
            comp_w = self._comp_w
            for c in rec.path:
                comp_w[c] -= weight
        order = self._order
        pos = order.index(i)
        del order[pos]
        del self._order_keys[pos]
        for k, v in enumerate(order):
            if v > i:
                order[k] = v - 1
        self._nnz -= len(rec.path)
        finite = math.isfinite(demand)
        dirty = self._dirty
        comp_nf = self._comp_nf
        for c in rec.path:
            self._comp_flows[c].discard(name)
            comp_nf[c] -= 1
            if finite:
                self._demand_load[c] -= demand
            else:
                self._inf_count[c] -= 1
            dirty.add(c)
        self._csr = None
        self._result_cache = None

    def set_demand(self, name: str, demand: float) -> None:
        """Change a flow's demand, dirtying the components it crosses.

        A no-op (nothing dirtied) when the demand is unchanged.
        """
        if demand < 0:
            raise ValueError("demand must be non-negative")
        rec = self._flows[name]
        if not rec.path and math.isinf(demand):
            raise ValueError(
                f"flow {name!r} has no components and unbounded demand"
            )
        i = rec.idx
        old = self._demands_list[i]
        demand = float(demand)
        if old == demand:
            return
        self._demands[i] = demand
        self._demands_list[i] = demand
        # Refresh the precomputed kernel setup: the demand may cross the
        # regular/irregular boundary (changing the flow's ``comp_w``
        # contribution) and its fill levels change either way.
        weight = self._weights_list[i]
        old_regular = old > _EPS and bool(rec.path)
        new_regular = demand > _EPS and bool(rec.path)
        self._n_small += ((new_regular and demand <= 1.0)
                          - (old_regular and old <= 1.0))
        if old_regular != new_regular:
            comp_w = self._comp_w
            if new_regular:
                self._n_irregular -= 1
                for c in rec.path:
                    comp_w[c] += weight
            else:
                self._n_irregular += 1
                for c in rec.path:
                    comp_w[c] -= weight
        if new_regular and math.isfinite(demand):
            self._step_lvl[i] = demand / weight
            self._edge_lvl[i] = (
                (demand - _EPS * (demand if demand > 1.0 else 1.0)) / weight)
        else:
            self._step_lvl[i] = math.inf
            self._edge_lvl[i] = math.inf
        # Reposition the flow in the maintained demand/weight sort.
        order = self._order
        keys = self._order_keys
        pos = order.index(i)
        del order[pos]
        del keys[pos]
        key = demand / weight
        pos = bisect_right(keys, key)
        keys.insert(pos, key)
        order.insert(pos, i)
        old_finite = math.isfinite(old)
        new_finite = math.isfinite(demand)
        dirty = self._dirty
        for c in rec.path:
            if old_finite:
                self._demand_load[c] -= old
            else:
                self._inf_count[c] -= 1
            if new_finite:
                self._demand_load[c] += demand
            else:
                self._inf_count[c] += 1
            dirty.add(c)
        if not rec.path:
            self._rates[rec.idx] = demand
        self._result_cache = None

    def demand_of(self, name: str) -> float:
        """The offered demand of flow ``name``."""
        return float(self._demands[self._flows[name].idx])

    def component_names(self) -> list[str]:
        """Registered component names, in registration order."""
        return list(self._comp_names)

    def flow_names(self) -> list[str]:
        """Current flow names, in insertion order (minus removals)."""
        return list(self._flows)

    def flow_spec(self, name: str) -> tuple[list[str], float, float]:
        """The ``(path, demand, weight)`` flow ``name`` was added with.

        The path comes back as component names in the flow's (deduped)
        traversal order — enough to recreate the flow in another network,
        which is how the equivalence tests rebuild scratch references.
        """
        rec = self._flows[name]
        i = rec.idx
        names = self._comp_names
        return ([names[c] for c in rec.path],
                self._demands_list[i], self._weights_list[i])

    @property
    def n_flows(self) -> int:
        """Number of flows currently in the network."""
        return len(self._flows)

    @property
    def n_components(self) -> int:
        """Number of registered components."""
        return len(self._comp_names)

    # -- solving ----------------------------------------------------------------

    def solve(self) -> FlowResult:
        """Weighted max-min allocation by (incremental) progressive filling.

        Dispatches on the solver state: ``full`` when no previous solution
        exists, ``cached`` when nothing changed since the last solve,
        ``shortcircuit`` when no dirty-closure component can saturate, and
        ``delta`` (a re-fill restricted to the closure) otherwise.
        """
        if not self._has_solution:
            self._last_rounds = self._solve_entire()
            path = "full"
        elif self._dirty:
            path, self._last_rounds = self._solve_delta()
        else:
            path = "cached"
        self._dirty.clear()
        self._has_solution = True
        self.solve_counts[path] += 1
        result = self._result_cache
        if result is None:
            result = self._result_cache = self._build_result()
        self._record_telemetry(result, path)
        return result

    def solve_rates(self) -> np.ndarray:
        """Re-solve and return only the per-flow rate array.

        The rates are aligned with flow insertion order (the order
        :meth:`add_flow` calls happened, minus removals) — identical to
        :attr:`FlowResult.rates` from :meth:`solve`, with the same
        dispatch, determinism, and :attr:`solve_counts` accounting.  With
        telemetry disabled this skips building the :class:`FlowResult`
        snapshot entirely (the hot-loop path for per-tick re-solvers such
        as the bandwidth arbiter); with telemetry enabled it delegates to
        :meth:`solve` so the observability record stays complete.
        """
        if get_telemetry().enabled:
            return self.solve().rates
        if not self._has_solution:
            self._last_rounds = self._solve_entire()
            path = "full"
        elif self._dirty:
            path, self._last_rounds = self._solve_delta()
        else:
            path = "cached"
        self._dirty.clear()
        self._has_solution = True
        self.solve_counts[path] += 1
        return self._rates[:len(self._flows)].copy()

    def _solve_entire(self) -> int:
        """From-scratch fill over every component and flow; returns rounds."""
        n = len(self._flows)
        m = len(self._comp_names)
        if n == 0:
            self._load[:m] = 0.0
            self._load_valid = True
            self._bottlenecks = {}
            return 0
        if self._nnz <= _SCALAR_NNZ_MAX:
            pre = ((self._comp_w, self._step_lvl, self._edge_lvl)
                   if self._n_irregular == 0 else None)
            rates, sat, rounds = _fill_scalar(
                self._caps_list, self._paths_list,
                self._demands_list, self._weights_list, pre,
                self._comp_nf, self._order, self._n_small == 0)
            self._rates[:n] = rates
            self._load_valid = False
        else:
            indptr, indices, flow_of_entry = self._csr_incidence()
            rates, load, sat, rounds = _fill_vector(
                self._caps[:m], self._demands[:n], self._weights[:n],
                indptr, indices, flow_of_entry)
            self._rates[:n] = rates
            self._load[:m] = load
            self._load_valid = True
        names = self._comp_names
        caps = self._caps
        self._bottlenecks = {names[c]: float(caps[c]) for c in sat}
        return rounds

    def _csr_incidence(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSR incidence (flow -> component ids), cached across solves."""
        if self._csr is None:
            n = len(self._flows)
            indptr = np.zeros(n + 1, dtype=np.int64)
            indices_list: list[int] = []
            for i, path in enumerate(self._paths_list):
                indices_list.extend(path)
                indptr[i + 1] = len(indices_list)
            indices = np.array(indices_list, dtype=np.int64)
            flow_of_entry = np.repeat(np.arange(n), np.diff(indptr))
            self._csr = (indptr, indices, flow_of_entry)
        return self._csr

    def _closure(self) -> tuple[set[int], set[str], bool]:
        """The connected dirty region: the closure of the dirty components
        under the comp<->flow incidence relation.

        Returns ``(components, flow names, entire)``; ``entire`` short-cuts
        the common case where the closure swallows every flow (a shared
        backbone component went dirty), in which case the component set is
        left incomplete and the caller re-fills the whole network.
        """
        n_flows = len(self._flows)
        comps = set(self._dirty)
        flows: set[str] = set()
        flow_recs = self._flows
        comp_flows = self._comp_flows
        stack = list(self._dirty)
        while stack:
            c = stack.pop()
            for fname in comp_flows[c]:
                if fname not in flows:
                    flows.add(fname)
                    if len(flows) == n_flows:
                        return comps, flows, True
                    for fc in flow_recs[fname].path:
                        if fc not in comps:
                            comps.add(fc)
                            stack.append(fc)
        return comps, flows, False

    def _solve_delta(self) -> tuple[str, int]:
        """Re-solve only the connected dirty region; returns (path, rounds).

        Correctness: by closure construction no flow outside the region
        crosses a component inside it, so the region is an independent
        subproblem of the (unique) global max-min allocation — re-filling
        it from scratch and keeping every other rate frozen reproduces the
        global solution.
        """
        # A dirty component crossed by every flow (a shared backbone)
        # makes the closure the whole network — skip the BFS outright.
        n_flows = len(self._flows)
        comp_nf = self._comp_nf
        for c in self._dirty:
            if comp_nf[c] == n_flows:
                return "delta", self._solve_entire()
        comps, flow_names, entire = self._closure()
        if entire:
            return "delta", self._solve_entire()
        # Analytic short-circuit: if no closure component can saturate
        # (finite demands strictly under capacity, no unbounded flows),
        # rates follow directly from demands.
        caps = self._caps
        demand_load = self._demand_load
        inf_count = self._inf_count
        if all(inf_count[c] == 0
               and demand_load[c] < caps[c] * (1.0 - _SHORTCIRCUIT_MARGIN)
               for c in comps):
            flows = self._flows
            demands = self._demands
            rates = self._rates
            for fname in flow_names:
                i = flows[fname].idx
                rates[i] = demands[i]
            for c in comps:
                self._load[c] = demand_load[c]
                self._bottlenecks.pop(self._comp_names[c], None)
            return "shortcircuit", 0
        # Restricted re-fill over the closure, at full capacities (no flow
        # outside the closure consumes them).
        flows = self._flows
        order = sorted(flow_names, key=lambda fname: flows[fname].idx)
        comp_list = sorted(comps)
        local = {c: k for k, c in enumerate(comp_list)}
        idx = np.array([flows[fname].idx for fname in order], dtype=np.int64)
        paths = [tuple(local[c] for c in flows[fname].path)
                 for fname in order]
        nnz = sum(len(p) for p in paths)
        caps_local = self._caps[np.array(comp_list, dtype=np.int64)]
        if nnz <= _SCALAR_NNZ_MAX:
            sub_demands = self._demands[idx]
            sub_weights = self._weights[idx]
            sub_order = np.argsort(sub_demands / sub_weights,
                                   kind="stable").tolist()
            rates, sat, rounds = _fill_scalar(
                caps_local.tolist(), paths,
                sub_demands.tolist(), sub_weights.tolist(),
                order=sub_order)
            self._rates[idx] = rates
            self._load_valid = False
        else:
            n_sub = len(order)
            indptr = np.zeros(n_sub + 1, dtype=np.int64)
            indices_list: list[int] = []
            for i, p in enumerate(paths):
                indices_list.extend(p)
                indptr[i + 1] = len(indices_list)
            indices = np.array(indices_list, dtype=np.int64)
            flow_of_entry = np.repeat(np.arange(n_sub), np.diff(indptr))
            rates, load, sat, rounds = _fill_vector(
                caps_local, self._demands[idx], self._weights[idx],
                indptr, indices, flow_of_entry)
            self._rates[idx] = rates
            for k, c in enumerate(comp_list):
                self._load[c] = load[k]
        names = self._comp_names
        for c in comp_list:
            self._bottlenecks.pop(names[c], None)
        for k in sat:
            c = comp_list[k]
            self._bottlenecks[names[c]] = float(caps[c])
        return "delta", rounds

    def _build_result(self) -> FlowResult:
        """Snapshot the solver state into an immutable :class:`FlowResult`."""
        n = len(self._flows)
        m = len(self._comp_names)
        if not self._load_valid:
            # Scalar-kernel solves defer the per-component load sum;
            # recompute it from the authoritative rates (same summation
            # order as the vectorized kernel: flow index, then path).
            load = [0.0] * m
            rates = self._rates[:n].tolist()
            for i, path in enumerate(self._paths_list):
                r = rates[i]
                if r < math.inf:
                    for c in path:
                        load[c] += r
            self._load[:m] = load
            self._load_valid = True
        return FlowResult(
            rates=self._rates[:n].copy(),
            flow_names=list(self._flows),
            comp_names=self._comp_names,
            load_arr=self._load[:m].copy(),
            cap_arr=self._caps[:m].copy(),
            bottlenecks=dict(self._bottlenecks),
            rounds=self._last_rounds,
            saturation_order=tuple(self._bottlenecks),
        )

    # -- observability -----------------------------------------------------------

    def _record_telemetry(self, result: FlowResult, path: str) -> None:
        """Record the solve into the telemetry registry (Lesson 12 data).

        Per solve: the resolve-path counter (:data:`RESOLVE_COUNTERS`), a
        filling-round histogram, the saturation order, and per-*layer*
        load/capacity/utilization where a layer is a component-name prefix
        (``client``, ``router``, ``oss``, ``couplet``, ``ost``, ...).
        Guarded on the registry's enabled flag so un-traced solves pay one
        attribute check; the aggregation runs on the solver's own arrays
        so an instrumented solve stays a few vector ops, not a
        per-component Python walk.
        """
        telemetry = get_telemetry()
        if not telemetry.enabled:
            return
        telemetry.counter(f"flow.resolve.{path}").add(1.0)
        telemetry.counter("flow.solves").add(1.0)
        telemetry.counter("flow.flows").add(float(len(result.flow_names)))
        telemetry.histogram("flow.rounds", floor=1.0).observe(
            float(result.rounds))
        telemetry.counter("flow.saturated_components").add(
            float(len(result.saturation_order)))

        tracer = get_tracer()
        for order, comp in enumerate(result.saturation_order):
            tracer.instant(f"saturated:{comp}", "flow", order=order)

        capacity = result._cap_arr
        load = result._load_arr
        comp_names = self._comp_names
        finite = np.flatnonzero(np.isfinite(capacity))
        if finite.size == 0:
            return
        # Map each component to a small integer layer id (one pass of
        # string work), then aggregate with bincount/maximum.at — numpy
        # string comparisons are far slower than this.
        prefix_ids = np.empty(finite.size, dtype=np.intp)
        prefix_index: dict[str, int] = {}
        prefixes: list[str] = []
        for k, i in enumerate(finite.tolist()):
            p = comp_names[i].partition(":")[0]
            j = prefix_index.get(p)
            if j is None:
                j = prefix_index[p] = len(prefixes)
                prefixes.append(p)
            prefix_ids[k] = j
        n_layers = len(prefixes)
        cap_f = capacity[finite]
        load_f = load[finite]
        with np.errstate(divide="ignore", invalid="ignore"):
            util_f = np.where(cap_f > 0, load_f / cap_f,
                              (load_f > 0).astype(float))
        layer_load = np.bincount(prefix_ids, weights=load_f, minlength=n_layers)
        layer_cap = np.bincount(prefix_ids, weights=cap_f, minlength=n_layers)
        layer_util = np.zeros(n_layers)
        np.maximum.at(layer_util, prefix_ids, util_f)
        saturated_count: dict[str, int] = {}
        for comp in result.bottlenecks:
            p = comp.partition(":")[0]
            saturated_count[p] = saturated_count.get(p, 0) + 1
        for j, prefix in enumerate(prefixes):
            telemetry.gauge("flow.layer.load", prefix).set(float(layer_load[j]))
            telemetry.gauge("flow.layer.capacity", prefix).set(float(layer_cap[j]))
            telemetry.gauge("flow.layer.max_util", prefix).set(float(layer_util[j]))
            telemetry.gauge("flow.layer.saturated", prefix).set(
                saturated_count.get(prefix, 0))


class Epoch:
    """Batches same-tick re-solve requests into one flush.

    Executors that own an incrementally-solved network (the bandwidth
    arbiter, the fault campaign, the remediation runner) route their
    re-solve triggers through :meth:`request` instead of solving inline.
    With an ``engine``, the flush is scheduled at the current sim time at
    ``priority`` (default 1 — after every ordinary same-tick event), so a
    burst of simultaneous changes — a fault cascade, a batch of repairs,
    several job transitions at one instant — costs one solve.  The flush
    callback receives the batched labels joined with ``"+"`` (first
    occurrence order, deduplicated).

    Used as a context manager, requests made inside the ``with`` block are
    held and flushed on exit (deferred to end-of-tick when an engine is
    attached, immediately otherwise) — the explicit-batch form for code
    running off the engine.
    """

    def __init__(
        self,
        flush: Callable[[str], None],
        *,
        engine=None,
        priority: int = 1,
    ) -> None:
        self._flush = flush
        self._engine = engine
        self._priority = priority
        self._labels: list[str] = []
        self._armed = False
        self._held = 0
        #: number of flushes fired (diagnostic; each flush = one solve)
        self.flushes = 0

    def request(self, label: str) -> None:
        """Ask for a flush, carrying ``label`` into the batched flush label."""
        self._labels.append(label)
        if self._held > 0 or self._armed:
            return
        if self._engine is not None:
            self._armed = True
            self._engine.call_at(self._engine.now, self._fire,
                                 priority=self._priority)
        else:
            self._fire()

    def __enter__(self) -> "Epoch":
        self._held += 1
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._held -= 1
        if self._held == 0 and self._labels and not self._armed:
            if self._engine is not None:
                self._armed = True
                self._engine.call_at(self._engine.now, self._fire,
                                     priority=self._priority)
            else:
                self._fire()

    def _fire(self) -> None:
        """Run the flush with the batched label (engine event target)."""
        self._armed = False
        if not self._labels:
            return
        labels, self._labels = self._labels, []
        if len(labels) == 1:
            label = labels[0]
        else:
            label = "+".join(dict.fromkeys(labels))
        self.flushes += 1
        tracer = get_tracer()
        if not tracer.enabled:
            self._flush(label)
            return
        span = tracer.open(f"epoch:{label}", "flow", merged=len(labels))
        try:
            self._flush(label)
        finally:
            tracer.end(span)
