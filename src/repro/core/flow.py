"""Max-min fair flow allocation over a capacitated component DAG.

Why flow-level, not packet-level
--------------------------------
The paper's tuning methodology (Lesson 12) reasons about the I/O path as a
stack of capacitated layers — disks, RAID groups, controller couplets,
OSSes, InfiniBand links, LNET routers, Gemini links, client NICs — and asks
at each layer "what bandwidth should survive to here?".  Steady-state
bandwidth under that world-view is exactly a *bandwidth-sharing* problem:
every I/O stream (flow) crosses a sequence of components, each component has
a capacity shared by the flows crossing it, and TCP-like transports plus
Lustre's request schedulers drive the share toward (weighted) max-min
fairness.  Packet-level detail would add runtime, not insight, at the scale
of 18,688 clients.

Algorithm
---------
Progressive filling (the textbook max-min construction), vectorized:

1. every unfrozen flow's rate grows uniformly (scaled by its weight);
2. the first component to saturate freezes the flows crossing it at their
   current rate (flows with finite *demand* freeze when they reach it);
3. repeat on the residual network until all flows are frozen.

The implementation works on a CSR-style incidence structure (component ->
member flows) so each filling round is O(nnz) in numpy, and the number of
rounds is bounded by the number of distinct bottlenecks.

Properties (enforced by the property-based tests):

* feasibility: per-component load ≤ capacity (+ float slack);
* demand-boundedness: rate ≤ demand for every flow;
* max-min/Pareto: every flow is limited by a *saturated* component on its
  path or by its own demand — no rate can be raised without lowering a
  smaller (weighted) rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = ["FlowNetwork", "FlowResult"]

_EPS = 1e-9


@dataclass
class FlowResult:
    """Outcome of a :meth:`FlowNetwork.solve` call."""

    rates: np.ndarray  # per-flow allocated rate (bytes/s)
    flow_names: list[str]
    component_load: dict[str, float]
    component_capacity: dict[str, float]
    bottlenecks: dict[str, float] = field(default_factory=dict)
    #: number of progressive-filling rounds the solve took
    rounds: int = 0
    #: saturated components in the order they saturated (first = the
    #: binding bottleneck the filling hit first)
    saturation_order: tuple[str, ...] = ()

    @property
    def total(self) -> float:
        return float(self.rates.sum())

    def rate_of(self, name: str) -> float:
        return float(self.rates[self.flow_names.index(name)])

    def saturated_components(self, tol: float = 1e-6) -> list[str]:
        """Components whose load is within ``tol`` (relative) of capacity."""
        out = []
        for comp, load in self.component_load.items():
            cap = self.component_capacity[comp]
            if cap < math.inf and load >= cap * (1 - tol) - _EPS:
                out.append(comp)
        return out

    def utilization(self, component: str) -> float:
        cap = self.component_capacity[component]
        if cap == 0:
            return 1.0 if self.component_load[component] > 0 else 0.0
        if math.isinf(cap):
            return 0.0
        return self.component_load[component] / cap


class FlowNetwork:
    """A set of capacitated components plus flows crossing them.

    >>> net = FlowNetwork()
    >>> net.add_component("link", 10.0)
    >>> net.add_flow("a", ["link"])
    >>> net.add_flow("b", ["link"])
    >>> res = net.solve()
    >>> res.rates.tolist()
    [5.0, 5.0]
    """

    def __init__(self) -> None:
        self._capacity: dict[str, float] = {}
        self._flows: list[tuple[str, list[str], float, float]] = []
        self._flow_names: set[str] = set()

    # -- construction -----------------------------------------------------------

    def add_component(self, name: str, capacity: float) -> None:
        """Register a component; re-adding overwrites the capacity (used by
        what-if analyses such as controller upgrades)."""
        if capacity < 0:
            raise ValueError(f"negative capacity for {name!r}")
        self._capacity[name] = float(capacity)

    def has_component(self, name: str) -> bool:
        return name in self._capacity

    def capacity_of(self, name: str) -> float:
        return self._capacity[name]

    def add_flow(
        self,
        name: str,
        path: list[str],
        demand: float = math.inf,
        weight: float = 1.0,
    ) -> None:
        """Add a flow crossing ``path`` (component names, any order/repeats
        collapse to unique membership), wanting at most ``demand`` bytes/s.
        """
        if name in self._flow_names:
            raise ValueError(f"duplicate flow name {name!r}")
        if weight <= 0:
            raise ValueError("weight must be positive")
        if demand < 0:
            raise ValueError("demand must be non-negative")
        unique_path: list[str] = []
        seen = set()
        for comp in path:
            if comp not in self._capacity:
                raise KeyError(f"unknown component {comp!r} in flow {name!r}")
            if comp not in seen:
                seen.add(comp)
                unique_path.append(comp)
        if not unique_path and math.isinf(demand):
            raise ValueError(
                f"flow {name!r} has no components and unbounded demand"
            )
        self._flow_names.add(name)
        self._flows.append((name, unique_path, float(demand), float(weight)))

    @property
    def n_flows(self) -> int:
        return len(self._flows)

    @property
    def n_components(self) -> int:
        return len(self._capacity)

    # -- solving ----------------------------------------------------------------

    def solve(self) -> FlowResult:
        """Weighted max-min allocation by vectorized progressive filling."""
        comp_names = list(self._capacity.keys())
        comp_index = {c: i for i, c in enumerate(comp_names)}
        n_comp = len(comp_names)
        n_flows = len(self._flows)

        capacity = np.array([self._capacity[c] for c in comp_names])
        demand = np.array([f[2] for f in self._flows]) if n_flows else np.empty(0)
        weight = np.array([f[3] for f in self._flows]) if n_flows else np.empty(0)
        names = [f[0] for f in self._flows]

        # CSR incidence: flow -> component indices.
        indptr = np.zeros(n_flows + 1, dtype=np.int64)
        indices_list: list[int] = []
        for i, (_n, path, _d, _w) in enumerate(self._flows):
            indices_list.extend(comp_index[c] for c in path)
            indptr[i + 1] = len(indices_list)
        indices = np.array(indices_list, dtype=np.int64)
        # Per-incidence flow id (for scatter-adds).
        flow_of_entry = np.repeat(np.arange(n_flows), np.diff(indptr))

        rates = np.zeros(n_flows)
        frozen = np.zeros(n_flows, dtype=bool)
        residual = capacity.astype(float).copy()
        bottleneck_of: dict[str, float] = {}

        # Flows with zero demand (or empty paths and zero demand) freeze at 0.
        frozen |= demand <= _EPS
        # Flows with no components are limited only by their demand.
        empty_path = np.diff(indptr) == 0
        rates[empty_path & ~frozen] = demand[empty_path & ~frozen]
        frozen |= empty_path

        max_rounds = n_comp + n_flows + 2
        rounds_used = 0
        for _round in range(max_rounds):
            if frozen.all():
                break
            rounds_used += 1
            active_entry = ~frozen[flow_of_entry]
            # Weighted active flow count per component.
            comp_weight = np.zeros(n_comp)
            np.add.at(comp_weight, indices[active_entry],
                      weight[flow_of_entry[active_entry]])
            # Fill level at which each component saturates.
            with np.errstate(divide="ignore", invalid="ignore"):
                comp_fill = np.where(comp_weight > _EPS, residual / comp_weight, np.inf)
            comp_fill = np.where(residual <= _EPS, np.where(comp_weight > _EPS, 0.0, np.inf), comp_fill)
            # Fill level at which each active flow reaches its demand.
            active = ~frozen
            with np.errstate(divide="ignore", invalid="ignore"):
                demand_fill = np.where(active, (demand - rates) / weight, np.inf)
            min_comp_fill = comp_fill.min() if n_comp else math.inf
            min_demand_fill = demand_fill.min() if n_flows else math.inf
            step = min(min_comp_fill, min_demand_fill)
            if not math.isfinite(step):
                # Active flows cross only infinite-capacity components and
                # have infinite demand: leave them unbounded (inf rates).
                rates[active] = math.inf
                break
            step = max(step, 0.0)

            # Advance all active flows by step * weight.
            delta = step * weight * active
            rates += delta
            # Consume residual capacity.
            np.subtract.at(residual, indices[active_entry],
                           delta[flow_of_entry[active_entry]])
            residual = np.maximum(residual, 0.0)

            # Freeze demand-satisfied flows (infinite demand never satisfies).
            finite_demand = np.isfinite(demand)
            demand_edge = np.where(
                finite_demand, demand - _EPS * np.maximum(np.where(finite_demand, demand, 0.0), 1.0), np.inf
            )
            frozen |= active & (rates >= demand_edge)

            # Freeze flows crossing saturated components (only components
            # with finite capacity can saturate).
            finite_cap = np.isfinite(capacity)
            saturated = finite_cap & (residual <= _EPS + 1e-12 * np.where(finite_cap, capacity, 0.0))
            saturated &= comp_weight > _EPS  # only components with active flows
            if saturated.any():
                sat_set = np.flatnonzero(saturated)
                for ci in sat_set:
                    bottleneck_of.setdefault(comp_names[ci], float(capacity[ci]))
                sat_entry = np.isin(indices, sat_set) & active_entry
                frozen_flows = np.unique(flow_of_entry[sat_entry])
                frozen[frozen_flows] = True
        else:  # pragma: no cover - defensive
            raise RuntimeError("progressive filling failed to converge")

        load = np.zeros(n_comp)
        finite = np.isfinite(rates)
        fin_entry = finite[flow_of_entry]
        np.add.at(load, indices[fin_entry], rates[flow_of_entry[fin_entry]])

        result = FlowResult(
            rates=rates,
            flow_names=names,
            component_load={c: float(load[i]) for i, c in enumerate(comp_names)},
            component_capacity={c: float(capacity[i]) for i, c in enumerate(comp_names)},
            bottlenecks=bottleneck_of,
            rounds=rounds_used,
            saturation_order=tuple(bottleneck_of),
        )
        self._record_telemetry(result, comp_names, capacity, load)
        return result

    # -- observability -----------------------------------------------------------

    def _record_telemetry(
        self,
        result: FlowResult,
        comp_names: list[str],
        capacity: np.ndarray,
        load: np.ndarray,
    ) -> None:
        """Record the solve into the telemetry registry (Lesson 12 data).

        Per solve: a filling-round histogram, the saturation order, and
        per-*layer* load/capacity/utilization where a layer is a
        component-name prefix (``client``, ``router``, ``oss``,
        ``couplet``, ``ost``, ...).  Guarded on the registry's enabled
        flag so un-traced solves pay one attribute check; the aggregation
        runs on the solver's own arrays so an instrumented solve stays a
        few vector ops, not a per-component Python walk.
        """
        from repro.obs.instruments import get_telemetry
        from repro.obs.trace import get_tracer

        telemetry = get_telemetry()
        if not telemetry.enabled:
            return
        telemetry.counter("flow.solves").add(1.0)
        telemetry.counter("flow.flows").add(float(len(result.flow_names)))
        telemetry.histogram("flow.rounds", floor=1.0).observe(float(result.rounds))
        telemetry.counter("flow.saturated_components").add(
            float(len(result.saturation_order)))

        tracer = get_tracer()
        for order, comp in enumerate(result.saturation_order):
            tracer.instant(f"saturated:{comp}", "flow", order=order)

        finite = np.flatnonzero(np.isfinite(capacity))
        if finite.size == 0:
            return
        # Map each component to a small integer layer id (one pass of
        # string work), then aggregate with bincount/maximum.at — numpy
        # string comparisons are far slower than this.
        prefix_ids = np.empty(finite.size, dtype=np.intp)
        prefix_index: dict[str, int] = {}
        prefixes: list[str] = []
        for k, i in enumerate(finite.tolist()):
            p = comp_names[i].partition(":")[0]
            j = prefix_index.get(p)
            if j is None:
                j = prefix_index[p] = len(prefixes)
                prefixes.append(p)
            prefix_ids[k] = j
        n_layers = len(prefixes)
        cap_f = capacity[finite]
        load_f = load[finite]
        with np.errstate(divide="ignore", invalid="ignore"):
            util_f = np.where(cap_f > 0, load_f / cap_f,
                              (load_f > 0).astype(float))
        layer_load = np.bincount(prefix_ids, weights=load_f, minlength=n_layers)
        layer_cap = np.bincount(prefix_ids, weights=cap_f, minlength=n_layers)
        layer_util = np.zeros(n_layers)
        np.maximum.at(layer_util, prefix_ids, util_f)
        saturated_count: dict[str, int] = {}
        for comp in result.bottlenecks:
            p = comp.partition(":")[0]
            saturated_count[p] = saturated_count.get(p, 0) + 1
        for j, prefix in enumerate(prefixes):
            telemetry.gauge("flow.layer.load", prefix).set(float(layer_load[j]))
            telemetry.gauge("flow.layer.capacity", prefix).set(float(layer_cap[j]))
            telemetry.gauge("flow.layer.max_util", prefix).set(float(layer_util[j]))
            telemetry.gauge("flow.layer.saturated", prefix).set(
                saturated_count.get(prefix, 0))
