"""End-to-end I/O path construction: turning transfers into flow problems.

This module encodes the layered data path of Figure 1 / Lesson 12:

  client stack → (Gemini links) → I/O router → router IB cable → leaf
  switch → (core switch) → OSS cable → OSS node → controller couplet →
  OST (RAID group)

Each layer becomes a component in a :class:`repro.core.flow.FlowNetwork`;
each transfer (one client writing/reading one OST set) becomes a flow
crossing its layers.  Torus links are optional — they matter for the
placement/congestion experiments but add thousands of components the
whole-system scaling runs don't need.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.flow import FlowNetwork, FlowResult
from repro.core.spider import SpiderSystem
from repro.lustre.client import Client
from repro.network.lnet import FineGrainedRouting, RoutingPolicy, record_routed_bytes
from repro.obs.instruments import get_telemetry

__all__ = ["Transfer", "PathBuilder"]


@dataclass(frozen=True)
class Transfer:
    """One I/O stream: a client moving data to/from a set of OSTs.

    ``demand`` is the offered load (bytes/s) of this stream — typically the
    client-stack ceiling discounted by transfer-size efficiency.  A stream
    striped over several OSTs is split into one flow per OST with the
    demand divided evenly (Lustre round-robins RPCs over stripes).
    """

    name: str
    client: Client
    ost_indices: tuple[int, ...]
    demand: float = math.inf
    write: bool = True
    #: QoS class label; flows of a labelled transfer additionally cross a
    #: shared ``qos:<class>`` component whose capacity
    #: :meth:`PathBuilder.set_class_cap` can move (the degraded-mode shed
    #: path for backpressure).  ``None`` (the default) adds nothing.
    qos_class: str | None = None

    def __post_init__(self) -> None:
        if not self.ost_indices:
            raise ValueError("transfer needs at least one OST")
        if self.demand <= 0:
            raise ValueError("demand must be positive")


class PathBuilder:
    """Builds flow networks over a :class:`SpiderSystem`."""

    def __init__(
        self,
        system: SpiderSystem,
        *,
        policy: RoutingPolicy | None = None,
        fs_level: bool = True,
        include_torus: bool = False,
    ) -> None:
        self.system = system
        self.policy = policy or FineGrainedRouting(system.lnet)
        self.fs_level = fs_level
        self.include_torus = include_torus
        self._router_usage: dict[str, int] = {}
        #: (router name | None, oss name, ost index, is_write) per flow,
        #: in add order — parallel to FlowResult.flow_names/rates.
        self._flow_routes: list[tuple[str | None, str, int, bool]] = []
        #: flows dropped by the most recent build because no live router
        #: served their destination leaf (router failures, §IV-D)
        self.unroutable_flows = 0
        #: per-class capacity of the shared ``qos:<class>`` components
        #: (see :meth:`set_class_cap`); unlisted classes are uncapped
        self._class_caps: dict[str, float] = {}
        # incremental-resolve state (see resolve()): the built network,
        # the transfer list it was built for, and the routing-policy
        # fingerprint the routes were chosen under
        self._net: FlowNetwork | None = None
        self._resolved_transfers: list[Transfer] | None = None
        self._routing_fp: bytes | None = None
        self._last_result: FlowResult | None = None
        # solve counts of networks this builder has retired; rebuilds swap
        # in a fresh FlowNetwork, so the property below folds these in to
        # stay cumulative across the builder's lifetime
        self._solve_counts_base = {
            "full": 0, "delta": 0, "shortcircuit": 0, "cached": 0}

    # -- component registration ---------------------------------------------------

    def _register_static_components(self, net: FlowNetwork) -> None:
        sys = self.system
        sys.fabric.register_components(net)
        for r in sys.routers:
            net.add_component(f"router:{r.name}", sys.spec.router_bw_cap)
        for oss in sys.osses:
            net.add_component(oss.component, oss.spec.node_bw_cap)
        for i, ssu in enumerate(sys.ssus):
            net.add_component(
                f"couplet:{i}", ssu.couplet.bw_cap(fs_level=self.fs_level)
            )
        ost_caps = sys.ost_flow_capacities(fs_level=self.fs_level)
        for ost, cap in zip(sys.osts, ost_caps):
            net.add_component(ost.component, float(cap))

    def _client_components(self, net: FlowNetwork, client: Client) -> list[str]:
        comps = [client.component]
        if not net.has_component(client.component):
            net.add_component(client.component, client.bw_cap)
        if self.include_torus and client.on_torus:
            inj = self.system.torus.injection_component(client.coord)
            if not net.has_component(inj):
                net.add_component(inj, self.system.spec.torus.injection_bw)
            comps.append(inj)
        return comps

    def _torus_components(self, net: FlowNetwork, src, dst) -> list[str]:
        order = self.policy.axis_order(src, dst)
        comps = []
        for link in self.system.torus.route_links_ordered(src, dst, order):
            comp = self.system.torus.link_component(link)
            if not net.has_component(comp):
                net.add_component(comp, self.system.spec.torus.link_bw)
            comps.append(comp)
        return comps

    # -- network assembly ------------------------------------------------------------

    def build(self, transfers: list[Transfer]) -> FlowNetwork:
        """A flow network with one flow per (transfer, OST) pair.

        A flow whose destination leaf has no live router (every serving
        router failed) is dropped rather than built — the Lustre client
        simply cannot reach that OST — and counted in
        :attr:`unroutable_flows` (plus the ``flow.unroutable`` telemetry
        counter when enabled).
        """
        net = FlowNetwork()
        self._register_static_components(net)
        self._router_usage.clear()
        self._flow_routes.clear()
        self.unroutable_flows = 0
        # A build replaces the route tables, so any network resolve()
        # may be holding no longer matches them.  Fold its solve counts
        # into the base first so solve_counts stays cumulative.
        if self._net is not None:
            for kind, count in self._net.solve_counts.items():
                self._solve_counts_base[kind] += count
        self._net = None

        for t in transfers:
            client_comps = self._client_components(net, t.client)
            per_ost_demand = t.demand / len(t.ost_indices)
            for ost_index in t.ost_indices:
                ost = self.system.osts[ost_index]
                oss = self.system.oss_of_ost(ost_index)
                path = list(client_comps)
                router_name = None
                if t.client.on_torus:
                    try:
                        router = self.policy.select_router(
                            t.client.coord, oss.leaf)
                    except LookupError:
                        self.unroutable_flows += 1
                        telemetry = get_telemetry()
                        if telemetry.enabled:
                            telemetry.counter("flow.unroutable").add(1.0)
                        continue
                    router_name = router.name
                    self._router_usage[router.name] = (
                        self._router_usage.get(router.name, 0) + 1
                    )
                    if self.include_torus:
                        path += self._torus_components(
                            net, t.client.coord, router.coord
                        )
                    path.append(f"router:{router.name}")
                    entry_host = router.name
                else:
                    entry_host = t.client.name  # off-torus host on the SAN
                path += self.system.fabric.path_components(entry_host, oss.name)
                path.append(oss.component)
                path.append(f"couplet:{ost.ssu_index}")
                path.append(ost.component)
                if t.qos_class is not None:
                    qos_comp = f"qos:{t.qos_class}"
                    if not net.has_component(qos_comp):
                        net.add_component(
                            qos_comp, self._class_caps.get(t.qos_class, math.inf))
                    path.append(qos_comp)
                flow_name = f"{t.name}->ost{ost_index}"
                self._flow_routes.append(
                    (router_name, oss.name, ost_index, t.write)
                )
                net.add_flow(flow_name, path, demand=per_ost_demand)
        return net

    def solve(self, transfers: list[Transfer]) -> FlowResult:
        return self.build(transfers).solve()

    def resolve(self, transfers: list[Transfer]) -> FlowResult:
        """Incrementally re-solve ``transfers`` over the live system.

        The fast path for repeated solves of one fixed workload (the
        fault campaign's probe streams): the first call builds the
        network from scratch; later calls reuse it, pushing the current
        layer capacities as delta operations so the incremental solver
        re-fills only the connected dirty region (or short-circuits —
        see ``docs/PERFORMANCE.md``).

        Routing is fingerprinted on the *policy*
        (:meth:`~repro.network.lnet.RoutingPolicy.fingerprint`) — by
        default the router-online bits, but adaptive policies fold in
        their own routing state and may dampen flaps.  When the
        fingerprint changes — routes the policy would pick no longer
        match the built network — the policy's balancing state is reset
        and the network rebuilt, exactly what a fresh builder would
        produce.  Callers must pass the *same list object* between
        calls to stay on the fast path; a different list forces a
        rebuild.
        """
        fp = self.policy.fingerprint()
        if (self._net is None or transfers is not self._resolved_transfers
                or fp != self._routing_fp):
            self.policy.reset()
            self._net = self.build(transfers)
            self._resolved_transfers = transfers
            self._routing_fp = fp
        else:
            self._refresh_capacities(self._net)
        result = self._net.solve()
        self._last_result = result
        return result

    def _refresh_capacities(self, net: FlowNetwork) -> None:
        """Push the current fault-movable capacities as delta operations.

        Mirrors :meth:`_register_static_components` for the layers whose
        capacity moves under faults: fabric cables (degrade/fail/repair),
        couplets (controller failover), and OSTs (disk state, fill
        level).  Router, OSS, client, switch, and torus-link capacities
        are spec constants and stay untouched; unchanged values are
        no-ops inside the network, dirtying nothing.
        """
        sys = self.system
        sys.fabric.refresh_components(net)
        for i, ssu in enumerate(sys.ssus):
            net.set_capacity(f"couplet:{i}",
                             ssu.couplet.bw_cap(fs_level=self.fs_level))
        ost_caps = sys.ost_flow_capacities(fs_level=self.fs_level)
        for ost, cap in zip(sys.osts, ost_caps):
            net.set_capacity(ost.component, float(cap))

    def router_usage(self) -> dict[str, int]:
        """Flows per router from the most recent :meth:`build`."""
        return dict(self._router_usage)

    @property
    def solve_counts(self) -> dict[str, int]:
        """Cumulative solve counts across every network this builder made.

        Each rebuild swaps in a fresh :class:`FlowNetwork` whose counters
        start at zero; retired networks' counts are folded into a running
        base, so ``solve_counts["full"]`` is the builder-lifetime number
        of from-scratch solves — the quantity the flap-dampening
        regression bounds.
        """
        counts = dict(self._solve_counts_base)
        if self._net is not None:
            for kind, count in self._net.solve_counts.items():
                counts[kind] += count
        return counts

    # -- degraded-mode class caps -------------------------------------------------

    def set_class_cap(self, qos_class: str, capacity: float) -> None:
        """Cap the shared ``qos:<class>`` component (bytes/s).

        The backpressure degraded mode: capping a class sheds its load at
        one shared choke point without touching any route.  On a live
        resolved network this is a pure delta operation — the incremental
        solver re-fills only the region the cap dirties; the stored value
        also seeds any later rebuild.  ``math.inf`` removes the cap.
        """
        if capacity <= 0:
            raise ValueError("class cap must be positive")
        self._class_caps[qos_class] = float(capacity)
        comp = f"qos:{qos_class}"
        if self._net is not None and self._net.has_component(comp):
            self._net.set_capacity(comp, float(capacity))

    def class_cap(self, qos_class: str) -> float:
        return self._class_caps.get(qos_class, math.inf)

    def link_utilization(self, component: str) -> float:
        """Utilization of ``component`` in the most recent resolve, 0.0 if
        unknown — the surface the overlay's routing probes sample, so the
        adaptive policy observes solver outcomes only through the
        monitoring path (windowed, delayed, lossy), never directly."""
        if self._last_result is None:
            return 0.0
        try:
            return float(self._last_result.utilization(component))
        except KeyError:
            return 0.0

    def record_flow_telemetry(self, result: FlowResult, duration: float) -> None:
        """Attribute a solved allocation back to the layers it crossed.

        Converts each flow's steady-state rate over ``duration`` seconds
        into bytes and charges them to the router (``lnet.routed_bytes``),
        the OSS (``oss.bytes``), and the OST (``ost.write_bytes`` /
        ``ost.read_bytes``) it traversed — the per-layer counters the
        paper's external pollers (DDN tool, MELT-style aggregation) would
        observe.  No-op while telemetry is disabled, so un-traced runs
        skip the attribution walk entirely.
        """
        telemetry = get_telemetry()
        if not telemetry.enabled:
            return
        # Aggregate locally, then touch each counter once per source — the
        # per-flow loop stays plain dict arithmetic on plain floats.
        rates = np.asarray(result.rates, dtype=float)
        valid = np.isfinite(rates) & (rates > 0)
        nbytes_all = np.where(valid, rates * duration, 0.0).tolist()
        router_bytes: dict[str, float] = {}
        oss_bytes: dict[str, float] = {}
        ost_bytes: dict[tuple[str, int], float] = {}
        for route, nbytes in zip(self._flow_routes, nbytes_all):
            if nbytes <= 0.0:
                continue
            router_name, oss_name, ost_index, is_write = route
            if router_name is not None:
                router_bytes[router_name] = (
                    router_bytes.get(router_name, 0.0) + nbytes)
            oss_bytes[oss_name] = oss_bytes.get(oss_name, 0.0) + nbytes
            metric = "ost.write_bytes" if is_write else "ost.read_bytes"
            ost_bytes[(metric, ost_index)] = (
                ost_bytes.get((metric, ost_index), 0.0) + nbytes)
        for router_name, nbytes in router_bytes.items():
            record_routed_bytes(router_name, nbytes)
        for router_name, n_selected in self._router_usage.items():
            telemetry.counter("lnet.selections", router_name).add(
                float(n_selected))
        for oss_name, nbytes in oss_bytes.items():
            telemetry.counter("oss.bytes", oss_name).add(nbytes)
        for (metric, ost_index), nbytes in ost_bytes.items():
            telemetry.counter(
                metric, self.system.osts[ost_index].component).add(nbytes)

    # -- analysis helpers ---------------------------------------------------------------

    def transfer_rates(
        self, result: FlowResult, transfers: list[Transfer],
        *, lockstep: bool = False,
    ) -> dict[str, float]:
        """Aggregate per-transfer rate from the per-OST flows.

        ``lockstep=False`` sums the stripes (streams progress
        independently).  ``lockstep=True`` models Lustre's synchronous
        striped-write behaviour — the file advances at ``stripe_count ×
        min(stripe rate)`` because RPCs round-robin the stripes in offset
        order — which is why one congested OST throttles a whole
        wide-striped file (the §VI-A placement-gain mechanism).
        """
        per_flow: dict[str, list[float]] = {t.name: [] for t in transfers}
        for name, rate in zip(result.flow_names, result.rates):
            tname = name.rsplit("->", 1)[0]
            per_flow[tname].append(float(rate))
        if not lockstep:
            return {name: sum(rates) for name, rates in per_flow.items()}
        return {
            name: (len(rates) * min(rates) if rates else 0.0)
            for name, rates in per_flow.items()
        }
