"""The HPC-center model: data-centric vs machine-exclusive PFS designs.

§II and §VII frame the strategic choice this paper defends: a single
center-wide file system shared by every compute resource (data-centric)
versus one scratch file system per machine (machine-exclusive).  The
quantitative criteria in the text:

* a machine-exclusive PFS "can easily exceed 10% of the total acquisition
  cost" *per machine*, plus data-movement infrastructure;
* scientific workflows pipeline data between resources, so exclusive
  designs pay explicit inter-filesystem copies (and user friction);
* capacity target: "no less than 30x the aggregate system memory of all
  connected systems" (the CORAL rule) — 770 TB × 30 ≈ 23 PB < 32 PB ✓;
* availability: a machine outage under the exclusive model takes its data
  offline with it; under the data-centric model data stays reachable from
  every other resource.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.units import GB, HOUR, PB, TB

__all__ = ["PfsModel", "ComputeResource", "WorkflowStage", "Workflow", "HpcCenter"]


class PfsModel(enum.Enum):
    """The two provisioning models §I contrasts: one shared center-wide
    file system vs. a dedicated scratch per compute platform."""

    DATA_CENTRIC = "data-centric"
    MACHINE_EXCLUSIVE = "machine-exclusive"


@dataclass(frozen=True)
class ComputeResource:
    """One center resource (supercomputer, analysis cluster, viz wall...)."""

    name: str
    memory_bytes: int
    acquisition_cost: float  # normalized units
    kind: str = "simulation"
    availability: float = 0.97  # fraction of time in service

    def __post_init__(self) -> None:
        if self.memory_bytes <= 0:
            raise ValueError("memory must be positive")
        if self.acquisition_cost < 0:
            raise ValueError("cost must be non-negative")
        if not (0 < self.availability <= 1):
            raise ValueError("availability must be in (0, 1]")


#: The OLCF fleet as of the paper: Titan plus analysis/visualization
#: clusters, ~770 TB aggregate memory (§VII).
OLCF_RESOURCES = (
    ComputeResource("titan", memory_bytes=710 * TB, acquisition_cost=100.0,
                    kind="simulation"),
    ComputeResource("eos", memory_bytes=30 * TB, acquisition_cost=6.0,
                    kind="simulation"),
    ComputeResource("rhea", memory_bytes=20 * TB, acquisition_cost=3.0,
                    kind="analysis"),
    ComputeResource("everest", memory_bytes=5 * TB, acquisition_cost=1.5,
                    kind="visualization"),
    ComputeResource("dtn", memory_bytes=5 * TB, acquisition_cost=0.5,
                    kind="transfer"),
)


@dataclass(frozen=True)
class WorkflowStage:
    """One stage of a science campaign: runs on a resource, reads its
    input dataset, emits an output dataset."""

    resource: str
    input_bytes: int
    output_bytes: int
    label: str = ""


@dataclass(frozen=True)
class Workflow:
    """A pipelined campaign (simulate → analyze → visualize, §I)."""

    name: str
    stages: tuple[WorkflowStage, ...]

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError("workflow needs at least one stage")


def checkpoint_analysis_workflow(
    checkpoint_bytes: int = 450 * TB, reduced_bytes: int = 40 * TB
) -> Workflow:
    """The canonical OLCF pipeline: a Titan simulation emits checkpoints,
    an analysis cluster reduces them, a viz system renders the reduction."""
    return Workflow(
        name="sim-analyze-viz",
        stages=(
            WorkflowStage("titan", 0, checkpoint_bytes, "simulation"),
            WorkflowStage("rhea", checkpoint_bytes, reduced_bytes, "analysis"),
            WorkflowStage("everest", reduced_bytes, reduced_bytes // 20, "visualization"),
        ),
    )


class HpcCenter:
    """A center with a fleet of resources and a PFS architecture choice."""

    #: fraction of a machine's acquisition cost consumed by its exclusive
    #: scratch PFS ("can easily exceed 10%", §II)
    EXCLUSIVE_PFS_COST_FRACTION = 0.10
    #: extra infrastructure for inter-filesystem data movement (data-mover
    #: cluster + interconnect), as a fraction of total machine cost
    DATA_MOVER_COST_FRACTION = 0.015

    def __init__(
        self,
        resources: tuple[ComputeResource, ...] = OLCF_RESOURCES,
        *,
        model: PfsModel = PfsModel.DATA_CENTRIC,
        pfs_capacity_bytes: int = 32 * PB,
        pfs_cost: float = 9.0,
    ) -> None:
        if not resources:
            raise ValueError("a center needs resources")
        self.resources = {r.name: r for r in resources}
        if len(self.resources) != len(resources):
            raise ValueError("duplicate resource names")
        self.model = model
        self.pfs_capacity_bytes = pfs_capacity_bytes
        self.pfs_cost = pfs_cost

    # -- capacity planning --------------------------------------------------------

    @property
    def aggregate_memory_bytes(self) -> int:
        return sum(r.memory_bytes for r in self.resources.values())

    def capacity_target_bytes(self, multiple: float = 30.0) -> int:
        """The 30× aggregate-memory rule (§VII, used in DOE CORAL)."""
        return int(self.aggregate_memory_bytes * multiple)

    def meets_capacity_target(self, multiple: float = 30.0) -> bool:
        return self.pfs_capacity_bytes >= self.capacity_target_bytes(multiple)

    def headroom_for_new_resource(self, multiple: float = 30.0) -> int:
        """Memory (bytes) a *new* machine could bring while the existing PFS
        still meets the 30× rule — the 'minimal cost of adding a resource'
        argument of §VII."""
        spare = self.pfs_capacity_bytes - self.capacity_target_bytes(multiple)
        return max(0, int(spare // multiple))

    # -- cost ---------------------------------------------------------------------

    def storage_cost(self) -> float:
        """Total storage acquisition cost under the chosen model."""
        total_machine_cost = sum(r.acquisition_cost for r in self.resources.values())
        if self.model is PfsModel.DATA_CENTRIC:
            return self.pfs_cost
        exclusive = total_machine_cost * self.EXCLUSIVE_PFS_COST_FRACTION
        movers = total_machine_cost * self.DATA_MOVER_COST_FRACTION
        return exclusive + movers

    def cost_of_adding_resource(self, resource: ComputeResource,
                                multiple: float = 30.0) -> float:
        """Marginal storage cost of connecting a new machine."""
        if self.model is PfsModel.MACHINE_EXCLUSIVE:
            return resource.acquisition_cost * self.EXCLUSIVE_PFS_COST_FRACTION
        if resource.memory_bytes <= self.headroom_for_new_resource(multiple):
            return 0.0  # rides on existing capacity margin
        # Needs a capacity expansion proportional to the shortfall.
        shortfall = resource.memory_bytes * multiple - (
            self.pfs_capacity_bytes - self.capacity_target_bytes(multiple)
        )
        return self.pfs_cost * shortfall / self.pfs_capacity_bytes

    # -- data movement ---------------------------------------------------------------

    def workflow_movement_bytes(self, workflow: Workflow) -> int:
        """Bytes copied *between file systems* to run the workflow.

        Data-centric: zero — every stage reads the previous stage's output
        in place.  Machine-exclusive: every cross-resource handoff copies
        the dataset from one scratch PFS to the next.
        """
        if self.model is PfsModel.DATA_CENTRIC:
            return 0
        moved = 0
        prev_resource: str | None = None
        for stage in workflow.stages:
            if stage.resource not in self.resources:
                raise KeyError(f"unknown resource {stage.resource!r}")
            if prev_resource is not None and stage.resource != prev_resource:
                moved += stage.input_bytes
            prev_resource = stage.resource
        return moved

    def workflow_staging_seconds(
        self, workflow: Workflow, *, dtn_bandwidth: float = 10 * GB
    ) -> float:
        """Wall-clock spent copying between file systems for the workflow.

        ``dtn_bandwidth`` is the data-mover cluster's sustained rate
        (bytes/s).  Data-centric: zero.  Machine-exclusive: the §II cost —
        every cross-resource handoff stages its input through the movers
        before the next stage can start, serializing with the pipeline.
        """
        if dtn_bandwidth <= 0:
            raise ValueError("dtn_bandwidth must be positive")
        return self.workflow_movement_bytes(workflow) / dtn_bandwidth

    def workflow_makespan(
        self,
        workflow: Workflow,
        *,
        stage_seconds: dict[str, float] | None = None,
        default_stage_seconds: float = HOUR,
        dtn_bandwidth: float = 10 * GB,
    ) -> float:
        """End-to-end campaign wall-clock: compute stages plus (for the
        machine-exclusive model) the staging copies between them."""
        stage_seconds = stage_seconds or {}
        compute = sum(
            stage_seconds.get(s.label or s.resource, default_stage_seconds)
            for s in workflow.stages
        )
        return compute + self.workflow_staging_seconds(
            workflow, dtn_bandwidth=dtn_bandwidth)

    def data_availability(self, resource_down: str | None = None) -> float:
        """Fraction of the center's datasets reachable right now.

        Data-centric: the PFS serves all resources; a compute outage does
        not hide data.  Machine-exclusive: data on a down machine's scratch
        is unreachable (§II, "Improve data availability and reliability").
        """
        if self.model is PfsModel.DATA_CENTRIC:
            return 1.0
        if resource_down is None:
            return 1.0
        if resource_down not in self.resources:
            raise KeyError(f"unknown resource {resource_down!r}")
        mem = self.aggregate_memory_bytes
        # Datasets distribute roughly with machine scale (memory proxy).
        return 1.0 - self.resources[resource_down].memory_bytes / mem
