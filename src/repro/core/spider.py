"""Builders for the Spider I and Spider II center-wide file systems.

Every count below is pinned to the paper:

Spider II (§V): 36 SSUs, 20,160 × 2 TB NL-SAS drives, RAID-6 (8+2) ⇒ 2,016
OSTs, 288 OSS nodes (8 per SSU, 7 OSTs each), 36 InfiniBand leaf switches,
440 I/O routers (110 modules of 4), 18,688 Titan clients, 2 namespaces of
1,008 OSTs, >1 TB/s block-level, 32 PB raw / >30 PB formatted.

Spider I (§I, §IV-E): 48 couplets of 280 × 1 TB drives in **five**
enclosures each (the incident geometry), 1,344 OSTs, 192 OSSes, 4
namespaces, 240 GB/s, 10 PB.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hardware.controller import ControllerSpec
from repro.hardware.disk import DiskPopulation, DiskSpec
from repro.hardware.raid import group_bandwidths
from repro.hardware.ssu import Ssu, SsuSpec
from repro.lustre.client import Client
from repro.lustre.filesystem import LustreFilesystem
from repro.lustre.mds import MdsSpec, MetadataServer
from repro.lustre.oss import Oss, OssSpec
from repro.lustre.ost import Ost, OstSpec
from repro.network.infiniband import FabricSpec, InfinibandFabric
from repro.network.lnet import LnetConfig, RouterInfo
from repro.network.torus import Torus3D, TorusSpec
from repro.core.placement import (
    Placement,
    PlacementSpec,
    evenly_spaced_placement,
)
from repro.sim.rng import RngStreams
from repro.units import GB, MB, TB

__all__ = ["SpiderSpec", "SpiderSystem", "build_spider2", "build_spider1", "SPIDER1", "SPIDER2"]


@dataclass(frozen=True)
class SpiderSpec:
    """Full configuration of a Spider-class deployment."""

    name: str = "spider2"
    n_ssus: int = 36
    ssu: SsuSpec = field(default_factory=SsuSpec)
    n_namespaces: int = 2
    namespace_prefix: str = "atlas"
    oss: OssSpec = field(default_factory=OssSpec)
    mds: MdsSpec = field(default_factory=MdsSpec)
    fabric: FabricSpec = field(default_factory=FabricSpec)
    torus: TorusSpec = field(default_factory=TorusSpec)
    placement: PlacementSpec = field(default_factory=PlacementSpec)
    n_compute_nodes: int = 18_688
    router_bw_cap: float = 2.8 * GB  # XK7 service-node router throughput
    client_bw_cap: float = 1.4 * GB  # per compute node, Lustre client stack

    def __post_init__(self) -> None:
        if self.n_ssus % self.n_namespaces != 0:
            raise ValueError("SSUs must divide evenly into namespaces")
        if self.ssu.n_groups % self.oss.n_osts != 0:
            raise ValueError("SSU OST count must divide evenly across OSSes")
        if self.fabric.n_leaf_switches < self.n_ssus:
            raise ValueError("need at least one leaf switch per SSU")
        if self.placement.n_leaves != self.fabric.n_leaf_switches:
            raise ValueError("placement leaf count must match fabric")

    @property
    def osses_per_ssu(self) -> int:
        return self.ssu.n_groups // self.oss.n_osts

    @property
    def n_osts(self) -> int:
        return self.n_ssus * self.ssu.n_groups

    @property
    def n_osses(self) -> int:
        return self.n_ssus * self.osses_per_ssu

    @property
    def n_disks(self) -> int:
        return self.n_ssus * self.ssu.n_disks


#: Spider II, paper-calibrated.
SPIDER2 = SpiderSpec()

#: Spider I: 48 couplets, five enclosures each, 1 TB drives, 240 GB/s.
SPIDER1 = SpiderSpec(
    name="spider1",
    n_ssus=48,
    ssu=SsuSpec(
        n_enclosures=5,
        disks_per_enclosure=56,
        disk=DiskSpec(capacity_bytes=1 * TB, seq_bw=100 * MB, name="sata-1tb"),
        controller=ControllerSpec(
            block_bw_cap=2.8 * GB,
            fs_bw_cap=2.5 * GB,
            upgraded_fs_bw_cap=2.5 * GB,
        ),
    ),
    n_namespaces=4,
    namespace_prefix="widow",
    oss=OssSpec(node_bw_cap=3.0 * GB, n_osts=7),
    fabric=FabricSpec(n_leaf_switches=48),
    placement=PlacementSpec(n_modules=96, routers_per_module=4, n_leaves=48),
    n_compute_nodes=18_688,
)


class SpiderSystem:
    """A fully built Spider deployment: hardware + fabric + Lustre."""

    def __init__(
        self,
        spec: SpiderSpec,
        *,
        seed: int = 2014,
        placement: Placement | None = None,
        build_clients: bool = True,
    ) -> None:
        self.spec = spec
        self.rng = RngStreams(seed)
        self.population = DiskPopulation(spec.n_disks, spec.ssu.disk, rng=self.rng)
        self.ssus = [
            Ssu(spec.ssu, self.population, i * spec.ssu.n_disks, index=i)
            for i in range(spec.n_ssus)
        ]
        self.torus = Torus3D(spec.torus)
        self.fabric = InfinibandFabric(spec.fabric)
        self.placement = placement or evenly_spaced_placement(
            spec.placement, dims=spec.torus.dims)
        self.routers: list[RouterInfo] = list(self.placement.routers)

        # Attach routers to their leaves.
        for r in self.routers:
            self.fabric.attach_host(r.name, r.leaf)

        # OSS nodes: 8 per SSU, on the SSU's leaf switch (leaf = SSU index).
        self.osses: list[Oss] = []
        self.osts: list[Ost] = []
        ost_capacity = spec.ssu.raid.n_data * spec.ssu.disk.capacity_bytes
        for ssu in self.ssus:
            for j in range(spec.osses_per_ssu):
                oss_name = f"oss{ssu.index:02d}{chr(ord('a') + j)}"
                ost_indices = [
                    ssu.index * spec.ssu.n_groups + j * spec.oss.n_osts + k
                    for k in range(spec.oss.n_osts)
                ]
                oss = Oss(
                    oss_name,
                    spec.oss,
                    ssu_index=ssu.index,
                    leaf=ssu.index % spec.fabric.n_leaf_switches,
                    ost_indices=ost_indices,
                )
                self.osses.append(oss)
                self.fabric.attach_host(oss_name, oss.leaf)
                for k, ost_index in enumerate(ost_indices):
                    self.osts.append(
                        Ost(
                            ost_index,
                            OstSpec(capacity_bytes=ost_capacity),
                            ssu_index=ssu.index,
                            group_index=j * spec.oss.n_osts + k,
                            oss_name=oss_name,
                        )
                    )
        self.osts.sort(key=lambda o: o.index)
        self._oss_by_name = {oss.name: oss for oss in self.osses}

        # Namespaces: contiguous SSU ranges.
        self.filesystems: dict[str, LustreFilesystem] = {}
        ssus_per_ns = spec.n_ssus // spec.n_namespaces
        osts_per_ns = ssus_per_ns * spec.ssu.n_groups
        for ns in range(spec.n_namespaces):
            fs_name = f"{spec.namespace_prefix}{ns + 1}"
            fs_osts = self.osts[ns * osts_per_ns:(ns + 1) * osts_per_ns]
            self.filesystems[fs_name] = LustreFilesystem(
                fs_name, fs_osts, MetadataServer(spec.mds, name=f"{fs_name}-mds")
            )

        self.lnet = LnetConfig(self.torus, self.fabric, self.routers)

        # Titan clients: two per torus node, skipping router-module nodes.
        self.clients: list[Client] = []
        if build_clients:
            module_coords = set(self.placement.module_coords)
            node_id = 0
            for coord in self.torus.all_coords():
                if coord in module_coords:
                    continue
                if node_id * 2 >= spec.n_compute_nodes:
                    break
                for half in range(2):
                    idx = node_id * 2 + half
                    if idx >= spec.n_compute_nodes:
                        break
                    self.clients.append(
                        Client(
                            name=f"nid{idx:05d}",
                            coord=coord,
                            bw_cap=spec.client_bw_cap,
                        )
                    )
                node_id += 1
            if len(self.clients) < spec.n_compute_nodes:
                raise ValueError("torus too small for the requested client count")

    # -- lookup -----------------------------------------------------------------

    def oss_of_ost(self, ost_index: int) -> Oss:
        return self._oss_by_name[self.osts[ost_index].oss_name]

    def ssu_of_ost(self, ost_index: int) -> Ssu:
        return self.ssus[self.osts[ost_index].ssu_index]

    def filesystem_of_ost(self, ost_index: int) -> LustreFilesystem:
        osts_per_ns = self.spec.n_osts // self.spec.n_namespaces
        ns = ost_index // osts_per_ns
        return list(self.filesystems.values())[ns]

    def namespace_osts(self, fs_name: str) -> list[Ost]:
        return self.filesystems[fs_name].osts

    # -- vectorized performance views ----------------------------------------------

    def raw_ost_bandwidths(self, *, fs_level: bool = False) -> np.ndarray:
        """Block-level streaming bandwidth of every OST's RAID group —
        *without* the couplet cap (the flow solver applies couplets as
        separate components).  RAID redundancy state is applied: erased
        members are reconstructed around, degraded/rebuilding groups pay
        the reconstruction penalty, failed groups deliver nothing — so
        fault campaigns surface directly in flow solves."""
        disk_bw = self.population.bandwidths(fs_level=fs_level)
        chunks = [ssu.group_raw_bandwidths(disk_bw) for ssu in self.ssus]
        return np.concatenate(chunks)

    def ost_flow_capacities(self, *, fs_level: bool = True) -> np.ndarray:
        """Per-OST capacity for the flow solver: raw group bandwidth, with
        obdfilter overhead and fill penalty applied at the fs level."""
        raw = self.raw_ost_bandwidths(fs_level=fs_level)
        if not fs_level:
            return raw
        from repro.lustre.ost import fill_penalty  # local to avoid cycle

        eff = np.array([o.spec.obdfilter_efficiency for o in self.osts])
        fills = np.array([o.fill_fraction for o in self.osts])
        return raw * eff * fill_penalty(fills)

    def couplet_caps(self, *, fs_level: bool = True) -> np.ndarray:
        return np.array(
            [ssu.couplet.bw_cap(fs_level=fs_level) for ssu in self.ssus]
        )

    def upgrade_controllers(self) -> None:
        """Apply the 2014 controller CPU/memory upgrade to every SSU."""
        for ssu in self.ssus:
            ssu.couplet.upgrade()

    # -- headline aggregates --------------------------------------------------------

    def aggregate_bandwidth(self, *, fs_level: bool = False) -> float:
        """Layered aggregate: per SSU, min(sum of group bandwidth, couplet
        cap); summed over SSUs.  This is the paper's hero-number estimate."""
        total = 0.0
        disk_bw = self.population.bandwidths(fs_level=fs_level)
        for ssu in self.ssus:
            raw = group_bandwidths(
                ssu.members_matrix, disk_bw, self.spec.ssu.raid.n_data
            ).sum()
            total += min(float(raw), ssu.couplet.bw_cap(fs_level=fs_level))
        return total

    def total_capacity_bytes(self) -> int:
        return sum(o.spec.capacity_bytes for o in self.osts)

    def inventory(self) -> dict[str, int | float | str]:
        """The Figure 1 component inventory."""
        return {
            "system": self.spec.name,
            "ssus": self.spec.n_ssus,
            "disks": self.spec.n_disks,
            "osts": self.spec.n_osts,
            "osses": self.spec.n_osses,
            "routers": len(self.routers),
            "leaf_switches": self.spec.fabric.n_leaf_switches,
            "namespaces": self.spec.n_namespaces,
            "clients": len(self.clients),
            "capacity_bytes": self.total_capacity_bytes(),
        }


def build_spider2(
    *, seed: int = 2014, build_clients: bool = True, spec: SpiderSpec | None = None
) -> SpiderSystem:
    """The Spider II system as deployed (pre-controller-upgrade)."""
    return SpiderSystem(spec or SPIDER2, seed=seed, build_clients=build_clients)


def build_spider1(
    *, seed: int = 2008, build_clients: bool = True, spec: SpiderSpec | None = None
) -> SpiderSystem:
    """The Spider I system (five-enclosure couplets — the incident geometry)."""
    return SpiderSystem(spec or SPIDER1, seed=seed, build_clients=build_clients)
