"""The paper's primary contribution, as code: the data-centric center-wide
PFS design, its end-to-end I/O path, and the analyses built on them.

* :mod:`repro.core.flow` — max-min fair flow solver over the capacitated
  component DAG (the engine behind every bandwidth figure).
* :mod:`repro.core.spider` — the Spider I / Spider II system builders with
  paper-pinned calibration.
* :mod:`repro.core.placement` — I/O router placement on the Titan torus
  (Figure 2).
* :mod:`repro.core.center` — the HPC-center model comparing data-centric vs
  machine-exclusive PFS designs.
"""

from repro.core.flow import FlowNetwork, FlowResult
from repro.core.spider import (
    SpiderSystem,
    build_spider1,
    build_spider2,
    SPIDER2,
    SPIDER1,
)
from repro.core.center import HpcCenter, ComputeResource, PfsModel

__all__ = [
    "FlowNetwork",
    "FlowResult",
    "SpiderSystem",
    "build_spider1",
    "build_spider2",
    "SPIDER1",
    "SPIDER2",
    "HpcCenter",
    "ComputeResource",
    "PfsModel",
]
