"""I/O router placement on Titan's torus (Figure 2, Lesson 14).

Titan's 440 Lustre routers are packaged as 110 I/O modules of four routers;
the four routers of a module connect to four *different* InfiniBand leaf
switches.  Modules belong to "router groups"; a group serves a set of four
leaf switches (roughly SSU-index-aligned), and groups are interleaved
across the machine so that every client has a topologically close router
for *every* destination leaf — the geometric precondition for fine-grained
routing.

Cabinet geometry: Titan's floor is a 25 × 8 cabinet grid (Figure 2's X/Y
axes).  Cabinet (cx, cy) maps onto torus coordinates x = cx,
y ∈ {2·cy, 2·cy + 1}, z ∈ [0, 24) — two torus Y-planes per cabinet row.

Two placements are provided:

* :func:`evenly_spaced_placement` — the engineered placement: modules at
  even intervals through the cabinet grid, groups interleaved (the
  production approach this module reproduces);
* :func:`clustered_placement` — the baseline OLCF argued against: all
  modules packed into a contiguous cabinet block, which concentrates I/O
  traffic on the links around the block.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.network.lnet import RouterInfo
from repro.network.torus import Coord, Torus3D

__all__ = [
    "PlacementSpec",
    "Placement",
    "evenly_spaced_placement",
    "clustered_placement",
    "render_cabinet_map",
]

CABINET_COLS = 25
CABINET_ROWS = 8


@dataclass(frozen=True)
class PlacementSpec:
    """How many modules/routers to place and how leaves are grouped."""

    n_modules: int = 110
    routers_per_module: int = 4
    n_leaves: int = 36

    def __post_init__(self) -> None:
        if self.n_modules <= 0 or self.routers_per_module <= 0:
            raise ValueError("module counts must be positive")
        if self.n_leaves % self.routers_per_module != 0:
            raise ValueError(
                "n_leaves must be divisible by routers_per_module so that "
                "router groups cover whole leaf quads"
            )

    @property
    def n_routers(self) -> int:
        return self.n_modules * self.routers_per_module

    @property
    def n_groups(self) -> int:
        """Router groups = leaf quads (each module serves one quad)."""
        return self.n_leaves // self.routers_per_module

    def leaves_of_group(self, group: int) -> list[int]:
        base = group * self.routers_per_module
        return [base + i for i in range(self.routers_per_module)]


@dataclass
class Placement:
    """A realized placement: module coordinates, groups, and routers."""

    spec: PlacementSpec
    module_coords: list[Coord]
    module_group: list[int]
    routers: list[RouterInfo] = field(default_factory=list)

    def cabinet_of_module(self, m: int) -> tuple[int, int]:
        x, y, _z = self.module_coords[m]
        return (x, y // 2)

    def mean_client_distance(self, torus: Torus3D, clients: list[Coord]) -> float:
        """Mean over clients of (mean over leaves of the distance to the
        nearest router serving that leaf) — the FGR locality objective."""
        if not clients:
            return 0.0
        by_leaf: dict[int, list[Coord]] = {}
        for r in self.routers:
            by_leaf.setdefault(r.leaf, []).append(r.coord)
        client_arr = np.array(clients, dtype=int)
        total = 0.0
        for leaf, coords in sorted(by_leaf.items()):
            dists = np.stack(
                [torus.distances_from(c, client_arr) for c in coords]
            )  # (n_routers_on_leaf, n_clients)
            total += dists.min(axis=0).mean()
        return total / len(by_leaf)


def _grid_for(dims: tuple[int, int, int]) -> tuple[int, int, int]:
    """Cabinet grid implied by the torus: X columns, Y/2 rows (two torus
    Y-planes per cabinet row), Z positions per cabinet."""
    return dims[0], max(1, dims[1] // 2), dims[2]


def _cabinet_to_coord(cab_x: int, cab_y: int, z: int) -> Coord:
    return (cab_x, 2 * cab_y, z)


def _build_routers(
    spec: PlacementSpec, coords: list[Coord], groups: list[int]
) -> list[RouterInfo]:
    routers: list[RouterInfo] = []
    for m, (coord, group) in enumerate(zip(coords, groups)):
        for slot, leaf in enumerate(spec.leaves_of_group(group)):
            routers.append(
                RouterInfo(name=f"rtr{m:03d}.{slot}", coord=coord, leaf=leaf)
            )
    return routers


def evenly_spaced_placement(
    spec: PlacementSpec | None = None,
    dims: tuple[int, int, int] = (25, 16, 24),
) -> Placement:
    """Production-style placement: modules at even cabinet intervals,
    groups interleaved so every neighbourhood sees every group.

    ``dims`` is the torus geometry the cabinets map onto (Titan default).
    """
    spec = spec or PlacementSpec()
    cols, rows, zs = _grid_for(dims)
    n_cabinets = cols * rows
    coords: list[Coord] = []
    groups: list[int] = []
    for m in range(spec.n_modules):
        cab = (m * n_cabinets) // spec.n_modules
        cab_x, cab_y = divmod(cab, rows)
        z = (m * 7) % zs  # spread along Z as well
        coords.append(_cabinet_to_coord(cab_x % cols, cab_y, z))
        groups.append(m % spec.n_groups)
    placement = Placement(spec=spec, module_coords=coords, module_group=groups)
    placement.routers = _build_routers(spec, coords, groups)
    return placement


def clustered_placement(
    spec: PlacementSpec | None = None,
    dims: tuple[int, int, int] = (25, 16, 24),
) -> Placement:
    """Baseline: all I/O modules packed into one corner of the machine.

    This is the placement a naive integration (shortest cables to the SAN)
    produces, and what Lesson 14 warns turns the surrounding links into
    hot-spots.
    """
    spec = spec or PlacementSpec()
    cols, rows, zs = _grid_for(dims)
    coords: list[Coord] = []
    groups: list[int] = []
    for m in range(spec.n_modules):
        # Two modules per cabinet, packed column by column from the corner.
        cab_x, cab_y = divmod(m // 2, rows)
        z = (m * 5) % zs
        coords.append(_cabinet_to_coord(cab_x % cols, cab_y, z))
        groups.append(m % spec.n_groups)
    placement = Placement(spec=spec, module_coords=coords, module_group=groups)
    placement.routers = _build_routers(spec, coords, groups)
    return placement


def render_cabinet_map(placement: Placement) -> str:
    """ASCII rendition of Figure 2: the 25×8 cabinet grid, each cabinet
    showing its router group letter ('.' = no I/O module)."""
    grid = [["."] * CABINET_COLS for _ in range(CABINET_ROWS)]
    for m in range(len(placement.module_coords)):
        cx, cy = placement.cabinet_of_module(m)
        letter = chr(ord("A") + placement.module_group[m] % 26)
        grid[cy][cx] = letter
    lines = ["Y\\X " + "".join(f"{x % 10}" for x in range(CABINET_COLS))]
    for cy in range(CABINET_ROWS - 1, -1, -1):
        lines.append(f"  {cy} " + "".join(grid[cy]))
    lines.append("(letters = router groups; '.' = cabinet without I/O module)")
    return "\n".join(lines)
