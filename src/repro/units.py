"""Units and quantity helpers used across the Spider reproduction.

The paper mixes decimal storage-vendor units (GB/s, TB, PB) with binary
request-size units (KB meaning KiB for 16 KB requests, 1 MB I/O transfer
sizes meaning 1 MiB in IOR).  To avoid unit bugs — the classic source of
"our 1 TB/s is actually 0.93 TB/s" disputes — every module in this package
works in **bytes** and **seconds** internally and converts only at the
reporting boundary, using the constants and helpers defined here.

Conventions
-----------
* ``KB``/``MB``/``GB``/``TB``/``PB`` are decimal (powers of 1000), matching
  vendor bandwidth and capacity figures in the paper.
* ``KiB``/``MiB``/``GiB``/``TiB`` are binary (powers of 1024), matching I/O
  request sizes ("16 KB requests", "1 MB transfer size").
* Bandwidths are bytes/second, durations are seconds, capacities are bytes.
"""

from __future__ import annotations

import math
import re

__all__ = [
    "KB", "MB", "GB", "TB", "PB",
    "KiB", "MiB", "GiB", "TiB",
    "MINUTE", "HOUR", "DAY", "MS", "US",
    "parse_size", "fmt_size", "fmt_bandwidth", "fmt_duration",
    "transfer_time",
]

KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
TB = 1_000_000_000_000
PB = 1_000_000_000_000_000

KiB = 1 << 10
MiB = 1 << 20
GiB = 1 << 30
TiB = 1 << 40

MINUTE = 60.0
HOUR = 3600.0
DAY = 86400.0

# Sub-second durations, expressed in seconds: latency reports divide by
# these (``lat / MS`` reads "how many milliseconds").
MS = 1e-3
US = 1e-6

_DECIMAL_SUFFIXES = {
    "B": 1, "KB": KB, "MB": MB, "GB": GB, "TB": TB, "PB": PB,
}
_BINARY_SUFFIXES = {
    "KIB": KiB, "MIB": MiB, "GIB": GiB, "TIB": TiB,
}

_SIZE_RE = re.compile(
    r"^\s*(?P<num>[0-9]+(?:\.[0-9]+)?)\s*(?P<suffix>[A-Za-z]+)?\s*$"
)


def parse_size(text: str | int | float) -> int:
    """Parse a human-readable size (``"16KiB"``, ``"1.5 TB"``) into bytes.

    Integers and floats pass through (floats are rounded).  Bare numbers are
    taken as bytes.  Decimal suffixes (KB/MB/...) are powers of 1000; binary
    suffixes (KiB/MiB/...) are powers of 1024, case-insensitive.

    >>> parse_size("16KiB")
    16384
    >>> parse_size("1 MB")
    1000000
    """
    if isinstance(text, (int, float)):
        return int(round(text))
    m = _SIZE_RE.match(text)
    if not m:
        raise ValueError(f"unparseable size: {text!r}")
    value = float(m.group("num"))
    suffix = (m.group("suffix") or "B").upper()
    if suffix in _DECIMAL_SUFFIXES:
        return int(round(value * _DECIMAL_SUFFIXES[suffix]))
    if suffix in _BINARY_SUFFIXES:
        return int(round(value * _BINARY_SUFFIXES[suffix]))
    raise ValueError(f"unknown size suffix {suffix!r} in {text!r}")


def _fmt_scaled(value: float, unit: str, scales: list[tuple[float, str]]) -> str:
    for factor, name in scales:
        if abs(value) >= factor:
            return f"{value / factor:.2f} {name}{unit}"
    return f"{value:.0f} {unit}"


def fmt_size(nbytes: float) -> str:
    """Format bytes with a decimal prefix, as the paper reports capacities."""
    return _fmt_scaled(
        float(nbytes), "B",
        [(PB, "P"), (TB, "T"), (GB, "G"), (MB, "M"), (KB, "K")],
    )


def fmt_bandwidth(bytes_per_sec: float) -> str:
    """Format a bandwidth in the paper's GB/s-style decimal units."""
    return _fmt_scaled(
        float(bytes_per_sec), "B/s",
        [(TB, "T"), (GB, "G"), (MB, "M"), (KB, "K")],
    )


def fmt_duration(seconds: float) -> str:
    """Format a duration compactly (``"6.0 min"``, ``"2.1 d"``)."""
    if seconds != seconds or math.isinf(seconds):  # NaN / inf
        return str(seconds)
    if seconds >= DAY:
        return f"{seconds / DAY:.1f} d"
    if seconds >= HOUR:
        return f"{seconds / HOUR:.1f} h"
    if seconds >= MINUTE:
        return f"{seconds / MINUTE:.1f} min"
    if seconds >= 1:
        return f"{seconds:.2f} s"
    return f"{seconds / MS:.2f} ms"


def transfer_time(nbytes: float, bandwidth: float, latency: float = 0.0) -> float:
    """Time to move ``nbytes`` at ``bandwidth`` bytes/s plus a fixed latency.

    Zero bandwidth yields ``inf`` (a stalled path), matching how the flow
    solver reports fully congested components.
    """
    if nbytes < 0:
        raise ValueError("nbytes must be non-negative")
    if bandwidth < 0 or latency < 0:
        raise ValueError("bandwidth and latency must be non-negative")
    if nbytes == 0:
        return latency
    if bandwidth == 0:
        return math.inf
    return latency + nbytes / bandwidth
