"""The A19 experiment: hot-spot storm survival, static vs flowlet routing.

:func:`run_storm_study` runs one seeded timeline twice — identical
clients, identical storm window, identical monitoring overlay schedule —
varying only the routing policy:

* **static** — the as-deployed configuration: FGR router selection with
  dimension-ordered (X, Y, Z) torus traversal and no congestion feedback;
* **flowlet** — :class:`~repro.network.routing.FlowletRouting` consuming
  the overlay's windowed ``mon.link_util`` gauges, plus a
  :class:`~repro.network.routing.BackpressureController` that sheds the
  storm class through a :meth:`~repro.core.path.PathBuilder.set_class_cap`
  degraded-mode cap while the watched links stay hot.

The storm is the classic dimension-ordered-routing pathology (§III's
placement reasoning in reverse): a burst of analytics readers clustered
on one torus row all start streaming at once, so every X-first path
stacks onto the row's handful of directed links while the five other
equal-cost axis orders sit idle.  A latency *probe* — one small reader
living on the same row — rides the timeline; its per-sample delivered
rate turns into a request latency, and the study's headline is the p99
of that latency: collapsed under static routing, recovered under
flowlet re-hash + backpressure by :attr:`StormStudyResult.recovery_factor`.

Everything the policies decide flows through the overlay (sweep cadence,
tree lag, batch loss), never from in-process solver state, and every
result type is a frozen dataclass of plain values — identically seeded
runs compare equal with ``==``, with telemetry enabled or disabled.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.path import PathBuilder, Transfer
from repro.lustre.client import Client
from repro.network.lnet import FineGrainedRouting, RoutingPolicy
from repro.network.routing import (
    BackpressureController,
    FlowletRouting,
    FlowletSpec,
    LinkStatsFeed,
)
from repro.network.torus import AXIS_ORDERS, Torus3D
from repro.obs.overlay.config import OverlayConfig
from repro.obs.overlay.runtime import MonitoringOverlay
from repro.obs.overlay.scraper import routing_probes
from repro.sim.engine import Engine
from repro.units import GB

if TYPE_CHECKING:
    from repro.core.spider import SpiderSystem

__all__ = ["StormSample", "StormArm", "StormStudyResult", "run_storm_study",
           "STORM_CLASS"]

#: the QoS class label of storm transfers (the shed target)
STORM_CLASS = "storm"

#: rate floor when converting a starved probe's rate into a latency
_RATE_FLOOR = 1.0


def _request_percentile(samples: list["StormSample"], q: float) -> float:
    """Per-*request* latency percentile over the timeline.

    Each sample's latency is weighted by the bytes the probe delivered in
    its interval — i.e. by how many requests actually completed at that
    latency.  This is what the analytics user experiences: a persistent
    collapse (the static arm's whole storm window) dominates the tail,
    while a brief reaction transient (the flowlet arm's few windows of
    overlay lag before re-hash lands) carries almost no requests and
    washes out.  Plain Python, reproducible bit for bit.
    """
    weighted = sorted(
        (s.probe_latency, s.probe_rate) for s in samples)
    total = sum(w for _v, w in weighted)
    if total <= 0:
        return float(weighted[-1][0])
    threshold = q / 100.0 * total
    acc = 0.0
    for value, weight in weighted:
        acc += weight
        if acc >= threshold:
            return float(value)
    return float(weighted[-1][0])


@dataclass(frozen=True)
class StormSample:
    """One timeline sample: the probe's delivered rate and latency, the
    worst watched-link utilization, and the control state."""

    time: float
    probe_rate: float
    probe_latency: float
    victim_util: float
    storm_active: bool
    backpressure: bool


@dataclass(frozen=True)
class StormArm:
    """One arm of the storm study, frozen to comparable plain values."""

    name: str
    policy: str
    latency_p50: float
    latency_p99: float
    min_probe_rate: float
    peak_victim_util: float
    rehashes: int
    stale_reads: int
    full_solves: int
    backpressure_engagements: int
    samples: tuple[StormSample, ...]

    def rows(self) -> list[tuple[str, str]]:
        """Key/value rows for the CLI report."""
        return [
            ("routing policy", self.policy),
            ("probe latency p50", f"{self.latency_p50:,.2f} s"),
            ("probe latency p99", f"{self.latency_p99:,.2f} s"),
            ("probe rate floor", f"{self.min_probe_rate / GB:,.3f} GB/s"),
            ("peak victim-link utilization", f"{self.peak_victim_util:.2f}"),
            ("flowlet re-hashes", str(self.rehashes)),
            ("stale feed reads", str(self.stale_reads)),
            ("full re-solves", str(self.full_solves)),
            ("backpressure engagements",
             str(self.backpressure_engagements)),
        ]


@dataclass(frozen=True)
class StormStudyResult:
    """Paired same-seed storm timeline: static vs flowlet."""

    seed: int
    duration: float
    storm_start: float
    storm_end: float
    n_storm_clients: int
    static: StormArm
    flowlet: StormArm

    @property
    def recovery_factor(self) -> float:
        """How many times the flowlet arm shrinks the probe's p99 latency
        (the A19 headline)."""
        if self.flowlet.latency_p99 <= 0:
            return math.inf
        return self.static.latency_p99 / self.flowlet.latency_p99

    def rows(self) -> list[tuple[str, str, str]]:
        """Comparison table rows: metric, static, flowlet."""
        arms = (self.static, self.flowlet)
        return [
            ("probe latency p50", *(f"{a.latency_p50:,.2f} s" for a in arms)),
            ("probe latency p99", *(f"{a.latency_p99:,.2f} s" for a in arms)),
            ("probe rate floor",
             *(f"{a.min_probe_rate / GB:,.3f} GB/s" for a in arms)),
            ("peak victim-link utilization",
             *(f"{a.peak_victim_util:.2f}" for a in arms)),
            ("flowlet re-hashes", *(str(a.rehashes) for a in arms)),
            ("full re-solves", *(str(a.full_solves) for a in arms)),
            ("backpressure engagements",
             *(str(a.backpressure_engagements) for a in arms)),
        ]


def _storm_row(system: "SpiderSystem") -> tuple[int, int]:
    """The (y, z) torus row the storm clusters on — the middle of the
    machine, where Figure 2's cabinet rows sit."""
    dims = system.torus.dims
    return dims[1] // 2, dims[2] // 2


def _probe_coord(system: "SpiderSystem") -> tuple[int, int, int]:
    """The probe client's coordinate: on the storm row, but never on a
    router module's own node — a probe that shares a Gemini with its
    router has a zero-hop torus path and nothing for the storm to
    congest.  Among the row's non-router nodes, take the one nearest to
    any router (lowest x on ties): the healthy path is short, but real.
    """
    dims = system.torus.dims
    y, z = _storm_row(system)
    router_coords = {router.coord for router in system.routers}

    def nearest(coord: tuple[int, int, int]) -> int:
        return min(
            sum(min((a - b) % d, (b - a) % d)
                for a, b, d in zip(coord, rc, dims))
            for rc in router_coords)

    candidates = [(x, y, z) for x in range(dims[0])
                  if (x, y, z) not in router_coords]
    if not candidates:  # every row node fronts a router: degenerate torus
        candidates = [(x, y, z) for x in range(dims[0])]
    return min(candidates, key=lambda c: (nearest(c), c))


def _make_clients(system: "SpiderSystem", n_storm: int) -> tuple[
        Client, list[Client]]:
    """The probe and the clustered storm clients, all on one torus row.

    Storm clients cycle across the row's X positions (several clients per
    node is how a real cabinet row behaves — each Gemini fronts multiple
    readers), so every X-first path stacks onto the same directed row
    links.
    """
    dims = system.torus.dims
    y, z = _storm_row(system)
    probe = Client("probe", coord=_probe_coord(system))
    storm = [
        Client(f"storm-{i:03d}", coord=(i % dims[0], y, z))
        for i in range(n_storm)
    ]
    return probe, storm


def _storm_ost_indices(system: "SpiderSystem", stripe: int) -> tuple[int, ...]:
    """The shared dataset's OST stripe: spread over the whole file system
    (every leaf sees traffic — the congestion is in the torus row, not at
    one OSS).  OST 0 is reserved for the probe, so the probe never shares
    a *storage* target with the storm and every collapse it suffers is a
    network collapse."""
    n_osts = len(system.osts)
    stripe = min(stripe, n_osts - 1)
    step = max(1, (n_osts - 1) // stripe)
    return tuple(range(1, n_osts, step))[:stripe]


def _watched_components(system: "SpiderSystem",
                        clients: list[Client]) -> list[str]:
    """Every component a storm path could cross, under any equal-cost
    choice: all serving routers plus the torus links of every (client,
    router, axis order) candidate path.  This is the probe surface the
    overlay samples — a superset, so re-hash targets are observed too."""
    comps: set[str] = set()
    torus = system.torus
    for router in system.routers:
        comps.add(f"router:{router.name}")
        for client in clients:
            for order in AXIS_ORDERS:
                for link in torus.route_links_ordered(
                        client.coord, router.coord, order):
                    comps.add(Torus3D.link_component(link))
    return sorted(comps)


def _run_arm(
    name: str,
    system: "SpiderSystem",
    policy: RoutingPolicy,
    *,
    controller: BackpressureController | None,
    feed: LinkStatsFeed | None,
    overlay_config: OverlayConfig,
    duration: float,
    storm_start: float,
    storm_end: float,
    sample_interval: float,
    n_storm_clients: int,
    stripe: int,
    request_bytes: float,
    shed_bytes: float,
) -> StormArm:
    probe, storm_clients = _make_clients(system, n_storm_clients)
    ost_indices = _storm_ost_indices(system, stripe)
    base = [Transfer("probe", probe, (0,), write=False)]
    storm = base + [
        Transfer(client.name, client, ost_indices, write=False,
                 qos_class=STORM_CLASS)
        for client in storm_clients
    ]
    builder = PathBuilder(system, policy=policy, include_torus=True)
    watched = _watched_components(system, [probe] + storm_clients)
    overlay = MonitoringOverlay(
        system, overlay_config,
        extra_probes=routing_probes(builder, watched))

    engine = Engine()
    overlay.attach(engine)
    current: list[list[Transfer]] = [base]
    engine.call_at(storm_start, lambda: current.__setitem__(0, storm))
    engine.call_at(storm_end, lambda: current.__setitem__(0, base))

    samples: list[StormSample] = []

    def _sample() -> None:
        now = engine.now
        if feed is not None:
            feed.ingest(overlay.collector.view())
        if isinstance(policy, FlowletRouting):
            policy.refresh(now)
        if controller is not None:
            was_engaged = controller.engaged
            controller.update(now)
            if controller.engaged != was_engaged:
                builder.set_class_cap(
                    STORM_CLASS,
                    shed_bytes if controller.engaged else math.inf)
        transfers = current[0]
        result = builder.resolve(transfers)
        probe_rate = builder.transfer_rates(result, transfers)["probe"]
        victim = max(builder.link_utilization(comp) for comp in watched)
        samples.append(StormSample(
            time=now,
            probe_rate=float(probe_rate),
            probe_latency=request_bytes / max(probe_rate, _RATE_FLOOR),
            victim_util=float(victim),
            storm_active=transfers is storm,
            backpressure=controller.engaged if controller is not None
            else False,
        ))

    engine.every(sample_interval, _sample, name="storm:sample")
    engine.run(until=duration)

    flowlet = policy if isinstance(policy, FlowletRouting) else None
    return StormArm(
        name=name,
        policy=policy.describe(),
        latency_p50=_request_percentile(samples, 50),
        latency_p99=_request_percentile(samples, 99),
        min_probe_rate=min(s.probe_rate for s in samples),
        peak_victim_util=max(s.victim_util for s in samples),
        rehashes=flowlet.rehashes if flowlet is not None else 0,
        stale_reads=flowlet.stale_reads if flowlet is not None else 0,
        full_solves=builder.solve_counts["full"],
        backpressure_engagements=(controller.engagements
                                  if controller is not None else 0),
        samples=tuple(samples),
    )


def run_storm_study(
    system_factory,
    *,
    seed: int = 0,
    n_storm_clients: int = 24,
    stripe: int = 16,
    duration: float = 7200.0,
    storm_start: float = 1200.0,
    storm_end: float = 6600.0,
    sample_interval: float = 60.0,
    request_bytes: float = 1 * GB,
    shed_fraction: float = 0.05,
    flowlet_spec: FlowletSpec | None = None,
    overlay_config: OverlayConfig | None = None,
) -> StormStudyResult:
    """Run the paired static-vs-flowlet storm timeline (experiment A19).

    Args:
        system_factory: builds a *fresh*
            :class:`~repro.core.spider.SpiderSystem` per arm, so the two
            arms share nothing mutable.
        seed: seeds the flowlet hash and the overlay's loss draws; the
            same seed always yields an ``==``-equal result.
        n_storm_clients: readers clustered on the storm row.
        stripe: OSTs the shared dataset is striped over (spread across
            the file system, so the torus row is the only hot spot).
        duration / storm_start / storm_end: the timeline (seconds); the
            storm transfers are active in ``[storm_start, storm_end)``.
        sample_interval: probe/decision cadence (seconds).
        request_bytes: the probe's representative analytics read, turned
            into latency via the sampled delivered rate.
        shed_fraction: degraded-mode cap on the storm class, as a
            fraction of the system's healthy aggregate bandwidth.
        flowlet_spec: adaptive-policy knobs (default
            :class:`~repro.network.routing.FlowletSpec` with ``seed``).
        overlay_config: monitoring knobs (default
            :class:`~repro.obs.overlay.config.OverlayConfig` with
            ``seed``).
    """
    if not storm_start < storm_end <= duration:
        raise ValueError("need storm_start < storm_end <= duration")
    if sample_interval <= 0 or request_bytes <= 0:
        raise ValueError("sample_interval and request_bytes must be positive")
    if not 0 < shed_fraction <= 1:
        raise ValueError("shed_fraction must be in (0, 1]")
    if overlay_config is None:
        overlay_config = OverlayConfig(seed=seed)
    if flowlet_spec is None:
        flowlet_spec = FlowletSpec(seed=seed)

    common = dict(
        duration=duration,
        storm_start=storm_start,
        storm_end=storm_end,
        sample_interval=sample_interval,
        n_storm_clients=n_storm_clients,
        stripe=stripe,
        request_bytes=request_bytes,
        overlay_config=overlay_config,
    )

    static_system = system_factory()
    shed_bytes = shed_fraction * float(
        static_system.aggregate_bandwidth(fs_level=True))
    static = _run_arm(
        "static", static_system,
        FineGrainedRouting(static_system.lnet),
        controller=None, feed=None, shed_bytes=shed_bytes, **common)

    flowlet_system = system_factory()
    feed = LinkStatsFeed()
    policy = FlowletRouting(flowlet_system.lnet, spec=flowlet_spec, feed=feed)
    watched = _watched_components(
        flowlet_system,
        list(_make_clients(flowlet_system, n_storm_clients)[1]))
    controller = BackpressureController(feed, watched, spec=flowlet_spec)
    flowlet = _run_arm(
        "flowlet", flowlet_system, policy,
        controller=controller, feed=feed, shed_bytes=shed_bytes, **common)

    return StormStudyResult(
        seed=seed,
        duration=duration,
        storm_start=storm_start,
        storm_end=storm_end,
        n_storm_clients=n_storm_clients,
        static=static,
        flowlet=flowlet,
    )
