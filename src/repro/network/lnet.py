"""LNET routing between the torus and the InfiniBand fabric.

Lustre's LNET layer sees two networks: the Gemini side (clients, routers)
and the InfiniBand side (routers, servers).  Each I/O router is a host on
both.  §V-B describes OLCF's *fine-grained routing* (FGR):

  "Each router has an InfiniBand-side NI that corresponds to the leaf
   switch it is plugged into.  Clients choose to use a topologically close
   router that uses the NI of the desired destination.  Clients have a
   Gemini-side NI that corresponds to a topological 'zone' in the torus.
   The Lustre servers will choose a router connected to the same InfiniBand
   leaf switch that is in the destination topological zone."

Policies implemented:

* :class:`FineGrainedRouting` — destination-leaf-matched, topologically
  nearest router (the paper's FGR);
* :class:`RoundRobinRouting` — the naive baseline: any router, round robin,
  ignoring both torus locality and leaf affinity.  Traffic then crosses the
  torus farther *and* hops through IB core switches, which is what FGR is
  measured against in experiment E9.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.network.infiniband import InfinibandFabric
from repro.network.torus import Coord, Torus3D
from repro.obs.instruments import get_telemetry

__all__ = ["RouterInfo", "LnetConfig", "RoutingPolicy", "FineGrainedRouting",
           "RoundRobinRouting", "record_routed_bytes"]


def record_routed_bytes(router_name: str, nbytes: float) -> None:
    """Account bytes routed through one LNET router (the per-router counter
    the paper's congestion analyses need; attributed after a flow solve)."""
    telemetry = get_telemetry()
    if telemetry.enabled:
        telemetry.counter("lnet.routed_bytes", router_name).add(float(nbytes))


@dataclass(frozen=True)
class RouterInfo:
    """One Lustre I/O router: a dual-homed LNET node."""

    name: str
    coord: Coord  # Gemini-side position
    leaf: int  # InfiniBand-side leaf switch (its IB NI)


class LnetConfig:
    """The routing substrate shared by all policies."""

    def __init__(
        self,
        torus: Torus3D,
        fabric: InfinibandFabric,
        routers: list[RouterInfo],
    ) -> None:
        if not routers:
            raise ValueError("need at least one router")
        self.torus = torus
        self.fabric = fabric
        self.routers = list(routers)
        self._coords = np.array([r.coord for r in self.routers], dtype=int)
        self._by_leaf: dict[int, list[int]] = {}
        self._index_of: dict[str, int] = {}
        for i, r in enumerate(self.routers):
            self._by_leaf.setdefault(r.leaf, []).append(i)
            self._index_of[r.name] = i
        #: routing-table liveness: a router that died (§IV-D) is removed
        #: from every policy's candidate set until marked online again
        self._online = np.ones(len(self.routers), dtype=bool)

    def routers_for_leaf(self, leaf: int) -> list[RouterInfo]:
        return [self.routers[i] for i in self._by_leaf.get(leaf, [])]

    def router_coords(self) -> np.ndarray:
        return self._coords.copy()

    # -- liveness (router failures, §IV-D) ------------------------------------

    def set_router_online(self, name: str, online: bool) -> None:
        """Mark one router up/down in the routing tables (the LNET view of
        a router failure; the fabric-side cable is a separate component)."""
        self._online[self._index_of[name]] = online

    def router_online(self, name: str) -> bool:
        return bool(self._online[self._index_of[name]])

    def online_fingerprint(self) -> bytes:
        """The router-online bits as an opaque comparable value.

        Incremental consumers (:meth:`repro.core.path.PathBuilder.resolve`)
        compare fingerprints across solves: an unchanged fingerprint means
        every previously chosen route is still live, so the built network
        can be reused; a changed one forces a rebuild.
        """
        return self._online.tobytes()

    def online_indices(self, candidates: list[int]) -> list[int]:
        """Filter a candidate index list down to live routers."""
        return [i for i in candidates if self._online[i]]


class RoutingPolicy:
    """Maps (client coordinate, destination leaf) to a router."""

    name = "abstract"

    def __init__(self, config: LnetConfig) -> None:
        self.config = config

    def select_router(self, client: Coord, dst_leaf: int) -> RouterInfo:
        raise NotImplementedError

    def reset(self) -> None:
        """Clear accumulated balancing state (load counts, cycle position).

        Incremental solvers call this before rebuilding a network so the
        fresh route selection matches what a brand-new policy would pick —
        stale balancing state would otherwise skew the rebuilt routes.
        The base policy is stateless, so this is a no-op.
        """

    def fingerprint(self) -> bytes:
        """Opaque token for "would this policy route differently now?".

        :meth:`repro.core.path.PathBuilder.resolve` compares fingerprints
        across solves and rebuilds its network only on a change.  The base
        value is the substrate's router-online bits
        (:meth:`LnetConfig.online_fingerprint`); adaptive policies extend
        it with their own routing state (and may *dampen* the online bits
        so a flapping router does not thrash rebuilds).
        """
        return self.config.online_fingerprint()

    def axis_order(self, client: Coord, router: Coord) -> tuple[int, int, int]:
        """The torus dimension-traversal order for this (client, router)
        pair.  Static policies route X-then-Y-then-Z (how Gemini routes in
        practice); congestion-aware policies pick among the equal-cost
        :data:`~repro.network.torus.AXIS_ORDERS` per flowlet."""
        del client, router
        return (0, 1, 2)

    def describe(self) -> str:
        return self.name


class FineGrainedRouting(RoutingPolicy):
    """The paper's FGR: leaf-matched, topologically close, load-spread.

    Among the routers whose InfiniBand NI sits on the destination leaf
    switch, consider those within ``slack`` torus hops of the nearest one
    (the client's router *zone*), and pick the least-loaded of them —
    zones in the production FGR configuration are sized so client
    assignments balance across a leaf's routers rather than piling onto
    the single geometrically nearest one.  Ties break by distance, then
    router *name* — an explicit identity key, so the selection is
    invariant under the insertion order of the router list (tie-breaking
    by list position would silently re-route whenever inventory
    enumeration order changed).
    """

    name = "fgr"

    def __init__(self, config: LnetConfig, *, slack: int = 4) -> None:
        super().__init__(config)
        if slack < 0:
            raise ValueError("slack must be non-negative")
        self.slack = slack
        self._load = np.zeros(len(config.routers), dtype=np.int64)

    def select_router(self, client: Coord, dst_leaf: int) -> RouterInfo:
        candidates = self.config.online_indices(
            self.config._by_leaf.get(dst_leaf, []))
        if not candidates:
            raise LookupError(f"no router serves leaf {dst_leaf}")
        coords = self.config._coords[candidates]
        dists = self.config.torus.distances_from(client, coords)
        near_mask = dists <= dists.min() + self.slack
        routers = self.config.routers
        near = [(int(self._load[candidates[i]]), int(dists[i]),
                 routers[candidates[i]].name, candidates[i])
                for i in np.flatnonzero(near_mask)]
        _load, _dist, _name, pick = min(near)
        self._load[pick] += 1
        return routers[pick]

    def reset(self) -> None:
        """Zero the per-router load counts (see :meth:`RoutingPolicy.reset`)."""
        self._load[:] = 0


class RoundRobinRouting(RoutingPolicy):
    """Naive baseline: cycle through all routers, ignoring locality.

    This is what a flat LNET configuration (single network, equal-priority
    routes) degenerates to, and it is the configuration FGR replaced.
    """

    name = "round-robin"

    def __init__(self, config: LnetConfig) -> None:
        super().__init__(config)
        self._cycle = itertools.cycle(range(len(config.routers)))

    def select_router(self, client: Coord, dst_leaf: int) -> RouterInfo:
        for _ in range(len(self.config.routers)):
            i = next(self._cycle)
            if self.config._online[i]:
                return self.config.routers[i]
        raise LookupError("no router online")

    def reset(self) -> None:
        """Restart the cycle (see :meth:`RoutingPolicy.reset`)."""
        self._cycle = itertools.cycle(range(len(self.config.routers)))
