"""Interconnect substrate: the Gemini-like 3D torus carrying Titan's
clients, the SION-like InfiniBand SAN carrying the storage traffic, the
LNET routing layer (including fine-grained routing, FGR) that bridges
them, and the congestion-aware flowlet routing riding the monitoring
overlay's link gauges.
"""

from repro.network.torus import AXIS_ORDERS, Torus3D, TorusSpec
from repro.network.infiniband import InfinibandFabric, FabricSpec
from repro.network.lnet import LnetConfig, RoutingPolicy, FineGrainedRouting, RoundRobinRouting
from repro.network.routing import (
    BackpressureController,
    FlowletRouting,
    FlowletSpec,
    LinkStatsFeed,
)

__all__ = [
    "Torus3D",
    "TorusSpec",
    "AXIS_ORDERS",
    "InfinibandFabric",
    "FabricSpec",
    "LnetConfig",
    "RoutingPolicy",
    "FineGrainedRouting",
    "RoundRobinRouting",
    "FlowletRouting",
    "FlowletSpec",
    "LinkStatsFeed",
    "BackpressureController",
]
