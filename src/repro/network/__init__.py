"""Interconnect substrate: the Gemini-like 3D torus carrying Titan's
clients, the SION-like InfiniBand SAN carrying the storage traffic, and the
LNET routing layer (including fine-grained routing, FGR) that bridges them.
"""

from repro.network.torus import Torus3D, TorusSpec
from repro.network.infiniband import InfinibandFabric, FabricSpec
from repro.network.lnet import LnetConfig, RoutingPolicy, FineGrainedRouting, RoundRobinRouting

__all__ = [
    "Torus3D",
    "TorusSpec",
    "InfinibandFabric",
    "FabricSpec",
    "LnetConfig",
    "RoutingPolicy",
    "FineGrainedRouting",
    "RoundRobinRouting",
]
