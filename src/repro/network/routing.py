"""Congestion-aware flowlet routing over the torus and the SION fabric.

Static dimension-ordered routing (how Gemini routes, and what the FGR
placement lessons of §III take as given) concentrates an all-to-one storm
onto one predictable link set while the other members of the equal-cost
family sit idle.  This module adds the *adaptive* half the paper's
operators wished for, in the LetFlow lineage (SNIPPETS.md snippet 3,
NSDI'17): traffic is pinned to its path at *flowlet* granularity — one
(client, destination leaf) stream — and a flowlet re-hashes to another
equal-cost path only when the path it is on looks congested.

Three design rules keep this honest inside the simulation:

* **Observed, not omniscient.**  Congestion is read from a
  :class:`LinkStatsFeed` filled from the PR-6 monitoring overlay's
  windowed ``mon.link_util`` gauges — values that are minutes old and
  lossy, never the solver's in-process truth.  A sample older than
  ``stale_after_s`` is *stale*: the policy still uses it (last-known-good
  fallback — routing on nothing is worse than routing on old news) but
  counts the read in ``routing.stale_reads``.
* **Hysteresis everywhere.**  A flowlet moves only above ``threshold``
  utilization, then dwells ``min_dwell_s`` before it may move again; the
  deadband down to ``low_water`` stops ping-ponging between two warm
  paths.  Router up/down flaps are dampened the same way: the policy's
  :meth:`FlowletRouting.fingerprint` only commits an online-bit change
  after it has held for ``reroute_dwell_s``, so the PR-2 injectors'
  rapid down/up cycles do not thrash
  :meth:`~repro.core.path.PathBuilder.resolve` rebuilds.
* **Seeded re-hash.**  Path choice is a keyed BLAKE2 hash of the flowlet
  identity and its re-hash generation — deterministic for a seed, spread
  across the candidate pool so a storm's flowlets do not herd onto the
  one coldest path in lockstep.

:class:`BackpressureController` closes the degraded-mode loop: when the
watched links stay hot for ``engage_windows`` consecutive updates the
controller engages, shedding load into the existing QoS arbiter
(:meth:`repro.sched.qos.BandwidthArbiter.set_degraded`) or — for
path-level studies — into a :meth:`PathBuilder.set_class_cap
<repro.core.path.PathBuilder.set_class_cap>` demand cap, and releases
only after the links have cooled below ``low_water`` for
``release_windows`` updates.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass

import numpy as np

from repro.network.lnet import LnetConfig, RouterInfo, RoutingPolicy
from repro.network.torus import AXIS_ORDERS, Coord, Torus3D
from repro.obs.instruments import get_telemetry

__all__ = [
    "FlowletSpec",
    "LinkStatsFeed",
    "FlowletRouting",
    "BackpressureController",
    "LINK_UTIL_METRIC",
]

#: the overlay gauge the feed consumes (see
#: :func:`repro.obs.overlay.scraper.routing_probes`)
LINK_UTIL_METRIC = "mon.link_util"


@dataclass(frozen=True)
class FlowletSpec:
    """Thresholds and dwell times of the adaptive machinery.

    ``threshold``/``low_water`` bound the hysteresis band: a flowlet
    re-hashes above the former and backpressure releases below the
    latter.  ``min_dwell_s`` pins a flowlet to its new path;
    ``reroute_dwell_s`` dampens router-online flaps before they reach the
    resolve fingerprint; ``stale_after_s`` marks feed samples as stale
    (still used, but counted).  ``engage_windows``/``release_windows``
    are the consecutive-update debounce of the backpressure controller.
    """

    threshold: float = 0.85
    low_water: float = 0.60
    min_dwell_s: float = 90.0
    stale_after_s: float = 240.0
    reroute_dwell_s: float = 180.0
    slack: int = 4
    engage_windows: int = 2
    release_windows: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if not (0.0 < self.low_water < self.threshold <= 1.5):
            raise ValueError("need 0 < low_water < threshold")
        for name in ("min_dwell_s", "stale_after_s", "reroute_dwell_s"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.slack < 0:
            raise ValueError("slack must be non-negative")
        if self.engage_windows < 1 or self.release_windows < 1:
            raise ValueError("debounce windows must be >= 1")


class LinkStatsFeed:
    """Last-known-good per-component utilization, as the overlay saw it.

    The feed is a plain ``component -> (value, sampled_at)`` map: the
    overlay's collector view is poured in via :meth:`ingest` (only the
    :data:`LINK_UTIL_METRIC` series), or a driver can :meth:`observe`
    values directly in tests.  Reads never fail: an unobserved component
    reads as ``(0.0, inf age)`` — an idle-looking link, which is exactly
    the optimistic default a re-hash should spread onto.
    """

    def __init__(self) -> None:
        self._last: dict[str, tuple[float, float]] = {}

    def __len__(self) -> int:
        return len(self._last)

    def observe(self, component: str, value: float, sampled_at: float) -> None:
        """Record one windowed gauge sample for ``component``."""
        self._last[component] = (float(value), float(sampled_at))

    def ingest(
        self,
        view: dict[tuple[str, str], tuple[float, float]],
        *,
        metric: str = LINK_UTIL_METRIC,
    ) -> int:
        """Pour a collector ``view()`` mapping into the feed; returns the
        number of samples taken (only ``metric`` rows are consumed)."""
        n = 0
        for (m, source), (value, sampled_at) in view.items():
            if m == metric:
                self.observe(source, value, sampled_at)
                n += 1
        return n

    def read(self, component: str, now: float) -> tuple[float, float]:
        """``(last-known-good value, age in seconds)`` for ``component``.

        Age is ``inf`` for a component the overlay has never reported —
        the caller decides what staleness means via its own cutoff.
        """
        rec = self._last.get(component)
        if rec is None:
            return 0.0, math.inf
        value, sampled_at = rec
        return value, now - sampled_at


class FlowletRouting(RoutingPolicy):
    """LetFlow-style congestion-aware selection over routers + axis orders.

    A flowlet is one ``(client coordinate, destination leaf)`` stream.
    Its path has two degrees of freedom, both equal-cost:

    * **which router** of the destination leaf's zone carries it (the
      same candidate set FGR draws from), and
    * **which axis order** its torus hops traverse
      (:data:`~repro.network.torus.AXIS_ORDERS` — six largely link-
      disjoint minimal paths).

    New flowlets hash across the router zone (ECMP-style spray) but start
    on plain dimension order; only *observed* congestion moves them off
    it.  A re-hash normally stays inside the distance-``slack`` zone, but
    when every near option is itself above ``threshold`` the distance cap
    is lifted and the whole leaf zone is scored — under congestion a
    longer detour beats a saturated shortest path.  :meth:`refresh` is the single decision point — drivers call it
    once per sample window with the current sim time, after pouring the
    overlay view into the feed — so :meth:`select_router` stays a pure
    table lookup and a rebuild replays exactly the decided routes.
    """

    name = "flowlet"

    def __init__(
        self,
        config: LnetConfig,
        *,
        spec: FlowletSpec | None = None,
        feed: LinkStatsFeed | None = None,
    ) -> None:
        super().__init__(config)
        self.spec = spec if spec is not None else FlowletSpec()
        self.feed = feed if feed is not None else LinkStatsFeed()
        self.now = 0.0
        self._seed_key = int(self.spec.seed).to_bytes(8, "little", signed=False)
        #: flowlet key -> router index / re-hash generation / last move time
        self._assigned: dict[tuple[Coord, int], int] = {}
        self._salt: dict[tuple[Coord, int], int] = {}
        self._moved_at: dict[tuple[Coord, int], float] = {}
        #: flowlet key -> index into AXIS_ORDERS (0 = plain X,Y,Z)
        self._axis_of: dict[tuple[Coord, int], int] = {}
        #: (client, router coord) -> AXIS_ORDERS index, the lookup surface
        #: PathBuilder reads while assembling torus components
        self._axis_pair: dict[tuple[Coord, Coord], int] = {}
        self._epoch = 0
        self._committed_fp = config.online_fingerprint()
        self._pending_fp: bytes | None = None
        self._pending_since = 0.0
        self.rehashes = 0
        self.stale_reads = 0
        self.reroute_commits = 0

    # -- deterministic hashing -------------------------------------------------

    def _hash(self, key: tuple[Coord, int], salt: int) -> int:
        """Keyed BLAKE2 of (flowlet, generation): stable across runs and
        processes (unlike ``hash()``), spread by the spec seed."""
        payload = repr((key, salt)).encode("utf-8")
        digest = hashlib.blake2b(
            payload, digest_size=8, key=self._seed_key).digest()
        return int.from_bytes(digest, "little")

    # -- candidate enumeration -------------------------------------------------

    def _zone(self, client: Coord, dst_leaf: int,
              *, slack: float | None = None) -> list[int]:
        """Online destination-leaf routers within ``slack`` of the nearest,
        ordered by (distance, name) — the same explicit-key determinism as
        FGR's tie-break.  ``slack=math.inf`` lifts the distance cap (the
        desperation widening of :meth:`_maybe_rehash`)."""
        candidates = self.config.online_indices(
            self.config._by_leaf.get(dst_leaf, []))
        if not candidates:
            raise LookupError(f"no router serves leaf {dst_leaf}")
        coords = self.config._coords[candidates]
        dists = self.config.torus.distances_from(client, coords)
        if slack is None:
            slack = self.spec.slack
        near_mask = dists <= dists.min() + slack
        routers = self.config.routers
        near = sorted(
            (int(dists[i]), routers[candidates[i]].name, candidates[i])
            for i in np.flatnonzero(near_mask))
        return [idx for _d, _n, idx in near]

    def _path_components(self, client: Coord, idx: int, axis: int) -> list[str]:
        """Component names a flowlet crosses to router ``idx`` under
        ``AXIS_ORDERS[axis]`` — the set whose observed utilization scores
        the path."""
        router = self.config.routers[idx]
        comps = [f"router:{router.name}"]
        links = self.config.torus.route_links_ordered(
            client, router.coord, AXIS_ORDERS[axis])
        comps.extend(Torus3D.link_component(link) for link in links)
        return comps

    def _observed(self, comps: list[str]) -> float:
        """Max last-known-good utilization over ``comps``; stale reads are
        tolerated (the fallback) but counted."""
        peak = 0.0
        stale = 0
        for comp in comps:
            value, age = self._feed_read(comp)
            if value > peak:
                peak = value
            if self.spec.stale_after_s < age < math.inf:
                stale += 1
        if stale:
            self.stale_reads += stale
            telemetry = get_telemetry()
            if telemetry.enabled:
                telemetry.counter("routing.stale_reads").add(float(stale))
        return peak

    def _feed_read(self, comp: str) -> tuple[float, float]:
        return self.feed.read(comp, self.now)

    # -- RoutingPolicy surface -------------------------------------------------

    def select_router(self, client: Coord, dst_leaf: int) -> RouterInfo:
        key = (client, dst_leaf)
        idx = self._assigned.get(key)
        if idx is not None and not bool(self.config._online[idx]):
            idx = None  # assigned router died since the last refresh
        if idx is None:
            idx = self._assign(key, client, dst_leaf)
        return self.config.routers[idx]

    def _assign(self, key: tuple[Coord, int], client: Coord,
                dst_leaf: int) -> int:
        """First assignment (or forced re-assignment after a router loss):
        hash across the zone, start on plain dimension order."""
        zone = self._zone(client, dst_leaf)
        salt = self._salt.get(key, 0)
        idx = zone[self._hash(key, salt) % len(zone)]
        self._assigned[key] = idx
        axis = self._axis_of.get(key, 0)
        self._axis_of[key] = axis
        self._axis_pair[(client, self.config.routers[idx].coord)] = axis
        return idx

    def axis_order(self, client: Coord, router: Coord) -> tuple[int, int, int]:
        return AXIS_ORDERS[self._axis_pair.get((client, router), 0)]

    def reset(self) -> None:
        """Deliberately keep the flowlet tables across rebuilds.

        The tables *are* the routing state :meth:`refresh` decided; a
        rebuild must replay them verbatim, not re-derive fresh ones —
        clearing here would undo every congestion-driven move at exactly
        the moment the rebuild is supposed to apply it.
        """

    def fingerprint(self) -> bytes:
        """Dampened online bits plus the re-hash epoch.

        Online-bit changes enter only after :meth:`refresh` has seen them
        hold for ``reroute_dwell_s`` (flap dampening); every batch of
        flowlet moves bumps the epoch so the resolve layer rebuilds once
        per decision batch, never per flap.
        """
        return self._committed_fp + self._epoch.to_bytes(8, "little")

    def describe(self) -> str:
        return (f"flowlet(threshold={self.spec.threshold:g}, "
                f"dwell={self.spec.min_dwell_s:g}s)")

    # -- the per-window decision point ----------------------------------------

    def refresh(self, now: float) -> int:
        """Advance dampening and re-hash hot flowlets; returns moves made.

        Drivers call this once per sample window, *after* pouring the
        overlay view into the feed.  Decisions are made flowlet by
        flowlet in sorted key order (deterministic), each against the
        same window's observations.
        """
        self.now = float(now)
        self._advance_fingerprint(self.now)
        moved = 0
        for key in sorted(self._assigned):
            moved += self._maybe_rehash(key, self.now)
        if moved:
            self._epoch += 1
            self.rehashes += moved
            telemetry = get_telemetry()
            if telemetry.enabled:
                telemetry.counter("routing.rehash").add(float(moved))
        return moved

    def _maybe_rehash(self, key: tuple[Coord, int], now: float) -> int:
        client, dst_leaf = key
        idx = self._assigned[key]
        axis = self._axis_of.get(key, 0)
        observed = self._observed(self._path_components(client, idx, axis))
        if observed <= self.spec.threshold:
            return 0
        if now - self._moved_at.get(key, -math.inf) < self.spec.min_dwell_s:
            return 0
        try:
            zone = self._zone(client, dst_leaf)
        except LookupError:
            return 0  # whole zone dark; the build layer drops the flow
        # Score every equal-cost (router, axis order) option by its
        # observed peak; re-hash into the cool pool (everything at or
        # under low_water, or the least-bad options when nothing is cool).
        options: list[tuple[float, str, int, int]] = []
        for cand in zone:
            cand_name = self.config.routers[cand].name
            for a in range(len(AXIS_ORDERS)):
                peak = self._observed(self._path_components(client, cand, a))
                options.append((peak, cand_name, a, cand))
        options.sort()
        if options[0][0] > self.spec.threshold:
            # Desperation widening: every near option is itself above the
            # re-hash threshold (a zone can collapse to one router module
            # whose every axis order shares one saturated link).  Under
            # congestion a longer detour beats a saturated shortest path
            # — LetFlow's congestion-over-distance call — so lift the
            # distance cap and rescore the rest of the leaf's zone.
            near = set(zone)
            for cand in self._zone(client, dst_leaf, slack=math.inf):
                if cand in near:
                    continue
                cand_name = self.config.routers[cand].name
                for a in range(len(AXIS_ORDERS)):
                    peak = self._observed(
                        self._path_components(client, cand, a))
                    options.append((peak, cand_name, a, cand))
            options.sort()
        cutoff = max(self.spec.low_water, options[0][0])
        pool = [o for o in options if o[0] <= cutoff]
        salt = self._salt.get(key, 0) + 1
        self._salt[key] = salt
        peak, _name, new_axis, new_idx = pool[self._hash(key, salt) % len(pool)]
        if new_idx == idx and new_axis == axis:
            return 0
        self._assigned[key] = new_idx
        self._axis_of[key] = new_axis
        self._axis_pair[(client, self.config.routers[new_idx].coord)] = new_axis
        self._moved_at[key] = now
        return 1

    def _advance_fingerprint(self, now: float) -> None:
        """Commit an online-bit change only once it has held for
        ``reroute_dwell_s`` — the flap-dampening half of the hysteresis."""
        raw = self.config.online_fingerprint()
        if raw == self._committed_fp:
            self._pending_fp = None
            return
        if raw != self._pending_fp:
            self._pending_fp = raw
            self._pending_since = now
            return
        if now - self._pending_since < self.spec.reroute_dwell_s:
            return
        self._committed_fp = raw
        self._pending_fp = None
        self.reroute_commits += 1
        # Drop assignments through routers that are now offline: the
        # rebuild this commit triggers re-assigns them (salt preserved,
        # so the re-assignment is deterministic).
        online = self.config._online
        for key, idx in list(self._assigned.items()):
            if not bool(online[idx]):
                del self._assigned[key]
        self._epoch += 1
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.counter("routing.reroute_commits").add(1.0)


class BackpressureController:
    """Debounced per-link backpressure feeding the degraded-mode caps.

    Watches the observed utilization of ``watched`` components in a
    :class:`LinkStatsFeed` and flips between normal and degraded mode
    with consecutive-window hysteresis: hot for ``engage_windows``
    updates → engage, cool (below ``low_water``) for ``release_windows``
    updates → release.  On each transition the attached consumers are
    driven: a :class:`~repro.sched.qos.BandwidthArbiter` via
    ``set_degraded`` and/or a :class:`~repro.core.path.PathBuilder`
    demand cap via ``set_class_cap``.
    """

    def __init__(
        self,
        feed: LinkStatsFeed,
        watched: tuple[str, ...] | list[str],
        *,
        spec: FlowletSpec | None = None,
        arbiter=None,
    ) -> None:
        if not watched:
            raise ValueError("need at least one watched component")
        self.feed = feed
        self.watched = tuple(watched)
        self.spec = spec if spec is not None else FlowletSpec()
        self.arbiter = arbiter
        self.engaged = False
        self.engagements = 0
        self.releases = 0
        self._hot_streak = 0
        self._cool_streak = 0

    def peak(self, now: float) -> float:
        """Current observed peak utilization over the watched set."""
        return max(self.feed.read(comp, now)[0] for comp in self.watched)

    def update(self, now: float) -> bool:
        """One debounce step at sim time ``now``; returns engaged state."""
        peak = self.peak(now)
        if not self.engaged:
            self._hot_streak = (
                self._hot_streak + 1 if peak > self.spec.threshold else 0)
            if self._hot_streak >= self.spec.engage_windows:
                self._flip(True)
        else:
            self._cool_streak = (
                self._cool_streak + 1 if peak < self.spec.low_water else 0)
            if self._cool_streak >= self.spec.release_windows:
                self._flip(False)
        return self.engaged

    def _flip(self, engaged: bool) -> None:
        self.engaged = engaged
        self._hot_streak = 0
        self._cool_streak = 0
        if engaged:
            self.engagements += 1
        else:
            self.releases += 1
        if self.arbiter is not None:
            self.arbiter.set_degraded(engaged)
        telemetry = get_telemetry()
        if telemetry.enabled:
            name = ("routing.backpressure_engaged" if engaged
                    else "routing.backpressure_released")
            telemetry.counter(name).add(1.0)
