"""A SION-like InfiniBand storage area network.

Spider II's fabric (§V-B) is *decentralized*: 36 leaf switches — one per
SSU — plus a layer of core switches.  Each SSU's eight OSSes plug into its
leaf switch; each Lustre I/O router plugs into exactly one leaf switch.
Traffic between a router and an OSS on the *same* leaf stays on the leaf
(one switch crossing); traffic to any other leaf must traverse a core
switch (leaf → core → leaf), which is precisely the cost fine-grained
routing avoids.

The fabric also models the operational failure modes the monitoring section
cares about: per-cable error counters and degraded ("flapping") cables that
drop a link's effective bandwidth without killing it — the "single cable
failures can cause performance degradation" case of §IV-A.

Component naming (for the flow solver):

* ``ibport:<leaf>/<port>`` — a host cable into leaf switch ``leaf``;
* ``ibleaf:<leaf>`` — leaf switch crossbar;
* ``ibup:<leaf>`` — aggregate leaf→core uplink trunk;
* ``ibcore:<k>`` — core switch crossbar.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.units import GB

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.core.flow import FlowNetwork

__all__ = ["FabricSpec", "Cable", "InfinibandFabric"]


@dataclass(frozen=True)
class FabricSpec:
    """Geometry and capability of the SAN."""

    n_leaf_switches: int = 36
    n_core_switches: int = 4
    port_bw: float = 6.0 * GB  # FDR-class host port, bytes/s
    leaf_crossbar_bw: float = 160 * GB  # leaf switching capacity
    #: leaf->core trunk aggregate.  Deliberately thin: the decentralized
    #: SION design provisions modest inter-leaf bandwidth because FGR keeps
    #: storage traffic on the destination leaf; routing policies that
    #: bounce traffic through the core (E9's naive baseline) saturate it.
    uplink_bw_per_leaf: float = 12 * GB
    core_crossbar_bw: float = 500 * GB

    def __post_init__(self) -> None:
        if self.n_leaf_switches <= 0 or self.n_core_switches <= 0:
            raise ValueError("switch counts must be positive")
        for bw in (self.port_bw, self.leaf_crossbar_bw,
                   self.uplink_bw_per_leaf, self.core_crossbar_bw):
            if bw <= 0:
                raise ValueError("bandwidths must be positive")


@dataclass
class Cable:
    """One host cable: a port on a leaf switch."""

    leaf: int
    port: int
    host: str  # owning host name (router or OSS)
    degradation: float = 1.0  # multiplier on port bandwidth (1 = healthy)
    symbol_errors: int = 0  # counter surfaced to the IB monitor
    link_downs: int = 0

    @property
    def component(self) -> str:
        return f"ibport:{self.leaf}/{self.port}"

    @property
    def healthy(self) -> bool:
        return self.degradation >= 0.999


class InfinibandFabric:
    """The SAN: leaf switches, core switches, and host cables."""

    def __init__(self, spec: FabricSpec | None = None) -> None:
        self.spec = spec or FabricSpec()
        self._cables: dict[tuple[int, int], Cable] = {}
        self._next_port: list[int] = [0] * self.spec.n_leaf_switches
        self._host_cable: dict[str, Cable] = {}

    # -- topology construction ---------------------------------------------------

    def attach_host(self, host: str, leaf: int) -> Cable:
        """Plug ``host`` into leaf switch ``leaf``; returns its cable."""
        if not 0 <= leaf < self.spec.n_leaf_switches:
            raise ValueError(f"leaf {leaf} out of range")
        if host in self._host_cable:
            raise ValueError(f"host {host!r} already attached")
        port = self._next_port[leaf]
        self._next_port[leaf] += 1
        cable = Cable(leaf=leaf, port=port, host=host)
        self._cables[(leaf, port)] = cable
        self._host_cable[host] = cable
        return cable

    def cable_of(self, host: str) -> Cable:
        return self._host_cable[host]

    def leaf_of(self, host: str) -> int:
        return self._host_cable[host].leaf

    @property
    def cables(self) -> list[Cable]:
        return list(self._cables.values())

    # -- path construction --------------------------------------------------------

    def core_for(self, src_leaf: int, dst_leaf: int) -> int:
        """Deterministic core-switch choice for a leaf pair (static LMC-style
        spreading: pair-hashed round robin)."""
        return (src_leaf * 31 + dst_leaf) % self.spec.n_core_switches

    def path_components(self, src_host: str, dst_host: str) -> list[str]:
        """Flow-solver components crossed from one host to another."""
        a = self._host_cable[src_host]
        b = self._host_cable[dst_host]
        comps = [a.component, f"ibleaf:{a.leaf}"]
        if a.leaf != b.leaf:
            core = self.core_for(a.leaf, b.leaf)
            comps += [
                f"ibup:{a.leaf}",
                f"ibcore:{core}",
                f"ibup:{b.leaf}",
                f"ibleaf:{b.leaf}",
            ]
        comps.append(b.component)
        return comps

    def crossings(self, src_host: str, dst_host: str) -> int:
        """Switch crossings: 1 intra-leaf, 3 via core (the FGR cost model)."""
        return 1 if self.leaf_of(src_host) == self.leaf_of(dst_host) else 3

    # -- capacities for the flow solver --------------------------------------------

    def register_components(self, net: "FlowNetwork") -> None:
        """Add every fabric component to a :class:`FlowNetwork`."""
        for cable in self._cables.values():
            net.add_component(cable.component, self.spec.port_bw * cable.degradation)
        for leaf in range(self.spec.n_leaf_switches):
            net.add_component(f"ibleaf:{leaf}", self.spec.leaf_crossbar_bw)
            net.add_component(f"ibup:{leaf}", self.spec.uplink_bw_per_leaf)
        for k in range(self.spec.n_core_switches):
            net.add_component(f"ibcore:{k}", self.spec.core_crossbar_bw)

    def refresh_components(self, net: "FlowNetwork") -> None:
        """Push current capacities into an already-registered network.

        The delta counterpart of :meth:`register_components` for
        incremental re-solves: only cable capacities move under faults
        (degrade/fail/repair set ``degradation``), so only cables are
        pushed — switch crossbars and uplinks are spec constants.  An
        unchanged capacity is a no-op inside the network, dirtying
        nothing.
        """
        port_bw = self.spec.port_bw
        for cable in self._cables.values():
            net.set_capacity(cable.component, port_bw * cable.degradation)

    # -- fault injection -------------------------------------------------------------

    def degrade_cable(self, host: str, factor: float, symbol_errors: int = 1000) -> None:
        """A flapping/marginal cable: bandwidth × ``factor``, errors accrue."""
        if not 0 < factor <= 1:
            raise ValueError("factor must be in (0, 1]")
        cable = self._host_cable[host]
        cable.degradation = factor
        cable.symbol_errors += symbol_errors

    def fail_cable(self, host: str) -> None:
        cable = self._host_cable[host]
        cable.degradation = 0.0
        cable.link_downs += 1

    def repair_cable(self, host: str) -> None:
        cable = self._host_cable[host]
        cable.degradation = 1.0

    def error_counters(self) -> dict[str, tuple[int, int]]:
        """Host → (symbol_errors, link_downs), the IB-monitor view."""
        return {
            host: (c.symbol_errors, c.link_downs)
            for host, c in self._host_cable.items()
        }
