"""A Gemini-like 3D torus interconnect (Titan's network).

Titan is a Cray XK7: 18,688 compute nodes, two nodes per Gemini ASIC, the
ASICs wired as a 3D torus.  The production machine's torus is 25 × 16 × 24
in (X, Y, Z); cabinets form a 25 × 8 floor grid (Figure 2's axes), each
cabinet contributing a column of routers.

The model keeps what the paper's router-placement reasoning needs:

* torus coordinates, with wraparound distance;
* deterministic dimension-ordered (X then Y then Z) shortest-wrap routing,
  which is how Gemini routes in practice and what makes *placement* matter
  (traffic between a client and its router concentrates on predictable
  links);
* per-directional-link capacities, so flow solving can expose congestion
  hot-spots (Lesson 14);
* per-node injection caps.

Link identity: ``("gl", x, y, z, axis, sign)`` — the directed link leaving
node ``(x, y, z)`` along ``axis`` (0/1/2) in direction ``sign`` (+1/-1).
These tuples feed straight into :class:`repro.core.flow.FlowNetwork`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.units import GB

__all__ = ["TorusSpec", "Torus3D", "TITAN_TORUS", "AXIS_ORDERS"]

Coord = tuple[int, int, int]
LinkId = tuple[str, int, int, int, int, int]
AxisOrder = tuple[int, int, int]

#: the equal-cost dimension-order family: every permutation of the axis
#: traversal order yields a minimal path (per-axis shortest-wrap deltas
#: are independent, so the hop count is identical), but the *links* the
#: permutations cross are largely disjoint — the spread a congestion-aware
#: policy re-hashes over
AXIS_ORDERS: tuple[AxisOrder, ...] = (
    (0, 1, 2), (0, 2, 1), (1, 0, 2), (1, 2, 0), (2, 0, 1), (2, 1, 0),
)


@dataclass(frozen=True)
class TorusSpec:
    """Geometry and per-link capability of the torus."""

    dims: tuple[int, int, int] = (25, 16, 24)
    link_bw: float = 4.7 * GB  # bytes/s per directed link (Gemini-class)
    injection_bw: float = 6.0 * GB  # bytes/s a node can inject
    nodes_per_router: int = 2  # compute nodes per Gemini ASIC

    def __post_init__(self) -> None:
        if any(d <= 0 for d in self.dims):
            raise ValueError("torus dimensions must be positive")
        if self.link_bw <= 0 or self.injection_bw <= 0:
            raise ValueError("bandwidths must be positive")

    @property
    def n_routers(self) -> int:
        x, y, z = self.dims
        return x * y * z

    @property
    def n_nodes(self) -> int:
        return self.n_routers * self.nodes_per_router


#: Titan's production torus geometry.
TITAN_TORUS = TorusSpec()


class Torus3D:
    """Dimension-ordered-routed 3D torus with wraparound."""

    def __init__(self, spec: TorusSpec | None = None) -> None:
        self.spec = spec or TITAN_TORUS
        self.dims = self.spec.dims

    # -- coordinates ----------------------------------------------------------

    def contains(self, coord: Coord) -> bool:
        return all(0 <= c < d for c, d in zip(coord, self.dims))

    def _check(self, coord: Coord) -> None:
        if not self.contains(coord):
            raise ValueError(f"coordinate {coord} outside torus {self.dims}")

    def node_index(self, coord: Coord) -> int:
        """Linearized router index (row-major X, Y, Z)."""
        self._check(coord)
        x, y, z = coord
        _dx, dy, dz = self.dims
        return (x * dy + y) * dz + z

    def coord_of(self, index: int) -> Coord:
        dx, dy, dz = self.dims
        if not 0 <= index < dx * dy * dz:
            raise ValueError(f"node index {index} out of range")
        x, rem = divmod(index, dy * dz)
        y, z = divmod(rem, dz)
        return (x, y, z)

    def all_coords(self) -> Iterator[Coord]:
        dx, dy, dz = self.dims
        for x in range(dx):
            for y in range(dy):
                for z in range(dz):
                    yield (x, y, z)

    # -- distance ---------------------------------------------------------------

    def axis_delta(self, a: int, b: int, axis: int) -> int:
        """Signed shortest-wrap displacement from ``a`` to ``b`` on ``axis``.

        Ties (exactly half way around an even ring) break toward +1, keeping
        routing deterministic.
        """
        d = self.dims[axis]
        forward = (b - a) % d
        backward = forward - d  # negative
        if forward <= -backward:
            return forward
        return backward

    def distance(self, src: Coord, dst: Coord) -> int:
        """Hop count under shortest-wrap per-dimension routing."""
        self._check(src)
        self._check(dst)
        return sum(abs(self.axis_delta(src[a], dst[a], a)) for a in range(3))

    def distances_from(self, src: Coord, dsts: np.ndarray) -> np.ndarray:
        """Vectorized hop counts from ``src`` to an ``(n, 3)`` coord array."""
        self._check(src)
        dsts = np.asarray(dsts, dtype=int)
        total = np.zeros(len(dsts), dtype=int)
        for a in range(3):
            d = self.dims[a]
            forward = (dsts[:, a] - src[a]) % d
            total += np.minimum(forward, d - forward)
        return total

    # -- routing ---------------------------------------------------------------

    def route(self, src: Coord, dst: Coord) -> list[Coord]:
        """Node sequence of the dimension-ordered (X, then Y, then Z) path."""
        self._check(src)
        self._check(dst)
        path = [src]
        cur = list(src)
        for axis in range(3):
            delta = self.axis_delta(cur[axis], dst[axis], axis)
            step = 1 if delta > 0 else -1
            for _ in range(abs(delta)):
                cur[axis] = (cur[axis] + step) % self.dims[axis]
                path.append((cur[0], cur[1], cur[2]))
        return path

    def route_links(self, src: Coord, dst: Coord) -> list[LinkId]:
        """Directed link ids traversed by the dimension-ordered route."""
        return self.route_links_ordered(src, dst, (0, 1, 2))

    def route_links_ordered(
        self, src: Coord, dst: Coord, order: AxisOrder,
    ) -> list[LinkId]:
        """Directed link ids of the minimal path traversing axes in
        ``order`` (a permutation of ``(0, 1, 2)``; see :data:`AXIS_ORDERS`).

        All orders cross the same number of links (the per-axis deltas are
        order-independent), so the family is equal-cost; which links they
        cross differs, which is what flowlet re-hashing exploits.
        """
        if sorted(order) != [0, 1, 2]:
            raise ValueError(f"axis order {order!r} is not a permutation")
        links: list[LinkId] = []
        cur = list(src)
        self._check(src)
        self._check(dst)
        for axis in order:
            delta = self.axis_delta(cur[axis], dst[axis], axis)
            step = 1 if delta > 0 else -1
            for _ in range(abs(delta)):
                links.append(("gl", cur[0], cur[1], cur[2], axis, step))
                cur[axis] = (cur[axis] + step) % self.dims[axis]
        return links

    def link_loads(self, pairs: list[tuple[Coord, Coord]]) -> dict[LinkId, int]:
        """Count how many (src, dst) routes cross each directed link.

        The paper's congestion reasoning (Lesson 14) is exactly this link
        census: hot-spots are links whose count is far above the mean.
        """
        loads: dict[LinkId, int] = {}
        for src, dst in pairs:
            for link in self.route_links(src, dst):
                loads[link] = loads.get(link, 0) + 1
        return loads

    def injection_component(self, coord: Coord) -> str:
        """Flow-network component name for a node's injection bandwidth."""
        self._check(coord)
        return f"inj:{coord[0]},{coord[1]},{coord[2]}"

    @staticmethod
    def link_component(link: LinkId) -> str:
        """Flow-network component name for a directed link."""
        _tag, x, y, z, axis, sign = link
        return f"gl:{x},{y},{z}:{axis}{'+' if sign > 0 else '-'}"
