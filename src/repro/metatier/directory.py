"""Haystack Directory + Cache: the metadata plane of the aggregated tier.

The Haystack split of responsibilities keeps the Lustre MDS out of the
tiny-file read path entirely:

* the **Directory** owns the logical-to-physical mapping — which store
  and segment holds each logical ID — and is consulted on every logical
  operation.  It is an in-memory service (a dict here), so its per-op
  cost is zero MDS seconds; what it *does* cost is memory, which
  :meth:`HaystackDirectory.memory_bytes` estimates so capacity planning
  can reason about the 10^9-needle regime.
* the **Cache** fronts store reads with a configurable hit rate (the
  published Haystack number is ~80% for recent uploads).  A hit skips
  the OST seek; the hit draw comes from a named seeded substream so
  cached runs remain bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metatier.needles import Needle, SegmentStore
from repro.sim.rng import RngStreams

__all__ = ["DirectoryEntry", "HaystackDirectory", "NeedleCache"]

#: estimated in-memory index bytes per needle: key hash + segment id +
#: offset + length + flags, Haystack's ~10 bytes/needle plus dict overhead
INDEX_BYTES_PER_NEEDLE = 48


@dataclass(frozen=True)
class DirectoryEntry:
    """Where one logical ID lives: store name + needle record."""

    store: str
    needle: Needle


class HaystackDirectory:
    """Seeded logical-ID → (store, segment) mapping over several stores.

    Writes are spread across stores by a draw from the named substream
    ``metatier.directory`` — the Directory's "balanced writable volume"
    policy — so multi-store layouts stay balanced without coordination.
    """

    def __init__(self, stores: list[SegmentStore], *, seed: int = 0) -> None:
        if not stores:
            raise ValueError("the directory needs at least one store")
        self.stores = list(stores)
        self._by_name = {store.name: store for store in self.stores}
        if len(self._by_name) != len(self.stores):
            raise ValueError("store names must be unique")
        self._rng = RngStreams(seed).get("metatier.directory")
        self.entries: dict[str, DirectoryEntry] = {}

    def __len__(self) -> int:
        """Live logical IDs."""
        return len(self.entries)

    def __contains__(self, key: str) -> bool:
        return key in self.entries

    def store_for_write(self) -> SegmentStore:
        """Pick the store for a new logical ID (seeded balanced choice)."""
        if len(self.stores) == 1:
            return self.stores[0]
        return self.stores[int(self._rng.integers(0, len(self.stores)))]

    def record(self, key: str, store: SegmentStore, needle: Needle) -> None:
        """Bind ``key`` to its physical location after a store write."""
        self.entries[key] = DirectoryEntry(store=store.name, needle=needle)

    def locate(self, key: str) -> DirectoryEntry:
        """Resolve one logical ID (in-memory; zero MDS cost)."""
        entry = self.entries.get(key)
        if entry is None:
            raise KeyError(f"unknown logical ID: {key}")
        return entry

    def forget(self, key: str) -> DirectoryEntry:
        """Drop a logical ID after its needle is deleted."""
        entry = self.entries.pop(key, None)
        if entry is None:
            raise KeyError(f"unknown logical ID: {key}")
        return entry

    def store(self, name: str) -> SegmentStore:
        """Look up a store by name."""
        return self._by_name[name]

    def memory_bytes(self) -> int:
        """Estimated RAM the in-memory index costs at current population —
        the number that decides whether a 10^9-needle directory fits in
        one server (at 48 B/needle, 10^9 needles ≈ 48 GB: it does)."""
        return INDEX_BYTES_PER_NEEDLE * len(self.entries)


class NeedleCache:
    """The Haystack Cache, reduced to its effect: a seeded hit draw.

    The cache's job is to absorb reads of recently written needles so the
    store's OSTs only see the long tail.  Modelling the eviction policy
    would add state without adding insight at sim scale; the published
    ~80% hit rate enters as a configurable Bernoulli draw on the named
    substream ``metatier.cache``.
    """

    def __init__(self, hit_rate: float = 0.8, *, seed: int = 0) -> None:
        if not (0.0 <= hit_rate <= 1.0):
            raise ValueError("hit_rate must be in [0, 1]")
        self.hit_rate = hit_rate
        self._rng = RngStreams(seed).get("metatier.cache")
        self.hits = 0
        self.misses = 0

    def lookup(self) -> bool:
        """One read's cache outcome; ``True`` skips the store entirely."""
        hit = bool(self._rng.random() < self.hit_rate)
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        return hit

    @property
    def observed_hit_rate(self) -> float:
        """Realized hit fraction over all lookups so far."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
