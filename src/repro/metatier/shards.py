"""DNE-style namespace sharding: one namespace, N metadata servers.

§IV-C's answer to the single-MDS ceiling was to split Spider into
*separate namespaces* (atlas1/atlas2) and recommend DNE "in addition to"
that split.  This module builds the DNE answer against the simulated
namespace: a :class:`ShardedNamespace` hash-partitions directories across
``n_shards`` MDTs (subtree partitioning — every file lands on the shard
that owns its parent directory, so ``listdir`` stays a single-shard
operation), while the directory *skeleton* is replicated structurally so
any shard can resolve parents locally (the DNE master-object idiom).

Cross-shard operations pay their real cost: a cross-MDT rename is the
link + unlink + create distributed transaction Lustre actually performs,
charged to both shards; a cross-MDT hard link charges the inode's home
shard and the dentry's shard.

Determinism guarantee: shard assignment is ``crc32`` of the parent
directory (stable across runs and machines), and every listing or sweep
is sorted — so results are independent of ingest order.  The test suite
pins this ("ingest-order independence").
"""

from __future__ import annotations

import itertools
import zlib
from typing import Iterator

import numpy as np

from repro.lustre.mds import MdsSpec, MetadataServer, OpMix
from repro.lustre.namespace import (
    FileEntry,
    Namespace,
    NamespaceError,
    StripeLayout,
)
from repro.lustre.ost import Ost
from repro.units import MiB

__all__ = ["ShardedNamespace", "ShardedFilesystem", "shard_key"]


def shard_key(path: str, n_shards: int) -> int:
    """Owning shard of ``path``: crc32 of its parent directory.

    Subtree partitioning — siblings colocate, so ``listdir`` and the
    common create/stat/unlink patterns of a directory-local workload
    stay on one MDT.  crc32 (not ``hash``) keeps the mapping stable
    across processes and Python hash seeds.
    """
    parent = path.rsplit("/", 1)[0] or "/"
    return zlib.crc32(parent.encode("utf-8")) % n_shards


class ShardedNamespace:
    """One logical namespace spread over ``n_shards`` MDT shards."""

    def __init__(
        self,
        name: str = "atlas",
        n_shards: int = 4,
        *,
        spec: MdsSpec | None = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError("need at least one shard")
        self.name = name
        self.shards = [Namespace(f"{name}-shard{i}") for i in range(n_shards)]
        self.servers = [
            MetadataServer(spec, name=f"{name}-mdt{i}")
            for i in range(n_shards)
        ]
        #: links created cross-shard (remote dentry + home-inode nlink)
        self.cross_shard_links = 0
        #: renames that crossed shards (the expensive DNE transaction)
        self.cross_shard_renames = 0
        #: hard-link dentries: link path → target path
        self.link_targets: dict[str, str] = {}

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def shard_of(self, path: str) -> int:
        """Shard index owning ``path``."""
        return shard_key(path, self.n_shards)

    # -- structural operations --------------------------------------------

    def mkdir(self, path: str, now: float = 0.0, **kwargs) -> FileEntry:
        """Create a directory: the skeleton replicates to every shard;
        the op cost lands on the owning shard only."""
        kwargs.setdefault("parents", True)
        entries = [ns.mkdir(path, now, **kwargs) for ns in self.shards]
        owner = self.shard_of(path)
        self.servers[owner].service_time(OpMix(mkdirs=1))
        return entries[owner]

    def create(self, path: str, layout: StripeLayout, now: float = 0.0,
               **kwargs) -> FileEntry:
        """Create a file on its owning shard (one MDS create there)."""
        shard = self.shard_of(path)
        entry = self.shards[shard].create(path, layout, now, **kwargs)
        self.servers[shard].service_time(OpMix(creates=1))
        return entry

    def unlink(self, path: str) -> FileEntry:
        """Remove an entry: files from their shard, directories from all."""
        shard = self.shard_of(path)
        entry = self.shards[shard].get(path)
        if entry.is_dir:
            for ns in self.shards:
                ns.unlink(path)
        else:
            self.shards[shard].unlink(path)
            self.link_targets.pop(path, None)
        self.servers[shard].service_time(OpMix(unlinks=1))
        return entry

    def rename(self, old: str, new: str, now: float) -> FileEntry:
        """Rename a file; cross-shard pays the DNE transaction.

        Same shard: a two-dentry rename on one MDT.  Cross shard: the
        link + unlink + create sequence Lustre's DNE performs, charged
        to both participating MDTs.
        """
        src = self.shard_of(old)
        dst = self.shard_of(new)
        if src == dst:
            entry = self.shards[src].rename(old, new, now)
            self.servers[src].service_time(OpMix(renames=1))
            return entry
        entry = self.shards[src].get(old)
        if entry.is_dir:
            raise NamespaceError(f"cannot rename a directory: {old}")
        self.shards[src].unlink(old)
        moved = self.shards[dst].create(
            new, entry.layout, now, size=entry.size,
            owner=entry.owner, project=entry.project)
        moved.atime, moved.mtime = entry.atime, entry.mtime
        self.servers[src].service_time(OpMix(renames=1, unlinks=1))
        self.servers[dst].service_time(OpMix(creates=1, links=1))
        self.cross_shard_renames += 1
        return moved

    def link(self, target: str, new: str, now: float) -> FileEntry:
        """Hard-link ``target`` at ``new``.

        The dentry is a zero-size entry on ``new``'s shard pointing at
        the target (capacity stays charged to the target only); the
        inode's nlink update charges the target's home shard when the
        two differ.
        """
        home = self.shard_of(target)
        dst = self.shard_of(new)
        entry = self.shards[home].get(target)
        if entry.is_dir:
            raise NamespaceError(f"cannot hard-link a directory: {target}")
        link_entry = self.shards[dst].create(
            new, entry.layout, now, size=0,
            owner=entry.owner, project=entry.project)
        self.link_targets[new] = target
        if home == dst:
            self.servers[dst].service_time(OpMix(links=1))
        else:
            self.servers[dst].service_time(OpMix(creates=1))
            self.servers[home].service_time(OpMix(links=1))
            self.cross_shard_links += 1
        return link_entry

    # -- lookup ------------------------------------------------------------

    def __contains__(self, path: str) -> bool:
        return path in self.shards[self.shard_of(path)]

    def get(self, path: str) -> FileEntry:
        """Resolve one entry on its owning shard (no MDS charge — pair
        with :meth:`charge_stat` for a billed stat)."""
        return self.shards[self.shard_of(path)].get(path)

    def stat(self, path: str) -> FileEntry:
        """A billed stat: resolve + charge the owning shard, with the
        per-stripe OST RPC amplification of the entry's layout."""
        shard = self.shard_of(path)
        entry = self.shards[shard].get(path)
        stripes = entry.layout.stripe_count if entry.layout else 0
        self.servers[shard].service_time(
            OpMix(stats=1, mean_stripe_count=stripes))
        return entry

    def listdir(self, path: str) -> list[str]:
        """Children of a directory — a single-shard readdir (subtree
        partitioning colocates a directory's files; subdirectories are
        replicated, so the owning shard of the children sees both)."""
        child_shard = shard_key(f"{path.rstrip('/')}/x", self.n_shards)
        names = self.shards[child_shard].listdir(path)
        self.servers[child_shard].service_time(
            OpMix(readdir_entries=len(names)))
        return names

    def read(self, path: str, now: float) -> FileEntry:
        """Bump atime on the owning shard."""
        return self.shards[self.shard_of(path)].read(path, now)

    def write(self, path: str, nbytes: int, now: float) -> FileEntry:
        """Append bytes on the owning shard."""
        return self.shards[self.shard_of(path)].write(path, nbytes, now)

    # -- aggregate views ---------------------------------------------------

    @property
    def n_files(self) -> int:
        return sum(ns.n_files for ns in self.shards)

    @property
    def n_dirs(self) -> int:
        """Distinct directories (the skeleton is replicated; count once)."""
        return self.shards[0].n_dirs

    def files(self, top: str = "/") -> Iterator[FileEntry]:
        """Every file, shard-major, deterministic order.

        Within a shard the walk is sorted-DFS (insertion-order
        independent); shards are visited in index order.  Tools that
        need a global lexicographic order sort the result — sweeps
        (purge, LustreDU) are order-insensitive aggregations.
        """
        for ns in self.shards:
            yield from ns.files(top)

    def total_bytes(self, top: str = "/") -> int:
        """Logical bytes across all shards (hard links count once)."""
        return sum(f.size for f in self.files(top))

    # -- load accounting ---------------------------------------------------

    def busy_seconds(self) -> list[float]:
        """Per-shard MDS busy time so far."""
        return [server.busy_seconds for server in self.servers]

    def parallel_busy_seconds(self) -> float:
        """Metadata-service makespan: shards serve in parallel, so the
        busiest shard sets the pace."""
        return max(self.busy_seconds())

    def total_ops(self) -> int:
        """Metadata operations served across all shards."""
        return sum(server.ops_served for server in self.servers)

    def balance(self) -> float:
        """Jain fairness of per-shard op counts (1.0 = perfectly even)."""
        loads = np.array([server.ops_served for server in self.servers],
                         dtype=float)
        total = loads.sum()
        if total == 0:
            return 1.0
        return float(total ** 2 / (self.n_shards * (loads ** 2).sum()))


class ShardedFilesystem:
    """A file system over a :class:`ShardedNamespace` and a shared OST pool.

    Quacks like :class:`repro.lustre.filesystem.LustreFilesystem` where
    the tools need it (``namespace``, ``unlink``, ``fill_fraction``,
    ``scan_cost``) so the purger and LustreDU ride the sharded namespace
    unchanged.
    """

    def __init__(
        self,
        name: str,
        osts: list[Ost],
        *,
        n_shards: int = 4,
        mds_spec: MdsSpec | None = None,
        default_stripe_count: int = 1,
        default_stripe_size: int = MiB,
        qos_threshold: float = 0.17,
    ) -> None:
        if not osts:
            raise ValueError("a file system needs at least one OST")
        if default_stripe_count < 1:
            raise ValueError("default_stripe_count must be >= 1")
        self.name = name
        self.namespace = ShardedNamespace(name, n_shards, spec=mds_spec)
        self.osts = list(osts)
        self.default_stripe_count = min(default_stripe_count, len(osts))
        self.default_stripe_size = default_stripe_size
        self.qos_threshold = qos_threshold
        self._rr = itertools.cycle(range(len(self.osts)))
        self._ost_by_index = {ost.index: ost for ost in self.osts}

    # -- capacity ----------------------------------------------------------

    @property
    def capacity_bytes(self) -> int:
        return sum(o.spec.capacity_bytes for o in self.osts)

    @property
    def used_bytes(self) -> int:
        return sum(o.used_bytes for o in self.osts)

    @property
    def fill_fraction(self) -> float:
        return self.used_bytes / self.capacity_bytes

    def ost(self, index: int) -> Ost:
        """Look up one OST by global index."""
        return self._ost_by_index[index]

    def fill_fractions(self) -> np.ndarray:
        """Per-OST fill levels, in OST-list order."""
        return np.array([o.fill_fraction for o in self.osts])

    # -- allocation --------------------------------------------------------

    def choose_osts(self, stripe_count: int) -> tuple[int, ...]:
        """QOS-allocator OST choice: round robin while balanced, weighted
        toward free space past ``qos_threshold`` imbalance."""
        stripe_count = min(stripe_count, len(self.osts))
        fills = self.fill_fractions()
        if fills.max() - fills.min() <= self.qos_threshold:
            start = next(self._rr)
            return tuple(
                self.osts[(start + i) % len(self.osts)].index
                for i in range(stripe_count)
            )
        order = np.argsort(fills)
        return tuple(self.osts[i].index for i in order[:stripe_count])

    def layout_for(
        self,
        stripe_count: int | None = None,
        stripe_size: int | None = None,
        osts: tuple[int, ...] | None = None,
    ) -> StripeLayout:
        """Build a stripe layout, allocating OSTs when none are given."""
        if osts is None:
            osts = self.choose_osts(stripe_count or self.default_stripe_count)
        else:
            for idx in osts:
                if idx not in self._ost_by_index:
                    raise KeyError(f"OST {idx} not in file system {self.name}")
        return StripeLayout(osts=tuple(osts),
                            stripe_size=stripe_size or self.default_stripe_size)

    # -- file operations ---------------------------------------------------

    def create_file(self, path: str, now: float, *, size: int = 0,
                    stripe_count: int | None = None,
                    stripe_size: int | None = None,
                    osts: tuple[int, ...] | None = None,
                    owner: str = "user", project: str = "proj") -> FileEntry:
        """Create (and optionally pre-size) a file on its owning shard."""
        layout = self.layout_for(stripe_count, stripe_size, osts)
        entry = self.namespace.create(path, layout, now, size=0,
                                      owner=owner, project=project)
        if size:
            self.append(path, size, now)
        return entry

    def mkdir(self, path: str, now: float, **kwargs) -> FileEntry:
        """Create a directory (skeleton on every shard)."""
        return self.namespace.mkdir(path, now, **kwargs)

    def append(self, path: str, nbytes: int, now: float) -> FileEntry:
        """Grow a file, charging its stripes' OSTs."""
        entry = self.namespace.get(path)
        if entry.layout is None:
            raise ValueError(f"{path} has no layout")
        old = entry.size
        new_shares = entry.layout.ost_share(old + nbytes)
        old_shares = entry.layout.ost_share(old)
        for ost_index, total in new_shares.items():
            delta = total - old_shares.get(ost_index, 0)
            if delta > 0:
                self._ost_by_index[ost_index].allocate(delta)
        return self.namespace.write(path, nbytes, now)

    def read_file(self, path: str, now: float) -> FileEntry:
        """Read a whole file, charging its stripes' OSTs."""
        entry = self.namespace.read(path, now)
        if entry.layout is not None and entry.size:
            for ost_index, share in entry.layout.ost_share(entry.size).items():
                self._ost_by_index[ost_index].record_read(share)
        return entry

    def unlink(self, path: str) -> FileEntry:
        """Remove a file, releasing OST capacity (hard-link dentries hold
        no capacity of their own)."""
        entry = self.namespace.get(path)
        holds_capacity = (not entry.is_dir and entry.layout is not None
                          and path not in self.namespace.link_targets)
        if holds_capacity:
            for ost_index, share in entry.layout.ost_share(entry.size).items():
                self._ost_by_index[ost_index].release(share)
        return self.namespace.unlink(path)

    def rename(self, old: str, new: str, now: float) -> FileEntry:
        """Rename a file (cross-shard pays the DNE transaction)."""
        return self.namespace.rename(old, new, now)

    def stat(self, path: str) -> FileEntry:
        """A billed stat on the owning shard."""
        return self.namespace.stat(path)

    def du(self, top: str = "/") -> int:
        """Client-side ``du``: per-file stats, spread over the shards
        (still the Lesson-19 pathology, just divided by ``n_shards``)."""
        total = 0
        for entry in self.namespace.files(top):
            self.namespace.stat(entry.path)
            total += entry.size
        return total

    def scan_cost(self, n_entries: int, server_scan_speedup: float) -> float:
        """Server-side sweep cost (LustreDU): each shard scans its own
        subtrees in parallel; the makespan is the busiest shard's scan.

        Returns seconds of (parallel) metadata-service time; charges
        every shard its share.
        """
        per_shard = max(1, int(n_entries / self.namespace.n_shards
                               / server_scan_speedup))
        times = [
            server.service_time(OpMix(readdir_entries=per_shard))
            for server in self.namespace.servers
        ]
        return max(times)
