"""Needle-in-segment small-file aggregation (Haystack Store).

The paper's metadata lessons (§IV-C, Lesson 19) stop at "one MDS per
namespace cannot sustain the rate"; the modern answer, proven at Facebook
scale (Haystack, OSDI'10: 260 billion objects, 1M+ reads/s), is to stop
giving every tiny file its own metadata entry at all.  This module packs
tiny logical files ("needles") into large *segment files* striped over the
existing OSTs:

* one namespace entry + one MDS ``create`` per **segment** (hundreds of
  thousands of needles), not per needle;
* each needle is ``(segment, offset, length)`` in an **in-memory index**
  — a read is one index lookup plus a single OST seek, zero MDS RPCs;
* deletes are tombstones in the index; a **compaction** pass rewrites the
  live tail of a mostly-dead segment and unlinks the old segment file,
  reclaiming OST capacity without per-needle metadata traffic.

The cost asymmetry against the per-file baseline is the whole point: the
paired study in :mod:`repro.metatier.study` quantifies it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lustre.filesystem import LustreFilesystem
from repro.obs.instruments import get_telemetry
from repro.units import MiB

__all__ = [
    "Needle",
    "SegmentSpec",
    "Segment",
    "SegmentStore",
    "CompactionReport",
    "NEEDLE_HEADER_BYTES",
]

#: per-needle on-disk framing: magic, key hash, flags, size, checksum —
#: the Haystack needle header/footer, rounded to a convenient sim size.
NEEDLE_HEADER_BYTES = 40


@dataclass(frozen=True)
class Needle:
    """One logical tiny file's location inside a segment."""

    key: str
    segment_index: int
    offset: int
    length: int
    #: sim time of the write that produced this needle (drives the warm
    #: tier's age-based migration, not purge eligibility)
    written_at: float

    @property
    def framed_bytes(self) -> int:
        """Bytes the needle occupies on disk including header framing."""
        return NEEDLE_HEADER_BYTES + self.length


@dataclass(frozen=True)
class SegmentSpec:
    """Static shape of the segment store.

    Haystack uses ~100 GB physical volumes; the simulated default is
    smaller so experiments at 10^6 needles still exercise multi-segment
    behaviour (sealing, compaction, migration) without gigabyte-scale
    bookkeeping.
    """

    segment_bytes: int = 256 * MiB
    stripe_count: int = 1
    stripe_size: int = 1 * MiB
    #: sealed segments whose dead fraction exceeds this are compacted
    compact_threshold: float = 0.5
    max_needle_bytes: int = 1 * MiB

    def __post_init__(self) -> None:
        if self.segment_bytes <= 0:
            raise ValueError("segment_bytes must be positive")
        if self.stripe_count < 1:
            raise ValueError("stripe_count must be >= 1")
        if self.stripe_size <= 0:
            raise ValueError("stripe_size must be positive")
        if not (0 < self.compact_threshold <= 1):
            raise ValueError("compact_threshold must be in (0, 1]")
        if not (0 < self.max_needle_bytes <= self.segment_bytes):
            raise ValueError(
                "max_needle_bytes must be in (0, segment_bytes]")


@dataclass
class Segment:
    """One segment file: an append-only log of needles on the hot tier."""

    index: int
    path: str
    capacity: int
    write_offset: int = 0
    live_bytes: int = 0
    dead_bytes: int = 0
    n_live: int = 0
    n_dead: int = 0
    sealed: bool = False
    #: newest needle write time — the age clock for warm migration
    last_write_at: float = 0.0
    #: migrated to the warm tier (read-only, no longer on hot OSTs)
    migrated: bool = False
    #: emptied by compaction: its live tail was rewritten elsewhere and
    #: its segment file unlinked
    retired: bool = False

    @property
    def dead_fraction(self) -> float:
        """Fraction of written bytes now tombstoned."""
        written = self.live_bytes + self.dead_bytes
        return self.dead_bytes / written if written else 0.0

    def fits(self, framed_bytes: int) -> bool:
        """Whether a needle of ``framed_bytes`` still fits."""
        return self.write_offset + framed_bytes <= self.capacity


@dataclass(frozen=True)
class CompactionReport:
    """Outcome of one compaction pass."""

    ran_at: float
    segments_compacted: int
    needles_rewritten: int
    bytes_rewritten: int
    bytes_reclaimed: int


@dataclass
class _StoreCounters:
    """Plain-int op accounting (always on, unlike telemetry)."""

    writes: int = 0
    reads: int = 0
    deletes: int = 0
    segment_creates: int = 0
    compactions: int = 0
    bytes_written: int = 0
    bytes_read: int = 0


class SegmentStore:
    """The Haystack Store: segments on one backing file system.

    Segment files live under ``/.segments/<store>/`` in the backing
    namespace and are striped over the backing OSTs via the ordinary
    layout machinery, so OST fill levels (and the §VI-C fill penalty)
    see aggregated data exactly as they would see per-file data.
    """

    def __init__(
        self,
        fs: LustreFilesystem,
        *,
        name: str = "store0",
        spec: SegmentSpec | None = None,
    ) -> None:
        self.fs = fs
        self.name = name
        self.spec = spec or SegmentSpec()
        self.root = f"/.segments/{name}"
        self.segments: list[Segment] = []
        self.index: dict[str, Needle] = {}
        self.counters = _StoreCounters()
        self._open: Segment | None = None
        # (registry, writes, bytes, reads, deletes) — cached instruments,
        # revalidated on registry swap (the pattern Telemetry.counter's
        # contract invites: the same instance comes back every call).
        self._instruments = None

    def _tel_counters(self, telemetry):
        cached = self._instruments
        if cached is None or cached[0] is not telemetry:
            cached = self._instruments = (
                telemetry,
                telemetry.counter("metatier.needle_writes", self.name),
                telemetry.counter("metatier.needle_bytes", self.name),
                telemetry.counter("metatier.needle_reads", self.name),
                telemetry.counter("metatier.needle_deletes", self.name),
            )
        return cached

    # -- segment lifecycle -------------------------------------------------

    def _new_segment(self, now: float) -> Segment:
        index = len(self.segments)
        path = f"{self.root}/seg{index:06d}"
        if index == 0:
            self.fs.mkdir(self.root, now)
        self.fs.create_file(
            path, now,
            stripe_count=self.spec.stripe_count,
            stripe_size=self.spec.stripe_size,
            owner="metatier", project="system",
        )
        segment = Segment(index=index, path=path,
                          capacity=self.spec.segment_bytes,
                          last_write_at=now)
        self.segments.append(segment)
        self.counters.segment_creates += 1
        return segment

    def _writable(self, framed_bytes: int, now: float) -> Segment:
        segment = self._open
        if segment is None or not segment.fits(framed_bytes):
            if segment is not None:
                segment.sealed = True
            segment = self._new_segment(now)
            self._open = segment
        return segment

    # -- data path ---------------------------------------------------------

    def write(self, key: str, length: int, now: float) -> Needle:
        """Append one needle; returns its index record.

        Costs: an in-memory index insert, an OST append of the framed
        bytes (amortized one MDS ``create`` per segment), **zero**
        per-needle MDS operations — the Haystack bargain.
        """
        if length <= 0:
            raise ValueError("needle length must be positive")
        if length > self.spec.max_needle_bytes:
            raise ValueError(
                f"needle of {length} bytes exceeds max_needle_bytes "
                f"{self.spec.max_needle_bytes}; large files belong on the "
                f"per-file path")
        if key in self.index:
            raise KeyError(f"needle exists: {key}")
        framed = NEEDLE_HEADER_BYTES + length
        segment = self._writable(framed, now)
        needle = Needle(key=key, segment_index=segment.index,
                        offset=segment.write_offset, length=length,
                        written_at=now)
        self.fs.append(segment.path, framed, now)
        segment.write_offset += framed
        segment.live_bytes += framed
        segment.n_live += 1
        segment.last_write_at = now
        self.index[key] = needle
        self.counters.writes += 1
        self.counters.bytes_written += framed
        telemetry = get_telemetry()
        if telemetry.enabled:
            cached = self._tel_counters(telemetry)
            cached[1].add(1.0)
            cached[2].add(float(framed))
        return needle

    def read(self, key: str, now: float) -> Needle:
        """One needle read: index lookup + a single OST seek.

        Charges the one OST holding the needle's offset (the "single
        random seek per photo" property); never touches the MDS.
        """
        needle = self.index.get(key)
        if needle is None:
            raise KeyError(f"no such needle: {key}")
        segment = self.segments[needle.segment_index]
        if not (segment.migrated or segment.retired):
            entry = self.fs.namespace.get(segment.path)
            layout = entry.layout
            assert layout is not None
            ost_index = layout.osts[
                (needle.offset // layout.stripe_size) % layout.stripe_count]
            self.fs.ost(ost_index).record_read(needle.framed_bytes)
        self.counters.reads += 1
        self.counters.bytes_read += needle.framed_bytes
        telemetry = get_telemetry()
        if telemetry.enabled:
            self._tel_counters(telemetry)[3].add(1.0)
        return needle

    def delete(self, key: str, now: float) -> Needle:
        """Tombstone one needle (no MDS traffic; space reclaimed by
        compaction)."""
        needle = self.index.pop(key, None)
        if needle is None:
            raise KeyError(f"no such needle: {key}")
        segment = self.segments[needle.segment_index]
        segment.live_bytes -= needle.framed_bytes
        segment.dead_bytes += needle.framed_bytes
        segment.n_live -= 1
        segment.n_dead += 1
        self.counters.deletes += 1
        telemetry = get_telemetry()
        if telemetry.enabled:
            self._tel_counters(telemetry)[4].add(1.0)
        return needle

    def __contains__(self, key: str) -> bool:
        return key in self.index

    def __len__(self) -> int:
        """Number of live needles."""
        return len(self.index)

    @property
    def live_bytes(self) -> int:
        """Framed bytes of all live needles."""
        return sum(s.live_bytes for s in self.segments)

    # -- compaction --------------------------------------------------------

    def compactable(self) -> list[Segment]:
        """Sealed, unmigrated segments past the dead-fraction threshold."""
        return [s for s in self.segments
                if s.sealed and not (s.migrated or s.retired)
                and s.dead_fraction >= self.spec.compact_threshold]

    def compact(self, now: float) -> CompactionReport:
        """Rewrite the live tail of every compactable segment.

        Live needles move to the open segment (OST appends); the old
        segment file is unlinked — one MDS ``unlink`` per *segment*,
        where the per-file baseline pays one per *file*.
        """
        victims = self.compactable()
        rewritten = 0
        bytes_rewritten = 0
        bytes_reclaimed = 0
        for segment in victims:
            # Live needles of this segment, in offset order (deterministic
            # regardless of index insertion history).
            movers = sorted(
                (n for n in self.index.values()
                 if n.segment_index == segment.index),
                key=lambda n: n.offset)
            for needle in movers:
                del self.index[needle.key]
                moved = self.write(needle.key, needle.length, now)
                # Preserve the original write time: compaction is a
                # physical move, not a logical touch, and the warm tier's
                # age clock must not reset.
                self.index[needle.key] = Needle(
                    key=moved.key, segment_index=moved.segment_index,
                    offset=moved.offset, length=moved.length,
                    written_at=needle.written_at)
                rewritten += 1
                bytes_rewritten += needle.framed_bytes
            bytes_reclaimed += segment.write_offset
            self.fs.unlink(segment.path)
            segment.live_bytes = 0
            segment.dead_bytes = 0
            segment.n_live = 0
            segment.n_dead = 0
            segment.retired = True  # no longer on hot OSTs
        if victims:
            self.counters.compactions += 1
            telemetry = get_telemetry()
            if telemetry.enabled:
                telemetry.counter(
                    "metatier.compactions", self.name).add(float(len(victims)))
        return CompactionReport(
            ran_at=now,
            segments_compacted=len(victims),
            needles_rewritten=rewritten,
            bytes_rewritten=bytes_rewritten,
            bytes_reclaimed=bytes_reclaimed,
        )
