"""repro.metatier — the small-file/metadata tier the paper stops short of.

§IV-C documents the single-MDS ceiling and answers it operationally
(multiple namespaces, purges, LustreDU).  This package builds the
architectural answer out of ideas proven at comparable scale:

* :mod:`repro.metatier.needles` — Haystack-style needle-in-segment
  aggregation: tiny files packed into large OST-striped segment files,
  an in-memory index, tombstone deletes, per-segment compaction;
* :mod:`repro.metatier.directory` — the Haystack Directory (logical-ID →
  segment mapping) and Cache (seeded hit-rate model);
* :mod:`repro.metatier.shards` — DNE-style namespace sharding across N
  MDTs with honest cross-shard rename/link costs;
* :mod:`repro.metatier.warmtier` — the f4-style erasure-coded warm tier
  (2.1x vs replication) with age-based migration on sim time;
* :mod:`repro.metatier.scenarios` — metadata-heavy workload generators
  (untar storms, training reads, purge/audit sweeps) and fault plans;
* :mod:`repro.metatier.study` — the paired study: per-file single-MDS
  baseline vs aggregated+sharded tier on one timeline and seed.
"""

from repro.metatier.directory import (
    DirectoryEntry,
    HaystackDirectory,
    NeedleCache,
)
from repro.metatier.needles import (
    CompactionReport,
    Needle,
    Segment,
    SegmentSpec,
    SegmentStore,
)
from repro.metatier.scenarios import (
    AggregatedTier,
    AuditSweep,
    MetaFault,
    MetaFaultPlan,
    PerFileTier,
    TinyFileSizes,
    TrainingReads,
    UntarStorm,
)
from repro.metatier.shards import ShardedFilesystem, ShardedNamespace, shard_key
from repro.metatier.study import (
    ArmResult,
    MetaStudyResult,
    MetaStudySpec,
    run_meta_study,
)
from repro.metatier.warmtier import (
    F4_EC,
    RAID6_REPLICATED,
    AgeMigrationPolicy,
    EncodingScheme,
    MigrationReport,
    WarmTier,
    tradeoff_rows,
)

__all__ = [
    "AgeMigrationPolicy",
    "AggregatedTier",
    "ArmResult",
    "AuditSweep",
    "CompactionReport",
    "DirectoryEntry",
    "EncodingScheme",
    "F4_EC",
    "HaystackDirectory",
    "MetaFault",
    "MetaFaultPlan",
    "MetaStudyResult",
    "MetaStudySpec",
    "MigrationReport",
    "Needle",
    "NeedleCache",
    "PerFileTier",
    "RAID6_REPLICATED",
    "Segment",
    "SegmentSpec",
    "SegmentStore",
    "ShardedFilesystem",
    "ShardedNamespace",
    "TinyFileSizes",
    "TrainingReads",
    "UntarStorm",
    "WarmTier",
    "run_meta_study",
    "shard_key",
    "tradeoff_rows",
]
