"""Metadata-heavy workload generators over a pluggable metadata tier.

The three workload classes that actually hurt a single MDS (§IV-C,
Lesson 19), each expressed as a DES process so both arms of the paired
study replay the *same* timeline:

* :class:`UntarStorm` — a user untars a source tree onto scratch: a
  burst of ``mkdir`` + tiny-file ``create`` with a fraction of build-temp
  files deleted right behind the extraction;
* :class:`TrainingReads` — an AI training job re-reads its dataset
  shards every epoch in a seeded-shuffled order;
* :class:`AuditSweep` — the periodic purge/audit walk over every logical
  inode (the 10^9-inode regime the paper's purge engine lives in),
  deleting entries past the age policy.

The workloads talk to a *tier* — :class:`PerFileTier` (every tiny file a
real namespace entry on one MDS: the baseline) or :class:`AggregatedTier`
(needles in segments + sharded residual namespace + warm migration) —
through the same verbs, so every difference in MDS busy time is
attributable to the tier, not the workload.

:class:`MetaFaultPlan` injects the two metadata-relevant fault classes
(MDS overload storms, OST fill) into either arm at scripted sim times.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.lustre.filesystem import LustreFilesystem
from repro.lustre.mds import OpMix
from repro.metatier.directory import HaystackDirectory, NeedleCache
from repro.metatier.needles import SegmentStore
from repro.metatier.shards import ShardedFilesystem
from repro.metatier.warmtier import AgeMigrationPolicy, WarmTier
from repro.obs.trace import get_tracer
from repro.sim.engine import Engine, ProcessGenerator
from repro.sim.rng import RngStreams
from repro.units import DAY, HOUR, KiB

__all__ = [
    "PerFileTier",
    "AggregatedTier",
    "TinyFileSizes",
    "UntarStorm",
    "TrainingReads",
    "AuditSweep",
    "AuditReport",
    "MetaFault",
    "MetaFaultPlan",
    "default_fault_plan",
]


class TinyFileSizes:
    """Seeded lognormal tiny-file sizes (source files, thumbnails, logs).

    The draw comes from the named substream ``metatier.sizes`` so both
    study arms, built from the same seed, see byte-identical files.
    """

    def __init__(self, mean_bytes: int = 32 * KiB, *, sigma: float = 1.0,
                 floor: int = 256, ceiling: int = 512 * KiB,
                 seed: int = 0) -> None:
        if not (0 < floor <= mean_bytes <= ceiling):
            raise ValueError("need 0 < floor <= mean_bytes <= ceiling")
        self._rng = RngStreams(seed).get("metatier.sizes")
        self._mu = math.log(mean_bytes)
        self._sigma = sigma
        self._floor = floor
        self._ceiling = ceiling

    def draw(self) -> int:
        """One file size in bytes, clipped to [floor, ceiling]."""
        raw = int(self._rng.lognormal(self._mu, self._sigma))
        return max(self._floor, min(self._ceiling, raw))


class PerFileTier:
    """The baseline: every tiny file is a real file on one MDS.

    ``create`` pays an MDS create, ``read`` pays the open-path getattr
    plus the OST reads, ``delete`` pays an unlink, and the audit walk
    stats every file — precisely the §IV-C traffic the aggregated tier
    exists to remove.
    """

    name = "per-file"

    def __init__(self, fs: LustreFilesystem) -> None:
        self.fs = fs
        self.logical_creates = 0
        self.logical_reads = 0
        self.logical_deletes = 0
        self.audit_examined = 0

    def mkdir(self, path: str, now: float) -> None:
        """Create one directory."""
        self.fs.mkdir(path, now)

    def create(self, path: str, size: int, now: float) -> None:
        """Create one tiny file (single-OST stripe, §VII best practice)."""
        self.fs.create_file(path, now, size=size, stripe_count=1)
        self.logical_creates += 1

    def read(self, path: str, now: float) -> None:
        """Read one file: the open-path getattr + the data."""
        self.fs.stat(path)
        self.fs.read_file(path, now)
        self.logical_reads += 1

    def delete(self, path: str, now: float) -> None:
        """Unlink one file."""
        self.fs.unlink(path)
        self.logical_deletes += 1

    def audit(self, n_entries: int, now: float) -> None:
        """Examine ``n_entries`` inodes: one stat each on the single MDS
        (batched into one service demand; the cost is identical)."""
        self.fs.mds.service_time(OpMix(stats=n_entries, mean_stripe_count=1))
        self.audit_examined += n_entries

    def overload(self, shard: int, magnitude: float) -> None:
        """An MDS-overload impulse (a recursive ``du`` storm)."""
        self.fs.mds.service_time(
            OpMix(stats=int(50_000 * magnitude), mean_stripe_count=4.0))

    def housekeep(self, now: float) -> None:
        """Per-tick background work: none on the baseline."""

    @property
    def osts(self) -> list:
        """The backing OST pool (fault-plan target surface)."""
        return self.fs.osts

    def metadata_busy_makespan(self) -> float:
        """Seconds the metadata service was busy, as a makespan."""
        return self.fs.mds.busy_seconds

    def metadata_busy_total(self) -> float:
        """Total MDS-seconds across all metadata servers."""
        return self.fs.mds.busy_seconds

    def metadata_ops(self) -> int:
        """Physical metadata operations served."""
        return self.fs.mds.ops_served

    @property
    def fill_fraction(self) -> float:
        """Backing-pool fill level."""
        return self.fs.fill_fraction


class AggregatedTier:
    """Needles + sharded residual namespace + warm migration.

    Tiny files become needles in segment files (zero per-file MDS ops);
    the residual metadata — directory skeleton, segment files, audits —
    lands on a DNE-sharded namespace; sealed-and-cold segments migrate to
    the f4-style warm tier on a sim-time age policy.
    """

    name = "aggregated"

    def __init__(
        self,
        fs: ShardedFilesystem,
        stores: list[SegmentStore],
        *,
        cache_hit_rate: float = 0.8,
        migrate_age: float | None = None,
        warm: WarmTier | None = None,
        seed: int = 0,
    ) -> None:
        self.fs = fs
        self.directory = HaystackDirectory(stores, seed=seed)
        self.cache = NeedleCache(cache_hit_rate, seed=seed)
        self.warm = warm or WarmTier()
        self.migration = (AgeMigrationPolicy(migrate_age)
                          if migrate_age is not None else None)
        self.logical_creates = 0
        self.logical_reads = 0
        self.logical_deletes = 0
        self.audit_examined = 0

    def mkdir(self, path: str, now: float) -> None:
        """Create one directory in the sharded skeleton."""
        self.fs.mkdir(path, now)

    def create(self, path: str, size: int, now: float) -> None:
        """Write one needle; the path becomes a logical ID, not an inode."""
        store = self.directory.store_for_write()
        needle = store.write(path, size, now)
        self.directory.record(path, store, needle)
        self.logical_creates += 1

    def read(self, path: str, now: float) -> None:
        """Read one needle: cache hit skips the store entirely; a miss is
        one index lookup + one OST seek.  Zero MDS ops either way."""
        entry = self.directory.locate(path)
        if not self.cache.lookup():
            self.directory.store(entry.store).read(path, now)
        self.logical_reads += 1

    def delete(self, path: str, now: float) -> None:
        """Tombstone one needle (space comes back at compaction)."""
        entry = self.directory.forget(path)
        self.directory.store(entry.store).delete(path, now)
        self.logical_deletes += 1

    def audit(self, n_entries: int, now: float) -> None:
        """Examine ``n_entries`` logical inodes: an in-memory index scan,
        plus one skeleton readdir per shard (the only MDS traffic)."""
        n_dirs = self.fs.namespace.n_dirs
        for server in self.fs.namespace.servers:
            server.service_time(OpMix(readdir_entries=n_dirs))
        self.audit_examined += n_entries

    def overload(self, shard: int, magnitude: float) -> None:
        """An MDS-overload impulse against one shard's MDT."""
        server = self.fs.namespace.servers[shard % self.fs.namespace.n_shards]
        server.service_time(
            OpMix(stats=int(50_000 * magnitude), mean_stripe_count=4.0))

    def housekeep(self, now: float) -> None:
        """Per-tick background work: compaction, then warm migration."""
        for store in self.directory.stores:
            store.compact(now)
        if self.migration is not None:
            for store in self.directory.stores:
                self.migration.sweep(store, self.warm, now)

    @property
    def osts(self) -> list:
        """The backing OST pool (fault-plan target surface)."""
        return self.fs.osts

    def metadata_busy_makespan(self) -> float:
        """Busiest shard's MDS busy time — shards serve in parallel."""
        return self.fs.namespace.parallel_busy_seconds()

    def metadata_busy_total(self) -> float:
        """Total MDS-seconds summed over every shard."""
        return sum(self.fs.namespace.busy_seconds())

    def metadata_ops(self) -> int:
        """Physical metadata operations served across the shards."""
        return self.fs.namespace.total_ops()

    @property
    def fill_fraction(self) -> float:
        """Backing-pool fill level (hot tier)."""
        return self.fs.fill_fraction


@dataclass
class UntarStorm:
    """A tar extraction onto scratch: dirs + a burst of tiny creates.

    ``temp_fraction`` of the files are build temporaries deleted at the
    end of each batch — the churn that gives segment compaction something
    to reclaim.  Files land ``files_per_dir`` to a directory under
    ``root``; the manifest of surviving ``(path, written_at)`` pairs
    accumulates in :attr:`manifest` for downstream workloads.
    """

    root: str = "/scratch/untar"
    n_files: int = 10_000
    files_per_dir: int = 1_000
    temp_fraction: float = 0.25
    batch: int = 1_000
    duration: float = 1 * HOUR
    sizes: TinyFileSizes | None = None
    manifest: list[tuple[str, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.n_files <= 0 or self.files_per_dir <= 0 or self.batch <= 0:
            raise ValueError("n_files, files_per_dir, batch must be positive")
        if not (0.0 <= self.temp_fraction < 1.0):
            raise ValueError("temp_fraction must be in [0, 1)")
        if self.duration <= 0:
            raise ValueError("duration must be positive")

    def install(self, engine: Engine, tier) -> None:
        """Schedule the storm on ``engine`` against ``tier``."""
        engine.process(self._run(engine, tier), name="untar-storm")

    def _run(self, engine: Engine, tier) -> ProcessGenerator:
        sizes = self.sizes or TinyFileSizes()
        span = get_tracer().open("meta:untar", "metatier",
                                 root=self.root, files=self.n_files)
        n_batches = max(1, (self.n_files + self.batch - 1) // self.batch)
        dt = self.duration / n_batches
        made_dirs = -1
        written = 0
        while written < self.n_files:
            count = min(self.batch, self.n_files - written)
            made_dirs = self._extract_batch(tier, sizes, written, count,
                                            made_dirs, engine.now)
            written += count
            yield dt
        get_tracer().end(span, files=written)

    def _extract_batch(self, tier, sizes: TinyFileSizes, start: int,
                       count: int, made_dirs: int, now: float) -> int:
        """Extract one batch of files at sim time ``now``; returns the
        highest directory index created so far."""
        temps = []
        for i in range(start, start + count):
            d = i // self.files_per_dir
            if d > made_dirs:
                tier.mkdir(f"{self.root}/d{d:05d}", now)
                made_dirs = d
            path = f"{self.root}/d{d:05d}/f{i:08d}"
            tier.create(path, sizes.draw(), now)
            # every 1/temp_fraction-th file is a build temporary
            if (self.temp_fraction
                    and i % max(1, round(1 / self.temp_fraction)) == 0):
                temps.append(path)
            else:
                self.manifest.append((path, now))
        for path in temps:
            tier.delete(path, now)
        return made_dirs


@dataclass
class TrainingReads:
    """An AI training job: every epoch re-reads a sample of the shards.

    The per-epoch read order is a seeded permutation (substream
    ``metatier.reads``) of the storm's manifest — the random-access
    pattern that makes small-file read latency the step-time floor.
    """

    manifest: list[tuple[str, float]]
    n_epochs: int = 2
    sample_fraction: float = 0.2
    batch: int = 1_000
    epoch_duration: float = 1 * HOUR
    start: float = 2 * HOUR
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_epochs < 0:
            raise ValueError("n_epochs must be non-negative")
        if not (0.0 < self.sample_fraction <= 1.0):
            raise ValueError("sample_fraction must be in (0, 1]")

    def install(self, engine: Engine, tier) -> None:
        """Schedule the training epochs on ``engine`` against ``tier``."""
        engine.process(self._run(engine, tier), name="training-reads")

    def _run(self, engine: Engine, tier) -> ProcessGenerator:
        rng = RngStreams(self.seed).get("metatier.reads")
        if self.start > engine.now:
            yield self.start - engine.now
        span = get_tracer().open("meta:training", "metatier",
                                 epochs=self.n_epochs)
        n_reads = 0
        for _epoch in range(self.n_epochs):
            n = len(self.manifest)
            take = max(1, int(n * self.sample_fraction)) if n else 0
            order = rng.permutation(n)[:take]
            n_batches = max(1, (take + self.batch - 1) // self.batch)
            dt = self.epoch_duration / n_batches
            for lo in range(0, take, self.batch):
                for j in order[lo:lo + self.batch]:
                    tier.read(self.manifest[int(j)][0], engine.now)
                    n_reads += 1
                yield dt
        get_tracer().end(span, reads=n_reads)


@dataclass(frozen=True)
class AuditReport:
    """One purge/audit pass over the logical namespace."""

    swept_at: float
    examined: int
    purged: int


@dataclass
class AuditSweep:
    """The periodic purge/audit walk (the 10^9-inode sweep, scaled down).

    Every ``interval`` sim seconds the sweep examines every manifest
    entry (charging the tier's audit cost) and deletes entries whose
    write time is older than ``max_age`` — the center-wide purge policy
    of §IV-C, applied to the tiny-file tier.
    """

    manifest: list[tuple[str, float]]
    max_age: float = 1 * DAY
    interval: float = 6 * HOUR
    reports: list[AuditReport] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.max_age <= 0 or self.interval <= 0:
            raise ValueError("max_age and interval must be positive")

    def install(self, engine: Engine, tier) -> None:
        """Schedule the periodic sweep on ``engine`` against ``tier``."""
        engine.every(self.interval, lambda: self._sweep(engine, tier),
                     name="audit-sweep")

    def _sweep(self, engine: Engine, tier) -> None:
        now = engine.now
        examined = len(self.manifest)
        tier.audit(examined, now)
        survivors = []
        purged = 0
        for path, written_at in self.manifest:
            if now - written_at > self.max_age:
                tier.delete(path, now)
                purged += 1
            else:
                survivors.append((path, written_at))
        self.manifest[:] = survivors
        self.reports.append(
            AuditReport(swept_at=now, examined=examined, purged=purged))
        tier.housekeep(now)


@dataclass(frozen=True)
class MetaFault:
    """One scripted fault: ``kind`` is ``mds-overload`` or ``ost-fill``."""

    time: float
    kind: str
    target: int = 0
    magnitude: float = 1.0
    repair_after: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("mds-overload", "ost-fill"):
            raise ValueError(f"unknown fault kind: {self.kind!r}")
        if self.time < 0:
            raise ValueError("fault time must be non-negative")


@dataclass
class MetaFaultPlan:
    """Scripted metadata-path faults, replayed identically on both arms."""

    faults: list[MetaFault] = field(default_factory=list)

    def install(self, engine: Engine, tier) -> None:
        """Schedule every fault (and its repair) on ``engine``."""
        for fault in self.faults:
            engine.call_at(fault.time, self._apply(engine, tier, fault))

    def _apply(self, engine: Engine, tier, fault: MetaFault):
        def _fire() -> None:
            if fault.kind == "mds-overload":
                tier.overload(fault.target, fault.magnitude)
                return
            ost = tier.osts[fault.target % len(tier.osts)]
            target_bytes = int(min(1.0, fault.magnitude)
                               * ost.spec.capacity_bytes)
            nbytes = max(0, target_bytes - ost.used_bytes)
            if nbytes:
                ost.allocate(nbytes)
            if fault.repair_after is not None and nbytes:
                engine.call_after(fault.repair_after,
                                  lambda: ost.release(nbytes))
        return _fire


def default_fault_plan() -> MetaFaultPlan:
    """The study's standing plan: one MDS storm, one OST fill + drain."""
    return MetaFaultPlan(faults=[
        MetaFault(time=10_000.0, kind="mds-overload", target=0,
                  magnitude=1.0),
        MetaFault(time=20_000.0, kind="ost-fill", target=0, magnitude=0.9,
                  repair_after=20_000.0),
    ])
