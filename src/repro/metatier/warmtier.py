"""f4-style warm tier: erasure-coded cold(er) segments vs replication.

f4 (OSDI'14) made one observation pay for 65 PB of hardware: BLOBs cool
fast, and warm data does not need hot-tier redundancy.  The same argument
applies to the simulated scratch tier — checkpoint shards and untarred
source trees stop being read within days — so the aggregated tier gains
an age-based migration: sealed segments whose newest needle is older
than a threshold move from the hot (RAID-6, replicated) tier to a warm
erasure-coded tier at a 2.1x effective storage multiplier, releasing hot
OST capacity.

The tradeoff is quantified, not assumed: :func:`tradeoff_rows` compares
effective bytes, read bandwidth, and rebuild exposure per scheme, and the
migration report carries the raw-byte savings of each sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.metatier.needles import SegmentStore
from repro.units import GB, HOUR, TB

__all__ = [
    "EncodingScheme",
    "RAID6_REPLICATED",
    "F4_EC",
    "WarmTier",
    "AgeMigrationPolicy",
    "MigrationReport",
    "tradeoff_rows",
]


@dataclass(frozen=True)
class EncodingScheme:
    """One redundancy scheme's cost/bandwidth/rebuild profile.

    ``storage_multiplier`` is raw bytes per logical byte.  ``read_factor``
    scales delivered single-stream read bandwidth against a plain
    replicated read (erasure-coded reads may touch several fragment
    holders).  ``rebuild_read_factor`` is bytes read per byte rebuilt
    after a device loss — the number that turns a cheap-at-rest scheme
    into an expensive-in-crisis one.
    """

    name: str
    storage_multiplier: float
    read_factor: float
    rebuild_read_factor: float

    def __post_init__(self) -> None:
        if self.storage_multiplier < 1.0:
            raise ValueError("storage_multiplier must be >= 1")
        if not (0 < self.read_factor <= 1.0):
            raise ValueError("read_factor must be in (0, 1]")
        if self.rebuild_read_factor < 1.0:
            raise ValueError("rebuild_read_factor must be >= 1")

    def raw_bytes(self, logical_bytes: int) -> int:
        """Raw capacity consumed by ``logical_bytes`` of data."""
        return int(logical_bytes * self.storage_multiplier)

    def rebuild_seconds(self, lost_bytes: int, rebuild_bandwidth: float) -> float:
        """Time to re-derive ``lost_bytes`` at ``rebuild_bandwidth``."""
        if rebuild_bandwidth <= 0:
            raise ValueError("rebuild_bandwidth must be positive")
        return lost_bytes * self.rebuild_read_factor / rebuild_bandwidth


#: the hot-tier redundancy the segments start on: RAID-6 (8+2) plus a
#: second full copy for availability during controller failover — 2.5x
#: raw per logical byte, full-rate reads, and a parity-pair rebuild that
#: reads 8 surviving members per rebuilt stripe.
RAID6_REPLICATED = EncodingScheme(
    name="raid6+replica", storage_multiplier=2.5,
    read_factor=1.0, rebuild_read_factor=8.0)

#: f4's warm encoding: (10, 4) Reed-Solomon within a site times an XOR
#: across sites — the published 2.1x effective multiplier; reads touch a
#: fragment holder (slightly below full rate), rebuilds read 10 of 14.
F4_EC = EncodingScheme(
    name="f4-ec(10,4)", storage_multiplier=2.1,
    read_factor=0.8, rebuild_read_factor=10.0)


@dataclass(frozen=True)
class MigrationReport:
    """Outcome of one age-based migration sweep."""

    swept_at: float
    segments_migrated: int
    needles_migrated: int
    logical_bytes: int
    hot_raw_bytes_released: int
    warm_raw_bytes_added: int

    @property
    def raw_bytes_saved(self) -> int:
        """Net raw capacity the sweep freed (hot released − warm added)."""
        return self.hot_raw_bytes_released - self.warm_raw_bytes_added


@dataclass
class WarmTier:
    """The warm pool: migrated segments accounted under one scheme."""

    scheme: EncodingScheme = F4_EC
    capacity_bytes: int = 10 * TB
    logical_bytes: int = 0
    n_segments: int = 0
    n_needles: int = 0
    reads_served: int = 0
    bytes_read: int = 0
    #: single-stream read bandwidth of the warm pool's disks
    read_bandwidth: float = 1.0 * GB

    @property
    def raw_bytes(self) -> int:
        """Raw capacity currently consumed."""
        return self.scheme.raw_bytes(self.logical_bytes)

    @property
    def fill_fraction(self) -> float:
        """Raw fill level of the warm pool."""
        return self.raw_bytes / self.capacity_bytes

    def admit(self, logical_bytes: int, n_needles: int) -> int:
        """Account one migrated segment; returns raw bytes added."""
        before = self.raw_bytes
        self.logical_bytes += logical_bytes
        self.n_segments += 1
        self.n_needles += n_needles
        return self.raw_bytes - before

    def read_seconds(self, nbytes: int) -> float:
        """Service time of one warm read (EC read-factor applied)."""
        self.reads_served += 1
        self.bytes_read += nbytes
        return nbytes / (self.read_bandwidth * self.scheme.read_factor)

    def rebuild_seconds(self, lost_bytes: int) -> float:
        """Rebuild exposure after losing ``lost_bytes`` of raw capacity."""
        return self.scheme.rebuild_seconds(lost_bytes, self.read_bandwidth)


@dataclass
class AgeMigrationPolicy:
    """Move sealed segments whose newest needle has gone cold.

    ``age_threshold`` plays the role of f4's one-month boundary; the
    sweep is driven by sim time (the purge engine's idiom), typically
    from an :class:`~repro.sim.engine.Engine.every` tick.
    """

    age_threshold: float
    reports: list[MigrationReport] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.age_threshold <= 0:
            raise ValueError("age_threshold must be positive")

    def eligible(self, store: SegmentStore, now: float) -> list:
        """Sealed, live, unmigrated segments cold for the threshold."""
        return [s for s in store.segments
                if s.sealed and not (s.migrated or s.retired)
                and s.n_live > 0
                and (now - s.last_write_at) > self.age_threshold]

    def sweep(self, store: SegmentStore, warm: WarmTier,
              now: float) -> MigrationReport:
        """One migration pass: unlink eligible segments from the hot
        tier, account them in the warm pool."""
        segments = self.eligible(store, now)
        logical = 0
        needles = 0
        hot_released = 0
        warm_added = 0
        for segment in segments:
            logical += segment.live_bytes
            needles += segment.n_live
            # The hot tier held the segment file's written extent under
            # RAID6_REPLICATED redundancy; unlink releases the extent,
            # and the replica accounting rides the multiplier.
            hot_released += RAID6_REPLICATED.raw_bytes(segment.write_offset)
            warm_added += warm.admit(segment.live_bytes, segment.n_live)
            store.fs.unlink(segment.path)
            segment.migrated = True
        report = MigrationReport(
            swept_at=now,
            segments_migrated=len(segments),
            needles_migrated=needles,
            logical_bytes=logical,
            hot_raw_bytes_released=hot_released,
            warm_raw_bytes_added=warm_added,
        )
        self.reports.append(report)
        return report


def tradeoff_rows(logical_bytes: int = 100 * TB,
                  rebuild_bandwidth: float = 1.0 * GB,
                  lost_bytes: int = 4 * TB) -> list[tuple[str, str, str, str]]:
    """The A18 cost/bandwidth/rebuild comparison table.

    One row per scheme: raw bytes for ``logical_bytes`` of data, relative
    read bandwidth, and rebuild time after losing ``lost_bytes``.
    """
    rows = []
    for scheme in (RAID6_REPLICATED, F4_EC):
        rows.append((
            scheme.name,
            f"{scheme.raw_bytes(logical_bytes) / TB:,.0f} TB raw",
            f"{scheme.read_factor:.0%} read bw",
            f"{scheme.rebuild_seconds(lost_bytes, rebuild_bandwidth) / HOUR:,.1f} h rebuild",
        ))
    return rows
