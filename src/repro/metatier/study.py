"""The metatier headline experiment: per-file baseline vs aggregated tier.

:func:`run_meta_study` replays the *same* metadata-heavy day — an untar
storm, AI-training shard reads, periodic purge/audit sweeps, an MDS
overload and an OST fill — against two tiers built from the same seed:

* **per-file** — every tiny file is a real namespace entry on a single
  MDS (Spider's §IV-C reality);
* **aggregated** — tiny files are needles in OST-striped segments, the
  residual namespace is DNE-sharded over N MDTs, and cold segments
  migrate to the f4-style warm tier.

Workloads, file sizes, read orders, and fault times are identical across
arms, so the difference in metadata-service busy time is attributable to
the tier design alone.  The headline metric is logical metadata
operations per second of metadata-service makespan; the acceptance bar
(and the test suite's pin) is a ≥10x gain for the aggregated arm.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lustre.filesystem import LustreFilesystem
from repro.lustre.ost import Ost, OstSpec
from repro.metatier.needles import SegmentSpec, SegmentStore
from repro.metatier.scenarios import (
    AggregatedTier,
    AuditSweep,
    MetaFault,
    MetaFaultPlan,
    PerFileTier,
    TinyFileSizes,
    TrainingReads,
    UntarStorm,
)
from repro.metatier.shards import ShardedFilesystem
from repro.obs.trace import get_tracer
from repro.sim.engine import Engine
from repro.units import DAY, HOUR, KiB, MiB, TB

__all__ = ["MetaStudySpec", "ArmResult", "MetaStudyResult", "run_meta_study"]


@dataclass(frozen=True)
class MetaStudySpec:
    """Every knob of the paired study, in one seeded bundle."""

    n_files: int = 20_000
    seed: int = 0
    n_shards: int = 4
    n_osts: int = 8
    ost_capacity: int = 4 * TB
    n_stores: int = 2
    segment_bytes: int = 64 * MiB
    compact_threshold: float = 0.25
    cache_hit_rate: float = 0.8
    mean_file_bytes: int = 32 * KiB
    files_per_dir: int = 1_000
    temp_fraction: float = 0.25
    n_epochs: int = 2
    read_fraction: float = 0.2
    purge_age: float = 1 * DAY
    audit_interval: float = 6 * HOUR
    migrate_age: float = 12 * HOUR
    horizon: float = 2 * DAY
    with_faults: bool = True

    def __post_init__(self) -> None:
        if self.n_files < 1:
            raise ValueError("n_files must be positive")
        if self.n_shards < 1 or self.n_osts < 1 or self.n_stores < 1:
            raise ValueError("n_shards, n_osts, n_stores must be positive")


@dataclass(frozen=True)
class ArmResult:
    """One arm of the study, reduced to comparable scalars."""

    name: str
    n_creates: int
    n_reads: int
    n_deletes: int
    audit_examined: int
    n_purged: int
    mds_busy_makespan: float
    mds_busy_total: float
    mds_ops: int
    fill_fraction: float
    #: aggregated-arm extras (None on the per-file baseline)
    n_segments: int | None = None
    n_segments_migrated: int | None = None
    n_compaction_passes: int | None = None
    observed_cache_hit_rate: float | None = None
    directory_bytes: int | None = None
    warm_logical_bytes: int | None = None
    shard_balance: float | None = None

    @property
    def logical_ops(self) -> int:
        """Logical metadata operations the workload issued."""
        return (self.n_creates + self.n_reads + self.n_deletes
                + self.audit_examined)

    @property
    def ops_per_mds_second(self) -> float:
        """The headline: logical ops per second of metadata makespan."""
        if self.mds_busy_makespan <= 0:
            return float("inf")
        return self.logical_ops / self.mds_busy_makespan

    def rows(self) -> list[tuple[str, str]]:
        """Key/value rows for the CLI report."""
        rows = [
            ("logical ops (create/read/delete/audit)",
             f"{self.n_creates:,} / {self.n_reads:,} / "
             f"{self.n_deletes:,} / {self.audit_examined:,}"),
            ("files purged", f"{self.n_purged:,}"),
            ("MDS busy (makespan)", f"{self.mds_busy_makespan:,.1f} s"),
            ("MDS ops served", f"{self.mds_ops:,}"),
            ("throughput", f"{self.ops_per_mds_second:,.0f} ops/MDS-s"),
            ("hot-pool fill", f"{self.fill_fraction:.2%}"),
        ]
        if self.n_segments is not None:
            rows.append(("segments (migrated)",
                         f"{self.n_segments:,} ({self.n_segments_migrated:,})"))
            rows.append(("compaction passes",
                         f"{self.n_compaction_passes:,}"))
            rows.append(("cache hit rate",
                         f"{self.observed_cache_hit_rate:.1%}"))
            rows.append(("directory RAM",
                         f"{(self.directory_bytes or 0) / MiB:,.1f} MiB"))
            rows.append(("warm tier",
                         f"{(self.warm_logical_bytes or 0) / MiB:,.0f} MiB logical"))
            rows.append(("shard balance (Jain)",
                         f"{self.shard_balance:.3f}"))
        return rows


@dataclass(frozen=True)
class MetaStudyResult:
    """Per-file baseline vs aggregated tier, one seed, one timeline."""

    spec: MetaStudySpec
    baseline: ArmResult
    aggregated: ArmResult

    @property
    def throughput_gain(self) -> float:
        """Aggregated over baseline logical-ops-per-MDS-second."""
        base = self.baseline.ops_per_mds_second
        if base <= 0:
            return float("inf")
        return self.aggregated.ops_per_mds_second / base

    @property
    def mds_seconds_removed(self) -> float:
        """Metadata makespan seconds the aggregated tier eliminated."""
        return (self.baseline.mds_busy_makespan
                - self.aggregated.mds_busy_makespan)

    def rows(self) -> list[tuple[str, str, str]]:
        """Comparison rows: metric, baseline, aggregated."""
        arms = (self.baseline, self.aggregated)
        return [
            ("MDS busy (makespan)",
             *(f"{a.mds_busy_makespan:,.1f} s" for a in arms)),
            ("MDS ops served", *(f"{a.mds_ops:,}" for a in arms)),
            ("throughput",
             *(f"{a.ops_per_mds_second:,.0f} ops/MDS-s" for a in arms)),
            ("hot-pool fill", *(f"{a.fill_fraction:.2%}" for a in arms)),
        ]


def _make_osts(spec: MetaStudySpec) -> list[Ost]:
    ost_spec = OstSpec(capacity_bytes=spec.ost_capacity)
    return [Ost(i, ost_spec, oss_name=f"oss{i // 2}")
            for i in range(spec.n_osts)]


def _fault_plan(spec: MetaStudySpec) -> MetaFaultPlan:
    return MetaFaultPlan(faults=[
        MetaFault(time=10_000.0, kind="mds-overload", target=0,
                  magnitude=1.0),
        MetaFault(time=20_000.0, kind="ost-fill", target=0, magnitude=0.9,
                  repair_after=20_000.0),
    ])


def _run_arm(tier, spec: MetaStudySpec) -> tuple[int, "AuditSweep"]:
    """Replay the standard timeline against ``tier``; returns the purge
    total and the audit sweep (for report access)."""
    engine = Engine()
    storm = UntarStorm(
        n_files=spec.n_files,
        files_per_dir=spec.files_per_dir,
        temp_fraction=spec.temp_fraction,
        duration=1 * HOUR,
        sizes=TinyFileSizes(spec.mean_file_bytes, seed=spec.seed),
    )
    storm.install(engine, tier)
    reads = TrainingReads(
        storm.manifest,
        n_epochs=spec.n_epochs,
        sample_fraction=spec.read_fraction,
        epoch_duration=1 * HOUR,
        start=2 * HOUR,
        seed=spec.seed,
    )
    reads.install(engine, tier)
    audit = AuditSweep(storm.manifest, max_age=spec.purge_age,
                       interval=spec.audit_interval)
    audit.install(engine, tier)
    if spec.with_faults:
        _fault_plan(spec).install(engine, tier)
    with get_tracer().span(f"meta:arm:{tier.name}", "metatier",
                           files=spec.n_files):
        engine.run(until=spec.horizon)
    purged = sum(r.purged for r in audit.reports)
    return purged, audit


def run_meta_study(spec: MetaStudySpec | None = None) -> MetaStudyResult:
    """Run both arms on the shared timeline and seed.

    Arms are built and run sequentially (each mutates its own file
    system), so peak memory is one arm's namespace, not two.
    """
    spec = spec or MetaStudySpec()

    # -- arm 1: per-file on a single MDS ----------------------------------
    base_fs = LustreFilesystem("meta-base", _make_osts(spec),
                               default_stripe_count=1)
    base_tier = PerFileTier(base_fs)
    base_purged, _ = _run_arm(base_tier, spec)
    baseline = ArmResult(
        name=base_tier.name,
        n_creates=base_tier.logical_creates,
        n_reads=base_tier.logical_reads,
        n_deletes=base_tier.logical_deletes,
        audit_examined=base_tier.audit_examined,
        n_purged=base_purged,
        mds_busy_makespan=base_tier.metadata_busy_makespan(),
        mds_busy_total=base_tier.metadata_busy_total(),
        mds_ops=base_tier.metadata_ops(),
        fill_fraction=base_tier.fill_fraction,
    )

    # -- arm 2: aggregated needles + sharded residual namespace -----------
    agg_fs = ShardedFilesystem("meta-agg", _make_osts(spec),
                               n_shards=spec.n_shards,
                               default_stripe_count=1)
    seg_spec = SegmentSpec(segment_bytes=spec.segment_bytes,
                           compact_threshold=spec.compact_threshold)
    stores = [SegmentStore(agg_fs, name=f"store{i}", spec=seg_spec)
              for i in range(spec.n_stores)]
    agg_tier = AggregatedTier(
        agg_fs, stores,
        cache_hit_rate=spec.cache_hit_rate,
        migrate_age=spec.migrate_age,
        seed=spec.seed,
    )
    agg_purged, _ = _run_arm(agg_tier, spec)
    aggregated = ArmResult(
        name=agg_tier.name,
        n_creates=agg_tier.logical_creates,
        n_reads=agg_tier.logical_reads,
        n_deletes=agg_tier.logical_deletes,
        audit_examined=agg_tier.audit_examined,
        n_purged=agg_purged,
        mds_busy_makespan=agg_tier.metadata_busy_makespan(),
        mds_busy_total=agg_tier.metadata_busy_total(),
        mds_ops=agg_tier.metadata_ops(),
        fill_fraction=agg_tier.fill_fraction,
        n_segments=sum(len(s.segments) for s in stores),
        n_segments_migrated=sum(
            1 for s in stores for seg in s.segments if seg.migrated),
        n_compaction_passes=sum(s.counters.compactions for s in stores),
        observed_cache_hit_rate=agg_tier.cache.observed_hit_rate,
        directory_bytes=agg_tier.directory.memory_bytes(),
        warm_logical_bytes=agg_tier.warm.logical_bytes,
        shard_balance=agg_fs.namespace.balance(),
    )

    return MetaStudyResult(spec=spec, baseline=baseline,
                           aggregated=aggregated)
