"""Capacity planning and namespace balancing (Lesson 10, §IV-C).

"OLCF developed a model that classifies projects based on their capacity
and bandwidth requirements.  The projects were then distributed among the
namespaces.  This model allowed the OLCF to manage the capacity and
bandwidth more evenly across the namespaces."

:class:`NamespacePlanner` implements that model: projects are classified
into demand tiers on both axes and assigned to namespaces by a greedy
two-dimensional balance heuristic (largest demand first, onto the
least-loaded namespace, where load is the max of the normalized capacity
and bandwidth fill).  The planner also evaluates Lesson 10's headroom rule
— keep expected fill below the 70% degradation knee, which implies
"capacity targets 30% or more above aggregate user workload estimates".
"""

from __future__ import annotations

from dataclasses import dataclass, field


from repro.units import GB, PB, TB

__all__ = ["Project", "NamespaceLoad", "PlanReport", "NamespacePlanner"]


@dataclass(frozen=True)
class Project:
    """One allocated science project's storage demands."""

    name: str
    capacity_bytes: int
    bandwidth: float  # sustained bytes/s during campaigns

    def __post_init__(self) -> None:
        if self.capacity_bytes < 0 or self.bandwidth < 0:
            raise ValueError("demands must be non-negative")

    def tier(self, capacity_edges: tuple[int, ...] = (100 * TB, PB),
             bw_edges: tuple[float, ...] = (10 * GB, 50 * GB)) -> str:
        """The classification of §IV-C: S/M/L on each axis."""
        cap = sum(self.capacity_bytes >= e for e in capacity_edges)
        bw = sum(self.bandwidth >= e for e in bw_edges)
        return f"cap{'SML'[cap]}-bw{'SML'[bw]}"


@dataclass
class NamespaceLoad:
    """Running totals for one namespace during planning."""

    name: str
    capacity_limit: int
    bandwidth_limit: float
    capacity_used: int = 0
    bandwidth_used: float = 0.0
    projects: list[str] = field(default_factory=list)

    @property
    def capacity_fill(self) -> float:
        return self.capacity_used / self.capacity_limit

    @property
    def bandwidth_fill(self) -> float:
        return self.bandwidth_used / self.bandwidth_limit

    @property
    def load(self) -> float:
        """The balance objective: the tighter of the two fills."""
        return max(self.capacity_fill, self.bandwidth_fill)


@dataclass(frozen=True)
class PlanReport:
    """The planner's verdict: project placements and the resulting balance."""

    namespaces: tuple[NamespaceLoad, ...]

    @property
    def capacity_imbalance(self) -> float:
        fills = [ns.capacity_fill for ns in self.namespaces]
        return max(fills) - min(fills)

    @property
    def bandwidth_imbalance(self) -> float:
        fills = [ns.bandwidth_fill for ns in self.namespaces]
        return max(fills) - min(fills)

    @property
    def max_capacity_fill(self) -> float:
        return max(ns.capacity_fill for ns in self.namespaces)

    def namespace_of(self, project: str) -> str:
        for ns in self.namespaces:
            if project in ns.projects:
                return ns.name
        raise KeyError(project)


class NamespacePlanner:
    """Distribute projects across namespaces, two-axis balanced."""

    #: the fill level past which Lustre degrades severely (§IV-C)
    DEGRADATION_KNEE = 0.70

    def __init__(self, namespaces: dict[str, tuple[int, float]]) -> None:
        """``namespaces`` maps name -> (capacity_bytes, bandwidth)."""
        if not namespaces:
            raise ValueError("need at least one namespace")
        self._defs = dict(namespaces)

    def plan(self, projects: list[Project]) -> PlanReport:
        """Greedy largest-first assignment, two-axis balanced.

        Each project goes to the namespace minimizing the sum of squared
        fills *after* the assignment — the convex objective balances both
        the capacity and bandwidth axes instead of only the binding one.
        """
        loads = [
            NamespaceLoad(name=n, capacity_limit=cap, bandwidth_limit=bw)
            for n, (cap, bw) in self._defs.items()
        ]
        # Normalize each project's dominant demand for the ordering.
        def dominant(p: Project) -> float:
            cap_frac = max(p.capacity_bytes / ns.capacity_limit for ns in loads)
            bw_frac = max(p.bandwidth / ns.bandwidth_limit for ns in loads)
            return max(cap_frac, bw_frac)

        def cost_after(ns: NamespaceLoad, p: Project) -> float:
            cap_fill = (ns.capacity_used + p.capacity_bytes) / ns.capacity_limit
            bw_fill = (ns.bandwidth_used + p.bandwidth) / ns.bandwidth_limit
            return cap_fill ** 2 + bw_fill ** 2

        for project in sorted(projects, key=dominant, reverse=True):
            target = min(loads, key=lambda ns: cost_after(ns, project))
            target.capacity_used += project.capacity_bytes
            target.bandwidth_used += project.bandwidth
            target.projects.append(project.name)
        return PlanReport(namespaces=tuple(loads))

    def required_capacity(self, projects: list[Project],
                          *, headroom: float = 0.30) -> int:
        """Lesson 10's acquisition rule: total demand plus ≥30% headroom so
        operations stay left of the degradation knee."""
        if headroom < 0:
            raise ValueError("headroom must be non-negative")
        demand = sum(p.capacity_bytes for p in projects)
        return int(demand * (1.0 + headroom))

    def stays_below_knee(self, report: PlanReport) -> bool:
        return report.max_capacity_fill <= self.DEGRADATION_KNEE
