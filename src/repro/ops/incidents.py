"""The 2010 human-error incident replay (§IV-E, Lesson 11).

Timeline from the paper:

1. a disk is replaced in a storage enclosure; its RAID group starts
   rebuilding;
2. during the rebuild, the controller↔enclosure connection fails; the
   couplet fails over to the partner controller *as designed* and the unit
   returns to production — still rebuilding;
3. eighteen hours later the affected storage array is taken offline — the
   human error — while still in rebuild mode;
4. in the Spider I geometry (each RAID group striped two-per-enclosure
   across five shelves), the enclosure outage had removed **two** members
   of every group; with the rebuilding member that exceeds RAID-6's
   tolerance, so the couplet's journal replay fails: "losing journal data
   for more than a million files managed by that controller pair";
5. "Recovery of the lost files took more than two weeks, with 95%
   successful recovery rate."

"A design using 10 enclosures per storage controller pair would have
tolerated this failure scenario" — one member per shelf keeps every group
at two effective erasures, within tolerance.

:func:`replay_2010_incident` executes the timeline against either geometry
on the event engine and reports the outcome, including the recovery
campaign.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.hardware.disk import DiskPopulation, DiskSpec
from repro.hardware.ssu import Ssu, SsuSpec
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams
from repro.units import HOUR, MB, TB

__all__ = ["IncidentOutcome", "replay_2010_incident"]


@dataclass(frozen=True)
class IncidentOutcome:
    """What the scenario did to one geometry."""

    n_enclosures: int
    max_effective_erasures: int
    journal_replay_failed: bool
    files_lost: int
    files_recovered: int
    recovery_days: float

    @property
    def recovery_rate(self) -> float:
        if self.files_lost == 0:
            return 1.0
        return self.files_recovered / self.files_lost

    @property
    def tolerated(self) -> bool:
        return not self.journal_replay_failed


def _build_ssu(n_enclosures: int, *, seed: int) -> Ssu:
    """A Spider I-era couplet: 280 × 1 TB drives behind one controller
    pair, striped across ``n_enclosures`` shelves."""
    spec = SsuSpec(
        n_enclosures=n_enclosures,
        disks_per_enclosure=280 // n_enclosures,
        disk=DiskSpec(capacity_bytes=1 * TB, seq_bw=100 * MB, name="sata-1tb"),
    )
    population = DiskPopulation(spec.n_disks, spec.disk, rng=RngStreams(seed))
    return Ssu(spec, population, 0, index=0, name=f"incident-{n_enclosures}enc")


def replay_2010_incident(
    n_enclosures: int = 5,
    *,
    dirty_files_per_group: int = 37_500,
    rebuild_rate_under_load: float = 12 * MB,  # production I/O competes
    offline_after: float = 18 * HOUR,
    recovery_rate_files_per_day: float = 72_000.0,
    recovery_success: float = 0.95,
    seed: int = 2010,
) -> IncidentOutcome:
    """Run the §IV-E timeline against a couplet with ``n_enclosures``.

    ``dirty_files_per_group`` calibrates the write-back journal population;
    28 groups × 37,500 ≈ 1.05 M files — "more than a million".
    """
    if n_enclosures not in (5, 10):
        raise ValueError("the comparison is between the 5- and 10-shelf designs")
    engine = Engine()
    ssu = _build_ssu(n_enclosures, seed=seed)
    for group in ssu.groups:
        group.journal.stage(dirty_files_per_group)

    rebuild_seconds = ssu.spec.disk.capacity_bytes / rebuild_rate_under_load
    # The shelf whose controller link fails (and is later taken offline),
    # and the group whose replaced disk is rebuilding in a *different*
    # shelf — the compounding the design comparison hinges on.
    failed_enclosure = 1
    rebuild_group = ssu.groups[0]
    rebuild_pos = next(
        pos for pos, enc in enumerate(ssu.enclosures.member_enclosure[0])
        if enc != failed_enclosure
    )

    state = {"max_erasures": 0, "replay_failed": False, "files_lost": 0}

    def timeline():
        # t=0: a disk is replaced; its group starts rebuilding.
        rebuild_group.erase_member(rebuild_pos)
        rebuild_group.restore_member(rebuild_pos)  # fresh drive, rebuilding
        yield 600.0
        # t=10 min: the controller↔shelf link fails; the couplet fails over
        # to the partner controller as designed — transparent to the RAID
        # groups — and the unit returns to production, still rebuilding.
        ssu.couplet.fail_controller(0)
        # t=+18 h: to repair the link, the shelf is taken offline while the
        # rebuild is still running — the human error.
        yield offline_after
        if engine.now >= rebuild_seconds:  # pragma: no cover - long rebuild
            rebuild_group.finish_rebuild(rebuild_pos)
        ssu.apply_enclosure_outage(failed_enclosure)
        # Effective erasures now: the shelf's members of every group
        # (two in the 5-shelf design, one in the 10-shelf design) plus the
        # rebuilding member of group 0.
        worst = max(g.effective_erasures for g in ssu.groups)
        state["max_erasures"] = worst
        if worst > ssu.spec.raid.fault_tolerance:
            # Journal replay for the pair aborts: every dirty entry on the
            # couplet is lost (erase_member already dropped the failed
            # group's journal; lose() the rest, then total via lost_files).
            state["replay_failed"] = True
            for g in ssu.groups:
                g.journal.lose()
            state["files_lost"] = sum(g.journal.lost_files for g in ssu.groups)

    engine.process(timeline(), name="incident")
    engine.run()

    files_lost = state["files_lost"]
    recovered = int(files_lost * recovery_success)
    recovery_days = recovered / recovery_rate_files_per_day if recovered else 0.0
    return IncidentOutcome(
        n_enclosures=n_enclosures,
        max_effective_erasures=state["max_erasures"],
        journal_replay_failed=state["replay_failed"],
        files_lost=files_lost,
        files_recovered=recovered,
        recovery_days=recovery_days,
    )
